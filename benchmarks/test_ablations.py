"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables — these quantify the mechanisms our reproduction claims
are responsible for the Table 1 effects: per-word bus cost, RMI chunking,
bus polling, the stream-pipeline FIFO depth, the co-processor speed
assumption, the Shared Object's bus tier, and quality-layer decoding.

Every tweak that used to be applied by hand here (module-global
rebinding, post-construction pokes, bus-swap subclasses) is now a
declarative request option interpreted by ``repro.experiments.execute``;
this module asserts the relations and re-emits the artifacts.
"""

from repro.experiments import execute_request, registry
from repro.experiments.defs import CHUNK_WORDS, FIFO_DEPTHS, HW_SPEEDUP_FACTORS


def _first_request(experiment_id):
    return registry.get(experiment_id).requests()[0]


def test_ablation_opb_burst_support(benchmark, engine, emit):
    """What if the OPB peripherals had supported sequential-address bursts?

    The paper's 6a suffers because they do not; enabling bursts in the
    model shows how much of the inflation is the per-word handshake.
    """
    benchmark.pedantic(
        lambda: execute_request(_first_request("ablation_opb_burst")),
        iterations=1, rounds=1,
    )
    outcome = engine.run_experiment("ablation_opb_burst")
    emit(outcome.tables()["ablation_opb_burst"], "ablation_opb_burst")
    payloads = outcome.payloads
    # bursts recover a chunk of the loss
    assert (
        payloads["sim:6a:lossless:burst"]["idwt_ms"]
        < payloads["sim:6a:lossless"]["idwt_ms"]
    )


def test_ablation_rmi_chunk_size(benchmark, engine, emit):
    """Transfer chunking trades bus fairness against per-chunk overhead."""
    benchmark.pedantic(
        lambda: execute_request(_first_request("ablation_chunking")),
        iterations=1, rounds=1,
    )
    outcome = engine.run_experiment("ablation_chunking")
    emit(outcome.tables()["ablation_chunking"], "ablation_chunking")
    payloads = outcome.payloads
    # Coarse chunks starve the IDWT longer per grant.
    finest = payloads[f"sim:7a:lossless:chunk{CHUNK_WORDS[0]}"]["idwt_ms"]
    coarsest = payloads[f"sim:7a:lossless:chunk{CHUNK_WORDS[-1]}"]["idwt_ms"]
    assert coarsest >= finest * 0.8


def test_ablation_grant_polling(benchmark, engine, emit):
    """Bus polling of guarded calls: the 7a-over-6a mechanism."""
    benchmark.pedantic(
        lambda: execute_request(_first_request("ablation_polling")),
        iterations=1, rounds=1,
    )
    outcome = engine.run_experiment("ablation_polling")
    emit(outcome.tables()["ablation_polling"], "ablation_polling")
    payloads = outcome.payloads
    # polling can only hurt the IDWT
    assert (
        payloads["sim:7a:lossless"]["idwt_ms"]
        >= payloads["sim:7a:lossless:nopoll"]["idwt_ms"]
    )


def test_ablation_fifo_depth(benchmark, engine, emit):
    """Stream-pipeline depth of the filter blocks (double buffering)."""
    benchmark.pedantic(
        lambda: execute_request(_first_request("ablation_fifo_depth")),
        iterations=1, rounds=1,
    )
    outcome = engine.run_experiment("ablation_fifo_depth")
    emit(outcome.tables()["ablation_fifo_depth"], "ablation_fifo_depth")
    payloads = outcome.payloads
    shallow = payloads[f"sim:3:lossless:fifo{FIFO_DEPTHS[0]}"]["idwt_ms"]
    deeper = payloads[f"sim:3:lossless:fifo{FIFO_DEPTHS[1]}"]["idwt_ms"]
    assert deeper <= shallow * 1.05  # deeper never much worse


def test_ablation_hw_speedup_assumption(benchmark, engine, emit):
    """Sensitivity of version 2's speed-up to the HW co-processor factor."""
    benchmark.pedantic(
        lambda: execute_request(_first_request("ablation_hw_speedup")),
        iterations=1, rounds=1,
    )
    outcome = engine.run_experiment("ablation_hw_speedup")
    emit(outcome.tables()["ablation_hw_speedup"], "ablation_hw_speedup")
    payloads = outcome.payloads

    def overall(factor):
        v1 = payloads[f"sim:1:lossless:hw{factor:g}"]["decode_ms"]
        v2 = payloads[f"sim:2:lossless:hw{factor:g}"]["decode_ms"]
        return v1 / v2

    # Amdahl: overall speed-up saturates near 1/(1 - 0.087) = 1.095.
    assert overall(HW_SPEEDUP_FACTORS[-1]) < 1.10
    assert overall(HW_SPEEDUP_FACTORS[0]) < overall(HW_SPEEDUP_FACTORS[-1])


def test_ablation_plb_instead_of_opb(benchmark, engine, emit):
    """What if the Shared Object sat on the fast PLB tier instead?

    The OSSS Channel abstraction makes the swap a one-option change; the
    result shows the 2008 platform's OPB was the real bottleneck of the
    bus-only mapping — a PLB-attached object nearly matches dedicated
    point-to-point links.
    """
    benchmark.pedantic(
        lambda: execute_request(_first_request("ablation_plb")),
        iterations=1, rounds=1,
    )
    outcome = engine.run_experiment("ablation_plb")
    emit(outcome.tables()["ablation_plb"], "ablation_plb")
    payloads = outcome.payloads
    opb_ms = payloads["sim:6a:lossless"]["idwt_ms"]
    plb_ms = payloads["sim:6a:lossless:plb"]["idwt_ms"]
    p2p_ms = payloads["sim:6b:lossless"]["idwt_ms"]
    assert plb_ms < opb_ms / 2
    assert plb_ms > p2p_ms * 0.8  # dedicated links still win


def test_ablation_quality_layers(benchmark, engine, emit):
    """Extension: layered codestreams trade entropy work for quality."""
    benchmark.pedantic(
        lambda: execute_request(_first_request("ablation_layers")),
        iterations=1, rounds=1,
    )
    outcome = engine.run_experiment("ablation_layers")
    emit(outcome.tables()["ablation_layers"], "ablation_layers")
    payloads = outcome.payloads
    rows = [payloads[f"layers:{count}"] for count in range(1, 6)]
    psnrs = [row["psnr"] for row in rows]
    ops = [row["arith_ops"] for row in rows]
    assert psnrs == sorted(psnrs)
    assert ops == sorted(ops)
