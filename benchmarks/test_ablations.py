"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables — these quantify the mechanisms our reproduction claims
are responsible for the Table 1 effects: per-word bus cost, RMI chunking,
bus polling, arbitration policy and the stream-pipeline FIFO depth.
"""

import pytest

from repro.casestudy import paper_workload, run_version
from repro.casestudy.vta_versions import Version6aBusOnly, Version7aBusOnly
from repro.reporting import Table


@pytest.fixture(scope="module")
def workload():
    return paper_workload(True)


def test_ablation_opb_burst_support(benchmark, workload, emit):
    """What if the OPB peripherals had supported sequential-address bursts?

    The paper's 6a suffers because they do not; enabling bursts in the
    model shows how much of the inflation is the per-word handshake.
    """

    def run(burst):
        model = Version6aBusOnly(workload)
        if burst:
            model.opb.burst_threshold_words = 8
        report = model.run()
        return report, model.idwt_metrics.busy_ms

    baseline = benchmark.pedantic(lambda: run(False), iterations=1, rounds=1)
    _, idwt_no_burst = baseline
    _, idwt_burst = run(True)
    table = Table(
        ["OPB mode", "IDWT time lossless [ms]"],
        title="Ablation - OPB burst support (model 6a)",
    )
    table.add_row("single transfers (paper platform)", idwt_no_burst)
    table.add_row("seqAddr bursts enabled", idwt_burst)
    emit(table, "ablation_opb_burst")
    assert idwt_burst < idwt_no_burst  # bursts recover a chunk of the loss


def test_ablation_rmi_chunk_size(benchmark, workload, emit):
    """Transfer chunking trades bus fairness against per-chunk overhead."""
    from repro.casestudy import vta_versions

    def run(chunk):
        original = vta_versions.RMI_CHUNK_WORDS
        try:
            vta_versions.RMI_CHUNK_WORDS = chunk
            model = Version7aBusOnly(workload)
        finally:
            vta_versions.RMI_CHUNK_WORDS = original
        report = model.run()
        return chunk, report.decode_ms, model.idwt_metrics.busy_ms

    results = [benchmark.pedantic(lambda: run(32), iterations=1, rounds=1)]
    for chunk in (128, 1024):
        results.append(run(chunk))
    table = Table(
        ["chunk [words]", "decode [ms]", "IDWT [ms]"],
        title="Ablation - RMI transfer chunking (model 7a)",
    )
    for row in results:
        table.add_row(*row)
    emit(table, "ablation_chunking")
    # Coarse chunks starve the IDWT longer per grant.
    assert results[-1][2] >= results[0][2] * 0.8


def test_ablation_grant_polling(benchmark, workload, emit):
    """Bus polling of guarded calls: the 7a-over-6a mechanism."""

    def run(poll):
        model = Version7aBusOnly(workload)
        if not poll:
            for task in model.tasks:
                task.so_port._provider.poll_interval = None
            model.control.store_port._provider.poll_interval = None
            for block in model.filters:
                block.store_port._provider.poll_interval = None
        report = model.run()
        return report.decode_ms, model.idwt_metrics.busy_ms

    with_poll = benchmark.pedantic(lambda: run(True), iterations=1, rounds=1)
    without_poll = run(False)
    table = Table(
        ["status polling", "decode [ms]", "IDWT [ms]"],
        title="Ablation - RMI status polling on the OPB (model 7a)",
    )
    table.add_row("enabled (no interrupt wiring)", *with_poll)
    table.add_row("disabled (ideal notification)", *without_poll)
    emit(table, "ablation_polling")
    assert with_poll[1] >= without_poll[1]  # polling can only hurt the IDWT


def test_ablation_fifo_depth(benchmark, workload, emit):
    """Stream-pipeline depth of the filter blocks (double buffering)."""
    from repro.casestudy.versions import Version3HwSwParallel

    def run(depth):
        model = Version3HwSwParallel(workload)
        for block in model.filters:
            block._in_fifo.capacity = depth
            block._out_fifo.capacity = depth
        model.run()
        return depth, model.idwt_metrics.busy_ms

    results = [benchmark.pedantic(lambda: run(1), iterations=1, rounds=1)]
    for depth in (4, 16):
        results.append(run(depth))
    table = Table(
        ["FIFO depth", "IDWT time [ms]"],
        title="Ablation - filter pipeline FIFO depth (model 3)",
    )
    for row in results:
        table.add_row(*row)
    emit(table, "ablation_fifo_depth")
    assert results[1][1] <= results[0][1] * 1.05  # deeper never much worse


def test_ablation_hw_speedup_assumption(benchmark, emit):
    """Sensitivity of version 2's speed-up to the HW co-processor factor."""
    from repro.casestudy import profiles
    from repro.casestudy.versions import Version1SwOnly, Version2Coprocessor

    def run(factor):
        original = profiles.HW_COPROCESSOR_SPEEDUP
        try:
            profiles.HW_COPROCESSOR_SPEEDUP = factor
            # the behaviours read the constant through the module, so a
            # fresh workload+model pair picks it up
            workload = paper_workload(True)
            v1 = Version1SwOnly(workload).run().decode_ms
            v2 = Version2Coprocessor(workload).run().decode_ms
            return factor, v1 / v2
        finally:
            profiles.HW_COPROCESSOR_SPEEDUP = original

    rows = [benchmark.pedantic(lambda: run(4.0), iterations=1, rounds=1)]
    for factor in (8.0, 16.0, 32.0):
        rows.append(run(factor))
    table = Table(
        ["HW speed-up factor", "v2 overall speed-up (lossless)"],
        title="Ablation - co-processor speed assumption vs the ~10% bound",
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "ablation_hw_speedup")
    # Amdahl: overall speed-up saturates near 1/(1 - 0.087) = 1.095.
    assert rows[-1][1] < 1.10
    assert rows[0][1] < rows[-1][1]


def test_ablation_plb_instead_of_opb(benchmark, workload, emit):
    """What if the Shared Object sat on the fast PLB tier instead?

    The OSSS Channel abstraction makes the swap a one-line change; the
    result shows the 2008 platform's OPB was the real bottleneck of the
    bus-only mapping — a PLB-attached object nearly matches dedicated
    point-to-point links.
    """
    from repro.casestudy.vta_versions import Version6bBusAndP2p
    from repro.vta import PlbBus

    class Version6aPlb(Version6aBusOnly):
        version = "6a-plb"

        def _prepare_architecture(self):
            super()._prepare_architecture()
            self.opb = PlbBus(self.sim, self.platform.clock_period)

    def run(model_cls):
        model = model_cls(workload)
        model.run()
        return model.idwt_metrics.busy_ms

    opb_ms = benchmark.pedantic(lambda: run(Version6aBusOnly), iterations=1, rounds=1)
    plb_ms = run(Version6aPlb)
    p2p_ms = run(Version6bBusAndP2p)
    table = Table(
        ["shared-object attachment", "IDWT time lossless [ms]"],
        title="Ablation - bus tier of the HW/SW Shared Object (model 6a)",
    )
    table.add_row("OPB (paper platform)", opb_ms)
    table.add_row("PLB (64-bit, pipelined)", plb_ms)
    table.add_row("point-to-point links (6b)", p2p_ms)
    emit(table, "ablation_plb")
    assert plb_ms < opb_ms / 2
    assert plb_ms > p2p_ms * 0.8  # dedicated links still win


def test_ablation_quality_layers(benchmark, emit):
    """Extension: layered codestreams trade entropy work for quality."""
    from repro.jpeg2000 import (
        CodingParameters,
        Jpeg2000Decoder,
        encode_image,
        synthetic_image,
    )

    image = synthetic_image(64, 64, 3, seed=7)
    params = CodingParameters(
        width=64, height=64, num_components=3, tile_width=32, tile_height=32,
        num_levels=3, lossless=False, num_layers=5, base_step=1 / 8,
    )
    codestream = encode_image(image, params)

    def decode_prefix(count):
        decoder = Jpeg2000Decoder(codestream, max_layers=count)
        decoded = decoder.decode()
        return decoded.psnr(image), decoder.ops["arith"]

    benchmark.pedantic(lambda: decode_prefix(1), iterations=1, rounds=1)
    table = Table(
        ["layers", "PSNR [dB]", "entropy ops"],
        title="Extension - quality-layer prefix decoding (one codestream)",
    )
    rows = [decode_prefix(count) for count in range(1, 6)]
    for count, (psnr, ops) in enumerate(rows, start=1):
        table.add_row(f"{count}/5", psnr, ops)
    emit(table, "ablation_layers")
    psnrs = [psnr for psnr, _ in rows]
    ops = [o for _, o in rows]
    assert psnrs == sorted(psnrs)
    assert ops == sorted(ops)
