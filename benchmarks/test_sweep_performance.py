"""Sweep-engine wall clock: cold vs warm, sequential vs parallel.

Measures the full Table 1 sweep (both halves, 20 requests) through the
experiment engine in three configurations and persists the trajectory
file ``BENCH_sweep.json`` at the repository root:

- ``cold-sequential``  empty cache, in-process execution;
- ``cold-parallel``    empty cache, ``--jobs 4`` process-pool fan-out;
- ``warm``             every cell served from the content-addressed cache.

Each timed run happens in a fresh subprocess with its own cache
directory (cold) or a pre-populated one (warm), so import costs and
cache state are honest.  Values must be bit-identical across all three
paths — that is asserted; wall clock is recorded, not asserted, except
for the cache's core promise: a warm sweep must beat a cold one by at
least 10x.  Parallel-vs-sequential is only asserted on multi-core
hosts — on one CPU the pool is pure overhead, which the trajectory file
records rather than hides.

Run with ``python -m pytest benchmarks/test_sweep_performance.py -m slow``.
"""

import json
import os
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.reporting import SweepBench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_sweep.json"

GROUP = "table1"
JOBS = 4

#: Child process body: sweep the group once and print payloads + seconds.
#: argv: cache_dir jobs
_CHILD_SWEEP = """
import json, sys, time
from repro.experiments import ResultCache, Runner, registry

cache_dir, jobs = sys.argv[1], int(sys.argv[2])
runner = Runner(jobs=jobs, cache=ResultCache(cache_dir))
t0 = time.perf_counter()
outcomes = runner.sweep("%s")
elapsed = time.perf_counter() - t0
payloads = {o.experiment.id: o.payloads for o in outcomes}
print(json.dumps({"seconds": elapsed, "stats": runner.last_stats,
                  "payloads": payloads}))
""" % GROUP


def _swept(cache_dir, jobs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_SWEEP, str(cache_dir), str(jobs)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.mark.slow
def test_sweep_wallclock_cold_warm_parallel(tmp_path):
    bench = SweepBench(group=GROUP, jobs=JOBS)

    # Interleaved best-of-2 for the cold variants (each on a throwaway
    # cache), so a host load spike degrades both sides evenly.
    best = {"cold-sequential": float("inf"), "cold-parallel": float("inf")}
    payloads = {}
    for round_index in range(2):
        for variant, jobs in (("cold-sequential", 0), ("cold-parallel", JOBS)):
            cache_dir = tmp_path / f"{variant}-{round_index}"
            result = _swept(cache_dir, jobs)
            assert result["stats"]["cached"] == 0
            best[variant] = min(best[variant], result["seconds"])
            payloads.setdefault(variant, result["payloads"])
            assert result["payloads"] == payloads["cold-sequential"], (
                f"{variant} changed result payloads"
            )
            shutil.rmtree(cache_dir)

    # Warm: populate once sequentially, then time a fully cached sweep.
    warm_dir = tmp_path / "warm"
    _swept(warm_dir, 0)
    warm_best = float("inf")
    for _ in range(2):
        result = _swept(warm_dir, 0)
        assert result["stats"]["executed"] == 0, "warm sweep re-ran a cell"
        warm_best = min(warm_best, result["seconds"])
        assert result["payloads"] == payloads["cold-sequential"], (
            "cache-served payloads differ from computed ones"
        )

    bench.record("cold-sequential", best["cold-sequential"])
    bench.record("cold-parallel", best["cold-parallel"])
    bench.record("warm", warm_best)
    bench.values_identical = True

    payload = bench.write(BENCH_FILE)
    print(f"\nwrote {BENCH_FILE}")
    print(json.dumps({k: payload[k] for k in ("seconds", "speedups")}, indent=2))

    # The cache's core promise is structural, so it is asserted even
    # though it is a wall-clock ratio: a warm sweep does no simulation.
    assert payload["speedups"]["warm_vs_cold_sequential"] >= 10.0
    # The pool only wins when there are cores to fan out to.
    if (os.cpu_count() or 1) > 1:
        assert best["cold-parallel"] < best["cold-sequential"]
