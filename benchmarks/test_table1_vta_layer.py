"""Table 1, rows 6a-7b — Virtual Target Architecture simulation results.

The cycle-accurate mappings: OPB-only vs OPB+point-to-point, one vs four
processors.  Prints the lower half of Table 1 with the IDWT-time ratios
the paper discusses (inflation vs model 3, 6b == 7b, speed-up vs SW-only).
"""

import pytest

from repro.casestudy import ROW_LABELS, VTA_VERSIONS, paper_workload, run_version
from repro.reporting import CHANNEL_TRAFFIC_COLUMNS, Table, channel_traffic_row


@pytest.fixture(scope="module")
def reports():
    out = {}
    for lossless in (True, False):
        workload = paper_workload(lossless)
        out[("1", lossless)] = run_version("1", lossless, workload)
        out[("3", lossless)] = run_version("3", lossless, workload)
        for name in VTA_VERSIONS:
            out[(name, lossless)] = run_version(name, lossless, workload)
    return out


def test_table1_vta_layer(benchmark, reports, emit):
    def run_6a_lossless():
        return run_version("6a", True, paper_workload(True))

    benchmark.pedantic(run_6a_lossless, iterations=1, rounds=1)
    table = Table(
        [
            "version", "mapping",
            "decode lossless [ms]", "decode lossy [ms]",
            "IDWT lossless [ms]", "IDWT lossy [ms]",
            "IDWT vs v3", "IDWT speedup vs v1",
        ],
        title="Table 1 (lower half) - VTA Layer simulation results, "
        "16 tiles x 3 components @ 100 MHz",
    )
    for name in VTA_VERSIONS:
        row_ll = reports[(name, True)]
        row_ly = reports[(name, False)]
        table.add_row(
            name,
            ROW_LABELS[name],
            row_ll.decode_ms,
            row_ly.decode_ms,
            row_ll.idwt_ms,
            row_ly.idwt_ms,
            row_ll.idwt_ms / reports[("3", True)].idwt_ms,
            reports[("1", True)].idwt_ms / row_ll.idwt_ms,
        )
    emit(table, "table1_vta_layer")

    # The prose relations on the printed data.
    for lossless in (True, False):
        assert reports[("7a", lossless)].idwt_ms > reports[("6a", lossless)].idwt_ms
        assert reports[("7b", lossless)].idwt_ms == pytest.approx(
            reports[("6b", lossless)].idwt_ms, rel=0.10
        )
    speedup = reports[("1", True)].idwt_ms / reports[("6b", True)].idwt_ms
    assert 9.0 < speedup < 15.0  # paper: "a factor of 12"


def test_vta_bus_statistics(benchmark, reports, emit):
    """Secondary observables: where the OPB time actually went."""
    benchmark.pedantic(lambda: reports[("6a", True)].details, iterations=1, rounds=1)
    table = Table(
        list(CHANNEL_TRAFFIC_COLUMNS),
        title="OPB traffic per VTA mapping (lossless run)",
    )
    for name in VTA_VERSIONS:
        details = reports[(name, True)].details
        table.add_row(*channel_traffic_row(name, details["opb"]))
    emit(table, "table1_vta_bus_traffic")
    # bus-only mappings move the tile data over the OPB twice more
    assert (
        reports[("6a", True)].details["opb"].words
        > 2 * reports[("6b", True)].details["opb"].words
    )


def test_7b_simulation_speed(benchmark):
    """Wall-clock cost of the most detailed model in the repository."""
    workload = paper_workload(True)
    report = benchmark.pedantic(
        lambda: run_version("7b", True, workload), iterations=1, rounds=3
    )
    assert report.decode_ms < 900.0
