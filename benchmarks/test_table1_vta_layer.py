"""Table 1, rows 6a-7b — Virtual Target Architecture simulation results.

Thin assertion layer over the ``table1_vta_layer`` registry entry: the
cycle-accurate mappings (OPB-only vs OPB+point-to-point, one vs four
processors), the IDWT-time ratios the paper discusses, and the OPB
traffic table — all rendered from the same engine payloads.
"""

import pytest

from repro.experiments import KIND_SIMULATE, RunRequest, execute_request


@pytest.fixture(scope="module")
def outcome(engine):
    return engine.run_experiment("table1_vta_layer")


def test_table1_vta_layer(benchmark, outcome, emit):
    request = RunRequest("sim:6a:lossless", KIND_SIMULATE,
                         {"version": "6a", "lossless": True})
    benchmark.pedantic(lambda: execute_request(request), iterations=1, rounds=1)
    tables = outcome.tables()
    emit(tables["table1_vta_layer"], "table1_vta_layer")

    # The prose relations on the printed data.
    payloads = outcome.payloads
    for mode in ("lossless", "lossy"):
        assert (
            payloads[f"sim:7a:{mode}"]["idwt_ms"]
            > payloads[f"sim:6a:{mode}"]["idwt_ms"]
        )
        assert payloads[f"sim:7b:{mode}"]["idwt_ms"] == pytest.approx(
            payloads[f"sim:6b:{mode}"]["idwt_ms"], rel=0.10
        )
    speedup = (
        payloads["sim:1:lossless"]["idwt_ms"] / payloads["sim:6b:lossless"]["idwt_ms"]
    )
    assert 9.0 < speedup < 15.0  # paper: "a factor of 12"


def test_vta_bus_statistics(benchmark, outcome, emit):
    """Secondary observables: where the OPB time actually went."""
    payloads = outcome.payloads
    benchmark.pedantic(
        lambda: payloads["sim:6a:lossless"]["details"], iterations=1, rounds=1
    )
    emit(outcome.tables()["table1_vta_bus_traffic"], "table1_vta_bus_traffic")
    # bus-only mappings move the tile data over the OPB twice more
    assert (
        payloads["sim:6a:lossless"]["details"]["opb"]["words"]
        > 2 * payloads["sim:6b:lossless"]["details"]["opb"]["words"]
    )


def test_7b_simulation_speed(benchmark):
    """Wall-clock cost of the most detailed model in the repository."""
    request = RunRequest("sim:7b:lossless", KIND_SIMULATE,
                         {"version": "7b", "lossless": True})
    payload = benchmark.pedantic(
        lambda: execute_request(request), iterations=1, rounds=3
    )
    assert payload["decode_ms"] < 900.0
