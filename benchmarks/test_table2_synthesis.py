"""Table 2 — RTL synthesis results of the IDWT blocks.

Thin assertion layer over the ``table2`` registry entry: both IDWT
models through the reference path and the FOSSY path (inline ->
elaborate -> estimate), FOSSY vs reference on the Virtex-4 LX25.
"""

import pytest

from repro.experiments import execute_request, registry
from repro.fossy import build_idwt97


@pytest.fixture(scope="module")
def outcome(engine):
    return engine.run_experiment("table2")


def test_table2_synthesis_results(benchmark, outcome, emit):
    idwt53_request = registry.get("table2").requests()[0]
    benchmark.pedantic(
        lambda: execute_request(idwt53_request), iterations=1, rounds=1
    )
    emit(outcome.tables()["table2_synthesis"], "table2_synthesis")

    # Paper section 4: the relations on the printed data.
    payloads = outcome.payloads
    b53, b97 = payloads["synth:idwt53"], payloads["synth:idwt97"]
    assert b53["area_ratio"] == pytest.approx(1.10, abs=0.08)   # "about 10 %"
    assert b97["area_ratio"] == pytest.approx(0.85, abs=0.08)   # "15 % smaller"
    assert b97["frequency_ratio"] == pytest.approx(0.72, abs=0.08)  # "28 % slower"
    for block in (b53, b97):
        assert block["reference"]["meets_100mhz"]
        assert block["fossy"]["meets_100mhz"]  # "perfectly match the timing"


def test_table2_ratio_summary(benchmark, outcome, emit):
    payloads = outcome.payloads
    benchmark.pedantic(
        lambda: payloads["synth:idwt53"]["area_ratio"], iterations=1, rounds=1
    )
    emit(outcome.tables()["table2_ratios"], "table2_ratios")


def test_estimation_speed(benchmark):
    """The estimator itself must be cheap enough for exploration loops."""
    from repro.fossy import elaborate, estimate_fossy, inline_design

    design = build_idwt97()
    fsmd = elaborate(inline_design(design))
    report = benchmark(lambda: estimate_fossy(fsmd))
    assert report.slices > 0
