"""Table 2 — RTL synthesis results of the IDWT blocks.

Runs both IDWT models through the reference path and the FOSSY path
(inline -> elaborate -> estimate) and prints the reconstructed Table 2:
flip-flops, LUTs, occupied slices, equivalent gates and estimated
frequency on the Virtex-4 LX25, FOSSY vs reference.
"""

import pytest

from repro.fossy import build_idwt53, build_idwt97, synthesise_block
from repro.reporting import Table


@pytest.fixture(scope="module")
def results():
    return {
        "idwt53": synthesise_block(build_idwt53()),
        "idwt97": synthesise_block(build_idwt97()),
    }


def test_table2_synthesis_results(benchmark, results, emit):
    benchmark.pedantic(
        lambda: synthesise_block(build_idwt53()), iterations=1, rounds=1
    )
    table = Table(
        [
            "metric",
            "IDWT53 FOSSY", "IDWT53 reference",
            "IDWT97 FOSSY", "IDWT97 reference",
        ],
        title="Table 2 - RTL synthesis results of the IDWT (Virtex-4 LX25)",
    )
    b53, b97 = results["idwt53"], results["idwt97"]
    rows = [
        ("Number of Slice Flip Flops",
         b53.fossy_report.flip_flops, b53.reference_report.flip_flops,
         b97.fossy_report.flip_flops, b97.reference_report.flip_flops),
        ("Number of 4 input LUTs",
         b53.fossy_report.luts, b53.reference_report.luts,
         b97.fossy_report.luts, b97.reference_report.luts),
        ("Number of occupied Slices",
         b53.fossy_report.slices, b53.reference_report.slices,
         b97.fossy_report.slices, b97.reference_report.slices),
        ("Total equivalent gate count",
         b53.fossy_report.gate_count, b53.reference_report.gate_count,
         b97.fossy_report.gate_count, b97.reference_report.gate_count),
        ("Estimated frequency [MHz]",
         b53.fossy_report.frequency_mhz, b53.reference_report.frequency_mhz,
         b97.fossy_report.frequency_mhz, b97.reference_report.frequency_mhz),
    ]
    for row in rows:
        table.add_row(*row)
    emit(table, "table2_synthesis")

    # Paper section 4: the relations on the printed data.
    assert b53.area_ratio == pytest.approx(1.10, abs=0.08)   # "about 10 %"
    assert b97.area_ratio == pytest.approx(0.85, abs=0.08)   # "15 % smaller"
    assert b97.frequency_ratio == pytest.approx(0.72, abs=0.08)  # "28 % slower"
    for result in results.values():
        assert result.reference_report.meets(100e6)
        assert result.fossy_report.meets(100e6)  # "perfectly match the timing"


def test_table2_ratio_summary(benchmark, results, emit):
    benchmark.pedantic(lambda: results["idwt53"].area_ratio, iterations=1, rounds=1)
    table = Table(
        ["block", "paper area ratio", "measured area ratio",
         "paper freq ratio", "measured freq ratio"],
        title="Table 2 - FOSSY/reference ratios, paper vs measured",
    )
    table.add_row("IDWT53", "~1.10", results["idwt53"].area_ratio,
                  "~1.0 (similar)", results["idwt53"].frequency_ratio)
    table.add_row("IDWT97", "0.85", results["idwt97"].area_ratio,
                  "0.72", results["idwt97"].frequency_ratio)
    emit(table, "table2_ratios")


def test_estimation_speed(benchmark):
    """The estimator itself must be cheap enough for exploration loops."""
    from repro.fossy import elaborate, estimate_fossy, inline_design

    design = build_idwt97()
    fsmd = elaborate(inline_design(design))
    report = benchmark(lambda: estimate_fossy(fsmd))
    assert report.slices > 0
