"""The paper's closing claim: "7b does better scale with increasing
parallelism".

Sweeps the number of software processors for both VTA mappings.  The
bus-only architecture's IDWT path degrades as processors are added (they
all compete for the OPB), while the point-to-point mapping keeps it flat —
and by eight processors the difference reaches the overall decode time.
"""

import pytest

from repro.casestudy import paper_workload
from repro.casestudy.vta_versions import scaled_parallel_version
from repro.reporting import Table

TASK_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def sweep():
    workload = paper_workload(True)
    results = {}
    for num_tasks in TASK_COUNTS:
        for p2p in (False, True):
            model = scaled_parallel_version(num_tasks, p2p)(workload)
            report = model.run()
            results[(num_tasks, p2p)] = (report.decode_ms, model.idwt_metrics.busy_ms)
    return results


def test_scaling_sweep(benchmark, sweep, emit):
    benchmark.pedantic(
        lambda: scaled_parallel_version(8, True)(paper_workload(True)).run(),
        iterations=1,
        rounds=1,
    )
    table = Table(
        [
            "processors",
            "bus-only decode [ms]", "bus-only IDWT [ms]",
            "P2P decode [ms]", "P2P IDWT [ms]",
        ],
        title="Scaling with parallelism - 7a-style (bus) vs 7b-style (P2P)",
    )
    for num_tasks in TASK_COUNTS:
        bus = sweep[(num_tasks, False)]
        p2p = sweep[(num_tasks, True)]
        table.add_row(num_tasks, bus[0], bus[1], p2p[0], p2p[1])
    emit(table, "scaling_parallelism")

    # The P2P IDWT path is independent of the processor count ...
    p2p_idwt = [sweep[(n, True)][1] for n in TASK_COUNTS]
    assert max(p2p_idwt) < min(p2p_idwt) * 1.10
    # ... while the bus-only path degrades beyond two processors ...
    assert sweep[(8, False)][1] > sweep[(2, False)][1] * 1.3
    # ... and at eight processors the bus mapping is slower end to end.
    assert sweep[(8, False)][0] > sweep[(8, True)][0]


def test_decode_time_scales_with_processors(benchmark, sweep):
    """Software parallelism itself behaves (near-Amdahl) in both mappings."""
    benchmark.pedantic(lambda: sweep[(1, True)], iterations=1, rounds=1)
    for p2p in (False, True):
        one = sweep[(1, p2p)][0]
        eight = sweep[(8, p2p)][0]
        assert 5.5 < one / eight < 8.5
