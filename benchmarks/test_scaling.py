"""The paper's closing claim: "7b does better scale with increasing
parallelism".

Thin assertion layer over the ``scaling`` registry entry: the engine
sweeps the processor count for both VTA mappings; this module checks
that the bus-only IDWT path degrades while the point-to-point one stays
flat, and that by eight processors the difference reaches the overall
decode time.
"""

import pytest

from repro.experiments import execute_request, registry
from repro.experiments.defs import TASK_COUNTS


@pytest.fixture(scope="module")
def outcome(engine):
    return engine.run_experiment("scaling")


def test_scaling_sweep(benchmark, outcome, emit):
    heaviest = registry.get("scaling").requests()[-1]  # 8 cpus, P2P
    benchmark.pedantic(lambda: execute_request(heaviest), iterations=1, rounds=1)
    emit(outcome.tables()["scaling_parallelism"], "scaling_parallelism")

    payloads = outcome.payloads
    # The P2P IDWT path is independent of the processor count ...
    p2p_idwt = [payloads[f"scaled:{n}:p2p"]["idwt_ms"] for n in TASK_COUNTS]
    assert max(p2p_idwt) < min(p2p_idwt) * 1.10
    # ... while the bus-only path degrades beyond two processors ...
    assert payloads["scaled:8:bus"]["idwt_ms"] > payloads["scaled:2:bus"]["idwt_ms"] * 1.3
    # ... and at eight processors the bus mapping is slower end to end.
    assert payloads["scaled:8:bus"]["decode_ms"] > payloads["scaled:8:p2p"]["decode_ms"]


def test_decode_time_scales_with_processors(benchmark, outcome):
    """Software parallelism itself behaves (near-Amdahl) in both mappings."""
    payloads = outcome.payloads
    benchmark.pedantic(lambda: payloads["scaled:1:p2p"], iterations=1, rounds=1)
    for wiring in ("bus", "p2p"):
        one = payloads[f"scaled:1:{wiring}"]["decode_ms"]
        eight = payloads[f"scaled:8:{wiring}"]["decode_ms"]
        assert 5.5 < one / eight < 8.5
