"""Figure 1 — the software profiling run.

Decodes the synthetic reference material with the instrumented decoder,
maps the per-stage operation counts to processor cycles (the calibrated
cost model of ``casestudy.profiles``), and reconstructs the per-stage
share table of Fig. 1, paper vs measured, for both modes.
"""

import pytest

from repro.casestudy import (
    CYCLES_PER_OP,
    PAPER_SHARES_LOSSLESS,
    PAPER_SHARES_LOSSY,
    measured_shares,
    measured_stage_times,
)
from repro.jpeg2000 import (
    ALL_STAGES,
    CodingParameters,
    Jpeg2000Decoder,
    encode_image,
    synthetic_image,
)
from repro.reporting import Table

#: Profiling subject: a quarter-scale version of the paper workload (the
#: shares are scale-invariant; the decode stays benchmark-friendly).
PROFILE_SIZE = 256
PROFILE_TILE = 128


def _profile(lossless: bool):
    image = synthetic_image(PROFILE_SIZE, PROFILE_SIZE, 3, seed=2008)
    params = CodingParameters(
        width=PROFILE_SIZE,
        height=PROFILE_SIZE,
        num_components=3,
        tile_width=PROFILE_TILE,
        tile_height=PROFILE_TILE,
        num_levels=3,
        lossless=lossless,
        base_step=1 / 8,
    )
    decoder = Jpeg2000Decoder(encode_image(image, params))
    decoder.decode()
    return decoder.ops


@pytest.fixture(scope="module")
def profiles():
    return {True: _profile(True), False: _profile(False)}


def test_fig1_profile_reconstruction(benchmark, profiles, emit):
    ops = benchmark.pedantic(_profile, args=(True,), iterations=1, rounds=1)
    table = Table(
        ["stage", "paper lossless [%]", "measured lossless [%]",
         "paper lossy [%]", "measured lossy [%]"],
        title="Figure 1 - SW decoder profile (share of decoding time)",
    )
    measured_ll = measured_shares(profiles[True], CYCLES_PER_OP)
    measured_ly = measured_shares(profiles[False], CYCLES_PER_OP)
    for stage in ALL_STAGES:
        table.add_row(
            stage,
            PAPER_SHARES_LOSSLESS[stage],
            measured_ll[stage],
            PAPER_SHARES_LOSSY[stage],
            measured_ly[stage],
        )
    emit(table, "fig1_profile")
    assert measured_ll["arith"] == pytest.approx(88.8, abs=8.0)
    assert measured_ly["arith"] == pytest.approx(78.6, abs=8.0)
    assert ops["arith"] > 0


def test_fig1_arith_ms_per_tile_anchor(benchmark, profiles, emit):
    """The paper's '~180 ms per tile' anchor, recomputed from op counts."""

    def derive():
        times = measured_stage_times(profiles[True], frequency_hz=100e6)
        tiles = (PROFILE_SIZE // PROFILE_TILE) ** 2
        return {stage: value / tiles for stage, value in times.items()}

    per_tile = benchmark(derive)
    table = Table(
        ["stage", "measured ms/tile (lossless)", "paper anchor"],
        title="Figure 1 - absolute stage times per 128x128 tile",
    )
    for stage in ALL_STAGES:
        anchor = "180 ms (arith)" if stage == "arith" else ""
        table.add_row(stage, per_tile[stage], anchor)
    emit(table, "fig1_anchor")
    # Same order of magnitude as the paper's processor (a factor of ~2
    # covers the unknown target CPU's IPC).
    assert 60.0 < per_tile["arith"] < 400.0
