"""Figure 1 — the software profiling run.

Thin assertion layer over the ``fig1`` registry entry: the instrumented
decode of the quarter-scale paper workload, the per-stage share table
(paper vs measured) and the absolute ms-per-tile anchor all come from
the engine payloads.
"""

import pytest

from repro.casestudy import CYCLES_PER_OP, measured_shares, measured_stage_times
from repro.experiments import execute_request, registry
from repro.experiments.defs import PROFILE_SIZE, PROFILE_TILE


@pytest.fixture(scope="module")
def outcome(engine):
    return engine.run_experiment("fig1")


def test_fig1_profile_reconstruction(benchmark, outcome, emit):
    lossless_request = registry.get("fig1").requests()[0]
    ops = benchmark.pedantic(
        lambda: execute_request(lossless_request)["ops"], iterations=1, rounds=1
    )
    tables = outcome.tables()
    emit(tables["fig1_profile"], "fig1_profile")

    payloads = outcome.payloads
    measured_ll = measured_shares(payloads["profile:lossless"]["ops"], CYCLES_PER_OP)
    measured_ly = measured_shares(payloads["profile:lossy"]["ops"], CYCLES_PER_OP)
    assert measured_ll["arith"] == pytest.approx(88.8, abs=8.0)
    assert measured_ly["arith"] == pytest.approx(78.6, abs=8.0)
    assert ops["arith"] > 0


def test_fig1_arith_ms_per_tile_anchor(benchmark, outcome, emit):
    """The paper's '~180 ms per tile' anchor, recomputed from op counts."""
    payloads = outcome.payloads

    def derive():
        times = measured_stage_times(
            payloads["profile:lossless"]["ops"], frequency_hz=100e6
        )
        tiles = (PROFILE_SIZE // PROFILE_TILE) ** 2
        return {stage: value / tiles for stage, value in times.items()}

    per_tile = benchmark(derive)
    emit(outcome.tables()["fig1_anchor"], "fig1_anchor")
    # Same order of magnitude as the paper's processor (a factor of ~2
    # covers the unknown target CPU's IPC).
    assert 60.0 < per_tile["arith"] < 400.0
