"""Substrate micro-benchmarks: codec throughput and simulator event rate.

Not paper artefacts — these track the performance of the reproduction's
own machinery so regressions in the substrates are visible.

The Table 1 VTA substrate benchmark at the bottom compares the reference
scheduler (``fast=False``) against the fast substrate (kernel fast paths
plus channel burst fast-forwarding) on the four VTA-layer benches,
asserts the reported milliseconds are identical in both modes, and
persists ``BENCH_sim.json`` at the repository root.  Run it with
``python -m pytest benchmarks/test_substrate_performance.py -m slow``;
the quick invariance check below it runs everywhere (it is the CI smoke
job) and asserts values only, never wall clock.
"""

import pathlib

import pytest

from repro.casestudy.explorer import run_version
from repro.jpeg2000 import (
    CodingParameters,
    decode_codestream,
    encode_image,
    synthetic_image,
)
from repro.jpeg2000.dwt import forward, inverse
from repro.jpeg2000.t1 import CodeBlockDecoder, CodeBlockEncoder
from repro.kernel import Event, Simulator, ns, set_default_fast
from repro.reporting import SimulationBench, time_call

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_sim.json"

#: The Table 1 VTA-layer benches (versions 6a/6b/7a/7b), each timed over
#: its lossless and lossy configuration.
VTA_BENCHES = ("6a", "6b", "7a", "7b")

#: Substrate wall clock of the *seed* kernel (commit 7d657b7, before the
#: fast paths existed) per bench, lossless+lossy, measured by interleaved
#: best-of-6 subprocess runs against the seed worktree.  Fixed trajectory
#: anchor — do not update when the code gets faster.
SEED_SECONDS = {"6a": 4.353, "6b": 1.036, "7a": 2.570, "7b": 1.088}
SEED_COMMIT = "7d657b7"


def _run_bench(version: str):
    """One timed unit: both Table 1 configurations of one version."""
    rows = (run_version(version, lossless=True), run_version(version, lossless=False))
    return [(row.decode_ms, row.idwt_ms) for row in rows]


def _values_in_mode(version: str, fast: bool):
    previous = set_default_fast(fast)
    try:
        return _run_bench(version)
    finally:
        set_default_fast(previous)


@pytest.fixture(scope="module")
def codestream_64():
    image = synthetic_image(64, 64, 3, seed=99)
    params = CodingParameters(
        width=64, height=64, num_components=3,
        tile_width=32, tile_height=32, num_levels=3, lossless=True,
    )
    return encode_image(image, params), image


def test_codec_decode_throughput(benchmark, codestream_64):
    data, image = codestream_64
    out = benchmark(lambda: decode_codestream(data))
    assert out == image


def test_codec_encode_throughput(benchmark):
    image = synthetic_image(64, 64, 3, seed=99)
    params = CodingParameters(
        width=64, height=64, num_components=3,
        tile_width=32, tile_height=32, num_levels=3, lossless=True,
    )
    data = benchmark(lambda: encode_image(image, params))
    assert len(data) > 0


def test_t1_block_decode_rate(benchmark):
    import random

    rng = random.Random(1)
    coeffs = [rng.randrange(-127, 128) if rng.random() < 0.5 else 0 for _ in range(1024)]
    result = CodeBlockEncoder(coeffs, 32, 32, "HL").encode()

    def decode():
        return CodeBlockDecoder(
            result.data, 32, 32, "HL", result.num_bitplanes, result.num_passes
        ).decode()

    assert benchmark(decode) == coeffs


def test_idwt_numpy_rate(benchmark):
    import numpy as np

    tile = np.random.default_rng(2).integers(-128, 128, (128, 128))
    subbands = forward(tile, "5/3", 3)
    out = benchmark(lambda: inverse(subbands))
    assert (out == tile).all()


def test_simulator_event_rate(benchmark):
    """Raw ping-pong event throughput of the DES kernel."""

    def run():
        sim = Simulator()
        ping, pong = Event(sim, "ping"), Event(sim, "pong")

        def left():
            for _ in range(2000):
                ping.notify(delta=True)
                yield pong

        def right():
            for _ in range(2000):
                yield ping
                pong.notify(delta=True)

        sim.spawn(left(), "l")
        sim.spawn(right(), "r")
        sim.run()
        return sim.delta_count

    deltas = benchmark(run)
    assert deltas >= 2000


def test_timed_event_wheel_rate(benchmark):
    def run():
        sim = Simulator()

        def body():
            for _ in range(5000):
                yield ns(1)

        sim.spawn(body(), "p")
        sim.run()
        return sim.now

    assert benchmark(run) == ns(5000)


# -- Table 1 VTA substrate benchmark ------------------------------------------


@pytest.mark.parametrize("version", ["3", "6b"])
def test_substrate_value_invariance_quick(version):
    """CI smoke: fast and reference substrates report identical values."""
    assert _values_in_mode(version, fast=True) == _values_in_mode(version, fast=False)


#: Child process body: one warm-up run, then time the lossless+lossy pair.
#: The seed anchor in ``SEED_SECONDS`` was measured with this exact
#: harness (fresh interpreter, warm-up, timed pair, best-of-N), so the
#: live numbers are directly comparable to it.
_CHILD_BENCH = """
import json, sys, time
from repro.casestudy.explorer import run_version
from repro.kernel import set_default_fast

version, fast = sys.argv[1], sys.argv[2] == "fast"
set_default_fast(fast)
run_version(version, lossless=True)  # warm-up
t0 = time.perf_counter()
rows = (run_version(version, lossless=True), run_version(version, lossless=False))
elapsed = time.perf_counter() - t0
print(json.dumps({
    "seconds": elapsed,
    "values": [[row.decode_ms, row.idwt_ms] for row in rows],
}))
"""


@pytest.mark.slow
def test_substrate_wallclock_vta_benches(profile_enabled):
    """Time the VTA benches under both substrates and write BENCH_sim.json.

    Asserts only value-invariance — wall clock is recorded, not asserted,
    because a loaded host must not fail the build.  The headline speedup
    is live fast wall clock against the recorded seed anchor.

    Each timed run happens in a fresh subprocess: an in-process loop lets
    heap growth from earlier runs (simulation garbage, allocator arenas)
    leak into later measurements, and the seed anchor was measured with
    the fresh-process harness — comparable numbers need the same one.
    """
    import json
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )

    def timed(version, mode):
        out = subprocess.run(
            [sys.executable, "-c", _CHILD_BENCH, version, mode],
            capture_output=True, text=True, env=env, check=True,
        )
        result = json.loads(out.stdout.strip().splitlines()[-1])
        return result["values"], result["seconds"]

    bench = SimulationBench(
        VTA_BENCHES, seed_baseline_seconds=SEED_SECONDS, seed_commit=SEED_COMMIT
    )
    # Interleaved best-of-N: one reference and one fast run per bench per
    # round, so a transient load spike on the host degrades both sides
    # instead of silently biasing one.
    ref_rounds, fast_rounds = 2, 4
    best = {v: {"reference": float("inf"), "fast": float("inf")} for v in VTA_BENCHES}
    values = {}
    for round_index in range(fast_rounds):
        for version in VTA_BENCHES:
            if round_index < ref_rounds:
                ref_values, elapsed = timed(version, "reference")
                best[version]["reference"] = min(best[version]["reference"], elapsed)
                if round_index == 0:
                    values[version] = ref_values
            fast_values, elapsed = timed(version, "fast")
            best[version]["fast"] = min(best[version]["fast"], elapsed)
            assert fast_values == values[version], (
                f"fast substrate changed reported values on bench {version}"
            )
    for version, timings in best.items():
        bench.record(version, "reference", timings["reference"])
        bench.record(version, "fast", timings["fast"])
    bench.values_identical = True
    if profile_enabled:
        # Separate in-process profiled runs (lossless, fast substrate):
        # profiling times every step, so it never contaminates the
        # wall-clock numbers recorded above.
        from repro.casestudy.explorer import ALL_VERSIONS
        from repro.casestudy.workload import paper_workload
        from repro.kernel.tracing import SimProfiler

        previous = set_default_fast(True)
        try:
            for version in VTA_BENCHES:
                model = ALL_VERSIONS[version](paper_workload(True))
                profiler = SimProfiler(model.sim)
                model.run()
                bench.record_profile(version, profiler.as_dict())
        finally:
            set_default_fast(previous)
    payload = bench.write(BENCH_FILE)
    print(f"\nwrote {BENCH_FILE}")
    for version, entry in payload["benches"].items():
        print(f"  {version}: {entry}")
    print(f"  total: {payload.get('total')}")
