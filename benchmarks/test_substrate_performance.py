"""Substrate micro-benchmarks: codec throughput and simulator event rate.

Not paper artefacts — these track the performance of the reproduction's
own machinery so regressions in the substrates are visible.
"""

import pytest

from repro.jpeg2000 import (
    CodingParameters,
    decode_codestream,
    encode_image,
    synthetic_image,
)
from repro.jpeg2000.dwt import forward, inverse
from repro.jpeg2000.t1 import CodeBlockDecoder, CodeBlockEncoder
from repro.kernel import Event, Simulator, ns


@pytest.fixture(scope="module")
def codestream_64():
    image = synthetic_image(64, 64, 3, seed=99)
    params = CodingParameters(
        width=64, height=64, num_components=3,
        tile_width=32, tile_height=32, num_levels=3, lossless=True,
    )
    return encode_image(image, params), image


def test_codec_decode_throughput(benchmark, codestream_64):
    data, image = codestream_64
    out = benchmark(lambda: decode_codestream(data))
    assert out == image


def test_codec_encode_throughput(benchmark):
    image = synthetic_image(64, 64, 3, seed=99)
    params = CodingParameters(
        width=64, height=64, num_components=3,
        tile_width=32, tile_height=32, num_levels=3, lossless=True,
    )
    data = benchmark(lambda: encode_image(image, params))
    assert len(data) > 0


def test_t1_block_decode_rate(benchmark):
    import random

    rng = random.Random(1)
    coeffs = [rng.randrange(-127, 128) if rng.random() < 0.5 else 0 for _ in range(1024)]
    result = CodeBlockEncoder(coeffs, 32, 32, "HL").encode()

    def decode():
        return CodeBlockDecoder(
            result.data, 32, 32, "HL", result.num_bitplanes, result.num_passes
        ).decode()

    assert benchmark(decode) == coeffs


def test_idwt_numpy_rate(benchmark):
    import numpy as np

    tile = np.random.default_rng(2).integers(-128, 128, (128, 128))
    subbands = forward(tile, "5/3", 3)
    out = benchmark(lambda: inverse(subbands))
    assert (out == tile).all()


def test_simulator_event_rate(benchmark):
    """Raw ping-pong event throughput of the DES kernel."""

    def run():
        sim = Simulator()
        ping, pong = Event(sim, "ping"), Event(sim, "pong")

        def left():
            for _ in range(2000):
                ping.notify(delta=True)
                yield pong

        def right():
            for _ in range(2000):
                yield ping
                pong.notify(delta=True)

        sim.spawn(left(), "l")
        sim.spawn(right(), "r")
        sim.run()
        return sim.delta_count

    deltas = benchmark(run)
    assert deltas >= 2000


def test_timed_event_wheel_rate(benchmark):
    def run():
        sim = Simulator()

        def body():
            for _ in range(5000):
                yield ns(1)

        sim.spawn(body(), "p")
        sim.run()
        return sim.now

    assert benchmark(run) == ns(5000)
