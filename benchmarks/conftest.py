"""Shared benchmark fixtures: the results directory and table output."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a reconstructed table and persist it under results/."""

    def _emit(table, stem):
        text = table.render()
        print("\n" + text)
        table.write(results_dir / f"{stem}.txt", results_dir / f"{stem}.csv")
        return text

    return _emit
