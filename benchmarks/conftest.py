"""Shared benchmark fixtures: the results directory and table output."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="attach per-process SimProfiler data to benchmark payloads "
        "(slower: profiled runs time every process step)",
    )


@pytest.fixture(scope="session")
def profile_enabled(request):
    return request.config.getoption("--profile")


def pytest_collection_modifyitems(config, items):
    """Skip ``slow``-marked benchmarks unless selected with ``-m slow``.

    The wall-clock decode benchmark takes minutes; tier-1 runs and plain
    ``pytest benchmarks`` stay quick by default.
    """
    markexpr = config.getoption("-m", default="") or ""
    if "slow" in markexpr:
        return
    skip_slow = pytest.mark.skip(reason="slow benchmark: select with -m slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def engine():
    """The shared experiment runner every benchmark goes through.

    Results come from the content-addressed cache when the matrix cell
    is unchanged; the per-test ``benchmark`` timings measure raw
    (uncached) request execution instead, so the recorded numbers stay
    meaningful on a warm cache.
    """
    from repro.experiments import ResultCache, Runner

    return Runner(cache=ResultCache())


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a reconstructed table and persist it under results/."""

    def _emit(table, stem):
        text = table.render()
        print("\n" + text)
        table.write(results_dir / f"{stem}.txt", results_dir / f"{stem}.csv")
        return text

    return _emit
