"""Section 4's code-size comparison.

The paper counts: handcrafted reference VHDL 404/948 lines, synthesisable
SystemC 356/903 lines, FOSSY-generated VHDL 2231/4225 lines (IDWT53/97).
We regenerate all six artefacts and print paper vs measured; the shape
claims are the ratios (FOSSY output several times larger than handcrafted,
the 9/7 model roughly 2.3x the 5/3 model).
"""

import pytest

from repro.fossy import build_idwt53, build_idwt97, synthesise_block
from repro.reporting import Table

PAPER_LOC = {
    # (reference VHDL, SystemC model, FOSSY VHDL)
    "idwt53": (404, 356, 2231),
    "idwt97": (948, 903, 4225),
}


@pytest.fixture(scope="module")
def results():
    return {
        "idwt53": synthesise_block(build_idwt53()),
        "idwt97": synthesise_block(build_idwt97()),
    }


def test_loc_comparison(benchmark, results, emit):
    benchmark.pedantic(
        lambda: synthesise_block(build_idwt97()).fossy_loc, iterations=1, rounds=1
    )
    table = Table(
        ["artefact", "paper [LoC]", "measured [LoC / statements]"],
        title="Section 4 - code size comparison (IDWT implementations)",
    )
    for name in ("idwt53", "idwt97"):
        ref_paper, model_paper, fossy_paper = PAPER_LOC[name]
        block = results[name]
        table.add_row(f"{name} reference VHDL", ref_paper, block.reference_loc)
        table.add_row(f"{name} behavioural model", model_paper, block.model_statements)
        table.add_row(f"{name} FOSSY VHDL", fossy_paper, block.fossy_loc)
    emit(table, "loc_comparison")

    b53, b97 = results["idwt53"], results["idwt97"]
    # Shape: generated code is several times the handcrafted size ...
    assert b53.loc_ratio > 2.0
    assert b97.loc_ratio > 2.0
    # ... and the 9/7 artefacts are consistently larger than the 5/3 ones
    # (paper ratio ~2.3x on every row).
    assert b97.reference_loc > 1.2 * b53.reference_loc
    assert b97.fossy_loc > 1.2 * b53.fossy_loc
    assert b97.model_statements > 1.2 * b53.model_statements


def test_state_count_drives_generated_size(benchmark, results, emit):
    """The FOSSY LoC scales with the inlined state machine, as the paper's
    'all functions and procedures have been inlined into a single explicit
    state machine' implies."""
    benchmark.pedantic(lambda: results["idwt53"].num_states, iterations=1, rounds=1)
    table = Table(
        ["block", "FSM states", "FOSSY LoC", "LoC per state"],
        title="Generated-code size vs state-machine size",
    )
    for name, block in results.items():
        table.add_row(
            name, block.num_states, block.fossy_loc, block.fossy_loc / block.num_states
        )
    emit(table, "loc_states")
    ratio53 = results["idwt53"].fossy_loc / results["idwt53"].num_states
    ratio97 = results["idwt97"].fossy_loc / results["idwt97"].num_states
    assert ratio53 == pytest.approx(ratio97, rel=0.25)
