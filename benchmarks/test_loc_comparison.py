"""Section 4's code-size comparison.

Thin assertion layer over the ``loc`` registry entry (which shares its
synthesis runs with ``table2`` — the engine deduplicates the cells).
The shape claims are the ratios: FOSSY output several times larger than
handcrafted, the 9/7 model roughly 2.3x the 5/3 model.
"""

import pytest

from repro.experiments import execute_request, registry


@pytest.fixture(scope="module")
def outcome(engine):
    return engine.run_experiment("loc")


def test_loc_comparison(benchmark, outcome, emit):
    idwt97_request = registry.get("loc").requests()[1]
    benchmark.pedantic(
        lambda: execute_request(idwt97_request)["fossy_loc"], iterations=1, rounds=1
    )
    emit(outcome.tables()["loc_comparison"], "loc_comparison")

    payloads = outcome.payloads
    b53, b97 = payloads["synth:idwt53"], payloads["synth:idwt97"]
    # Shape: generated code is several times the handcrafted size ...
    assert b53["loc_ratio"] > 2.0
    assert b97["loc_ratio"] > 2.0
    # ... and the 9/7 artefacts are consistently larger than the 5/3 ones
    # (paper ratio ~2.3x on every row).
    assert b97["reference_loc"] > 1.2 * b53["reference_loc"]
    assert b97["fossy_loc"] > 1.2 * b53["fossy_loc"]
    assert b97["model_statements"] > 1.2 * b53["model_statements"]


def test_state_count_drives_generated_size(benchmark, outcome, emit):
    """The FOSSY LoC scales with the inlined state machine, as the paper's
    'all functions and procedures have been inlined into a single explicit
    state machine' implies."""
    payloads = outcome.payloads
    benchmark.pedantic(
        lambda: payloads["synth:idwt53"]["num_states"], iterations=1, rounds=1
    )
    emit(outcome.tables()["loc_states"], "loc_states")
    ratio53 = (
        payloads["synth:idwt53"]["fossy_loc"] / payloads["synth:idwt53"]["num_states"]
    )
    ratio97 = (
        payloads["synth:idwt97"]["fossy_loc"] / payloads["synth:idwt97"]["num_states"]
    )
    assert ratio53 == pytest.approx(ratio97, rel=0.25)
