"""Wall-clock benchmark of the entropy-decode hot path (16-tile workload).

The paper's bottleneck stage, measured for real: the paper workload
(512x512 RGB in 128x128 tiles, Table 1's "16 tiles with 3 components")
is decoded three ways —

* ``reference-sequential`` — the readable ``t1``/``mq`` specification
  kernel, one block after another (the seed decode path);
* ``fast-sequential`` — the optimised ``t1_fast`` kernel, still one
  process;
* ``parallel-4`` — the optimised kernel on a 4-worker process pool.

All three must produce byte-identical images and identical op counts.
The timings and speedups are persisted to ``BENCH_decode.json`` at the
repository root as the performance trajectory anchor for future PRs.

Run with ``python -m pytest benchmarks/test_wallclock_decode.py -m slow``;
it is skipped by default because the three decodes take minutes.
"""

import pathlib

import numpy as np
import pytest

from repro.jpeg2000 import (
    CodingParameters,
    DecodeOptions,
    Jpeg2000Decoder,
    KERNEL_REFERENCE,
    encode_image,
    shutdown_pool,
    synthetic_image,
)
from repro.reporting import DecodeBench, Table, time_call

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_decode.json"

#: Paper workload geometry (Table 1): 512x512 RGB in 128x128 tiles.
SIZE = 512
TILE = 128

#: Seed decoder wall clock on this workload, measured at commit 4d1e732
#: (before the fast kernel / parallel path existed).  Fixed trajectory
#: anchor — do not update when the code gets faster.
SEED_SECONDS = {"lossless": 17.906, "lossy": 15.487}

#: The decode schedules under comparison.
MODES = {
    "reference-sequential": DecodeOptions(kernel=KERNEL_REFERENCE),
    "fast-sequential": DecodeOptions(),
    "parallel-4": DecodeOptions(workers=4, chunk_size=8),
}


def _codestream(lossless: bool) -> bytes:
    image = synthetic_image(SIZE, SIZE, 3, seed=2008)
    params = CodingParameters(
        width=SIZE,
        height=SIZE,
        num_components=3,
        tile_width=TILE,
        tile_height=TILE,
        num_levels=3,
        lossless=lossless,
        base_step=1 / 8,
    )
    return encode_image(image, params)


@pytest.mark.slow
def test_wallclock_16_tile_decode(emit):
    bench = DecodeBench(
        workload={
            "image": f"{SIZE}x{SIZE} RGB synthetic (seed 2008)",
            "tiles": (SIZE // TILE) ** 2,
            "tile_size": TILE,
            "num_levels": 3,
        },
        baseline="reference-sequential",
        seed_baseline_seconds=SEED_SECONDS,
    )
    table = Table(
        ["mode", "schedule", "seconds", "speedup vs reference", "speedup vs seed"],
        title="Entropy-decode wall clock - 16-tile workload",
    )
    for mode_name, lossless in (("lossless", True), ("lossy", False)):
        codestream = _codestream(lossless)
        images = {}
        ops = {}
        for schedule, options in MODES.items():
            decoder = Jpeg2000Decoder(codestream, options=options)
            seconds, image = time_call(decoder.decode)
            bench.record(mode_name, schedule, seconds)
            images[schedule] = image
            ops[schedule] = decoder.ops.counts
        # Parallel output must be byte-identical to sequential, and the
        # modelled op counts must not depend on kernel or scheduling.
        reference_image = images["reference-sequential"]
        for schedule, image in images.items():
            assert len(image.components) == len(reference_image.components)
            for ours, theirs in zip(image.components, reference_image.components):
                assert ours.dtype == theirs.dtype
                assert np.array_equal(ours, theirs), f"{mode_name}/{schedule} differs"
            assert ops[schedule] == ops["reference-sequential"]
        timings = bench.modes[mode_name]
        speedups = bench.speedups(mode_name)
        for schedule in MODES:
            table.add_row(
                mode_name,
                schedule,
                round(timings[schedule], 3),
                speedups.get(schedule, 1.0),
                round(SEED_SECONDS[mode_name] / timings[schedule], 2),
            )
        table.add_separator()
    emit(table, "wallclock_decode")
    payload = bench.write(BENCH_FILE, byte_identical=True)
    shutdown_pool()

    # Acceptance gates of the perf PR that introduced this benchmark:
    # the optimised kernel alone buys >= 1.3x, the parallel path >= 2.0x
    # against the seed sequential decode.
    for mode_name in ("lossless", "lossy"):
        entry = payload["modes"][mode_name]
        assert entry["speedup_vs_seed"]["fast-sequential"] >= 1.3
        assert entry["speedup_vs_seed"]["parallel-4"] >= 2.0
    assert BENCH_FILE.exists()
