"""Wall-clock benchmark of the entropy-decode hot path (16-tile workload).

The paper's bottleneck stage, measured for real: the paper workload
(512x512 RGB in 128x128 tiles, Table 1's "16 tiles with 3 components")
is decoded five ways —

* ``reference-sequential`` — the readable ``t1``/``mq`` specification
  kernel, one block after another (the seed decode path);
* ``fast-sequential`` — the optimised ``t1_fast`` kernel, still one
  process, one block at a time;
* ``batched-sequential`` — the chunk-at-a-time ``t1_fast`` entry point
  (one set of closures and scratch buffers for the whole workload);
* ``parallel-shm-4`` — 4 workers over the zero-copy shared-memory
  arenas with size-aware code-block scheduling;
* ``parallel-pickle-4`` — 4 workers over the legacy pickle transport
  (the IPC-tax baseline the shared-memory path exists to beat).

All modes must produce byte-identical images and identical op counts.
Each timed decode runs in a **fresh subprocess** (interleaved rounds,
best-of-N), because in-process back-to-back decodes let heap growth and
allocator state from earlier runs leak into later measurements.  The
timings, speedups, and each variant's scheduling metadata (requested vs
effective workers, granularity, degraded flag) are persisted to
``BENCH_decode.json`` at the repository root as the performance
trajectory for future PRs — on a 1-CPU host the "parallel" rows are
honestly recorded as degraded sequential runs instead of silently
passing for parallel numbers.

Run with ``python -m pytest benchmarks/test_wallclock_decode.py -m slow``;
it is skipped by default because the decodes take minutes.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile

import pytest

from repro.jpeg2000 import (
    CodingParameters,
    encode_image,
    synthetic_image,
)
from repro.reporting import DecodeBench, Table
from repro.tools.sentinel import DEFAULT_TOLERANCE

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_decode.json"

#: Paper workload geometry (Table 1): 512x512 RGB in 128x128 tiles.
SIZE = 512
TILE = 128

#: Seed decoder wall clock on this workload, measured at commit 4d1e732
#: (before the fast kernel / parallel path existed).  Fixed trajectory
#: anchor — do not update when the code gets faster.
SEED_SECONDS = {"lossless": 17.906, "lossy": 15.487}

#: The decode schedules under comparison, as DecodeOptions kwargs
#: (kwargs, not objects, so they serialise into the child process).
#: The reference row pins the whole specification path — bit-by-bit
#: Tier-2 reader included — so the fast rows are measured against the
#: readable decoder, not a half-optimised hybrid.
MODES = {
    "reference-sequential": {"kernel": "reference", "tier2": "reference"},
    "fast-sequential": {},
    "batched-sequential": {"kernel": "batched"},
    "parallel-shm-4": {"workers": 4, "chunk_size": 8},
    "parallel-pickle-4": {"workers": 4, "chunk_size": 8, "shared_memory": False},
}

#: Batched-sequential wall clock recorded by the Amdahl-cleanup PR's
#: predecessor (schema v2 ``BENCH_decode.json``) — the Amdahl gate
#: anchors against it: lossless (the Tier-1-dominated workload that
#: tentpole targeted) improved >= 1.3x, lossy (proportionally more
#: fixed overhead) >= 1.25x.  The Amdahl PR's own measurements landed
#: ~1% inside those lines, and per-run spread on a shared host is an
#: order of magnitude wider than that — interleaved same-code runs
#: swing +/-13% — so the gate is applied with the sentinel's noise
#: band (``DEFAULT_TOLERANCE``) on top of the recorded win.  A real
#: slowdown (the sentinel's canonical 2x self-test case) still fails
#: loudly; a quiet-vs-busy host no longer flakes the suite.
PREV_BATCHED_SECONDS = {"lossless": 3.6781, "lossy": 2.789}
PREV_GATE = {"lossless": 1.3, "lossy": 1.25}

#: Interleaved timing rounds per variant (best-of).  The reference
#: kernel is ~2x slower per decode, so it gets fewer rounds.
ROUNDS = {"reference-sequential": 2}
DEFAULT_ROUNDS = 3

#: Child process body: decode the codestream file once under the given
#: options, print seconds + image digests + op counts + schedule facts.
#: The SEED_SECONDS anchor predates this harness but was also measured
#: on a fresh interpreter (one decode per process), so best-of-N fresh
#: subprocess numbers are directly comparable to it.
_CHILD_BENCH = """
import hashlib, json, pathlib, sys, time, warnings
from repro.jpeg2000 import DecodeOptions, Jpeg2000Decoder, shutdown_pool
from repro import telemetry
from repro.telemetry.export import stage_shares

codestream = pathlib.Path(sys.argv[1]).read_bytes()
options = DecodeOptions(**json.loads(sys.argv[2]))
# "stages" runs are instrumented (telemetry recorder active) and exist
# only to harvest the per-stage decomposition; their wall clock is
# discarded so the timed runs keep the exact uninstrumented protocol.
profile = len(sys.argv) > 3 and sys.argv[3] == "stages"
recorder = telemetry.install() if profile else None
with warnings.catch_warnings():
    warnings.simplefilter("ignore")  # degradation is reported via schedule_info
    decoder = Jpeg2000Decoder(codestream, options=options)
    t0 = time.perf_counter()
    image = decoder.decode()
    elapsed = time.perf_counter() - t0
    shutdown_pool()
digests = [
    hashlib.sha256(
        repr((c.dtype.str, c.shape)).encode() + c.tobytes()
    ).hexdigest()
    for c in image.components
]
payload = {
    "seconds": elapsed,
    "digests": digests,
    "ops": {k: int(v) for k, v in decoder.ops.counts.items()},
    "schedule": options.schedule_info(),
    "plan": {"digest": decoder.plan.digest(), **decoder.plan.as_dict()},
}
if recorder is not None:
    payload["stage_shares"] = stage_shares(recorder)
print(json.dumps(payload))
"""


def _codestream(lossless: bool) -> bytes:
    image = synthetic_image(SIZE, SIZE, 3, seed=2008)
    params = CodingParameters(
        width=SIZE,
        height=SIZE,
        num_components=3,
        tile_width=TILE,
        tile_height=TILE,
        num_levels=3,
        lossless=lossless,
        base_step=1 / 8,
    )
    return encode_image(image, params)


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _timed_decode(codestream_path: str, options_kwargs: dict, env: dict,
                  stages: bool = False) -> dict:
    argv = [sys.executable, "-c", _CHILD_BENCH, codestream_path,
            json.dumps(options_kwargs)]
    if stages:
        argv.append("stages")
    out = subprocess.run(
        argv, capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.mark.slow
def test_wallclock_16_tile_decode(emit):
    bench = DecodeBench(
        workload={
            "image": f"{SIZE}x{SIZE} RGB synthetic (seed 2008)",
            "tiles": (SIZE // TILE) ** 2,
            "tile_size": TILE,
            "num_levels": 3,
            "protocol": "fresh subprocess per decode, interleaved best-of-N",
        },
        baseline="reference-sequential",
        seed_baseline_seconds=SEED_SECONDS,
    )
    table = Table(
        ["mode", "schedule", "seconds", "speedup vs reference", "speedup vs seed"],
        title="Entropy-decode wall clock - 16-tile workload",
    )
    env = _child_env()
    max_rounds = max(DEFAULT_ROUNDS, *ROUNDS.values())
    for mode_name, lossless in (("lossless", True), ("lossy", False)):
        codestream = _codestream(lossless)
        with tempfile.NamedTemporaryFile(suffix=".j2c", delete=False) as handle:
            handle.write(codestream)
            codestream_path = handle.name
        try:
            best = {schedule: float("inf") for schedule in MODES}
            digests = {}
            ops = {}
            # Interleaved rounds: one run of every variant per round, so
            # a transient load spike on the host degrades all variants
            # instead of silently biasing one.
            for round_index in range(max_rounds):
                for schedule, options_kwargs in MODES.items():
                    if round_index >= ROUNDS.get(schedule, DEFAULT_ROUNDS):
                        continue
                    result = _timed_decode(codestream_path, options_kwargs, env)
                    best[schedule] = min(best[schedule], result["seconds"])
                    if round_index == 0:
                        digests[schedule] = result["digests"]
                        ops[schedule] = result["ops"]
                        bench.record_schedule(schedule, result["schedule"])
                        bench.record_plan(schedule, result["plan"])
            # One extra instrumented decode per variant harvests the
            # stage decomposition (timing discarded — see _CHILD_BENCH).
            for schedule, options_kwargs in MODES.items():
                profiled = _timed_decode(
                    codestream_path, options_kwargs, env, stages=True
                )
                bench.record_stages(
                    mode_name, schedule, profiled.get("stage_shares", {})
                )
        finally:
            os.unlink(codestream_path)
        for schedule, seconds in best.items():
            bench.record(mode_name, schedule, seconds)
        # Every transport and kernel must be byte-identical to the
        # reference, and the modelled op counts must not depend on
        # kernel or scheduling.
        for schedule in MODES:
            assert digests[schedule] == digests["reference-sequential"], (
                f"{mode_name}/{schedule} image differs from reference"
            )
            assert ops[schedule] == ops["reference-sequential"], (
                f"{mode_name}/{schedule} op counts differ from reference"
            )
        timings = bench.modes[mode_name]
        speedups = bench.speedups(mode_name)
        for schedule in MODES:
            table.add_row(
                mode_name,
                bench.label(schedule),
                round(timings[schedule], 3),
                speedups.get(schedule, 1.0),
                round(SEED_SECONDS[mode_name] / timings[schedule], 2),
            )
        table.add_separator()
    emit(table, "wallclock_decode")
    payload = bench.write(BENCH_FILE, byte_identical=True, op_counts_identical=True)

    # Acceptance gates: the optimised kernel alone buys >= 1.3x against
    # the seed sequential decode, the batched kernel does not lose to
    # per-block fast and holds the Amdahl-cleanup win over its
    # predecessor within the sentinel noise band.  Speedup gates on degraded
    # schedules are skipped — the row is recorded and flagged, because a
    # clamped 1-worker "parallel" run proves nothing either way.
    for mode_name in ("lossless", "lossy"):
        entry = payload["modes"][mode_name]
        assert entry["speedup_vs_seed"]["fast-sequential"] >= 1.3
        assert entry["speedup_vs_seed"]["batched-sequential"] >= 1.3
        seconds = entry["seconds"]
        assert seconds["batched-sequential"] <= seconds["fast-sequential"], (
            "batched kernel must not lose to per-block fast kernel"
        )
        assert (
            seconds["batched-sequential"]
            <= PREV_BATCHED_SECONDS[mode_name] / PREV_GATE[mode_name]
            * (1.0 + DEFAULT_TOLERANCE)
        ), (
            f"batched-sequential lost the recorded "
            f"{PREV_GATE[mode_name]}x Amdahl win beyond the sentinel "
            f"noise band"
        )
        shares = entry["stage_shares"]["batched-sequential"]
        assert shares, "instrumented decode produced no stage spans"
        assert set(shares) <= {
            "t2_parse", "t1_decode", "idwt", "dequant_mct", "gather",
        }
        if not bench.degraded("parallel-shm-4"):
            assert entry["speedup_vs_seed"]["parallel-shm-4"] >= 2.0
            if (os.cpu_count() or 1) >= 4:
                assert (
                    seconds["fast-sequential"] / seconds["parallel-shm-4"]
                    >= 1.5
                ), "shared-memory parallel decode under 1.5x on a multi-core host"
    assert payload["schedules"]["parallel-shm-4"]["granularity"] in (
        "codeblock/size-aware", "codeblock/sequential",
    )
    # Every recorded row is labelled by the compiled plan that ran it.
    for schedule in MODES:
        plan_record = payload["plans"][schedule]
        assert len(plan_record["digest"]) == 64
        assert [s["stage"] for s in plan_record["stages"]] == [
            "parse", "entropy", "reconstruct", "assemble",
        ]
    assert BENCH_FILE.exists()
