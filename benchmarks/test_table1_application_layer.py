"""Table 1, rows 1-5 — Application Layer simulation results.

Thin assertion layer over the experiment engine: the registry entry
``table1_application_layer`` owns the request matrix and the table
rendering; this module checks the paper's prose relations on the same
payloads and re-emits the artifact.  The ``benchmark`` timings measure
raw (uncached) request execution.
"""

import pytest

from repro.experiments import KIND_SIMULATE, RunRequest, execute_request, registry


@pytest.fixture(scope="module")
def outcome(engine):
    return engine.run_experiment("table1_application_layer")


def test_table1_application_layer(benchmark, outcome, emit):
    def run_all_lossless():
        return [
            execute_request(request)
            for request in registry.get("table1_application_layer").requests()
            if request.params["lossless"]
        ]

    benchmark.pedantic(run_all_lossless, iterations=1, rounds=1)
    for stem, table in outcome.tables().items():
        emit(table, stem)

    # The paper's prose checks, asserted on the same data we printed.
    payloads = outcome.payloads
    base = {mode: payloads[f"sim:1:{mode}"]["decode_ms"] for mode in ("lossless", "lossy")}
    assert base["lossless"] / payloads["sim:2:lossless"]["decode_ms"] == pytest.approx(1.10, abs=0.03)
    assert base["lossy"] / payloads["sim:2:lossy"]["decode_ms"] == pytest.approx(1.19, abs=0.03)
    assert base["lossless"] / payloads["sim:4:lossless"]["decode_ms"] == pytest.approx(4.5, abs=0.3)
    assert base["lossy"] / payloads["sim:4:lossy"]["decode_ms"] == pytest.approx(5.0, abs=0.4)


def test_version1_simulation_speed(benchmark):
    """How fast the simulator runs the heaviest sequential model."""
    request = RunRequest("sim:1:lossy", KIND_SIMULATE,
                         {"version": "1", "lossless": False})
    payload = benchmark(lambda: execute_request(request))
    assert payload["decode_ms"] == pytest.approx(3664.1, abs=1.0)


def test_version5_simulation_speed(benchmark):
    """The busiest application-layer model (7 SO clients, 4 tasks)."""
    request = RunRequest("sim:5:lossy", KIND_SIMULATE,
                         {"version": "5", "lossless": False})
    payload = benchmark.pedantic(
        lambda: execute_request(request), iterations=1, rounds=3
    )
    assert payload["details"]["idwt_jobs"] == 48
