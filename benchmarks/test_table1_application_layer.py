"""Table 1, rows 1-5 — Application Layer simulation results.

Runs every application-layer model on the paper workload (16 tiles, 3
components, 100 MHz) in both modes and prints the reconstructed upper half
of Table 1, including the speed-up column the paper quotes in prose.
"""

import pytest

from repro.casestudy import APPLICATION_VERSIONS, ROW_LABELS, paper_workload, run_version
from repro.reporting import Table


@pytest.fixture(scope="module")
def reports():
    out = {}
    for lossless in (True, False):
        workload = paper_workload(lossless)
        for name in APPLICATION_VERSIONS:
            out[(name, lossless)] = run_version(name, lossless, workload)
    return out


def test_table1_application_layer(benchmark, reports, emit):
    def run_all_lossless():
        workload = paper_workload(True)
        return [run_version(name, True, workload) for name in APPLICATION_VERSIONS]

    benchmark.pedantic(run_all_lossless, iterations=1, rounds=1)
    table = Table(
        [
            "version", "model",
            "decode lossless [ms]", "decode lossy [ms]",
            "IDWT lossless [ms]", "IDWT lossy [ms]",
            "speedup lossless", "speedup lossy",
        ],
        title="Table 1 (upper half) - Application Layer simulation results, "
        "16 tiles x 3 components @ 100 MHz",
    )
    base = {
        mode: reports[("1", mode)].decode_ms for mode in (True, False)
    }
    for name in APPLICATION_VERSIONS:
        row_ll = reports[(name, True)]
        row_ly = reports[(name, False)]
        table.add_row(
            name,
            ROW_LABELS[name],
            row_ll.decode_ms,
            row_ly.decode_ms,
            row_ll.idwt_ms,
            row_ly.idwt_ms,
            base[True] / row_ll.decode_ms,
            base[False] / row_ly.decode_ms,
        )
    emit(table, "table1_application_layer")

    # The paper's prose checks, asserted on the same data we printed.
    assert base[True] / reports[("2", True)].decode_ms == pytest.approx(1.10, abs=0.03)
    assert base[False] / reports[("2", False)].decode_ms == pytest.approx(1.19, abs=0.03)
    assert base[True] / reports[("4", True)].decode_ms == pytest.approx(4.5, abs=0.3)
    assert base[False] / reports[("4", False)].decode_ms == pytest.approx(5.0, abs=0.4)


def test_version1_simulation_speed(benchmark):
    """How fast the simulator runs the heaviest sequential model."""
    workload = paper_workload(False)
    report = benchmark(lambda: run_version("1", False, workload))
    assert report.decode_ms == pytest.approx(3664.1, abs=1.0)


def test_version5_simulation_speed(benchmark):
    """The busiest application-layer model (7 SO clients, 4 tasks)."""
    workload = paper_workload(False)
    report = benchmark.pedantic(
        lambda: run_version("5", False, workload), iterations=1, rounds=3
    )
    assert report.details["idwt_jobs"] == 48
