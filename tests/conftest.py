"""Repository-wide test fixtures.

The run ledger appends to ``.repro/ledger.jsonl`` under the current
directory by default; tests must never write provenance records into
the developer's working tree, so every test gets a throwaway ledger
path (tests that want to *read* what their command appended read the
same path back via the environment).
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path_factory, monkeypatch):
    # A directory of its own, NOT the test's tmp_path: tests assert
    # things about their tmp_path's contents and must not find our
    # ledger there.
    base = tmp_path_factory.mktemp("observability")
    monkeypatch.setenv("REPRO_LEDGER_PATH", str(base / "ledger.jsonl"))
    monkeypatch.setenv("REPRO_CRASH_DIR", str(base / "crash"))
