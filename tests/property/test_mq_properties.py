"""Property-based tests of the MQ coder (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.jpeg2000.mq import ContextState, MqDecoder, MqEncoder, make_contexts


@st.composite
def decision_streams(draw):
    """A random (bits, context ids) pair over a random context bank size."""
    num_contexts = draw(st.integers(min_value=1, max_value=19))
    length = draw(st.integers(min_value=0, max_value=600))
    bits = draw(st.lists(st.integers(0, 1), min_size=length, max_size=length))
    contexts = draw(
        st.lists(st.integers(0, num_contexts - 1), min_size=length, max_size=length)
    )
    return num_contexts, bits, contexts


@given(decision_streams())
@settings(max_examples=200, deadline=None)
def test_roundtrip_is_identity(stream):
    num_contexts, bits, context_ids = stream
    encoder = MqEncoder()
    enc_bank = make_contexts(num_contexts)
    for bit, ctx in zip(bits, context_ids):
        encoder.encode(bit, enc_bank[ctx])
    data = encoder.flush()
    decoder = MqDecoder(data)
    dec_bank = make_contexts(num_contexts)
    decoded = [decoder.decode(dec_bank[ctx]) for ctx in context_ids]
    assert decoded == bits


@given(decision_streams())
@settings(max_examples=100, deadline=None)
def test_context_states_converge_identically(stream):
    """Encoder and decoder context adaptation must track exactly."""
    num_contexts, bits, context_ids = stream
    encoder = MqEncoder()
    enc_bank = make_contexts(num_contexts)
    for bit, ctx in zip(bits, context_ids):
        encoder.encode(bit, enc_bank[ctx])
    decoder = MqDecoder(encoder.flush())
    dec_bank = make_contexts(num_contexts)
    for ctx in context_ids:
        decoder.decode(dec_bank[ctx])
    for enc_ctx, dec_ctx in zip(enc_bank, dec_bank):
        assert (enc_ctx.index, enc_ctx.mps) == (dec_ctx.index, dec_ctx.mps)


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=100, max_value=2000),
    st.randoms(use_true_random=False),
)
@settings(max_examples=50, deadline=None)
def test_skewed_streams_never_expand_catastrophically(p_one, length, rng):
    bits = [1 if rng.random() < p_one else 0 for _ in range(length)]
    encoder = MqEncoder()
    ctx = ContextState()
    for bit in bits:
        encoder.encode(bit, ctx)
    data = encoder.flush()
    # The MQ coder's worst-case expansion is tightly bounded.
    assert len(data) <= length // 4 + 16


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=100, deadline=None)
def test_decoder_total_on_arbitrary_data(data):
    """Decoding garbage never crashes and always yields bits."""
    decoder = MqDecoder(data)
    ctx = ContextState()
    for _ in range(256):
        assert decoder.decode(ctx) in (0, 1)
