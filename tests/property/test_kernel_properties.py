"""Property-based tests of kernel invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import Fcfs, Request, RoundRobin, StaticPriority
from repro.core.serialisation import payload_bits, serialise_call
from repro.kernel import Signal, SimTime, Simulator, Timeout


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_time_advances_monotonically(delays):
    """Observed simulation time never decreases, whatever the schedule."""
    sim = Simulator()
    observed = []

    def make(delay_fs):
        def body():
            yield SimTime.from_fs(delay_fs)
            observed.append(sim.now.femtoseconds)
            yield SimTime.from_fs(delay_fs // 2 + 1)
            observed.append(sim.now.femtoseconds)

        return body

    for index, delay in enumerate(delays):
        sim.spawn(make(delay)(), f"p{index}")
    # Interleaved observation order must still be globally sorted in time:
    # each append happens at sim.now, and the scheduler only moves forward.
    sim.run()
    assert observed == sorted(observed)


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_events_fire_in_notification_order(offsets):
    sim = Simulator()
    fired = []

    def waiter(event, offset):
        def body():
            yield event
            fired.append((sim.now.femtoseconds, offset))

        return body

    for index, offset in enumerate(offsets):
        event = sim.event(f"e{index}")
        sim.spawn(waiter(event, offset)(), f"w{index}")
        event.notify(SimTime.from_fs(offset))
    sim.run()
    assert [time for time, _ in fired] == sorted(offset for offset in offsets)


@st.composite
def request_sets(draw):
    count = draw(st.integers(1, 10))
    return [
        Request(
            client_id=draw(st.integers(0, 15)),
            priority=draw(st.integers(0, 7)),
            arrival_fs=draw(st.integers(0, 1000)),
            seq=index,
        )
        for index in range(count)
    ]


@given(request_sets(), st.one_of(st.none(), st.integers(0, 15)))
@settings(max_examples=150, deadline=None)
def test_policies_always_select_a_member(requests, last):
    for policy in (RoundRobin(), StaticPriority(), Fcfs()):
        chosen = policy.select(requests, last)
        assert chosen in requests


@given(request_sets())
@settings(max_examples=100, deadline=None)
def test_static_priority_is_optimal(requests):
    chosen = StaticPriority().select(requests, None)
    assert chosen.priority == min(r.priority for r in requests)


@given(request_sets())
@settings(max_examples=100, deadline=None)
def test_fcfs_picks_earliest(requests):
    chosen = Fcfs().select(requests, None)
    assert chosen.arrival_fs == min(r.arrival_fs for r in requests)


_payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**31), 2**31 - 1),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.lists(children, max_size=4) | st.tuples(children, children),
    max_leaves=10,
)


@given(_payloads)
@settings(max_examples=150, deadline=None)
def test_payload_bits_total_and_non_negative(payload):
    assert payload_bits(payload) >= 0


@given(st.lists(st.integers(-100, 100), max_size=6), st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_serialise_call_word_count_consistent(args, word_bits):
    payload = serialise_call(tuple(args), {}, word_bits)
    assert payload.words * word_bits >= payload.bits
    assert (payload.words - 1) * word_bits < payload.bits or payload.words == 0


# -- fast substrate vs reference scheduler -------------------------------------
#
# The fast scheduler (timed-heap wakes without throwaway events, lazy
# notification, batched clock edges) must be *observably identical* to the
# reference scheduler.  Random programs over processes, events, signals and
# timeouts are executed under both and every observable — the full wake
# trace (which process ran which step at which time, in which order), every
# signal value observed mid-run, the final signal values, and the final
# simulation time — must agree.

_EVENTS, _SIGNALS = 4, 3

_kernel_ops = st.one_of(
    st.tuples(st.just("wait"), st.integers(0, 50)),
    st.tuples(st.just("wait_event"), st.integers(0, _EVENTS - 1)),
    st.tuples(
        st.just("timeout"),
        st.integers(0, _EVENTS - 1),
        st.integers(0, 50),
    ),
    st.tuples(st.just("notify_delta"), st.integers(0, _EVENTS - 1)),
    st.tuples(
        st.just("notify_timed"),
        st.integers(0, _EVENTS - 1),
        st.integers(0, 50),
    ),
    st.tuples(
        st.just("write"),
        st.integers(0, _SIGNALS - 1),
        st.integers(0, 9),
    ),
    st.tuples(st.just("observe"), st.integers(0, _SIGNALS - 1)),
)

_kernel_programs = st.lists(
    st.lists(_kernel_ops, min_size=1, max_size=6), min_size=1, max_size=5
)


def _execute_program(programs, fast: bool):
    sim = Simulator(fast=fast)
    events = [sim.event(f"e{index}") for index in range(_EVENTS)]
    signals = [Signal(sim, 0, f"s{index}") for index in range(_SIGNALS)]
    trace = []

    def make(pid, ops):
        def body():
            for step, op in enumerate(ops):
                kind = op[0]
                if kind == "wait":
                    yield SimTime.from_fs(op[1])
                elif kind == "wait_event":
                    yield events[op[1]]
                elif kind == "timeout":
                    yield Timeout(events[op[1]], SimTime.from_fs(op[2]))
                elif kind == "notify_delta":
                    events[op[1]].notify(delta=True)
                elif kind == "notify_timed":
                    events[op[1]].notify(SimTime.from_fs(op[2]))
                elif kind == "write":
                    signals[op[1]].write(op[2])
                else:
                    trace.append(("obs", pid, step, op[1], signals[op[1]].read()))
                trace.append((pid, step, sim.now.femtoseconds))

        return body

    for pid, ops in enumerate(programs):
        sim.spawn(make(pid, ops)(), f"p{pid}")
    final = sim.run()
    return trace, [signal.read() for signal in signals], final.femtoseconds


@given(_kernel_programs)
@settings(max_examples=120, deadline=None)
def test_fast_substrate_matches_reference_scheduler(programs):
    assert _execute_program(programs, fast=True) == _execute_program(
        programs, fast=False
    )
