"""Differential property tests for the fast Tier-2 / reconstruction paths.

The optimised word-at-a-time :class:`FastBitReader`, the array-backed
:class:`FlatTagTree`, and the batched inverse DWT are all required to be
*observationally identical* to their readable reference counterparts —
same bits, same positions, same exception timing, same samples.  These
tests drive reference and fast implementations in lockstep over random
(and adversarially 0xFF-stuffed) inputs and assert they never diverge.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.jpeg2000 import dwt
from repro.jpeg2000.bitio import BitReader, BitWriter, FastBitReader, ff_positions
from repro.jpeg2000.tagtree import FlatTagTree, TagTree

# -- bit reader strategies ----------------------------------------------------
#
# The readers interpret arbitrary byte strings (the stuffing rule is a
# property of *reading*: after a 0xFF byte only 7 payload bits follow),
# so plain random bytes exercise them — but unbiased random bytes hit
# 0xFF only 1/256 of the time, so a dedicated strategy biases runs of
# 0xFF in, including streams that *end* in 0xFF.

_plain_bytes = st.binary(min_size=0, max_size=48)

_stuffed_bytes = st.lists(
    st.one_of(
        st.binary(min_size=1, max_size=6),
        st.just(b"\xff"),
        st.just(b"\xff\xff"),
        st.just(b"\xff\x00"),
        st.just(b"\xff\x7f"),
    ),
    min_size=0,
    max_size=10,
).map(b"".join)

_ff_tail = st.binary(min_size=0, max_size=12).map(lambda b: b + b"\xff")

reader_inputs = st.one_of(_plain_bytes, _stuffed_bytes, _ff_tail)

#: A random op program for the lockstep drive: read single bits, short
#: runs, comma codes, and byte alignments in arbitrary order.
reader_ops = st.lists(
    st.one_of(
        st.just(("bit",)),
        st.tuples(st.just("bits"), st.integers(min_value=1, max_value=17)),
        st.just(("comma",)),
        st.just(("align",)),
    ),
    min_size=1,
    max_size=40,
)


def _apply(reader, op):
    if op[0] == "bit":
        return reader.get_bit()
    if op[0] == "bits":
        return reader.get_bits(op[1])
    if op[0] == "comma":
        return reader.get_comma_code()
    return reader.align()


@given(reader_inputs, st.integers(min_value=0, max_value=4), reader_ops)
@settings(max_examples=400, deadline=None)
def test_fast_bit_reader_matches_reference(data, offset, ops):
    offset = min(offset, len(data))
    reference = BitReader(data, offset)
    fast = FastBitReader(data, offset, ff_index=ff_positions(data))
    for op in ops:
        try:
            expected = _apply(reference, op)
            raised = False
        except EOFError:
            raised = True
        try:
            actual = _apply(fast, op)
            assert not raised, f"reference raised EOFError on {op}, fast did not"
        except EOFError:
            assert raised, f"fast raised EOFError on {op}, reference did not"
            break
        if raised:
            break
        assert actual == expected, f"op {op}: fast {actual} != reference {expected}"
        assert fast.position == reference.position, (
            f"after {op}: fast position {fast.position} "
            f"!= reference {reference.position}"
        )


@given(st.binary(min_size=0, max_size=32))
@settings(max_examples=200, deadline=None)
def test_fast_bit_reader_round_trips_writer_output(payload_bits):
    # Bits written through BitWriter (which inserts the stuffing) must
    # read back identically through both readers.
    writer = BitWriter()
    bits = [(b >> i) & 1 for b in payload_bits for i in range(8)]
    for bit in bits:
        writer.put_bit(bit)
    data = writer.flush()
    reference = BitReader(data)
    fast = FastBitReader(data, ff_index=ff_positions(data))
    for index, bit in enumerate(bits):
        assert reference.get_bit() == bit
        assert fast.get_bit() == bit, f"bit {index} diverged"
    assert fast.position == reference.position


# -- tag trees ----------------------------------------------------------------

_tree_dims = st.tuples(
    st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
)


@given(
    _tree_dims,
    st.binary(min_size=1, max_size=64),
    st.data(),
)
@settings(max_examples=300, deadline=None)
def test_flat_tag_tree_matches_reference(dims, data, drawn):
    width, height = dims
    reference_tree = TagTree(width, height)
    flat_tree = FlatTagTree(width, height)
    reference_reader = BitReader(data)
    fast_reader = FastBitReader(data, ff_index=ff_positions(data))
    queries = drawn.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=width - 1),
                st.integers(min_value=0, max_value=height - 1),
                st.integers(min_value=1, max_value=12),
            ),
            min_size=1,
            max_size=12,
        )
    )
    for x, y, threshold in queries:
        try:
            expected = reference_tree.decode(reference_reader, x, y, threshold)
            raised = False
        except EOFError:
            raised = True
        try:
            actual = flat_tree.decode(fast_reader, x, y, threshold)
            assert not raised
        except EOFError:
            assert raised
            return
        if raised:
            return
        assert actual == expected
        assert fast_reader.position == reference_reader.position
        if actual:  # leaf resolved below threshold -> value is defined
            assert flat_tree.value_of(x, y) == reference_tree.value_of(x, y)


# -- batched inverse DWT ------------------------------------------------------

_tiles = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=24),
    ),
    elements=st.integers(min_value=-255, max_value=255),
)


@given(
    st.lists(_tiles, min_size=1, max_size=5),
    st.sampled_from(["5/3", "9/7"]),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=100, deadline=None)
def test_inverse_batch_matches_per_tile_inverse(tiles, mode, levels):
    # Mixed shapes are deliberate: equal-shape tiles batch together,
    # stragglers invert individually — both must equal the per-tile
    # reference path bit for bit (the lifting is elementwise, so the
    # batch axis must not change a single float operation).
    subbands_list = [dwt.forward(tile, mode, levels) for tile in tiles]
    expected = [
        dwt.inverse(dwt.forward(tile, mode, levels)) for tile in tiles
    ]
    counts_list = [dwt.DwtOpCounts() for _ in tiles]
    results = dwt.inverse_batch(subbands_list, counts_list)
    reference_counts = []
    for tile in tiles:
        counts = dwt.DwtOpCounts()
        dwt.inverse(dwt.forward(tile, mode, levels), counts)
        reference_counts.append(counts)
    for result, reference, batch_counts, single_counts in zip(
        results, expected, counts_list, reference_counts
    ):
        assert result.dtype == reference.dtype
        assert np.array_equal(result, reference)
        assert (
            batch_counts.add_ops,
            batch_counts.mul_ops,
            batch_counts.samples,
        ) == (
            single_counts.add_ops,
            single_counts.mul_ops,
            single_counts.samples,
        )
