"""Property-based tests of Tier-1, tag trees, bit I/O and the full codec."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.jpeg2000 import CodingParameters, decode_codestream, encode_image
from repro.jpeg2000.bitio import BitReader, BitWriter
from repro.jpeg2000.image import Image
from repro.jpeg2000.t1 import CodeBlockDecoder, CodeBlockEncoder
from repro.jpeg2000.tagtree import TagTree


@given(st.lists(st.integers(0, 1), min_size=0, max_size=400))
@settings(max_examples=150, deadline=None)
def test_bitio_roundtrip(bits):
    writer = BitWriter()
    for bit in bits:
        writer.put_bit(bit)
    reader = BitReader(writer.flush())
    assert [reader.get_bit() for _ in range(len(bits))] == bits


@given(st.lists(st.integers(0, 1), min_size=0, max_size=400))
@settings(max_examples=100, deadline=None)
def test_bitio_never_emits_marker_prefix(bits):
    """Stuffing guarantees no 0xFF byte is followed by a byte > 0x7F."""
    writer = BitWriter()
    for bit in bits:
        writer.put_bit(bit)
    data = writer.flush()
    for index in range(len(data) - 1):
        if data[index] == 0xFF:
            assert data[index + 1] <= 0x7F


@st.composite
def tag_grids(draw):
    width = draw(st.integers(1, 8))
    height = draw(st.integers(1, 8))
    values = draw(
        st.lists(
            st.integers(0, 10), min_size=width * height, max_size=width * height
        )
    )
    return width, height, values


@given(tag_grids())
@settings(max_examples=100, deadline=None)
def test_tagtree_per_leaf_resolution(grid):
    """Zero-bitplane usage: resolve each leaf with ascending thresholds."""
    width, height, values = grid
    encoder_tree, decoder_tree = TagTree(width, height), TagTree(width, height)
    for y in range(height):
        for x in range(width):
            encoder_tree.set_value(x, y, values[y * width + x])
    writer = BitWriter()
    for y in range(height):
        for x in range(width):
            encoder_tree.encode(writer, x, y, values[y * width + x] + 1)
    reader = BitReader(writer.flush())
    for y in range(height):
        for x in range(width):
            threshold = 1
            while not decoder_tree.decode(reader, x, y, threshold):
                threshold += 1
            assert decoder_tree.value_of(x, y) == values[y * width + x]


@st.composite
def code_blocks(draw):
    width = draw(st.integers(1, 12))
    height = draw(st.integers(1, 12))
    coeffs = draw(
        st.lists(
            st.integers(-1023, 1023),
            min_size=width * height,
            max_size=width * height,
        )
    )
    orientation = draw(st.sampled_from(["LL", "HL", "LH", "HH"]))
    return width, height, coeffs, orientation


@given(code_blocks())
@settings(max_examples=100, deadline=None)
def test_t1_roundtrip(block):
    width, height, coeffs, orientation = block
    result = CodeBlockEncoder(coeffs, width, height, orientation).encode()
    decoder = CodeBlockDecoder(
        result.data, width, height, orientation, result.num_bitplanes, result.num_passes
    )
    assert decoder.decode() == coeffs


@st.composite
def small_images(draw):
    size = draw(st.sampled_from([16, 32]))
    components = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    planes = [
        rng.integers(0, 256, (size, size), dtype=np.int64).astype(np.int64)
        for _ in range(components)
    ]
    return Image(components=planes, bit_depth=8), size, components


@given(small_images())
@settings(max_examples=20, deadline=None)
def test_lossless_codec_roundtrip_random_images(image_spec):
    image, size, components = image_spec
    params = CodingParameters(
        width=size,
        height=size,
        num_components=components,
        tile_width=16,
        tile_height=16,
        num_levels=2,
        lossless=True,
        use_mct=components >= 3,
    )
    assert decode_codestream(encode_image(image, params)) == image


@given(
    st.integers(1, 6),
    st.sampled_from([0, 1]),  # LRCP / RLCP
    st.integers(0, 2**31),
)
@settings(max_examples=15, deadline=None)
def test_layered_lossless_roundtrip_any_progression(layers, progression, seed):
    rng = np.random.default_rng(seed)
    image = Image(
        components=[rng.integers(0, 256, (32, 32)).astype(np.int64) for _ in range(3)],
        bit_depth=8,
    )
    params = CodingParameters(
        width=32, height=32, num_components=3,
        tile_width=16, tile_height=16, num_levels=2,
        lossless=True, num_layers=layers, progression=progression,
    )
    assert decode_codestream(encode_image(image, params)) == image
