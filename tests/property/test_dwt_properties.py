"""Property-based tests of the wavelet transforms."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.jpeg2000 import dwt


signals_1d = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.integers(min_value=-(2**15), max_value=2**15 - 1),
)

tiles_2d = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40)
    ),
    elements=st.integers(min_value=-255, max_value=255),
)


@given(signals_1d)
@settings(max_examples=150, deadline=None)
def test_53_1d_perfect_reconstruction(signal):
    low, high = dwt.fdwt53_1d(signal)
    assert np.array_equal(dwt.idwt53_1d(low, high), signal)


@given(signals_1d)
@settings(max_examples=150, deadline=None)
def test_53_band_lengths_partition_signal(signal):
    low, high = dwt.fdwt53_1d(signal)
    n = signal.shape[0]
    assert low.shape[0] == (n + 1) // 2
    assert high.shape[0] == n // 2


@given(signals_1d)
@settings(max_examples=100, deadline=None)
def test_97_1d_reconstruction_tolerance(signal):
    x = signal.astype(np.float64)
    low, high = dwt.fdwt97_1d(x)
    assert np.allclose(dwt.idwt97_1d(low, high), x, atol=1e-6)


@given(tiles_2d, st.integers(min_value=0, max_value=4))
@settings(max_examples=100, deadline=None)
def test_53_2d_multilevel_reconstruction(tile, levels)        :
    subbands = dwt.forward(tile, "5/3", levels)
    assert np.array_equal(dwt.inverse(subbands), tile)


@given(tiles_2d, st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_97_2d_multilevel_reconstruction(tile, levels):
    subbands = dwt.forward(tile, "9/7", levels)
    assert np.allclose(dwt.inverse(subbands), tile, atol=1e-5)


@given(tiles_2d, st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_band_shapes_tile_the_plane(tile, levels):
    """Subband areas must sum to the tile area at every level count."""
    subbands = dwt.forward(tile, "5/3", levels)
    total = sum(arr.size for _, _, arr in subbands.iter_bands())
    assert total == tile.size


@given(signals_1d)
@settings(max_examples=100, deadline=None)
def test_53_shift_invariance_of_dc(signal):
    """Adding a constant shifts only the low band (high band invariant)."""
    _, high_a = dwt.fdwt53_1d(signal)
    _, high_b = dwt.fdwt53_1d(signal + 64)
    assert np.array_equal(high_a, high_b)
