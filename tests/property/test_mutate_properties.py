"""Property tests for the mutation operators and the seeded enumerator.

Four contracts back the design-space exploration:

1. **Validity** — an operator application either yields a spec that
   passes :func:`validate_spec` or a structured rejection carrying
   machine-readable ``rule``/``path`` codes; never an invalid spec.
2. **Determinism** — the same ``(seeds, budget, seed)`` triple
   reproduces the identical population, lineage, and rejection profile.
3. **Hash invariance** — the canonical structural hash ignores
   ``name``/``label`` and survives ``as_dict``/``spec_from_dict``
   round-trips and JSON key reordering.
4. **Invertibility** — where ``invert`` reports an inverse, applying it
   to the mutant recovers the original spec field-for-field.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.design import catalog, spec_from_dict, validate_spec
from repro.design.mutate import (
    canonical_hash,
    canonicalise,
    enumerate_designs,
    operator_menu,
)

#: The mutable (VTA-layer) catalog rows — the enumeration seeds.
VTA_NAMES = tuple(
    name for name in catalog.names() if catalog.get(name).is_vta
)


@st.composite
def spec_and_operator(draw):
    """One catalog spec (possibly pre-mutated) and one menu operator."""
    name = draw(st.sampled_from(VTA_NAMES))
    spec = catalog.get(name)
    # Optionally walk one mutation deep so operators also see
    # non-catalog parents (e.g. ChannelToBus after ChannelToP2p).
    hops = draw(st.integers(min_value=0, max_value=1))
    for _ in range(hops):
        menu = operator_menu(spec)
        step = draw(st.sampled_from(menu))
        outcome = step.apply(spec)
        if outcome.ok:
            spec = canonicalise(outcome.spec)
    menu = operator_menu(spec)
    operator = draw(st.sampled_from(menu))
    return spec, operator


class TestOperatorValidity:
    @settings(max_examples=60, deadline=None)
    @given(spec_and_operator())
    def test_apply_yields_valid_spec_or_structured_rejection(self, pair):
        spec, operator = pair
        result = operator.apply(spec)
        if result.ok:
            assert validate_spec(result.spec) == []
            # Canonical renaming never breaks validity.
            assert validate_spec(canonicalise(result.spec)) == []
        else:
            assert result.spec is None
            assert result.issues
            for issue in result.issues:
                assert isinstance(issue, str)
                assert isinstance(issue.rule, str) and issue.rule
                assert isinstance(issue.path, str) and issue.path

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(VTA_NAMES))
    def test_menu_is_deterministic_and_never_identity(self, name):
        spec = catalog.get(name)
        menu = operator_menu(spec)
        assert menu == operator_menu(spec)
        source = canonical_hash(spec)
        for operator in menu:
            result = operator.apply(spec)
            if result.ok:
                assert canonical_hash(result.spec) != source


class TestEnumerationDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=8),
    )
    def test_same_seed_reproduces_population(self, seed, budget):
        seeds = [catalog.get(name) for name in VTA_NAMES]
        first = enumerate_designs(seeds, budget=budget, seed=seed)
        second = enumerate_designs(seeds, budget=budget, seed=seed)
        assert [s.name for s in first.generated] == [
            s.name for s in second.generated
        ]
        assert first.generated == second.generated
        assert first.rejections == second.rejections
        assert first.attempts == second.attempts
        assert first.duplicates == second.duplicates
        digests = [canonical_hash(s) for s in first.generated]
        assert [first.derived_label(d) for d in digests] == [
            second.derived_label(d) for d in digests
        ]

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_population_is_structurally_distinct_and_valid(self, seed):
        seeds = [catalog.get(name) for name in VTA_NAMES]
        result = enumerate_designs(seeds, budget=6, seed=seed)
        digests = {canonical_hash(s) for s in result.seeds}
        for mutant in result.generated:
            assert validate_spec(mutant) == []
            digest = canonical_hash(mutant)
            assert digest not in digests  # no duplicate structures
            digests.add(digest)
            assert mutant.name == f"g{digest[:12]}"


def _reorder_keys(value):
    """Rebuild a JSON-ish structure with reversed key insertion order."""
    if isinstance(value, dict):
        return {
            key: _reorder_keys(value[key]) for key in reversed(list(value))
        }
    if isinstance(value, list):
        return [_reorder_keys(item) for item in value]
    return value


class TestCanonicalHash:
    @settings(max_examples=40, deadline=None)
    @given(spec_and_operator())
    def test_hash_survives_round_trip_and_reordering(self, pair):
        spec, operator = pair
        result = operator.apply(spec)
        for candidate in filter(None, (spec, result.spec)):
            digest = canonical_hash(candidate)
            rebuilt = spec_from_dict(candidate.as_dict())
            assert rebuilt == candidate
            assert canonical_hash(rebuilt) == digest
            shuffled = spec_from_dict(_reorder_keys(candidate.as_dict()))
            assert canonical_hash(shuffled) == digest

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(VTA_NAMES), st.text(min_size=1, max_size=12))
    def test_hash_ignores_name_and_label(self, name, alias):
        spec = catalog.get(name)
        renamed = replace(spec, name=alias, label=f"alias {alias}")
        assert canonical_hash(renamed) == canonical_hash(spec)
        assert canonicalise(renamed) == canonicalise(spec)


class TestInvertibility:
    @settings(max_examples=60, deadline=None)
    @given(spec_and_operator())
    def test_declared_inverse_recovers_original(self, pair):
        spec, operator = pair
        inverse = operator.invert(spec)
        if inverse is None:
            return
        forward = operator.apply(spec)
        assert forward.ok
        back = inverse.apply(forward.spec)
        assert back.ok
        assert back.spec == spec
        assert canonical_hash(back.spec) == canonical_hash(spec)
