"""Property-based tests of the concurrency substrate under random load."""

from hypothesis import given, settings, strategies as st

from repro.core import FunctionTask, RoundRobin, SharedObject, StaticPriority, osss_method
from repro.kernel import Fifo, Mutex, SimTime, Simulator


@st.composite
def random_schedules(draw):
    """Per-client (delay, hold) pairs in femtoseconds."""
    clients = draw(st.integers(2, 6))
    return [
        (
            draw(st.integers(0, 10_000)),
            draw(st.integers(1, 10_000)),
        )
        for _ in range(clients)
    ]


@given(random_schedules())
@settings(max_examples=60, deadline=None)
def test_mutex_never_overlaps_critical_sections(schedule):
    sim = Simulator()
    mutex = Mutex(sim)
    intervals = []

    def worker(delay_fs, hold_fs):
        def body():
            yield SimTime.from_fs(delay_fs)
            token = yield from mutex.lock()
            start = sim.now.femtoseconds
            yield SimTime.from_fs(hold_fs)
            intervals.append((start, sim.now.femtoseconds))
            mutex.unlock(token)

        return body

    for index, (delay, hold) in enumerate(schedule):
        sim.spawn(worker(delay, hold)(), f"w{index}")
    sim.run()
    assert len(intervals) == len(schedule)
    ordered = sorted(intervals)
    for (_, end), (start, _) in zip(ordered, ordered[1:]):
        assert start >= end  # strictly serialised


@given(random_schedules())
@settings(max_examples=60, deadline=None)
def test_shared_object_serialises_and_serves_everyone(schedule):
    sim = Simulator()

    class Tally:
        def __init__(self):
            self.active = 0
            self.max_active = 0
            self.served = 0

        @osss_method()
        def use(self, hold_fs):
            self.active += 1
            self.max_active = max(self.max_active, self.active)
            yield SimTime.from_fs(hold_fs)
            self.active -= 1
            self.served += 1

    tally = Tally()
    so = SharedObject(sim, "tally", tally, policy=RoundRobin())

    def body(task, delay_fs, hold_fs):
        yield SimTime.from_fs(delay_fs)
        yield from task.p.call("use", hold_fs)

    for index, (delay, hold) in enumerate(schedule):
        task = FunctionTask(sim, f"t{index}", body, delay, hold)
        port = task.port("p")
        port.bind(so)
        task.p = port
        task.start()
    sim.run()
    assert tally.served == len(schedule)  # nobody starves
    assert tally.max_active == 1  # mutual exclusion held throughout
    assert so.stats.grants == len(schedule)


@given(
    st.lists(st.integers(0, 255), min_size=1, max_size=60),
    st.integers(1, 5),
)
@settings(max_examples=60, deadline=None)
def test_fifo_preserves_order_under_any_capacity(items, capacity):
    sim = Simulator()
    fifo = Fifo(sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield from fifo.put(item)

    def consumer():
        for _ in items:
            value = yield from fifo.get()
            received.append(value)
            yield SimTime.from_fs(3)

    sim.spawn(producer(), "prod")
    sim.spawn(consumer(), "cons")
    sim.run()
    assert received == items


@given(st.lists(st.integers(0, 7), min_size=2, max_size=8, unique=True))
@settings(max_examples=60, deadline=None)
def test_priority_policy_grants_highest_priority_ready_client(priorities)        :
    sim = Simulator()
    order = []

    class Probe:
        @osss_method()
        def touch(self, who):
            order.append(who)
            yield SimTime.from_fs(100)

    so = SharedObject(sim, "probe", Probe(), policy=StaticPriority())

    def body(task, who):
        yield from task.p.call("touch", who)

    for index, priority in enumerate(priorities):
        task = FunctionTask(sim, f"t{index}", body, priority)
        port = task.port("p", priority=priority)
        port.bind(so)
        task.p = port
        task.start()
    sim.run()
    # The first grant goes to someone; all *subsequent* grants must follow
    # priority order among the then-waiting clients (all arrived together,
    # so the tail is fully sorted).
    assert order[1:] == sorted(order[1:])
