"""Property-based parity: the optimised Tier-1 kernel vs the reference.

The fast kernel (``t1_fast``) exists purely for speed; these properties
pin it to the readable specification kernel bit for bit — identical
coefficients AND identical basic-operation counts (the Fig. 1 / Table 1
cycle models read the op counter, so a drift there would silently skew
the paper reproduction).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.jpeg2000.t1 import CodeBlockDecoder, CodeBlockEncoder
from repro.jpeg2000.t1_fast import FastCodeBlockDecoder, decode_codeblock_batch


@st.composite
def coded_blocks(draw):
    """A random encoded code block plus its decode parameters."""
    width = draw(st.integers(min_value=1, max_value=12))
    height = draw(st.integers(min_value=1, max_value=12))
    orientation = draw(st.sampled_from(["LL", "HL", "LH", "HH"]))
    amplitude = draw(st.sampled_from([1, 7, 127, 2047]))
    coeffs = draw(
        st.lists(
            st.integers(min_value=-amplitude, max_value=amplitude),
            min_size=width * height,
            max_size=width * height,
        )
    )
    result = CodeBlockEncoder(coeffs, width, height, orientation).encode()
    if result.num_passes:
        num_passes = draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=result.num_passes))
        )
    else:
        num_passes = None
    if num_passes is None:
        data = result.data
    else:
        data = result.data[: result.bytes_for_passes(num_passes)]
    return data, width, height, orientation, result.num_bitplanes, num_passes, coeffs


@given(coded_blocks())
@settings(max_examples=120, deadline=None)
def test_fast_kernel_matches_reference(block):
    data, width, height, orientation, num_bitplanes, num_passes, _ = block
    reference = CodeBlockDecoder(data, width, height, orientation, num_bitplanes, num_passes)
    fast = FastCodeBlockDecoder(data, width, height, orientation, num_bitplanes, num_passes)
    assert fast.decode() == reference.decode()
    assert fast.ops == reference.ops


@given(coded_blocks())
@settings(max_examples=60, deadline=None)
def test_fast_kernel_roundtrips_full_blocks(block):
    data, width, height, orientation, num_bitplanes, num_passes, coeffs = block
    if num_passes is not None:
        return  # truncated segments reconstruct approximations by design
    fast = FastCodeBlockDecoder(data, width, height, orientation, num_bitplanes)
    assert fast.decode() == coeffs


@given(st.lists(coded_blocks(), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_batched_kernel_matches_single_block_and_reference(blocks):
    """The batched entry point is a pure re-scheduling of the fast kernel:
    random geometries and pass counts must decode bit-for-bit like the
    single-block fast kernel AND the reference kernel, op counts included.
    """
    batch = []
    offset = 0
    for data, width, height, orientation, num_bitplanes, num_passes, _ in blocks:
        batch.append(
            (data, width, height, orientation, num_bitplanes, num_passes, offset)
        )
        offset += width * height
    out, op_counts = decode_codeblock_batch(batch)
    assert out.dtype == np.int32
    assert len(op_counts) == len(blocks)
    for block, entry, batched_ops in zip(blocks, batch, op_counts):
        data, width, height, orientation, num_bitplanes, num_passes, _ = block
        start = entry[6]
        batched_values = out[start : start + width * height].tolist()
        fast = FastCodeBlockDecoder(
            data, width, height, orientation, num_bitplanes, num_passes
        )
        reference = CodeBlockDecoder(
            data, width, height, orientation, num_bitplanes, num_passes
        )
        fast_values = fast.decode()
        reference_values = reference.decode()
        assert batched_values == fast_values
        assert batched_values == reference_values
        assert batched_ops == fast.ops
        assert batched_ops == reference.ops


@given(st.lists(coded_blocks(), min_size=1, max_size=4))
@settings(max_examples=25, deadline=None)
def test_batched_kernel_writes_into_caller_buffer(blocks):
    """With a caller-supplied output array the batch writes in place at
    the given offsets and leaves untouched gaps at zero."""
    batch = []
    offset = 0
    for data, width, height, orientation, num_bitplanes, num_passes, _ in blocks:
        batch.append(
            (data, width, height, orientation, num_bitplanes, num_passes, offset)
        )
        offset += width * height
    out = np.zeros(offset + 5, dtype=np.int32)  # trailing gap stays zero
    returned, _ = decode_codeblock_batch(batch, out)
    assert returned is out
    auto, _ = decode_codeblock_batch(batch)
    assert out[:offset].tolist() == auto[:offset].tolist()
    assert out[offset:].tolist() == [0] * 5
