"""Every shipped example must run to completion (smoke + assertions)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"


def run_example(name, monkeypatch, tmp_path, capsys):
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, tmp_path, capsys):
    out = run_example("quickstart.py", monkeypatch, tmp_path, capsys)
    assert "exact reconstruction" in out
    assert "PSNR" in out


def test_osss_modelling_basics(monkeypatch, tmp_path, capsys):
    out = run_example("osss_modelling_basics.py", monkeypatch, tmp_path, capsys)
    assert "frames processed in order: [0, 1, 2, 3, 4, 5, 6, 7]" in out


def test_seamless_refinement(monkeypatch, tmp_path, capsys):
    out = run_example("seamless_refinement.py", monkeypatch, tmp_path, capsys)
    assert "bit-identical" in out
    assert "MISMATCH" not in out


def test_synthesis_flow(monkeypatch, tmp_path, capsys):
    out = run_example("synthesis_flow.py", monkeypatch, tmp_path, capsys)
    assert "Table 2" in out
    output_dir = tmp_path / "synthesis_output"
    names = {path.name for path in output_dir.iterdir()}
    assert {"system.mhs", "system.mss", "software.c"} <= names
    assert "idwt53_fossy.vhd" in names
    assert "idwt53_tb.vhd" in names


def test_quality_scalability(monkeypatch, tmp_path, capsys):
    out = run_example("quality_scalability.py", monkeypatch, tmp_path, capsys)
    assert "5 quality layers" in out
    assert "1 / 5" in out and "5 / 5" in out


def test_custom_mapping_quick(monkeypatch, tmp_path, capsys):
    monkeypatch.setattr(sys, "argv", ["custom_mapping.py", "--quick"])
    out = run_example("custom_mapping.py", monkeypatch, tmp_path, capsys)
    assert "spec '7b-2cpu' is valid" in out
    assert "2 cpus" in out
    assert "simulated 7b-2cpu end-to-end" in out


def test_custom_mapping_spec_validates_via_cli(capsys):
    from repro.__main__ import main

    assert main(["validate", str(EXAMPLES / "custom_mapping.py")]) == 0
    assert "OK" in capsys.readouterr().out


@pytest.mark.slow
def test_design_space_exploration(monkeypatch, tmp_path, capsys):
    out = run_example("design_space_exploration.py", monkeypatch, tmp_path, capsys)
    assert "Table 1 (reconstructed)" in out
    assert "IDWT in HW 'speed-up by 12/16'" in out
