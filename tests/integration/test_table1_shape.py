"""The complete Table 1 reconstruction and every prose relation around it.

This is the headline experiment: both modes, all nine versions, checked
against every quantitative statement the paper makes (the exact cell
values are lost from the available copy; the relations are not).
"""

import pytest

from repro.casestudy import build_table1


@pytest.fixture(scope="module")
def table1():
    return build_table1()


@pytest.fixture(scope="module")
def relations(table1):
    return table1.shape_relations()


class TestBaselines:
    def test_version1_absolute_times(self, table1):
        row = table1.row("1")
        assert row.decode_ms["lossless"] == pytest.approx(3243.2, abs=1.0)
        assert row.decode_ms["lossy"] == pytest.approx(3664.1, abs=1.0)

    def test_all_rows_present_in_order(self, table1):
        assert [row.version for row in table1.rows] == [
            "1", "2", "3", "4", "5", "6a", "6b", "7a", "7b"
        ]

    def test_layer_assignment(self, table1):
        assert table1.row("5").layer == "application"
        assert table1.row("6a").layer == "vta"


class TestApplicationLayerRelations:
    def test_v2_speedup_about_10_and_19_percent(self, relations):
        assert relations["lossless"]["v2_speedup"] == pytest.approx(1.10, abs=0.03)
        assert relations["lossy"]["v2_speedup"] == pytest.approx(1.19, abs=0.03)

    def test_v3_small_impact(self, relations):
        for mode in ("lossless", "lossy"):
            assert relations[mode]["v3_vs_v2"] == pytest.approx(1.0, abs=0.03)

    def test_v4_v5_speedups_about_4_5_and_5(self, relations):
        assert relations["lossless"]["v4_speedup"] == pytest.approx(4.5, abs=0.3)
        assert relations["lossy"]["v4_speedup"] == pytest.approx(5.0, abs=0.4)
        assert relations["lossless"]["v5_speedup"] == pytest.approx(4.5, abs=0.3)
        assert relations["lossy"]["v5_speedup"] == pytest.approx(5.0, abs=0.4)


class TestVtaRelations:
    def test_idwt_inflation_6a(self, relations):
        for mode in ("lossless", "lossy"):
            assert 1.8 < relations[mode]["idwt_6a_vs_3"] < 9.0

    def test_7a_worse_than_6a(self, relations):
        for mode in ("lossless", "lossy"):
            assert relations[mode]["idwt_7a_vs_6a"] > 1.0

    def test_6b_equals_7b(self, relations):
        for mode in ("lossless", "lossy"):
            assert relations[mode]["idwt_7b_vs_6b"] == pytest.approx(1.0, abs=0.10)

    def test_idwt_hw_speedup_order_of_magnitude(self, relations):
        """Paper: factor 12 (lossless) / 16 (lossy) vs software."""
        assert 9.0 < relations["lossless"]["idwt_speedup_6b"] < 15.0
        assert 10.0 < relations["lossy"]["idwt_speedup_6b"] < 18.0

    def test_vta_overall_time_close_to_application_layer(self, table1):
        for app, vta in (("3", "6a"), ("3", "6b"), ("5", "7a"), ("5", "7b")):
            for mode in ("lossless", "lossy"):
                app_ms = table1.row(app).decode_ms[mode]
                vta_ms = table1.row(vta).decode_ms[mode]
                assert vta_ms == pytest.approx(app_ms, rel=0.10)


class TestMonotoneStructure:
    def test_every_version_beats_or_matches_v1(self, table1):
        v1 = table1.row("1")
        for row in table1.rows[1:]:
            for mode in ("lossless", "lossy"):
                assert row.decode_ms[mode] <= v1.decode_ms[mode]

    def test_lossy_always_slower_than_lossless(self, table1):
        for row in table1.rows:
            assert row.decode_ms["lossy"] > row.decode_ms["lossless"]

    def test_subset_selection(self):
        partial = build_table1(versions=["1", "2"])
        assert [row.version for row in partial.rows] == ["1", "2"]
