"""Failure injection: the library must fail loudly and legibly."""

import pytest

from repro.casestudy import paper_workload
from repro.casestudy.versions import Version3HwSwParallel
from repro.core import (
    FunctionTask,
    SharedObject,
    guarded,
    osss_method,
)
from repro.core.serialisation import SerialisationError, payload_bits
from repro.fossy import Call, Design, InlineError, Procedure, inline_design
from repro.jpeg2000 import CodestreamError, parse_codestream
from repro.kernel import ProcessError, Simulator, ms
from repro.vta import BlockRam, MemoryCapacityError
from repro.core import OsssArray


class TestDeadlockDetection:
    def test_model_reports_deadlock_with_task_names(self):
        workload = paper_workload(True)
        model = Version3HwSwParallel(workload)
        # Sabotage: the params queue never accepts jobs, so the control
        # blocks and software waits for results forever.
        model.params.capacity = 0
        with pytest.raises(RuntimeError, match="deadlock"):
            model.run()

    def test_guard_deadlock_visible_in_stats(self):
        sim = Simulator()

        class Never:
            @osss_method(guard=guarded(lambda self: False))
            def wait(self):
                return None

        so = SharedObject(sim, "never", Never())
        task = FunctionTask(sim, "t", lambda t: (yield from t.p.call("wait")))
        port = task.port("p")
        port.bind(so)
        task.p = port
        task.start()
        sim.run()
        assert not task.finished
        assert so.pending_count == 1


class TestErrorPropagation:
    def test_exception_inside_shared_object_reaches_caller(self):
        sim = Simulator()

        class Bad:
            @osss_method()
            def explode(self):
                raise ValueError("internal fault")

        so = SharedObject(sim, "bad", Bad())
        task = FunctionTask(sim, "t", lambda t: (yield from t.p.call("explode")))
        port = task.port("p")
        port.bind(so)
        task.p = port
        task.start()
        with pytest.raises(ProcessError, match="internal fault"):
            sim.run()

    def test_pointer_payload_rejected_at_call_time(self):
        class NotSerialisable:
            pass

        with pytest.raises(SerialisationError):
            payload_bits(NotSerialisable())


class TestResourceExhaustion:
    def test_block_ram_capacity(self):
        sim = Simulator()
        ram = BlockRam(sim, ms(0.00001), address_bits=4)
        with pytest.raises(MemoryCapacityError):
            ram.back_array(OsssArray(100, 18))

    def test_corrupt_codestream_rejected(self):
        with pytest.raises(CodestreamError):
            parse_codestream(b"\xff\x4f\xff\xff")

    def test_recursive_synthesis_model_rejected(self):
        design = Design(
            name="rec",
            procedures=[Procedure("a", body=[Call("b")]),
                        Procedure("b", body=[Call("a")])],
            main=[Call("a")],
        )
        with pytest.raises(InlineError, match="recursi"):
            inline_design(design)
