"""The paper's Fig. 3 implementation flow, end to end.

Reference software decode -> profiling -> application-layer exploration ->
VTA mapping -> synthesis outputs.  Each arrow of the flow diagram is one
step here, running against real data.
"""

import pytest

from repro.casestudy import (
    CYCLES_PER_OP,
    PAPER_SHARES_LOSSLESS,
    PAPER_SHARES_LOSSY,
    functional_workload,
    measured_shares,
    run_version,
)
from repro.fossy import lint_vhdl, synthesise_system
from repro.jpeg2000 import (
    CodingParameters,
    Jpeg2000Decoder,
    encode_image,
    synthetic_image,
)


@pytest.fixture(scope="module")
def profiled():
    """Step 1-2: decode the reference image, collect the stage profile."""
    out = {}
    for lossless in (True, False):
        image = synthetic_image(128, 128, 3, seed=2008)
        params = CodingParameters(
            width=128, height=128, num_components=3,
            tile_width=64, tile_height=64, num_levels=3,
            lossless=lossless, base_step=1 / 8,
        )
        decoder = Jpeg2000Decoder(encode_image(image, params))
        decoder.decode()
        out[lossless] = decoder.ops
    return out


class TestProfilingStep:
    """Fig. 1: the SW profile that motivates the whole partitioning."""

    def test_lossless_profile_shape(self, profiled):
        shares = measured_shares(profiled[True], CYCLES_PER_OP)
        assert shares["arith"] == pytest.approx(
            PAPER_SHARES_LOSSLESS["arith"], abs=8.0
        )
        assert shares["idwt"] == pytest.approx(PAPER_SHARES_LOSSLESS["idwt"], abs=5.0)

    def test_lossy_profile_shape(self, profiled):
        shares = measured_shares(profiled[False], CYCLES_PER_OP)
        assert shares["arith"] == pytest.approx(PAPER_SHARES_LOSSY["arith"], abs=8.0)
        # lossy IDWT share roughly doubles or more vs lossless
        lossless_shares = measured_shares(profiled[True], CYCLES_PER_OP)
        assert shares["idwt"] > 1.5 * lossless_shares["idwt"]

    def test_arith_is_the_bottleneck_in_both_modes(self, profiled):
        for lossless in (True, False):
            shares = measured_shares(profiled[lossless], CYCLES_PER_OP)
            assert shares["arith"] > 60.0
            assert shares["arith"] == max(shares.values())


class TestExplorationStep:
    """Fig. 3 middle: the partitioning walk 1 -> 3 on real data."""

    def test_partitioning_improves_while_preserving_output(self):
        workload = functional_workload(True, image_size=64, tile_size=32)
        previous_ms = None
        for version in ("1", "2", "3"):
            report = run_version(version, True, workload)
            assert report.image == workload.reference
            if previous_ms is not None:
                assert report.decode_ms <= previous_ms * 1.001
            previous_ms = report.decode_ms


class TestSynthesisStep:
    """Fig. 4: FOSSY outputs for the EDK hand-off."""

    @pytest.fixture(scope="class")
    def system(self):
        return synthesise_system(num_processors=4)

    def test_vhdl_is_well_formed(self, system):
        for block in system.blocks:
            lint_vhdl(block.reference_vhdl)
            lint_vhdl(block.fossy_vhdl)

    def test_platform_files_reference_all_blocks(self, system):
        for name in ("idwt53", "idwt97", "hwsw_so", "idwt_params_so"):
            assert name in system.mhs

    def test_software_matches_processor_count(self, system):
        assert system.mhs.count("BEGIN ppc405") == 4
        for task in ("sw0", "sw1", "sw2", "sw3"):
            assert f"osss_register_task({task}_main" in system.software_c

    def test_artifacts_can_be_written(self, system, tmp_path):
        (tmp_path / "system.mhs").write_text(system.mhs)
        (tmp_path / "system.mss").write_text(system.mss)
        (tmp_path / "software.c").write_text(system.software_c)
        for block in system.blocks:
            (tmp_path / f"{block.name}_fossy.vhd").write_text(block.fossy_vhdl)
        assert len(list(tmp_path.iterdir())) == 5
