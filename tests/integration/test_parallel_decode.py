"""Parallel decode must equal sequential decode, bit for bit.

Covers both case-study modes (lossless 5/3 and lossy 9/7) end to end:
real codestreams, multiple tiles, and every scheduling variant of
:class:`~repro.jpeg2000.parallel.DecodeOptions` — the parity guarantee
that makes the worker pool a pure wall-clock optimisation.
"""

import numpy as np
import pytest

from repro.jpeg2000 import (
    CodingParameters,
    DecodeOptions,
    Jpeg2000Decoder,
    KERNEL_REFERENCE,
    encode_image,
    shutdown_pool,
    synthetic_image,
)


@pytest.fixture(scope="module", params=[True, False], ids=["lossless", "lossy"])
def codestream(request):
    lossless = request.param
    image = synthetic_image(96, 96, 3, seed=41)
    params = CodingParameters(
        width=96,
        height=96,
        num_components=3,
        tile_width=48,
        tile_height=48,
        num_levels=3,
        lossless=lossless,
        base_step=1 / 8,
    )
    return encode_image(image, params)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def _decode(codestream, options):
    decoder = Jpeg2000Decoder(codestream, options=options)
    return decoder.decode(), decoder.ops


def test_parallel_equals_sequential(codestream):
    sequential, seq_ops = _decode(codestream, DecodeOptions())
    parallel, par_ops = _decode(codestream, DecodeOptions(workers=2, chunk_size=3))
    for ours, theirs in zip(parallel.components, sequential.components):
        assert np.array_equal(ours, theirs)
    assert par_ops.counts == seq_ops.counts


def test_fast_kernel_equals_reference_kernel(codestream):
    reference, ref_ops = _decode(codestream, DecodeOptions(kernel=KERNEL_REFERENCE))
    fast, fast_ops = _decode(codestream, DecodeOptions())
    for ours, theirs in zip(fast.components, reference.components):
        assert np.array_equal(ours, theirs)
    assert fast_ops.counts == ref_ops.counts


def test_parallel_reference_kernel_also_identical(codestream):
    sequential, _ = _decode(codestream, DecodeOptions(kernel=KERNEL_REFERENCE))
    parallel, _ = _decode(
        codestream, DecodeOptions(workers=2, kernel=KERNEL_REFERENCE, chunk_size=1)
    )
    for ours, theirs in zip(parallel.components, sequential.components):
        assert np.array_equal(ours, theirs)
