"""Spec-elaborated models are the seed models — structurally and numerically.

``tests/data/topology_seed.json`` and ``tests/data/table1_seed.json`` were
captured (``tools/capture_design_snapshots.py``) from the hand-built model
classes before they became catalog shims.  Elaborating the declarative
specs must reproduce the same machine graph and bit-identical Table 1
milliseconds.
"""

import json
import pathlib

import pytest

from repro.casestudy.explorer import ALL_VERSIONS, build_table1
from repro.casestudy.workload import paper_workload
from repro.design import catalog, elaborate_design, model_topology

DATA = pathlib.Path(__file__).resolve().parent.parent / "data"

TOPOLOGY_SEED = json.loads((DATA / "topology_seed.json").read_text())
TABLE1_SEED = json.loads((DATA / "table1_seed.json").read_text())


@pytest.mark.parametrize("name", catalog.names())
def test_topology_matches_seed(name):
    model = elaborate_design(catalog.get(name), paper_workload(True))
    assert model_topology(model) == TOPOLOGY_SEED[name]


@pytest.mark.parametrize("name", catalog.names())
def test_shim_class_builds_the_same_machine(name):
    # The public Version* classes and direct elaboration agree.
    workload = paper_workload(True)
    via_class = model_topology(ALL_VERSIONS[name](workload))
    via_spec = model_topology(elaborate_design(catalog.get(name), workload))
    assert via_class == via_spec


@pytest.mark.slow
def test_table1_bit_identical_to_seed():
    table1 = build_table1()
    values = {
        row.version: {"decode_ms": row.decode_ms, "idwt_ms": row.idwt_ms}
        for row in table1.rows
    }
    assert values == TABLE1_SEED
