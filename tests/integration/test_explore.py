"""End-to-end exploration: enumerate → simulate → rank → report.

One seeded ~20-candidate exploration runs twice against the same
content-addressed cache: the cold run executes, the warm run must be
served entirely from cache, and both must render byte-identical
Markdown/CSV/JSON reports — the determinism claim of the explore CLI.
"""

import json

import pytest

from repro.design import catalog
from repro.experiments.cache import ResultCache
from repro.experiments.runner import Runner
from repro.explore import ExplorationConfig, explore, write_reports

BUDGET = 11  # 9 catalog rows + 11 mutants ≈ 20 candidates
SEED = 7


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """The same exploration twice through one shared cache."""
    cache_root = tmp_path_factory.mktemp("explore_cache")
    config = ExplorationConfig(
        budget=BUDGET, seed=SEED, lossless=True, num_tiles=4
    )
    cold = explore(config, Runner(jobs=0, cache=ResultCache(cache_root)))
    warm = explore(config, Runner(jobs=0, cache=ResultCache(cache_root)))
    return config, cold, warm


class TestPopulation:
    def test_all_nine_paper_versions_evaluated(self, runs):
        _, cold, _ = runs
        names = {c.name for c in cold.evaluated}
        assert set(catalog.names()) <= names

    def test_budget_of_valid_mutants_beyond_catalog(self, runs):
        _, cold, _ = runs
        generated = [c for c in cold.candidates if c.source == "generated"]
        assert len(generated) == BUDGET
        assert len(cold.candidates) == len(catalog.names()) + BUDGET
        # every mutant is structurally distinct from every catalog row
        digests = [c.digest for c in cold.candidates]
        assert len(digests) == len(set(digests))

    def test_mutants_carry_lineage_labels_and_spec_hashes(self, runs):
        _, cold, _ = runs
        for candidate in cold.candidates:
            if candidate.source != "generated":
                continue
            assert candidate.derived != candidate.name
            root = candidate.derived.split("~")[0]
            assert root in catalog.names()
            assert candidate.spec_hash

    def test_front_is_non_empty_and_mapped_only(self, runs):
        _, cold, _ = runs
        assert cold.front
        for candidate in cold.front:
            assert candidate.mapped
            assert candidate.on_front
            assert candidate.objectives is not None

    def test_front_members_are_mutually_non_dominating(self, runs):
        from repro.explore import dominates

        _, cold, _ = runs
        vectors = [c.objectives.as_tuple() for c in cold.front]
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                if i != j:
                    assert not dominates(a, b)

    def test_paper_vta_rows_compete(self, runs):
        _, cold, _ = runs
        for name in ("6a", "6b", "7a", "7b"):
            candidate = cold.candidate(name)
            assert candidate.mapped
            assert candidate.objectives is not None
        for name in ("1", "2", "3", "4", "5"):
            assert not cold.candidate(name).mapped


class TestWarmCache:
    def test_cold_executes_warm_hits(self, runs):
        _, cold, warm = runs
        assert any(c.executed for c in cold.candidates)
        assert not any(c.executed for c in warm.candidates)
        assert all(
            c.cached for c in warm.candidates if c.failure is None
        )

    def test_outcomes_agree(self, runs):
        _, cold, warm = runs
        assert [c.name for c in cold.candidates] == [
            c.name for c in warm.candidates
        ]
        assert [c.name for c in cold.front] == [c.name for c in warm.front]
        for a, b in zip(cold.candidates, warm.candidates):
            assert a.objectives == b.objectives
            assert a.failure == b.failure


class TestByteIdenticalReports:
    def test_reports_identical_cold_vs_warm(self, runs, tmp_path):
        _, cold, warm = runs
        cold_paths = write_reports(cold, tmp_path / "cold")
        warm_paths = write_reports(warm, tmp_path / "warm")
        for kind in ("markdown", "csv", "json"):
            assert (
                cold_paths[kind].read_bytes() == warm_paths[kind].read_bytes()
            ), f"{kind} report differs between cold and warm runs"

    def test_json_report_shape(self, runs, tmp_path):
        _, cold, _ = runs
        paths = write_reports(cold, tmp_path / "shape")
        document = json.loads(paths["json"].read_text(encoding="utf-8"))
        assert document["config"]["budget"] == BUDGET
        assert document["config"]["seed"] == SEED
        assert document["population"]["candidates"] == len(cold.candidates)
        assert len(document["catalog"]) == len(catalog.names())
        assert len(document["front"]) == len(cold.front)
        names = {entry["name"] for entry in document["candidates"]}
        assert set(catalog.names()) <= names

    def test_markdown_annotates_the_nine_versions(self, runs, tmp_path):
        _, cold, _ = runs
        paths = write_reports(cold, tmp_path / "md")
        text = paths["markdown"].read_text(encoding="utf-8")
        assert "## The nine paper versions" in text
        for name in catalog.names():
            assert f"| {name} |" in text
        assert "reference (application layer, unranked)" in text
