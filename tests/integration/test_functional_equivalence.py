"""Seamless refinement preserves function.

Every design version — from the software-only model to the fully mapped
VTA architectures — must decode a real codestream to exactly the output of
the reference decoder.  This is the paper's core methodological claim:
behaviour is untouched by partitioning, parallelisation and communication
refinement.
"""

import pytest

from repro.casestudy import ALL_VERSIONS, functional_workload, run_version


@pytest.fixture(scope="module")
def lossless_workload():
    return functional_workload(True, image_size=64, tile_size=32)


@pytest.fixture(scope="module")
def lossy_workload():
    return functional_workload(False, image_size=64, tile_size=32)


@pytest.mark.parametrize("version", list(ALL_VERSIONS))
def test_lossless_equivalence(version, lossless_workload):
    report = run_version(version, True, lossless_workload)
    assert report.image is not None
    assert report.image == lossless_workload.reference


@pytest.mark.parametrize("version", list(ALL_VERSIONS))
def test_lossy_equivalence(version, lossy_workload):
    report = run_version(version, False, lossy_workload)
    assert report.image == lossy_workload.reference


def test_lossy_output_close_to_source(lossy_workload):
    """Sanity: the functional pipeline is a real lossy codec, not a copy."""
    from repro.jpeg2000.image import synthetic_image

    source = synthetic_image(64, 64, 3, seed=2008)
    psnr = lossy_workload.reference.psnr(source)
    assert 30.0 < psnr < 80.0


def test_refinement_changes_timing_not_function(lossless_workload):
    """Same output, different times: the whole point of the two layers."""
    app = run_version("3", True, lossless_workload)
    vta = run_version("6a", True, lossless_workload)
    assert app.image == vta.image
    assert vta.decode_ms != app.decode_ms
