"""The zero-copy shared-memory decode path, end to end.

Exercises the real multi-process fan-out (2 workers forced via
``oversubscribe``, under both ``fork`` and ``spawn`` start methods)
against real codestreams, and pins the two guarantees the arena
protocol must keep:

* **byte-identity** — shared-memory parallel decode equals sequential
  decode bit for bit, with identical basic-op counts;
* **no leaks** — no ``/dev/shm`` segment of ours survives
  ``shutdown_pool()``, including after a simulated worker crash
  mid-decode (the broken-pool resume path).
"""

import glob
import os

import numpy as np
import pytest

from repro.jpeg2000 import (
    CodingParameters,
    DecodeOptions,
    Jpeg2000Decoder,
    encode_image,
    shutdown_pool,
    synthetic_image,
)
from repro.jpeg2000.options import ARENA_PREFIX
from repro.jpeg2000.stages import entropy

pytest.importorskip("multiprocessing.shared_memory")

START_METHODS = ["fork", "spawn"] if hasattr(os, "fork") else ["spawn"]


def _shm_segments():
    """Our segments currently present in /dev/shm (POSIX hosts)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-POSIX
        return []
    return glob.glob(f"/dev/shm/{ARENA_PREFIX}*")


@pytest.fixture(scope="module", params=[True, False], ids=["lossless", "lossy"])
def codestream(request):
    lossless = request.param
    image = synthetic_image(96, 96, 3, seed=17)
    params = CodingParameters(
        width=96,
        height=96,
        num_components=3,
        tile_width=48,
        tile_height=48,
        num_levels=3,
        lossless=lossless,
        base_step=1 / 8,
    )
    return encode_image(image, params)


@pytest.fixture(autouse=True)
def _clean_pool():
    shutdown_pool()
    yield
    shutdown_pool()
    assert _shm_segments() == [], "shared-memory segments leaked"


def _decode(codestream, options):
    decoder = Jpeg2000Decoder(codestream, options=options)
    return decoder.decode(), decoder.ops


@pytest.mark.parametrize("start_method", START_METHODS)
def test_shm_parallel_byte_identical(codestream, start_method):
    sequential, seq_ops = _decode(codestream, DecodeOptions())
    parallel_image, par_ops = _decode(
        codestream,
        DecodeOptions(
            workers=2, chunk_size=4, oversubscribe=True,
            start_method=start_method,
        ),
    )
    for ours, theirs in zip(parallel_image.components, sequential.components):
        assert np.array_equal(ours, theirs)
    assert par_ops.counts == seq_ops.counts


def test_no_segments_survive_shutdown(codestream):
    _decode(
        codestream, DecodeOptions(workers=2, chunk_size=4, oversubscribe=True)
    )
    shutdown_pool()
    assert _shm_segments() == []
    assert entropy._live_arenas == {}


def test_shutdown_sweeps_orphaned_arena():
    """An arena abandoned mid-flight (no decode completed it) is still
    unlinked by shutdown_pool — the crash-safety backstop."""
    arena = entropy.SharedArena(128)
    assert _shm_segments() != []
    shutdown_pool()
    assert _shm_segments() == []


def test_worker_crash_leaves_no_segments_and_correct_output(
    codestream, monkeypatch
):
    """Simulated worker crash mid-decode: the first chunk a worker picks
    up kills the process (fork start method, so the child inherits the
    monkeypatched kernel).  The decode must still produce byte-identical
    output via the resume path, and no /dev/shm segment may survive."""
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only
        pytest.skip("fork start method unavailable")
    sequential, seq_ops = _decode(codestream, DecodeOptions())

    parent_pid = os.getpid()
    real = entropy.decode_codeblock_batch
    state = {"killed": False}

    def crashing_batch(batch, out=None):
        if os.getpid() != parent_pid and not state["killed"]:
            # Fork copies `state` into each worker: the first chunk a
            # worker picks up crashes it; anything else succeeds.
            state["killed"] = True
            os._exit(1)
        return real(batch, out)

    monkeypatch.setattr(entropy, "decode_codeblock_batch", crashing_batch)
    crashed_image, crashed_ops = _decode(
        codestream,
        DecodeOptions(
            workers=2, chunk_size=4, oversubscribe=True, start_method="fork"
        ),
    )
    for ours, theirs in zip(crashed_image.components, sequential.components):
        assert np.array_equal(ours, theirs)
    assert crashed_ops.counts == seq_ops.counts
    shutdown_pool()
    assert _shm_segments() == []
    assert entropy._live_arenas == {}
