"""Acceptance: crash reports embed the compiled plan and stage fates.

A worker process is killed mid-decode (fork-inherited bomb in the
entropy kernel); the decode must still complete byte-identically via the
broken-pool resume path, and the flight-recorder crash report written at
the moment the pool broke must carry the compiled plan (digest +
stages) and the per-stage fate map showing the ``broken-pool-resume``
rewrite — the post-mortem record the plan IR exists to provide.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import telemetry
from repro.jpeg2000 import (
    CodingParameters,
    DecodeOptions,
    Jpeg2000Decoder,
    encode_image,
    shutdown_pool,
    synthetic_image,
)
from repro.jpeg2000.plan import STAGE_ORDER
from repro.jpeg2000.stages import entropy
from repro.telemetry.flight import FlightRecorder


@pytest.fixture(scope="module")
def workload():
    image = synthetic_image(96, 96, 3, seed=7)
    params = CodingParameters(
        width=96, height=96, num_components=3,
        tile_width=48, tile_height=48, num_levels=3,
    )
    data = encode_image(image, params)
    return data, Jpeg2000Decoder(data).decode()


def _arm_bomb(monkeypatch, tmp_path):
    """Patch the worker kernel so one worker dies after the first chunk
    lands (fork-inherited; the parent process is never harmed)."""
    marker = str(tmp_path / "first-chunk-done")
    bombed = str(tmp_path / "bombed")
    parent_pid = os.getpid()
    real = entropy._decode_tasks_sequential

    def bomb(chunk, kernel):
        if os.getpid() != parent_pid:
            if os.path.exists(marker) and not os.path.exists(bombed):
                with open(bombed, "w") as handle:
                    handle.write("x")
                time.sleep(0.2)  # let the parent drain finished chunks
                os._exit(1)
            result = real(chunk, kernel)
            with open(marker, "w") as handle:
                handle.write("done")
            return result
        return real(chunk, kernel)

    shutdown_pool()  # the bomb must be in place before the fork
    monkeypatch.setattr(entropy, "_decode_tasks_sequential", bomb)


def test_crash_report_embeds_plan_and_stage_fates(
    workload, tmp_path, monkeypatch
):
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only test
        pytest.skip("fork start method unavailable")
    data, reference = workload
    _arm_bomb(monkeypatch, tmp_path)
    options = DecodeOptions(
        workers=2, chunk_size=1, oversubscribe=True,
        start_method="fork", shared_memory=False,
    )
    decoder = Jpeg2000Decoder(data, options=options)
    telemetry.install_log()
    telemetry.install_flight(FlightRecorder(crash_dir=tmp_path))
    try:
        image = decoder.decode()
    finally:
        telemetry.uninstall_flight()
        telemetry.uninstall_log()
        shutdown_pool()

    # The resume path still produced the byte-identical image.
    for ours, theirs in zip(image.components, reference.components):
        assert np.array_equal(ours, theirs)

    reports = sorted(tmp_path.glob("crash-*.json"))
    assert reports, "the broken pool must have dumped a crash report"
    report = json.loads(reports[0].read_text(encoding="utf-8"))
    assert report["reason"] == "broken-pool"

    # The compiled plan rides in the report, digest first.
    plan_context = report["context"]["plan"]
    assert plan_context["digest"] == decoder.plan.digest()
    assert [s["stage"] for s in plan_context["stages"]] == list(STAGE_ORDER)
    entropy_stage = next(
        s for s in plan_context["stages"] if s["stage"] == "entropy"
    )
    assert entropy_stage["executor"]["kind"] == "pool"
    assert entropy_stage["executor"]["transport"] == "pickle"

    # So does the fate map: at crash time the entropy stage was running
    # and had already recorded the broken-pool-resume rewrite.
    fates = report["context"]["stage_fates"]
    assert set(fates) == set(STAGE_ORDER)
    assert fates["parse"]["state"] == "done"
    assert fates["entropy"]["state"] == "running"
    rules = [rewrite["rule"] for rewrite in fates["entropy"]["rewrites"]]
    assert "broken-pool-resume" in rules

    # The schedule context and pool-broken event are still there too.
    assert report["context"]["schedule"]["effective_workers"] == 2
    events = [record["event"] for record in report["events"]]
    assert "parallel.pool_broken" in events
