"""The plan-matrix differential suite (the decode-identity guarantee).

Every *valid* decode plan — inline or pool, pickle or arena transport,
barrier or overlapped, fast/batched/reference kernels, fast/reference
Tier-2 — must produce the byte-identical image and identical
basic-operation counts as the reference plan on the same 4-tile
workload, in both case-study modes (lossless 5/3 and lossy 9/7).
Invalid stage/executor combinations must be rejected *statically*, with
their documented rule codes, before any worker spawns.

When a plan fails the identity check its canonical JSON is dumped to
``$PLAN_MATRIX_DUMP_DIR`` (CI uploads it as an artifact); the matrix
start method can be forced with ``$PLAN_MATRIX_START_METHOD`` so CI can
sweep fork and spawn.
"""

import json
import os
import pathlib

import numpy as np
import pytest

from repro.jpeg2000 import (
    CodingParameters,
    DecodeOptions,
    Jpeg2000Decoder,
    encode_image,
    shutdown_pool,
    synthetic_image,
)
from repro.jpeg2000.plan import (
    EXECUTOR_POOL,
    STAGE_ENTROPY,
    TRANSPORT_ARENA,
    TRANSPORT_PICKLE,
    ExecutorSpec,
    PlanValidationError,
    StageBinding,
    compile_plan,
    validate_plan,
)

#: CI sweeps the whole matrix under fork and under spawn.
START_METHOD = os.environ.get("PLAN_MATRIX_START_METHOD") or None


def _pool(transport, *, impl, overlap=False, chunk_size=3):
    return StageBinding(STAGE_ENTROPY, impl, ExecutorSpec(
        kind=EXECUTOR_POOL, workers=2, chunk_size=chunk_size,
        start_method=START_METHOD, transport=transport, overlap=overlap,
    ))


def _plan(entropy=None, tier2="fast"):
    """The reference plan with the entropy binding (and Tier-2) swapped."""
    base = compile_plan(DecodeOptions(tier2=tier2))
    return base if entropy is None else base.with_stage(entropy)


#: Every valid schedule shape the executor supports, labelled for CI.
MATRIX = {
    "inline-fast": _plan(),
    "inline-batched": _plan(StageBinding(STAGE_ENTROPY, "batched")),
    "inline-reference": _plan(StageBinding(STAGE_ENTROPY, "reference")),
    "inline-reference-tier2": _plan(tier2="reference"),
    "pickle-fast": _plan(_pool(TRANSPORT_PICKLE, impl="fast")),
    "pickle-reference": _plan(_pool(TRANSPORT_PICKLE, impl="reference")),
    "arena-barrier": _plan(_pool(TRANSPORT_ARENA, impl="batched")),
    "arena-overlap": _plan(
        _pool(TRANSPORT_ARENA, impl="batched", overlap=True)
    ),
    "arena-reference-overlap": _plan(
        _pool(TRANSPORT_ARENA, impl="reference", overlap=True, chunk_size=1)
    ),
}

#: The documented static rejections (rule code → a plan that trips it).
INVALID = {
    "executor.pool-requires-workers": _plan(StageBinding(
        STAGE_ENTROPY, "batched",
        ExecutorSpec(kind=EXECUTOR_POOL, workers=1, chunk_size=3,
                     transport=TRANSPORT_ARENA),
    )),
    "executor.overlap-requires-arena": _plan(StageBinding(
        STAGE_ENTROPY, "fast",
        ExecutorSpec(kind=EXECUTOR_POOL, workers=2, chunk_size=3,
                     transport=TRANSPORT_PICKLE, overlap=True),
    )),
    "kernel.arena-requires-batched": _plan(
        _pool(TRANSPORT_ARENA, impl="fast")
    ),
    "executor.transport-required": _plan(StageBinding(
        STAGE_ENTROPY, "batched",
        ExecutorSpec(kind=EXECUTOR_POOL, workers=2, chunk_size=3),
    )),
    "stage.unknown-impl": _plan(StageBinding(STAGE_ENTROPY, "quantum")),
}


@pytest.fixture(scope="module", params=[True, False], ids=["lossless", "lossy"])
def workload(request):
    lossless = request.param
    image = synthetic_image(96, 96, 3, seed=2008)
    params = CodingParameters(
        width=96, height=96, num_components=3,
        tile_width=48, tile_height=48, num_levels=3,
        lossless=lossless, base_step=1 / 8,
    )
    data = encode_image(image, params)
    decoder = Jpeg2000Decoder(data)  # the reference plan: inline fast
    reference = decoder.decode()
    return data, reference, decoder.ops


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def _dump_failing_plan(label, plan):
    directory = os.environ.get("PLAN_MATRIX_DUMP_DIR")
    if not directory:
        return None
    path = pathlib.Path(directory) / f"failing-plan-{label}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(
        {"label": label, "digest": plan.digest(), **plan.as_dict()},
        indent=2, sort_keys=True,
    ))
    return path


@pytest.mark.parametrize("label", sorted(MATRIX))
def test_every_valid_plan_is_byte_identical(label, workload):
    data, reference, reference_ops = workload
    plan = MATRIX[label]
    assert validate_plan(plan) == [], f"matrix plan {label} must be valid"
    decoder = Jpeg2000Decoder(data, plan=plan)
    try:
        image = decoder.decode()
        for ours, theirs in zip(image.components, reference.components):
            assert np.array_equal(ours, theirs), (
                f"plan {label} ({plan.digest()[:12]}) diverged from the "
                "reference image"
            )
        assert decoder.ops.counts == reference_ops.counts, (
            f"plan {label} changed the basic-operation counts"
        )
    except Exception:
        dumped = _dump_failing_plan(label, plan)
        if dumped is not None:
            print(f"failing plan dumped to {dumped}")
        raise


@pytest.mark.parametrize("rule", sorted(INVALID))
def test_invalid_plans_are_rejected_statically(rule, workload):
    data, _, _ = workload
    plan = INVALID[rule]
    with pytest.raises(PlanValidationError) as excinfo:
        Jpeg2000Decoder(data, plan=plan)
    assert rule in {issue.rule for issue in excinfo.value.issues}
