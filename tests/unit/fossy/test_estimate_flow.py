"""Resource estimation, the IDWT models and the full flow."""

import pytest

from repro.fossy import (
    build_idwt53,
    build_idwt97,
    elaborate,
    emit_mhs,
    emit_mss,
    estimate_fossy,
    estimate_reference,
    inline_design,
    synthesise_block,
    synthesise_system,
)
from repro.fossy.c_backend import emit_software_subsystem
from repro.fossy.platform_files import HardwareBlockSpec
from repro.vta.platform import ml401


@pytest.fixture(scope="module")
def idwt53_results():
    return synthesise_block(build_idwt53())


@pytest.fixture(scope="module")
def idwt97_results():
    return synthesise_block(build_idwt97())


class TestEstimatorBasics:
    def test_reports_have_positive_resources(self, idwt53_results):
        for report in (idwt53_results.reference_report, idwt53_results.fossy_report):
            assert report.flip_flops > 0
            assert report.luts > 0
            assert report.slices > 0
            assert report.gate_count > report.luts
            assert report.frequency_mhz > 50

    def test_block_rams_counted(self, idwt53_results):
        # line buffer + scratch + tile RAM
        assert idwt53_results.fossy_report.block_rams >= 3

    def test_slices_track_dominant_resource(self, idwt53_results):
        report = idwt53_results.fossy_report
        assert report.slices >= max(report.luts, report.flip_flops) / 2

    def test_utilisation_fits_lx25(self, idwt53_results, idwt97_results):
        for result in (idwt53_results, idwt97_results):
            assert result.fossy_report.utilisation < 0.5
            assert result.reference_report.utilisation < 0.5

    def test_meets_helper(self, idwt53_results):
        assert idwt53_results.fossy_report.meets(100e6)
        assert not idwt53_results.fossy_report.meets(1e9)


class TestTable2Relations:
    """The paper's stated synthesis outcomes (section 4)."""

    def test_idwt53_fossy_area_overhead_about_10_percent(self, idwt53_results):
        assert idwt53_results.area_ratio == pytest.approx(1.10, abs=0.08)

    def test_idwt97_fossy_15_percent_smaller(self, idwt97_results):
        assert idwt97_results.area_ratio == pytest.approx(0.85, abs=0.08)

    def test_idwt97_fossy_about_28_percent_slower(self, idwt97_results):
        assert idwt97_results.frequency_ratio == pytest.approx(0.72, abs=0.08)

    def test_idwt53_frequencies_similar(self, idwt53_results):
        assert idwt53_results.frequency_ratio > 0.7

    def test_everything_meets_the_100mhz_system_clock(
        self, idwt53_results, idwt97_results
    ):
        for result in (idwt53_results, idwt97_results):
            assert result.reference_report.meets(100e6)
            assert result.fossy_report.meets(100e6)

    def test_idwt97_larger_than_idwt53(self, idwt53_results, idwt97_results):
        assert idwt97_results.reference_report.slices > idwt53_results.reference_report.slices
        assert idwt97_results.fossy_report.slices > idwt53_results.fossy_report.slices


class TestLocComparison:
    """Section 4's code-size observations."""

    def test_fossy_output_much_larger_than_reference(
        self, idwt53_results, idwt97_results
    ):
        assert idwt53_results.loc_ratio > 2.0
        assert idwt97_results.loc_ratio > 2.0

    def test_97_models_larger_than_53(self, idwt53_results, idwt97_results):
        assert idwt97_results.model_statements > idwt53_results.model_statements
        assert idwt97_results.reference_loc > idwt53_results.reference_loc
        assert idwt97_results.fossy_loc > idwt53_results.fossy_loc

    def test_model_statement_ratio_matches_paper_trend(
        self, idwt53_results, idwt97_results
    ):
        # paper: 903/356 = 2.5x SystemC statements; ours should be > 1.3x
        ratio = idwt97_results.model_statements / idwt53_results.model_statements
        assert ratio > 1.3


class TestSharingMechanics:
    def test_fossy_shares_expensive_multipliers(self):
        design = build_idwt97()
        fsmd = elaborate(inline_design(design))
        ops = fsmd.total_operations()
        mul_uses = sum(c for (kind, _), c in ops.items() if kind == "mul_const")
        per_state = fsmd.operations_per_state()
        max_in_one_state = max(
            (
                count
                for ops_in_state in per_state.values()
                for (kind, _), count in ops_in_state.items()
                if kind == "mul_const"
            ),
            default=0,
        )
        assert mul_uses > 4 * max_in_one_state  # sharing has real leverage


class TestPlatformFiles:
    def test_mhs_structure(self):
        mhs = emit_mhs(ml401(), [HardwareBlockSpec("idwt53", 0x40000000)], 2)
        assert mhs.count("BEGIN ppc405") == 2
        assert "BEGIN opb_v20" in mhs
        assert "mch_opb_ddr" in mhs
        assert "C_BASEADDR = 0x40000000" in mhs

    def test_mhs_p2p_interfaces(self):
        mhs = emit_mhs(
            ml401(), [HardwareBlockSpec("idwt53", 0x0, p2p_partner="hwsw_so")], 1
        )
        assert "BUS_INTERFACE P2P = hwsw_so_link" in mhs

    def test_mss_structure(self):
        mss = emit_mss(ml401(), ["sw0", "sw1"], num_processors=2)
        assert mss.count("BEGIN OS") == 2
        assert "osss_embedded" in mss
        assert "sw0, sw1" in mss

    def test_c_output_compilable_shape(self):
        code = emit_software_subsystem(
            ["sw0"], {"hwsw_so": ["put_component", "get_result"]}
        )
        assert code.count("{") == code.count("}")
        assert "int main(void)" in code
        assert "hwsw_so_put_component" in code


class TestSystemFlow:
    def test_system_bundle_complete(self):
        system = synthesise_system(num_processors=4)
        assert {b.name for b in system.blocks} == {"idwt53", "idwt97"}
        assert system.mhs.count("BEGIN ppc405") == 4
        assert "sw3" in system.mss
        assert system.block("idwt53").fossy_loc > 0
        with pytest.raises(KeyError):
            system.block("missing")
