"""Elaboration to FSMD and VHDL emission."""

import pytest

from repro.fossy import (
    Assign,
    Bin,
    Call,
    Const,
    Design,
    ElaborationError,
    For,
    If,
    Procedure,
    Tick,
    Var,
    elaborate,
    emit_fossy_vhdl,
    emit_reference_vhdl,
    line_count,
    lint_vhdl,
)
from repro.fossy.vhdl import VhdlLintError


def loop_design():
    i = Var("i", 8)
    acc = Var("acc", 16)
    return Design(
        name="looper",
        registers=[i, acc],
        main=[
            Assign(acc, Const(0, 16)),
            Tick(),
            For(i, Const(0, 8), Const(10, 8), [
                Assign(acc, Bin("+", acc, Const(1, 16), 16)),
                Tick(),
            ]),
        ],
    )


class TestElaboration:
    def test_ticks_create_states(self):
        design = Design(
            name="seq",
            registers=[Var("a", 8)],
            main=[Assign(Var("a", 8), Const(1, 8)), Tick(),
                  Assign(Var("a", 8), Const(2, 8)), Tick()],
        )
        fsmd = elaborate(design)
        # start + 2 tick states + DONE
        assert fsmd.num_states == 4

    def test_loop_structure(self):
        fsmd = elaborate(loop_design())
        heads = [s for s in fsmd.states if "for_i" in s.name]
        assert len(heads) == 1
        head = heads[0]
        # conditional edge into the body, fall-through to the exit
        assert head.transitions[0].cond is not None
        assert head.transitions[1].cond is None

    def test_loop_has_back_edge(self):
        fsmd = elaborate(loop_design())
        head = next(s for s in fsmd.states if "for_i" in s.name)
        back_edges = [
            s.name
            for s in fsmd.states
            for t in s.transitions
            if t.target == head.name and s is not head
        ]
        assert back_edges

    def test_branch_forks_and_joins(self):
        design = Design(
            name="br",
            registers=[Var("a", 8)],
            main=[
                If(Bin(">", Var("a", 8), Const(0, 8), 1),
                   [Assign(Var("a", 8), Const(1, 8)), Tick()],
                   [Assign(Var("a", 8), Const(2, 8)), Tick()]),
            ],
        )
        fsmd = elaborate(design)
        names = [s.name for s in fsmd.states]
        assert any("then" in n for n in names)
        assert any("else" in n for n in names)
        assert any("join" in n for n in names)

    def test_done_state_terminal(self):
        fsmd = elaborate(loop_design())
        done = fsmd.state("DONE")
        assert done.transitions[0].target == "DONE"

    def test_calls_must_be_inlined_first(self):
        design = Design(
            name="c",
            procedures=[Procedure("p", body=[Tick()])],
            main=[Call("p")],
        )
        with pytest.raises(ElaborationError, match="inline"):
            elaborate(design)

    def test_operation_census(self):
        fsmd = elaborate(loop_design())
        totals = fsmd.total_operations()
        assert totals[("addsub", 16)] >= 1  # the accumulator
        assert totals[("addsub", 8)] >= 1  # the loop counter
        assert totals[("compare", 1)] >= 1  # the loop bound


class TestVhdlEmission:
    def test_fossy_vhdl_well_formed(self):
        text = emit_fossy_vhdl(elaborate(loop_design()))
        counts = lint_vhdl(text)
        assert counts["entity"] == 1
        assert counts["case"] == 1
        assert "state_t" in text
        assert "rising_edge(clk)" in text

    def test_reference_vhdl_well_formed(self):
        design = loop_design()
        text = emit_reference_vhdl(design)
        lint_vhdl(text)
        assert "for i_i in" in text  # loops stay loops in handcrafted style

    def test_reference_keeps_procedures(self):
        x = Var("x", 8)
        design = Design(
            name="withproc",
            registers=[Var("r", 8)],
            procedures=[Procedure("helper", params=[x],
                                  body=[Assign(Var("r", 8), x)])],
            main=[Call("helper", [Const(3, 8)])],
        )
        text = emit_reference_vhdl(design)
        assert "procedure helper" in text
        assert "helper(to_signed(3, 8));" in text

    def test_fossy_inlines_everything(self):
        from repro.fossy import inline_design

        x = Var("x", 8)
        design = Design(
            name="flat",
            registers=[Var("r", 8)],
            procedures=[Procedure("helper", params=[x],
                                  body=[Assign(Var("r", 8), x), Tick()])],
            main=[Call("helper", [Const(3, 8)]), Call("helper", [Const(4, 8)])],
        )
        text = emit_fossy_vhdl(elaborate(inline_design(design)))
        assert "procedure" not in text
        lint_vhdl(text)

    def test_identifiers_preserved(self):
        fsmd = elaborate(loop_design())
        text = emit_fossy_vhdl(fsmd)
        assert "acc" in text  # human-readable output, as the paper claims

    def test_memories_become_array_types(self):
        from repro.fossy import MemRef, Memory

        design = Design(
            name="withmem",
            registers=[Var("a", 16)],
            memories=[Memory("buffer_ram", 16, 64)],
            main=[Assign(MemRef("buffer_ram", Const(3, 8), 16), Var("a", 16)), Tick()],
        )
        text = emit_fossy_vhdl(elaborate(design))
        assert "type buffer_ram_t is array (0 to 63)" in text
        lint_vhdl(text)

    def test_line_count_ignores_blanks(self):
        assert line_count("a\n\nb\n  \nc\n") == 3

    def test_lint_catches_imbalance(self):
        with pytest.raises(VhdlLintError):
            lint_vhdl("entity x is\n-- never closed\n")
