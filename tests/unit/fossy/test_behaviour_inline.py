"""Behavioural AST and the FOSSY inlining transformation."""

import pytest

from repro.fossy import (
    Assign,
    Bin,
    Call,
    Const,
    Design,
    For,
    If,
    InlineError,
    Procedure,
    Tick,
    Var,
    count_statements,
    inline_design,
)
from repro.fossy.behaviour import walk_statements
from repro.fossy.inline import substitute


def simple_design():
    x = Var("x", 8)
    y = Var("y", 8)
    temp = Var("temp", 8)
    double = Procedure(
        name="double",
        params=[x],
        locals=[temp],
        body=[
            Assign(temp, Bin("+", x, x, 8)),
            Tick(),
            Assign(Var("result", 8), temp),
        ],
    )
    return Design(
        name="demo",
        registers=[Var("result", 8), y],
        procedures=[double],
        main=[
            Assign(y, Const(5, 8)),
            Call("double", [y]),
            Call("double", [Const(7, 8)]),
        ],
    )


class TestAst:
    def test_count_statements_recursive(self):
        body = [
            Assign(Var("a"), Const(1)),
            For(Var("i"), Const(0), Const(4), [Assign(Var("b"), Const(2)), Tick()]),
            If(Const(1, 1), [Assign(Var("c"), Const(3))], [Tick()]),
        ]
        assert count_statements(body) == 7

    def test_walk_visits_nested(self):
        body = [If(Const(1, 1), [For(Var("i"), Const(0), Const(2), [Tick()])], [])]
        kinds = [type(s).__name__ for s in walk_statements(body)]
        assert kinds == ["If", "For", "Tick"]

    def test_validate_checks_call_targets(self):
        design = simple_design()
        design.main.append(Call("missing"))
        with pytest.raises(KeyError):
            design.validate()

    def test_duplicate_procedures_rejected(self):
        design = simple_design()
        design.procedures.append(Procedure(name="double"))
        with pytest.raises(ValueError, match="duplicate"):
            design.validate()


class TestSubstitute:
    def test_var_replaced(self):
        expr = Bin("+", Var("a"), Var("b"))
        out = substitute(expr, {"a": Const(3)})
        assert out.left == Const(3)
        assert out.right == Var("b")

    def test_memref_address_substituted(self):
        from repro.fossy import MemRef

        expr = MemRef("ram", Var("k"), 16)
        out = substitute(expr, {"k": Const(7)})
        assert out.addr == Const(7)


class TestInlining:
    def test_calls_disappear(self):
        inlined = inline_design(simple_design())
        assert not inlined.procedures
        assert not any(
            isinstance(stmt, Call) for stmt in walk_statements(inlined.main)
        )

    def test_body_duplicated_per_call_site(self):
        design = simple_design()
        original = count_statements(design.main)
        inlined = inline_design(design)
        body = count_statements(design.procedure("double").body)
        assert count_statements(inlined.main) == original - 2 + 2 * body

    def test_locals_renamed_per_site(self):
        inlined = inline_design(simple_design())
        names = [reg.name for reg in inlined.registers]
        assert "double_i1_temp" in names
        assert "double_i2_temp" in names

    def test_arguments_bound(self):
        inlined = inline_design(simple_design())
        assigns = [s for s in walk_statements(inlined.main) if isinstance(s, Assign)]
        # the second call site passed Const(7): the expanded body adds 7+7
        const_add = [
            s for s in assigns
            if isinstance(s.expr, Bin) and s.expr.left == Const(7, 8)
        ]
        assert const_add

    def test_nested_calls_expand(self):
        inner = Procedure("inner", body=[Assign(Var("a"), Const(1)), Tick()])
        outer = Procedure("outer", body=[Call("inner"), Call("inner")])
        design = Design(
            name="nested",
            registers=[Var("a")],
            procedures=[inner, outer],
            main=[Call("outer")],
        )
        inlined = inline_design(design)
        ticks = [s for s in walk_statements(inlined.main) if isinstance(s, Tick)]
        assert len(ticks) == 2

    def test_recursion_rejected(self):
        loop = Procedure("loop", body=[Call("loop")])
        design = Design(name="rec", procedures=[loop], main=[Call("loop")])
        with pytest.raises(InlineError, match="recursi"):
            inline_design(design)

    def test_arity_mismatch_rejected(self):
        design = simple_design()
        design.main.append(Call("double", []))
        with pytest.raises(InlineError, match="arguments"):
            inline_design(design)

    def test_assignment_through_expression_parameter_rejected(self):
        x = Var("x", 8)
        bad = Procedure("bad", params=[x], body=[Assign(x, Const(0, 8))])
        design = Design(
            name="d",
            registers=[],
            procedures=[bad],
            main=[Call("bad", [Bin("+", Const(1, 8), Const(2, 8), 8)])],
        )
        with pytest.raises(InlineError, match="expression"):
            inline_design(design)

    def test_original_design_untouched(self):
        design = simple_design()
        before = count_statements(design.main)
        inline_design(design)
        assert count_statements(design.main) == before
        assert design.procedures
