"""FSMD interpretation: the synthesis models actually compute the IDWT.

These tests execute the *elaborated state machines* — the same objects the
VHDL emitter prints — and compare their results against the numpy
reference transforms.  Functional equivalence of the generated hardware is
the strongest claim a synthesis-flow reproduction can make.
"""

import numpy as np
import pytest

from repro.fossy import (
    Assign,
    Bin,
    Const,
    Design,
    For,
    If,
    MemRef,
    Memory,
    Tick,
    Var,
    build_idwt53,
    build_idwt97,
    elaborate,
    inline_design,
)
from repro.fossy.simulate import FsmdSimulator, SimulationLimit
from repro.jpeg2000 import dwt


def mallat_layout(subbands, size):
    """Pack a 2-level decomposition into the in-RAM Mallat layout."""
    image = np.zeros((size, size))
    half, quarter = size // 2, size // 4
    image[0:quarter, 0:quarter] = subbands.ll
    coarse, fine = subbands.levels[1], subbands.levels[0]
    image[0:quarter, quarter:half] = coarse["HL"]
    image[quarter:half, 0:quarter] = coarse["LH"]
    image[quarter:half, quarter:half] = coarse["HH"]
    image[0:half, half:size] = fine["HL"]
    image[half:size, 0:half] = fine["LH"]
    image[half:size, half:size] = fine["HH"]
    return image


def run_idwt_fsmd(build_fn, coefficients, size, levels):
    fsmd = elaborate(inline_design(build_fn()))
    simulator = FsmdSimulator(
        fsmd, inputs={"tile_w": size, "tile_h": size, "num_levels": levels}
    )
    simulator.load_memory("tile_ram", coefficients.flatten())
    cycles = simulator.run()
    out = np.array(simulator.dump_memory("tile_ram", size * size))
    return out.reshape(size, size), cycles


class TestInterpreterBasics:
    def test_counter_machine(self):
        i = Var("i", 8)
        acc = Var("acc", 16)
        design = Design(
            name="count",
            registers=[i, acc],
            main=[
                Assign(acc, Const(0, 16)),
                Tick(),
                For(i, Const(0, 8), Const(10, 8), [
                    Assign(acc, Bin("+", acc, i, 16)),
                    Tick(),
                ]),
            ],
        )
        simulator = FsmdSimulator(elaborate(design))
        simulator.run()
        assert simulator.registers["acc"] == sum(range(10))

    def test_branching_machine(self):
        a = Var("a", 8)
        design = Design(
            name="branch",
            registers=[a],
            main=[
                Assign(a, Const(5, 8)),
                Tick(),
                If(Bin(">", a, Const(3, 8), 1),
                   [Assign(a, Const(1, 8))],
                   [Assign(a, Const(2, 8))]),
            ],
        )
        simulator = FsmdSimulator(elaborate(design))
        simulator.run()
        assert simulator.registers["a"] == 1

    def test_memory_machine(self):
        k = Var("k", 8)
        design = Design(
            name="mem",
            registers=[k],
            memories=[Memory("ram", 16, 16)],
            main=[
                For(k, Const(0, 8), Const(8, 8), [
                    Assign(MemRef("ram", k, 16), Bin("*", k, k, 16)),
                    Tick(),
                ]),
            ],
        )
        simulator = FsmdSimulator(elaborate(design))
        simulator.run()
        assert simulator.dump_memory("ram", 8) == [x * x for x in range(8)]

    def test_cycle_limit_raises(self):
        a = Var("a", 8)
        design = Design(
            name="forever",
            registers=[a],
            main=[
                For(a, Const(0, 8), Const(100, 8), [
                    Assign(a, Const(0, 8)),  # the counter never advances
                    Tick(),
                ]),
            ],
        )
        simulator = FsmdSimulator(elaborate(design))
        with pytest.raises(SimulationLimit):
            simulator.run(max_cycles=1000)

    def test_unknown_input_rejected(self):
        design = Design(name="d", registers=[Var("a", 8)], main=[Tick()])
        with pytest.raises(KeyError):
            FsmdSimulator(elaborate(design), inputs={"missing": 1})

    def test_memory_bounds_checked(self):
        design = Design(
            name="oob",
            registers=[Var("a", 16)],
            memories=[Memory("ram", 16, 4)],
            main=[Assign(Var("a", 16), MemRef("ram", Const(9, 8), 16)), Tick()],
        )
        simulator = FsmdSimulator(elaborate(design))
        with pytest.raises(IndexError):
            simulator.run()


class TestIdwt53Machine:
    """The headline check: FOSSY's inlined FSM computes the exact IDWT."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_two_level_8x8_exact(self, seed):
        rng = np.random.default_rng(seed)
        tile = rng.integers(-100, 100, (8, 8))
        subbands = dwt.forward(tile, "5/3", 2)
        coefficients = mallat_layout(subbands, 8).astype(int)
        out, cycles = run_idwt_fsmd(build_idwt53, coefficients, 8, 2)
        assert np.array_equal(out, tile)
        assert cycles > 0

    def test_single_level_16x16_exact(self):
        rng = np.random.default_rng(3)
        tile = rng.integers(-128, 128, (16, 16))
        subbands = dwt.forward(tile, "5/3", 1)
        image = np.zeros((16, 16))
        image[0:8, 0:8] = subbands.ll
        image[0:8, 8:16] = subbands.levels[0]["HL"]
        image[8:16, 0:8] = subbands.levels[0]["LH"]
        image[8:16, 8:16] = subbands.levels[0]["HH"]
        out, _ = run_idwt_fsmd(build_idwt53, image.astype(int), 16, 1)
        assert np.array_equal(out, tile)

    def test_cycle_count_scales_with_area(self):
        rng = np.random.default_rng(5)
        small = dwt.forward(rng.integers(-10, 10, (8, 8)), "5/3", 1)
        big = dwt.forward(rng.integers(-10, 10, (16, 16)), "5/3", 1)

        def pack(subbands, size):
            image = np.zeros((size, size))
            half = size // 2
            image[0:half, 0:half] = subbands.ll
            image[0:half, half:] = subbands.levels[0]["HL"]
            image[half:, 0:half] = subbands.levels[0]["LH"]
            image[half:, half:] = subbands.levels[0]["HH"]
            return image.astype(int)

        _, cycles_small = run_idwt_fsmd(build_idwt53, pack(small, 8), 8, 1)
        _, cycles_big = run_idwt_fsmd(build_idwt53, pack(big, 16), 16, 1)
        assert cycles_big == pytest.approx(4 * cycles_small, rel=0.35)


class TestIdwt97Machine:
    def test_fixed_point_accuracy(self):
        rng = np.random.default_rng(9)
        tile = rng.integers(-100, 100, (8, 8)).astype(float)
        subbands = dwt.forward(tile, "9/7", 2)
        coefficients = np.rint(mallat_layout(subbands, 8)).astype(int)
        out, _ = run_idwt_fsmd(build_idwt97, coefficients, 8, 2)
        # Fixed-point lifting with an integer line buffer: a few LSBs of
        # drift per cascade is the expected hardware behaviour.
        assert np.abs(out - tile).max() <= 8
        assert np.abs(out - tile).mean() < 2.0

    def test_zero_coefficients_give_zero_image(self):
        out, _ = run_idwt_fsmd(build_idwt97, np.zeros((8, 8), dtype=int), 8, 2)
        assert np.all(out == 0)

    def test_busy_flag_deasserted_at_done(self):
        fsmd = elaborate(inline_design(build_idwt97()))
        simulator = FsmdSimulator(
            fsmd, inputs={"tile_w": 8, "tile_h": 8, "num_levels": 1}
        )
        simulator.run()
        assert simulator.registers["busy_flag"] == 0


class TestTestbenchGeneration:
    def test_idwt53_testbench(self):
        import numpy as np

        from repro.fossy import TestbenchSpec, generate_testbench

        rng = np.random.default_rng(2)
        tile = rng.integers(-50, 50, (8, 8))
        subbands = dwt.forward(tile, "5/3", 2)
        coefficients = mallat_layout(subbands, 8).astype(int)
        fsmd = elaborate(inline_design(build_idwt53()))
        spec = TestbenchSpec(
            inputs={"tile_w": 8, "tile_h": 8, "num_levels": 2},
            memory_loads={"tile_ram": coefficients.flatten().tolist()},
            check_memories={"tile_ram": 64},
        )
        text = generate_testbench(fsmd, spec)
        assert "entity idwt53_tb is" in text
        assert "entity work.idwt53" in text
        assert "wait until done = '1'" in text
        # the memory oracle must contain the true inverse-transform values
        for value in tile.flatten()[:8]:
            assert str(value) in text

    def test_testbench_register_oracle(self):
        from repro.fossy import (
            Assign,
            Bin,
            Const,
            Design,
            TestbenchSpec,
            Tick,
            Var,
            generate_testbench,
        )

        design = Design(
            name="adder",
            inputs=[Var("a", 8), Var("b", 8)],
            registers=[Var("total", 16)],
            main=[Assign(Var("total", 16), Bin("+", Var("a", 8), Var("b", 8), 16)),
                  Tick()],
        )
        fsmd = elaborate(design)
        spec = TestbenchSpec(inputs={"a": 3, "b": 4}, check_registers=["total"])
        text = generate_testbench(fsmd, spec)
        assert "to_signed(3, 8)" in text
        assert "expected 7" in text
