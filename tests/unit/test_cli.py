"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_run_version(self, capsys):
        assert main(["run", "2"]) == 0
        out = capsys.readouterr().out
        assert "DecodingReport(2, lossless" in out

    def test_run_lossy(self, capsys):
        assert main(["run", "2", "--lossy"]) == 0
        assert "lossy" in capsys.readouterr().out

    def test_run_functional(self, capsys):
        assert main(["run", "1", "--functional"]) == 0
        assert "produced an image" in capsys.readouterr().out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--versions", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SW only" in out
        assert "HW/SW not parallel" in out
        assert "6a" not in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "occupied slices" in out
        assert "est. frequency" in out

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        out = capsys.readouterr().out
        assert "idwt53 FOSSY VHDL" in out
        assert "2231" in out  # the paper column is present

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "arith" in out
        assert "88.80" in out

    def test_profile_reports_processes_and_stages(self, capsys):
        assert main(["profile", "2"]) == 0
        out = capsys.readouterr().out
        assert "simulation profile" in out
        assert "telemetry summary" in out
        assert "cf. Fig. 1" in out

    def test_profile_json(self, capsys):
        import json

        assert main(["profile", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2"
        assert payload["profile"]["total_steps"] > 0
        assert "kernel.delta_cycles" in payload["metrics"]["counters"]
        assert payload["stage_shares"]
        assert payload["decode_ms"] > 0

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "2", "--out", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert phases == {"M", "X"}

    def test_trace_leaves_telemetry_disabled(self, tmp_path):
        from repro import telemetry

        assert main(["trace", "2", "--out", str(tmp_path / "t.json")]) == 0
        assert telemetry.active() is None

    def test_versions_lists_catalog(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        assert "Registered design descriptions" in out
        assert "SW only" in out
        assert "HW/SW SO connected to bus & P2P" in out
        assert "4 cpus" in out

    def test_validate_all(self, capsys):
        assert main(["validate", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 9
        assert "INVALID" not in out

    def test_validate_one_version(self, capsys):
        assert main(["validate", "6b"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK")
        assert "6 p2p" in out

    def test_validate_spec_file(self, capsys, tmp_path):
        spec_file = tmp_path / "myspec.py"
        spec_file.write_text(
            "from repro.design import catalog\n"
            "SPEC = catalog.scaled_vta_spec(2, idwt_links_p2p=True)\n"
        )
        assert main(["validate", str(spec_file)]) == 0
        assert "7b-n2" in capsys.readouterr().out

    def test_validate_broken_spec_file_fails(self, capsys, tmp_path):
        spec_file = tmp_path / "broken.py"
        spec_file.write_text(
            "from dataclasses import replace\n"
            "from repro.design import catalog\n"
            "spec = catalog.get('7b')\n"
            "SPEC = replace(spec, mapping=replace(spec.mapping, processors=()))\n"
        )
        assert main(["validate", str(spec_file)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "not mapped to any processor" in out

    def test_validate_file_without_spec_rejected(self, tmp_path):
        spec_file = tmp_path / "empty.py"
        spec_file.write_text("x = 1\n")
        with pytest.raises(SystemExit, match="neither SPEC nor SPECS"):
            main(["validate", str(spec_file)])

    def test_validate_unknown_target_rejected(self):
        with pytest.raises(SystemExit, match="unknown target"):
            main(["validate", "9z"])

    def test_profile_json_carries_design_identity(self, capsys):
        import json

        assert main(["profile", "6b", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"]["name"] == "6b"
        assert payload["design"]["layer"] == "vta"

    def test_unknown_version_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "9z"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
