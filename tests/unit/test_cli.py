"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_run_version(self, capsys):
        assert main(["run", "2"]) == 0
        out = capsys.readouterr().out
        assert "DecodingReport(2, lossless" in out

    def test_run_lossy(self, capsys):
        assert main(["run", "2", "--lossy"]) == 0
        assert "lossy" in capsys.readouterr().out

    def test_run_functional(self, capsys):
        assert main(["run", "1", "--functional"]) == 0
        assert "produced an image" in capsys.readouterr().out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--versions", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SW only" in out
        assert "HW/SW not parallel" in out
        assert "6a" not in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "occupied slices" in out
        assert "est. frequency" in out

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        out = capsys.readouterr().out
        assert "idwt53 FOSSY VHDL" in out
        assert "2231" in out  # the paper column is present

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "arith" in out
        assert "88.80" in out

    def test_profile_reports_processes_and_stages(self, capsys):
        assert main(["profile", "2"]) == 0
        out = capsys.readouterr().out
        assert "simulation profile" in out
        assert "telemetry summary" in out
        assert "cf. Fig. 1" in out

    def test_profile_json(self, capsys):
        import json

        assert main(["profile", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2"
        assert payload["profile"]["total_steps"] > 0
        assert "kernel.delta_cycles" in payload["metrics"]["counters"]
        assert payload["stage_shares"]
        assert payload["decode_ms"] > 0

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "2", "--out", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert phases == {"M", "X"}

    def test_trace_leaves_telemetry_disabled(self, tmp_path):
        from repro import telemetry

        assert main(["trace", "2", "--out", str(tmp_path / "t.json")]) == 0
        assert telemetry.active() is None

    def test_versions_lists_catalog(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        assert "Registered design descriptions" in out
        assert "SW only" in out
        assert "HW/SW SO connected to bus & P2P" in out
        assert "4 cpus" in out

    def test_validate_all(self, capsys):
        assert main(["validate", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 9
        assert "INVALID" not in out

    def test_validate_one_version(self, capsys):
        assert main(["validate", "6b"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK")
        assert "6 p2p" in out

    def test_validate_spec_file(self, capsys, tmp_path):
        spec_file = tmp_path / "myspec.py"
        spec_file.write_text(
            "from repro.design import catalog\n"
            "SPEC = catalog.scaled_vta_spec(2, idwt_links_p2p=True)\n"
        )
        assert main(["validate", str(spec_file)]) == 0
        assert "7b-n2" in capsys.readouterr().out

    def test_validate_broken_spec_file_fails(self, capsys, tmp_path):
        spec_file = tmp_path / "broken.py"
        spec_file.write_text(
            "from dataclasses import replace\n"
            "from repro.design import catalog\n"
            "spec = catalog.get('7b')\n"
            "SPEC = replace(spec, mapping=replace(spec.mapping, processors=()))\n"
        )
        assert main(["validate", str(spec_file)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "not mapped to any processor" in out

    def test_validate_file_without_spec_rejected(self, tmp_path):
        spec_file = tmp_path / "empty.py"
        spec_file.write_text("x = 1\n")
        with pytest.raises(SystemExit, match="neither SPEC nor SPECS"):
            main(["validate", str(spec_file)])

    def test_validate_unknown_target_rejected(self):
        with pytest.raises(SystemExit, match="unknown target"):
            main(["validate", "9z"])

    def test_profile_json_carries_design_identity(self, capsys):
        import json

        assert main(["profile", "6b", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"]["name"] == "6b"
        assert payload["design"]["layer"] == "vta"

    def test_unknown_version_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "9z"])

    def test_table1_unknown_version_rejected(self):
        with pytest.raises(SystemExit, match="registered versions"):
            main(["table1", "--versions", "1", "99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestExperimentCli:
    """The experiment-engine subcommands, driven on cheap experiments."""

    def test_experiments_lists_registry(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table1_application_layer" in out
        assert "wallclock_decode" in out
        assert "groups:" in out and "ablations" in out

    def test_sweep_cold_then_warm(self, capsys, tmp_path):
        args = ["sweep", "table2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "FOSSY" in cold
        assert "cached=0" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "executed=0" in warm
        # Same tables, whether computed or served from the cache.
        assert warm.split("#")[0] == cold.split("#")[0]

    def test_sweep_no_cache_leaves_directory_empty(self, capsys, tmp_path):
        assert main(["sweep", "loc", "--no-cache",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "LoC" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_sweep_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiment or group"):
            main(["sweep", "bogus"])

    def test_results_requires_an_action(self):
        with pytest.raises(SystemExit, match="--regen and/or --check"):
            main(["results"])

    def test_results_check_clean_for_cheap_experiment(self, capsys, tmp_path):
        """The committed wallclock artifact reproduces byte-identically."""
        assert main(["results", "--check", "--experiments", "wallclock_decode",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "reproduce byte-identically" in capsys.readouterr().out

    def test_results_regen_writes_into_out_dir(self, capsys, tmp_path):
        out = tmp_path / "results"
        assert main(["results", "--regen", "--experiments", "table2",
                     "--out", str(out), "--cache-dir", str(tmp_path / "c")]) == 0
        assert (out / "table2_synthesis.txt").exists()
        assert (out / "table2_ratios.csv").exists()

    def test_results_check_reports_drift(self, capsys, tmp_path):
        out = tmp_path / "results"
        cache = ["--cache-dir", str(tmp_path / "c")]
        assert main(["results", "--regen", "--experiments", "table2",
                     "--out", str(out)] + cache) == 0
        victim = out / "table2_synthesis.txt"
        assert "IDWT53" in victim.read_text()
        victim.write_text(victim.read_text().replace("IDWT53", "IDWTXX"))
        capsys.readouterr()
        assert main(["results", "--check", "--experiments", "table2",
                     "--out", str(out)] + cache) == 1
        diff = capsys.readouterr().out
        assert "table2_synthesis.txt" in diff
        assert "IDWTXX" in diff  # the unified diff body is printed


class TestObservabilityCli:
    """Ledger, sentinel, events, and Prometheus subcommand surfaces."""

    def test_plan_decode_is_byte_deterministic(self, capsys):
        assert main(["plan", "decode", "--workers", "4", "--cpus", "8"]) == 0
        first = capsys.readouterr().out
        assert main(["plan", "decode", "--workers", "4", "--cpus", "8"]) == 0
        assert capsys.readouterr().out == first
        assert first.startswith("DecodePlan ")
        assert "transport=arena" in first

    def test_plan_decode_env_overrides_change_the_plan(self, capsys):
        import json

        assert main([
            "plan", "decode", "--workers", "4", "--cpus", "8",
            "--assume-no-shm", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        entropy = next(
            s for s in payload["stages"] if s["stage"] == "entropy"
        )
        assert entropy["executor"]["transport"] == "pickle"
        assert entropy["executor"]["overlap"] is False
        # Host clamp: 4 workers on a 1-CPU host compile to inline.
        assert main([
            "plan", "decode", "--workers", "4", "--cpus", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        entropy = next(
            s for s in payload["stages"] if s["stage"] == "entropy"
        )
        assert entropy["executor"]["kind"] == "inline"

    def test_plan_decode_matches_library_digest(self, capsys):
        from repro.jpeg2000.options import DecodeOptions
        from repro.jpeg2000.plan import PlanEnvironment, compile_plan

        assert main([
            "plan", "decode", "--workers", "2", "--kernel", "reference",
            "--cpus", "4",
        ]) == 0
        out = capsys.readouterr().out
        plan = compile_plan(
            DecodeOptions(workers=2, kernel="reference"),
            PlanEnvironment(cpu_count=4, shared_memory_available=True),
        )
        assert out.splitlines()[0] == f"DecodePlan {plan.digest()[:12]}"
        assert out.rstrip().splitlines()[-1] == plan.canonical_json()

    def test_plan_decode_appends_ledger_record(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.telemetry import ledger

        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["plan", "decode", "--workers", "2", "--cpus", "4"]) == 0
        capsys.readouterr()
        (record,) = ledger.read_ledger(path)
        assert record["kind"] == "plan"
        assert len(record["plan_hash"]) == 64
        assert record["options"]["workers"] == 2
        assert record["environment"]["cpu_count"] == 4

    def test_profile_decode_ledger_carries_plan_hash(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.telemetry import ledger

        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["profile", "decode", "--size", "64"]) == 0
        capsys.readouterr()
        (record,) = ledger.read_ledger(path)
        assert record["kind"] == "decode"
        assert len(record["plan_hash"]) == 64

    def test_run_appends_ledger_record(self, tmp_path, monkeypatch, capsys):
        from repro.telemetry import ledger

        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["run", "2"]) == 0
        capsys.readouterr()
        (record,) = ledger.read_ledger(path)
        assert record["kind"] == "simulate"
        assert record["label"] == "2/lossless"
        assert record["wall_seconds"] > 0
        assert record["spec_hash"]

    def test_ledger_disabled_by_env(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert main(["run", "2"]) == 0
        capsys.readouterr()
        assert not path.exists()

    def test_events_flag_writes_jsonl(self, tmp_path, capsys):
        import json

        events_path = tmp_path / "events.jsonl"
        assert main(["run", "2", "--events", str(events_path)]) == 0
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        names = [record["event"] for record in records]
        assert "kernel.run" in names
        assert "kernel.quiescent" in names
        assert len({record["run_id"] for record in records}) == 1

    def test_events_flag_captures_decode_pipeline(self, tmp_path, capsys):
        import json

        events_path = tmp_path / "events.jsonl"
        assert main(["profile", "decode", "--size", "64",
                     "--events", str(events_path)]) == 0
        capsys.readouterr()
        names = [
            json.loads(line)["event"]
            for line in events_path.read_text().splitlines()
        ]
        assert "decode.start" in names
        assert "decode.done" in names

    def test_ledger_list_show_diff(self, tmp_path, monkeypatch, capsys):
        import json

        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert main(["run", "2"]) == 0
        assert main(["run", "2", "--lossy"]) == 0
        capsys.readouterr()

        assert main(["ledger", "list"]) == 0
        listing = capsys.readouterr().out
        assert "Run ledger (2 records)" in listing
        assert "2/lossless" in listing and "2/lossy" in listing

        assert main(["ledger", "show", "-1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["label"] == "2/lossy"

        assert main(["ledger", "diff", "0", "1"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["fingerprints_changed"] == []
        assert diff["wall_ratio"] > 0

    def test_ledger_list_empty(self, capsys):
        assert main(["ledger", "list"]) == 0
        assert "ledger is empty" in capsys.readouterr().out

    def test_ledger_show_empty_rejected(self):
        with pytest.raises(SystemExit, match="empty"):
            main(["ledger", "show", "-1"])

    def test_profile_sim_prometheus(self, capsys):
        # 6b is a VTA-layer design: its exposition carries bus channels.
        assert main(["profile", "6b", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_span_busy_fs_total counter" in out
        assert 'category="bus"' in out
        assert "# TYPE repro_design_info gauge" in out

    def test_profile_decode_prometheus(self, capsys):
        assert main(["profile", "decode", "--size", "64", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert "repro_" in out
        # Exposition only: the human table must not be mixed in.
        assert "telemetry summary" not in out

    def test_sentinel_check_passes_on_committed_baselines(self, capsys):
        assert main(["sentinel", "--check"]) == 0
        out = capsys.readouterr().out
        assert "baseline: ok" in out
        assert "sentinel: ok" in out

    def test_sentinel_self_test_json(self, capsys):
        import json

        assert main(["sentinel", "--self-test", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        verdict = payload["checks"]["self_test"]
        assert verdict["detected"] == verdict["injected"]
        assert verdict["missed"] == []

    def test_sentinel_fresh_file_detects_regression(self, capsys, tmp_path):
        import json

        from repro.tools import sentinel

        fresh = sentinel.load_baselines()
        victim = next(m for m in fresh if m.startswith("decode/"))
        fresh[victim] *= 2.0
        fresh_file = tmp_path / "fresh.json"
        fresh_file.write_text(json.dumps(fresh), encoding="utf-8")
        assert main(["sentinel", "--fresh", str(fresh_file)]) == 1
        out = capsys.readouterr().out
        assert f"REGRESSION {victim}" in out
        assert "sentinel: failed" in out

    def test_sentinel_ledger_drift(self, tmp_path, monkeypatch, capsys):
        from repro.telemetry import ledger

        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        for wall in (1.0, 1.05, 0.95):
            ledger.append_record(
                ledger.make_record("decode", label="t", wall_seconds=wall)
            )
        assert main(["sentinel", "--ledger"]) == 0
        assert "ledger: ok" in capsys.readouterr().out
