"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_run_version(self, capsys):
        assert main(["run", "2"]) == 0
        out = capsys.readouterr().out
        assert "DecodingReport(2, lossless" in out

    def test_run_lossy(self, capsys):
        assert main(["run", "2", "--lossy"]) == 0
        assert "lossy" in capsys.readouterr().out

    def test_run_functional(self, capsys):
        assert main(["run", "1", "--functional"]) == 0
        assert "produced an image" in capsys.readouterr().out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--versions", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SW only" in out
        assert "HW/SW not parallel" in out
        assert "6a" not in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "occupied slices" in out
        assert "est. frequency" in out

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        out = capsys.readouterr().out
        assert "idwt53 FOSSY VHDL" in out
        assert "2231" in out  # the paper column is present

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "arith" in out
        assert "88.80" in out

    def test_profile_reports_processes_and_stages(self, capsys):
        assert main(["profile", "2"]) == 0
        out = capsys.readouterr().out
        assert "simulation profile" in out
        assert "telemetry summary" in out
        assert "cf. Fig. 1" in out

    def test_profile_json(self, capsys):
        import json

        assert main(["profile", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2"
        assert payload["profile"]["total_steps"] > 0
        assert "kernel.delta_cycles" in payload["metrics"]["counters"]
        assert payload["stage_shares"]
        assert payload["decode_ms"] > 0

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "2", "--out", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert phases == {"M", "X"}

    def test_trace_leaves_telemetry_disabled(self, tmp_path):
        from repro import telemetry

        assert main(["trace", "2", "--out", str(tmp_path / "t.json")]) == 0
        assert telemetry.active() is None

    def test_versions_lists_catalog(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        assert "Registered design descriptions" in out
        assert "SW only" in out
        assert "HW/SW SO connected to bus & P2P" in out
        assert "4 cpus" in out

    def test_validate_all(self, capsys):
        assert main(["validate", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 9
        assert "INVALID" not in out

    def test_validate_one_version(self, capsys):
        assert main(["validate", "6b"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK")
        assert "6 p2p" in out

    def test_validate_spec_file(self, capsys, tmp_path):
        spec_file = tmp_path / "myspec.py"
        spec_file.write_text(
            "from repro.design import catalog\n"
            "SPEC = catalog.scaled_vta_spec(2, idwt_links_p2p=True)\n"
        )
        assert main(["validate", str(spec_file)]) == 0
        assert "7b-n2" in capsys.readouterr().out

    def test_validate_broken_spec_file_fails(self, capsys, tmp_path):
        spec_file = tmp_path / "broken.py"
        spec_file.write_text(
            "from dataclasses import replace\n"
            "from repro.design import catalog\n"
            "spec = catalog.get('7b')\n"
            "SPEC = replace(spec, mapping=replace(spec.mapping, processors=()))\n"
        )
        assert main(["validate", str(spec_file)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "not mapped to any processor" in out

    def test_validate_file_without_spec_rejected(self, tmp_path):
        spec_file = tmp_path / "empty.py"
        spec_file.write_text("x = 1\n")
        with pytest.raises(SystemExit, match="neither SPEC nor SPECS"):
            main(["validate", str(spec_file)])

    def test_validate_unknown_target_rejected(self):
        with pytest.raises(SystemExit, match="unknown target"):
            main(["validate", "9z"])

    def test_profile_json_carries_design_identity(self, capsys):
        import json

        assert main(["profile", "6b", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"]["name"] == "6b"
        assert payload["design"]["layer"] == "vta"

    def test_unknown_version_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "9z"])

    def test_table1_unknown_version_rejected(self):
        with pytest.raises(SystemExit, match="registered versions"):
            main(["table1", "--versions", "1", "99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestExperimentCli:
    """The experiment-engine subcommands, driven on cheap experiments."""

    def test_experiments_lists_registry(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table1_application_layer" in out
        assert "wallclock_decode" in out
        assert "groups:" in out and "ablations" in out

    def test_sweep_cold_then_warm(self, capsys, tmp_path):
        args = ["sweep", "table2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "FOSSY" in cold
        assert "cached=0" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "executed=0" in warm
        # Same tables, whether computed or served from the cache.
        assert warm.split("#")[0] == cold.split("#")[0]

    def test_sweep_no_cache_leaves_directory_empty(self, capsys, tmp_path):
        assert main(["sweep", "loc", "--no-cache",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "LoC" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_sweep_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiment or group"):
            main(["sweep", "bogus"])

    def test_results_requires_an_action(self):
        with pytest.raises(SystemExit, match="--regen and/or --check"):
            main(["results"])

    def test_results_check_clean_for_cheap_experiment(self, capsys, tmp_path):
        """The committed wallclock artifact reproduces byte-identically."""
        assert main(["results", "--check", "--experiments", "wallclock_decode",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "reproduce byte-identically" in capsys.readouterr().out

    def test_results_regen_writes_into_out_dir(self, capsys, tmp_path):
        out = tmp_path / "results"
        assert main(["results", "--regen", "--experiments", "table2",
                     "--out", str(out), "--cache-dir", str(tmp_path / "c")]) == 0
        assert (out / "table2_synthesis.txt").exists()
        assert (out / "table2_ratios.csv").exists()

    def test_results_check_reports_drift(self, capsys, tmp_path):
        out = tmp_path / "results"
        cache = ["--cache-dir", str(tmp_path / "c")]
        assert main(["results", "--regen", "--experiments", "table2",
                     "--out", str(out)] + cache) == 0
        victim = out / "table2_synthesis.txt"
        assert "IDWT53" in victim.read_text()
        victim.write_text(victim.read_text().replace("IDWT53", "IDWTXX"))
        capsys.readouterr()
        assert main(["results", "--check", "--experiments", "table2",
                     "--out", str(out)] + cache) == 1
        diff = capsys.readouterr().out
        assert "table2_synthesis.txt" in diff
        assert "IDWTXX" in diff  # the unified diff body is printed
