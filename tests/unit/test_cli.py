"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_run_version(self, capsys):
        assert main(["run", "2"]) == 0
        out = capsys.readouterr().out
        assert "DecodingReport(2, lossless" in out

    def test_run_lossy(self, capsys):
        assert main(["run", "2", "--lossy"]) == 0
        assert "lossy" in capsys.readouterr().out

    def test_run_functional(self, capsys):
        assert main(["run", "1", "--functional"]) == 0
        assert "produced an image" in capsys.readouterr().out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--versions", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SW only" in out
        assert "HW/SW not parallel" in out
        assert "6a" not in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "occupied slices" in out
        assert "est. frequency" in out

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        out = capsys.readouterr().out
        assert "idwt53 FOSSY VHDL" in out
        assert "2231" in out  # the paper column is present

    def test_fig1_small(self, capsys):
        assert main(["fig1", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "arith" in out
        assert "88.80" in out

    def test_profile_reports_processes_and_stages(self, capsys):
        assert main(["profile", "2"]) == 0
        out = capsys.readouterr().out
        assert "simulation profile" in out
        assert "telemetry summary" in out
        assert "cf. Fig. 1" in out

    def test_profile_json(self, capsys):
        import json

        assert main(["profile", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2"
        assert payload["profile"]["total_steps"] > 0
        assert "kernel.delta_cycles" in payload["metrics"]["counters"]
        assert payload["stage_shares"]
        assert payload["decode_ms"] > 0

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "2", "--out", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert phases == {"M", "X"}

    def test_trace_leaves_telemetry_disabled(self, tmp_path):
        from repro import telemetry

        assert main(["trace", "2", "--out", str(tmp_path / "t.json")]) == 0
        assert telemetry.active() is None

    def test_unknown_version_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "9z"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
