"""The perf-regression sentinel: calibration, detection, ledger drift."""

import json

import pytest

from repro.tools import sentinel


BASELINE = {
    "decode/lossless/fast-sequential": 3.0,
    "decode/lossless/batched-sequential": 2.5,
    "decode/lossy/fast-sequential": 2.8,
    "decode/lossy/batched-sequential": 2.4,
    "sim/6b/reference": 0.8,
    "sim/6b/fast": 0.3,
    "sim/7b/reference": 0.8,
    "sim/7b/fast": 0.34,
}


class TestFlattening:
    def test_flatten_decode(self):
        payload = {
            "modes": {
                "lossless": {"seconds": {"fast-sequential": 3.32}},
                "lossy": {"seconds": {"fast-sequential": 3.01}},
            }
        }
        assert sentinel.flatten_decode(payload) == {
            "decode/lossless/fast-sequential": 3.32,
            "decode/lossy/fast-sequential": 3.01,
        }

    def test_flatten_sim(self):
        payload = {
            "benches": {"6a": {"seconds": {"reference": 3.27, "fast": 1.34}}}
        }
        assert sentinel.flatten_sim(payload) == {
            "sim/6a/reference": 3.27,
            "sim/6a/fast": 1.34,
        }

    def test_flatten_sweep(self):
        payload = {"seconds": {"warm": 0.11, "cold-parallel": 4.52}}
        assert sentinel.flatten_sweep(payload) == {
            "sweep/warm": 0.11,
            "sweep/cold-parallel": 4.52,
        }

    def test_load_baselines_from_committed_files(self):
        flat = sentinel.load_baselines()
        kinds = {sentinel.metric_kind(metric) for metric in flat}
        assert {"decode", "sim", "sweep"} <= kinds
        assert all(seconds > 0 for seconds in flat.values())

    def test_load_baselines_skips_missing(self, tmp_path):
        assert sentinel.load_baselines(tmp_path) == {}

    def test_load_baselines_rejects_corrupt(self, tmp_path):
        (tmp_path / "BENCH_sim.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            sentinel.load_baselines(tmp_path)


class TestCompare:
    def test_identical_timings_pass(self):
        verdict = sentinel.compare(BASELINE, dict(BASELINE))
        assert verdict["status"] == "ok"
        assert not verdict["regressions"]
        assert verdict["scales"]["decode"] == 1.0

    def test_uniform_machine_slowdown_is_absorbed(self):
        # A 3x slower machine (or a 3x larger workload) shifts every
        # metric identically; the median calibration must absorb it.
        fresh = {metric: value * 3.0 for metric, value in BASELINE.items()}
        verdict = sentinel.compare(BASELINE, fresh)
        assert verdict["status"] == "ok"
        assert verdict["scales"]["decode"] == pytest.approx(3.0)

    def test_single_metric_slowdown_is_detected(self):
        fresh = dict(BASELINE)
        fresh["decode/lossless/fast-sequential"] *= 2.0
        verdict = sentinel.compare(BASELINE, fresh)
        assert verdict["status"] == "regression"
        assert verdict["regressions"] == ["decode/lossless/fast-sequential"]

    def test_improvement_is_reported_not_gating(self):
        fresh = dict(BASELINE)
        fresh["sim/6b/fast"] *= 0.3
        verdict = sentinel.compare(BASELINE, fresh)
        assert verdict["status"] == "ok"
        assert verdict["improvements"] == ["sim/6b/fast"]

    def test_noise_floor_protects_tiny_timings(self):
        baseline = {"sweep/warm": 0.01, "sweep/cold": 4.0, "sweep/mid": 1.0}
        fresh = dict(baseline, **{"sweep/warm": 0.03})  # 3x but 20 ms
        verdict = sentinel.compare(baseline, fresh)
        assert verdict["status"] == "ok"

    def test_disjoint_metrics_listed_not_gating(self):
        verdict = sentinel.compare(
            dict(BASELINE, **{"decode/only/base": 9.9}),
            dict(BASELINE, **{"decode/only/fresh": 9.9}),
        )
        assert verdict["status"] == "ok"
        assert set(verdict["missing"]) == {
            "decode/only/base", "decode/only/fresh",
        }


class TestSelfTest:
    def test_detects_injected_slowdown_on_committed_baselines(self):
        baseline = sentinel.load_baselines()
        verdict = sentinel.self_test(baseline)
        assert verdict["status"] == "ok"
        assert verdict["missed"] == []
        assert verdict["injected"]  # at least one victim per kind

    def test_inject_slowdown_picks_one_per_kind(self):
        injected, victims = sentinel.inject_slowdown(BASELINE, factor=2.0)
        kinds = [sentinel.metric_kind(metric) for metric in victims]
        assert sorted(set(kinds)) == ["decode", "sim"]
        for metric in victims:
            assert injected[metric] == BASELINE[metric] * 2.0

    def test_self_test_fails_when_comparator_is_blunted(self):
        baseline = {"decode/a/x": 1.0, "decode/b/x": 1.0, "decode/c/x": 1.0}
        # An absurd tolerance swallows the injected slowdown entirely.
        verdict = sentinel.self_test(baseline, tolerance=10.0)
        assert verdict["status"] == "failed"
        assert verdict["missed"]


class TestLedgerDrift:
    def _record(self, kind, label, wall, **extra):
        return {"kind": kind, "label": label, "wall_seconds": wall,
                "run_id": "r" + str(wall), **extra}

    def test_newest_vs_median_of_history(self):
        records = [
            self._record("decode", "512", 1.0),
            self._record("decode", "512", 1.1),
            self._record("decode", "512", 0.9),
            self._record("decode", "512", 5.0),  # newest: regressed
        ]
        verdict = sentinel.ledger_drift(records)
        assert verdict["status"] == "regression"
        assert verdict["regressions"] == ["decode/512"]
        assert verdict["metrics"]["decode/512"]["median"] == 1.0

    def test_single_record_series_is_skipped(self):
        verdict = sentinel.ledger_drift([self._record("sweep", "t1", 2.0)])
        assert verdict["status"] == "ok"
        assert verdict["skipped"] == ["sweep/t1"]

    def test_degraded_newest_never_gates(self):
        records = [
            self._record("decode", "512", 1.0),
            self._record("decode", "512", 9.0, degraded=True),
        ]
        verdict = sentinel.ledger_drift(records)
        assert verdict["status"] == "ok"
        assert verdict["skipped"] == ["decode/512"]

    def test_stable_series_passes(self):
        records = [
            self._record("sim", "7a", wall)
            for wall in (2.0, 2.1, 1.9, 2.05)
        ]
        assert sentinel.ledger_drift(records)["status"] == "ok"
