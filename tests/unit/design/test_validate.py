"""Static validation: every catalog spec is clean, broken specs are not."""

from dataclasses import replace

import pytest

from repro.design import SpecValidationError, catalog, check_spec, validate_spec


def _with_mapping(spec, **changes):
    return replace(spec, mapping=replace(spec.mapping, **changes))


class TestCatalogSpecsAreClean:
    @pytest.mark.parametrize("name", catalog.names())
    def test_registered_spec_validates(self, name):
        assert validate_spec(catalog.get(name)) == []

    def test_scaled_specs_validate(self):
        for p2p in (False, True):
            assert validate_spec(catalog.scaled_vta_spec(2, p2p)) == []


class TestRejections:
    def test_unmapped_task(self):
        spec = catalog.get("7b")
        broken = _with_mapping(spec, processors=spec.mapping.processors[:-1])
        errors = validate_spec(broken)
        assert any(
            "task 'sw3' is not mapped to any processor" in error
            for error in errors
        )
        assert any("ProcessorSpec.tasks" in error for error in errors)

    def test_task_mapped_twice(self):
        spec = catalog.get("6b")
        doubled = spec.mapping.processors + (
            replace(spec.mapping.processors[0], name="cpu_extra"),
        )
        errors = validate_spec(_with_mapping(spec, processors=doubled))
        assert any("mapped to 2 processors" in error for error in errors)

    def test_dangling_channel_endpoint(self):
        spec = catalog.get("6b")
        links = tuple(
            replace(link, channel="ghost") if link.client == "idwt53" and
            link.port == "store" else link
            for link in spec.mapping.links
        )
        errors = validate_spec(_with_mapping(spec, links=links))
        assert any("dangling channel endpoint" in error for error in errors)
        assert any("'ghost'" in error for error in errors)

    def test_unbound_port(self):
        spec = catalog.get("6b")
        links = tuple(
            link for link in spec.mapping.links
            if not (link.client == "idwt97" and link.port == "params")
        )
        errors = validate_spec(_with_mapping(spec, links=links))
        assert any("port idwt97.params is unbound" in error for error in errors)

    def test_over_capacity_memory(self):
        spec = catalog.get("6b")
        memory = replace(spec.memories[0], depth_words=1000)
        errors = validate_spec(replace(spec, memories=(memory,)))
        assert any("only 1000 words deep" in error for error in errors)
        assert any(
            "increase MemorySpec.depth_words" in error for error in errors
        )

    def test_guarded_object_over_bus_needs_polling(self):
        spec = catalog.get("6a")
        links = tuple(
            replace(link, poll_cycles=None) if link.client == "sw0" else link
            for link in spec.mapping.links
        )
        errors = validate_spec(_with_mapping(spec, links=links))
        assert any("needs poll_cycles" in error for error in errors)

    def test_polling_on_p2p_rejected(self):
        spec = catalog.get("6b")
        links = tuple(
            replace(link, poll_cycles=100)
            if link.channel and link.channel.startswith("p2p_control_store")
            else link
            for link in spec.mapping.links
        )
        errors = validate_spec(_with_mapping(spec, links=links))
        assert any("drop the polling interval" in error for error in errors)

    def test_duplicate_names(self):
        spec = catalog.get("4")
        tasks = spec.tasks[:-1] + (replace(spec.tasks[0],),)
        errors = validate_spec(replace(spec, tasks=tasks))
        assert any("duplicate name 'sw0'" in error for error in errors)

    def test_application_layer_rejects_vta_refinements(self):
        spec = catalog.get("3")
        vta_spec = catalog.get("6b")
        errors = validate_spec(
            _with_mapping(spec, channels=vta_spec.mapping.channels[:1])
        )
        assert any("vta refinements" in error for error in errors)

    def test_check_spec_raises_with_bulleted_message(self):
        spec = catalog.get("7b")
        broken = _with_mapping(spec, processors=())
        with pytest.raises(SpecValidationError) as excinfo:
            check_spec(broken)
        assert excinfo.value.spec_name == "7b"
        assert len(excinfo.value.errors) >= 4  # one per unmapped task
        assert "\n  - " in str(excinfo.value)

    def test_elaboration_refuses_invalid_spec(self):
        from repro.casestudy.workload import paper_workload
        from repro.design import elaborate_design

        spec = catalog.get("6b")
        broken = _with_mapping(spec, processors=())
        with pytest.raises(SpecValidationError):
            elaborate_design(broken, paper_workload(True))


class TestMachineReadableCodes:
    """Every issue is still a plain string, but carries ``rule``/``path``
    codes so the enumerator can classify rejections without parsing
    prose."""

    def test_issues_are_strings_with_rule_and_path(self):
        spec = catalog.get("7b")
        broken = _with_mapping(spec, processors=spec.mapping.processors[:-1])
        errors = validate_spec(broken)
        assert errors
        for error in errors:
            assert isinstance(error, str)
            assert isinstance(error.rule, str) and "." in error.rule
            assert isinstance(error.path, str) and error.path
            record = error.as_dict()
            assert record["message"] == str(error)
            assert record["rule"] == error.rule
            assert record["path"] == error.path

    def test_unmapped_task_code(self):
        spec = catalog.get("7b")
        broken = _with_mapping(spec, processors=spec.mapping.processors[:-1])
        issues = {e.rule for e in validate_spec(broken)}
        assert "tasks.unmapped" in issues

    def test_duplicate_name_code_and_path(self):
        spec = catalog.get("4")
        tasks = spec.tasks[:-1] + (replace(spec.tasks[0],),)
        errors = validate_spec(replace(spec, tasks=tasks))
        error = next(e for e in errors if e.rule == "names.duplicate")
        assert "sw0" in error.path

    def test_dangling_endpoint_code_names_the_link(self):
        spec = catalog.get("6b")
        links = tuple(
            replace(link, channel="ghost") if link.client == "idwt53" and
            link.port == "store" else link
            for link in spec.mapping.links
        )
        errors = validate_spec(_with_mapping(spec, links=links))
        error = next(
            e for e in errors if e.rule == "channels.dangling-endpoint"
        )
        assert "idwt53" in error.path

    def test_polling_codes(self):
        spec = catalog.get("6a")
        links = tuple(
            replace(link, poll_cycles=None) if link.client == "sw0" else link
            for link in spec.mapping.links
        )
        issues = {e.rule for e in validate_spec(_with_mapping(spec, links=links))}
        assert "channels.poll-required" in issues

    def test_over_capacity_memory_code(self):
        spec = catalog.get("6b")
        memory = replace(spec.memories[0], depth_words=1000)
        errors = validate_spec(replace(spec, memories=(memory,)))
        assert any(e.rule == "memories.over-capacity" for e in errors)

    def test_pipeline_window_rule(self):
        from repro.design.validate import PIPELINE_SLOTS_PER_TASK

        spec = catalog.get("7b")  # 4 pipelined tasks → needs 16 slots
        store = next(
            s for s in spec.shared_objects if s.behaviour == "tile_store"
        )
        too_small = PIPELINE_SLOTS_PER_TASK * len(spec.tasks) - 1
        shared = tuple(
            replace(s, capacity=too_small) if s.name == store.name else s
            for s in spec.shared_objects
        )
        errors = validate_spec(replace(spec, shared_objects=shared))
        error = next(
            e for e in errors if e.rule == "capacity.pipeline-window"
        )
        assert store.name in error.path
        # ...and the catalog size passes by exactly the window margin.
        assert validate_spec(spec) == []

    def test_valid_specs_emit_no_codes_at_all(self):
        for name in catalog.names():
            assert validate_spec(catalog.get(name)) == []
