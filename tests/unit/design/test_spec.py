"""The design catalog: registry contents and spec structure."""

from repro.design import catalog


class TestCatalog:
    def test_nine_versions_in_table1_order(self):
        assert catalog.names() == ["1", "2", "3", "4", "5", "6a", "6b", "7a", "7b"]

    def test_labels_match_paper_wording(self):
        assert catalog.get("1").label == "SW only"
        assert catalog.get("6b").label == "HW/SW SO connected to bus & P2P"
        assert catalog.get("7b").label == "SW par., HW/SW SO on bus & P2P"

    def test_layers(self):
        for name in ("1", "2", "3", "4", "5"):
            assert catalog.get(name).mapping.layer == "application"
        for name in ("6a", "6b", "7a", "7b"):
            assert catalog.get(name).mapping.layer == "vta"

    def test_specs_are_cached(self):
        assert catalog.get("3") is catalog.get("3")

    def test_unknown_version_raises(self):
        import pytest

        with pytest.raises(KeyError, match="registered"):
            catalog.get("9z")

    def test_vta_channel_counts(self):
        # Bus-only mappings route the IDWT store traffic over OPB (params
        # links stay P2P); the "& P2P" mappings add three store channels.
        assert len(catalog.get("6a").p2p_channels) == 3
        assert len(catalog.get("6b").p2p_channels) == 6
        assert len(catalog.get("7a").p2p_channels) == 3
        assert len(catalog.get("7b").p2p_channels) == 6

    def test_task_counts(self):
        assert len(catalog.get("6b").tasks) == 1
        assert len(catalog.get("7b").tasks) == 4
        assert len(catalog.get("7b").mapping.processors) == 4

    def test_summary_mentions_mapping(self):
        assert "direct bindings" in catalog.get("3").summary()
        summary = catalog.get("7b").summary()
        assert "4 cpus" in summary
        assert "opb" in summary

    def test_scaled_spec(self):
        spec = catalog.scaled_vta_spec(2, idwt_links_p2p=True)
        assert spec.name == "7b-n2"
        assert len(spec.mapping.processors) == 2
        assert len(spec.tasks) == 2
        assert spec.shared_object("hwsw_so").capacity == 8

    def test_with_chunk_words_replaces_rmi_links_only(self):
        spec = catalog.with_chunk_words(catalog.get("6b"), 32)
        assert all(
            link.chunk_words == 32
            for link in spec.mapping.links
            if link.transport == "rmi"
        )
        # Application-layer specs carry no RMI links: unchanged object.
        assert catalog.with_chunk_words(catalog.get("3"), 32) is catalog.get("3")

    def test_as_dict_round_trips_names(self):
        import json

        payload = catalog.get("7b").as_dict()
        assert payload["name"] == "7b"
        assert [t["name"] for t in payload["tasks"]] == ["sw0", "sw1", "sw2", "sw3"]
        json.dumps(payload)  # plain data, serialisable as-is
