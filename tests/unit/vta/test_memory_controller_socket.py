"""DDR memory controller front end and object sockets."""

import pytest

from repro.core import FunctionTask, SharedObject, osss_method
from repro.kernel import Simulator, ns, us
from repro.vta import DdrMemoryController, ObjectSocket, P2PChannel, RmiClient


@pytest.fixture
def sim():
    return Simulator()


CYCLE = ns(10)


class TestDdrController:
    def test_burst_cost(self, sim):
        ddr = DdrMemoryController(sim, CYCLE, activation_cycles=20)
        handle = ddr.connect_master("cpu")
        finish = []

        def body():
            yield from ddr.read_burst(handle, 64)
            finish.append(sim.now)

        sim.spawn(body(), "cpu")
        sim.run()
        # 1 arbitration + 20 activate + 64 words
        assert finish == [ns((1 + 20 + 64) * 10)]

    def test_channels_serialise_fcfs(self, sim):
        ddr = DdrMemoryController(sim, CYCLE)
        order = []

        def master(name, delay):
            handle = ddr.connect_master(name)

            def body():
                yield delay
                yield from ddr.write_burst(handle, 16)
                order.append(name)

            return body

        sim.spawn(master("late", ns(5))(), "late")
        sim.spawn(master("early", ns(1))(), "early")
        sim.run()
        assert order == ["early", "late"]

    def test_activation_dominates_small_bursts(self, sim):
        ddr = DdrMemoryController(sim, CYCLE, activation_cycles=20)
        small = ddr.transfer_time(1)
        large = ddr.transfer_time(256)
        # Per-word efficiency must improve dramatically with burst length.
        assert small.femtoseconds / 1 > 10 * large.femtoseconds / 256


class TestObjectSocket:
    class Echo:
        @osss_method()
        def echo(self, value):
            return value

    def test_processing_overhead_charged(self, sim):
        so = SharedObject(sim, "so", self.Echo())
        socket = ObjectSocket(so, processing_overhead=us(1))
        link = P2PChannel(sim, CYCLE)
        task = FunctionTask(sim, "t", lambda t: iter(()))
        port = task.port("p")
        port.bind(RmiClient(link, socket))
        finish = []

        def body():
            value = yield from port.call("echo", 5)
            finish.append((value, sim.now))

        sim.spawn(body(), "caller")
        sim.run()
        assert finish[0][0] == 5
        assert finish[0][1] >= us(1)
        assert socket.served_calls == 1

    def test_socket_name_defaults_to_object(self, sim):
        so = SharedObject(sim, "store", self.Echo())
        assert ObjectSocket(so).name == "store.socket"

    def test_polled_execution_counts_served_calls(self, sim):
        so = SharedObject(sim, "so", self.Echo())
        socket = ObjectSocket(so)
        link = P2PChannel(sim, CYCLE)
        task = FunctionTask(sim, "t", lambda t: iter(()))
        port = task.port("p")
        port.bind(RmiClient(link, socket, poll_interval=us(1)))

        def body():
            yield from port.call("echo", 1)

        sim.spawn(body(), "caller")
        sim.run()
        assert socket.served_calls == 1


class TestPlb:
    def test_plb_faster_than_opb_for_bulk(self, sim):
        from repro.vta import OpbBus, PlbBus

        opb = OpbBus(sim, CYCLE, cycles_per_word=3.0)
        plb = PlbBus(sim, CYCLE)
        assert plb.transfer_time(256) * 4 < opb.transfer_time(256)
