"""Software processors (N-to-1 mapping) and block-RAM models."""

import pytest

from repro.core import CycleBudget, FunctionTask, OsssArray
from repro.kernel import Simulator, ms, ns, us
from repro.vta import BlockRam, MemoryCapacityError, SoftwareProcessor, ml401


@pytest.fixture
def sim():
    return Simulator()


BUDGET = CycleBudget(100e6)


class TestSoftwareProcessor:
    def test_single_task_runs_at_full_speed(self, sim):
        cpu = SoftwareProcessor(sim, "cpu", BUDGET)
        marks = []

        def body(task):
            yield from task.eet(ms(5))
            marks.append(sim.now)

        task = FunctionTask(sim, "t", body)
        cpu.add_sw_task(task)
        task.start()
        sim.run()
        assert marks == [ms(5)]

    def test_two_tasks_share_one_processor(self, sim):
        cpu = SoftwareProcessor(sim, "cpu", BUDGET,
                                time_slice=ms(1), context_switch=us(0.001))
        marks = {}

        def body(task):
            yield from task.eet(ms(4))
            marks[task.basename] = sim.now

        for name in ("a", "b"):
            task = FunctionTask(sim, name, body)
            cpu.add_sw_task(task)
            task.start()
        sim.run()
        # 8 ms of work on one CPU: both finish close to 8 ms, not 4.
        assert min(marks.values()) > ms(7)
        assert max(marks.values()) >= ms(8)

    def test_two_processors_run_in_parallel(self, sim):
        finish = {}

        def body(task):
            yield from task.eet(ms(4))
            finish[task.basename] = sim.now

        for name in ("a", "b"):
            cpu = SoftwareProcessor(sim, f"cpu_{name}", BUDGET)
            task = FunctionTask(sim, name, body)
            cpu.add_sw_task(task)
            task.start()
        sim.run()
        assert all(when == ms(4) for when in finish.values())

    def test_context_switch_cost_accumulates(self, sim):
        cpu = SoftwareProcessor(sim, "cpu", BUDGET,
                                time_slice=ms(1), context_switch=us(10))

        def body(task):
            yield from task.eet(ms(3))

        for name in ("a", "b"):
            task = FunctionTask(sim, name, body)
            cpu.add_sw_task(task)
            task.start()
        sim.run()
        assert cpu.switches >= 4
        assert sim.now > ms(6)  # work plus switching overhead

    def test_double_mapping_rejected(self, sim):
        cpu = SoftwareProcessor(sim, "cpu", BUDGET)
        task = FunctionTask(sim, "t", lambda t: iter(()))
        cpu.add_sw_task(task)
        with pytest.raises(RuntimeError, match="already mapped"):
            cpu.add_sw_task(task)

    def test_utilisation(self, sim):
        cpu = SoftwareProcessor(sim, "cpu", BUDGET)

        def body(task):
            yield from task.eet(ms(1))
            yield ms(1)  # idle (not CPU work)

        task = FunctionTask(sim, "t", body)
        cpu.add_sw_task(task)
        task.start()
        sim.run()
        assert cpu.utilisation(sim.now) == pytest.approx(0.5, rel=0.01)


class TestBlockRam:
    def test_access_timing(self, sim):
        ram = BlockRam(sim, ns(10), data_bits=32, address_bits=8)
        marks = []

        def body():
            yield from ram.write(5, 123)
            value = yield from ram.read(5)
            marks.append((value, sim.now))

        sim.spawn(body(), "p")
        sim.run()
        assert marks == [(123, ns(20))]

    def test_unwritten_reads_zero(self, sim):
        ram = BlockRam(sim, ns(10), address_bits=4)
        values = []

        def body():
            value = yield from ram.read(3)
            values.append(value)

        sim.spawn(body(), "p")
        sim.run()
        assert values == [0]

    def test_port_contention_serialises(self, sim):
        ram = BlockRam(sim, ns(10), address_bits=8, ports=1)
        finish = []

        def body(addr):
            yield from ram.write(addr, addr)
            finish.append(sim.now)

        sim.spawn(body(1), "a")
        sim.spawn(body(2), "b")
        sim.run()
        assert finish == [ns(10), ns(20)]

    def test_dual_port_parallel_access(self, sim):
        ram = BlockRam(sim, ns(10), address_bits=8, ports=2)
        finish = []

        def body(addr, port):
            yield from ram.write(addr, addr, port=port)
            finish.append(sim.now)

        sim.spawn(body(1, 0), "a")
        sim.spawn(body(2, 1), "b")
        sim.run()
        assert finish == [ns(10), ns(10)]

    def test_out_of_range_address(self, sim):
        ram = BlockRam(sim, ns(10), address_bits=4)

        def body():
            yield from ram.read(16)

        sim.spawn(body(), "p")
        with pytest.raises(Exception, match="outside"):
            sim.run()

    def test_primitive_count(self, sim):
        ram = BlockRam(sim, ns(10), data_bits=18, address_bits=10)
        # 18 Kib exactly fills one RAMB16 primitive.
        assert ram.primitives == 1
        big = BlockRam(sim, ns(10), data_bits=32, address_bits=14)
        assert big.primitives == 29  # 512 Kib / 18 Kib

    def test_backed_array_accumulates_debt(self, sim):
        ram = BlockRam(sim, ns(10), address_bits=10)
        array = OsssArray(16, element_bits=18)
        backed = ram.back_array(array)
        array[0] = 1
        _ = array[0]
        _ = array[5]
        assert backed.pending_accesses == 3
        assert backed.settle() == ns(30)
        assert backed.pending_accesses == 0

    def test_backed_array_capacity_checked(self, sim):
        ram = BlockRam(sim, ns(10), address_bits=3)  # depth 8
        array = OsssArray(16, element_bits=18)
        with pytest.raises(MemoryCapacityError):
            ram.back_array(array)

    def test_invalid_port_count(self, sim):
        with pytest.raises(ValueError):
            BlockRam(sim, ns(10), ports=3)


class TestPlatform:
    def test_ml401_defaults(self):
        platform = ml401()
        assert platform.device.part == "xc4vlx25"
        assert platform.frequency_hz == 100e6
        assert platform.clock_period == ns(10)

    def test_clock_factory(self, sim):
        clock = ml401().make_clock(sim)
        assert clock.period == ns(10)

    def test_utilisation_helper(self):
        device = ml401().device
        assert device.utilisation(device.slices) == pytest.approx(1.0)
