"""Channel models: transfer timing, arbitration, contention, duplex."""

import pytest

from repro.core import StaticPriority
from repro.kernel import Simulator, ns
from repro.vta import DdrMemoryController, OpbBus, OsssChannel, P2PChannel


@pytest.fixture
def sim():
    return Simulator()


CYCLE = ns(10)


class TestTransferTime:
    def test_opb_single_transfer_cost(self, sim):
        bus = OpbBus(sim, CYCLE, cycles_per_word=3.0, setup_cycles=1)
        # 1 setup + 3 x 4 words = 13 cycles
        assert bus.transfer_time(4) == ns(130)

    def test_opb_burst_amortises_when_enabled(self, sim):
        bus = OpbBus(sim, CYCLE, cycles_per_word=3.0, setup_cycles=1,
                     burst_cycles_per_word=1.0)
        bus.burst_threshold_words = 8
        assert bus.transfer_time(16) == ns((1 + 16) * 10)

    def test_opb_bursts_disabled_by_default(self, sim):
        bus = OpbBus(sim, CYCLE, cycles_per_word=3.0, setup_cycles=1)
        assert bus.transfer_time(100) == ns((1 + 300) * 10)

    def test_p2p_streams_one_word_per_cycle(self, sim):
        link = P2PChannel(sim, CYCLE)
        assert link.transfer_time(64) == ns((1 + 64) * 10)

    def test_ddr_activation_plus_stream(self, sim):
        ddr = DdrMemoryController(sim, CYCLE, activation_cycles=20)
        assert ddr.transfer_time(32) == ns((20 + 32) * 10)


class TestOccupancyAndContention:
    def test_two_masters_serialise_on_bus(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        finish = {}

        def master(name):
            handle = bus.connect_master(name)

            def body():
                yield from bus.transport(handle, 10)
                finish[name] = sim.now

            return body

        sim.spawn(master("m0")(), "m0")
        sim.spawn(master("m1")(), "m1")
        sim.run()
        assert sorted(finish.values()) == [ns(100), ns(200)]

    def test_priority_master_granted_first(self, sim):
        bus = OpbBus(sim, CYCLE, policy=StaticPriority(), arbitration_cycles=0,
                     setup_cycles=0, cycles_per_word=1.0)
        finish = {}
        low = bus.connect_master("low", priority=5)
        high = bus.connect_master("high", priority=0)

        def body(name, handle):
            yield from bus.transport(handle, 10)
            finish[name] = sim.now

        sim.spawn(body("low", low), "low")
        sim.spawn(body("high", high), "high")
        sim.run()
        assert finish["high"] < finish["low"]

    def test_arbitration_cycles_charged_per_transaction(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=2, setup_cycles=0,
                     cycles_per_word=1.0)
        handle = bus.connect_master("m")
        finish = []

        def body():
            yield from bus.transport(handle, 5)
            finish.append(sim.now)

        sim.spawn(body(), "m")
        sim.run()
        assert finish == [ns((2 + 5) * 10)]

    def test_full_duplex_transfers_overlap(self, sim):
        link = P2PChannel(sim, CYCLE, setup_cycles=0)
        finish = {}
        handle = link.connect_master("end")

        def direction(name):
            def body():
                yield from link.transport(handle, 100)
                finish[name] = sim.now

            return body

        sim.spawn(direction("tx")(), "tx")
        sim.spawn(direction("rx")(), "rx")
        sim.run()
        # Both directions complete simultaneously: no mutual exclusion.
        assert finish["tx"] == finish["rx"] == ns(1000)

    def test_p2p_rejects_second_master(self, sim):
        link = P2PChannel(sim, CYCLE)
        link.connect_master("a")
        with pytest.raises(RuntimeError, match="at most 1"):
            link.connect_master("b")


class TestStatistics:
    def test_words_and_transactions_counted(self, sim):
        bus = OpbBus(sim, CYCLE)
        handle = bus.connect_master("m")

        def body():
            yield from bus.transport(handle, 8)
            yield from bus.transport(handle, 4)

        sim.spawn(body(), "m")
        sim.run()
        assert bus.stats.transactions == 2
        assert bus.stats.words == 12

    def test_wait_time_recorded_under_contention(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        handles = [bus.connect_master(f"m{i}") for i in range(2)]

        def body(handle):
            yield from bus.transport(handle, 10)

        for index, handle in enumerate(handles):
            sim.spawn(body(handle), f"m{index}")
        sim.run()
        assert bus.stats.wait_fs == ns(100).femtoseconds

    def test_utilisation(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        handle = bus.connect_master("m")

        def body():
            yield from bus.transport(handle, 10)
            yield ns(100)

        sim.spawn(body(), "m")
        sim.run()
        assert bus.utilisation(sim.now) == pytest.approx(0.5)

    def test_stats_as_dict_and_utilisation(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        handles = [bus.connect_master(f"m{i}") for i in range(2)]

        def master(handle):
            yield from bus.transport(handle, 10)

        def idler():
            yield ns(400)

        for index, handle in enumerate(handles):
            sim.spawn(master(handle), f"m{index}")
        sim.spawn(idler(), "idle")
        sim.run()
        # Two serialised 100 ns transfers; the loser waits 100 ns.
        assert bus.stats.as_dict() == {
            "transactions": 2,
            "words": 20,
            "busy_fs": ns(200).femtoseconds,
            "wait_fs": ns(100).femtoseconds,
        }
        # 200 ns busy of 400 ns elapsed — SimTime and raw fs both accepted.
        assert bus.stats.utilisation(sim.now) == pytest.approx(0.5)
        assert bus.stats.utilisation(sim.now.femtoseconds) == pytest.approx(0.5)
        assert bus.stats.utilisation(0) == 0.0

    def test_negative_word_count_rejected(self, sim):
        bus = OpbBus(sim, CYCLE)
        handle = bus.connect_master("m")

        def body():
            yield from bus.transport(handle, -1)

        sim.spawn(body(), "m")
        with pytest.raises(Exception, match="non-negative"):
            sim.run()


class TestBurstFastForwardEquivalence:
    """Fast-mode burst fast-forwarding must reproduce the reference arbiter.

    Runs the same traffic pattern under both scheduler modes and compares
    every observable: per-master completion times, wait/busy statistics,
    transaction and word counts.
    """

    @staticmethod
    def _run_traffic(fast, priorities=(0, 0, 0), starts=(0, 0, 50),
                     words=(10, 4, 7), policy=None):
        sim = Simulator(fast=fast)
        bus = OpbBus(sim, CYCLE, arbitration_cycles=2, setup_cycles=1,
                     cycles_per_word=2.0, policy=policy)
        finish = {}

        def master(name, priority, start_ns, count):
            handle = bus.connect_master(name, priority)

            def body():
                if start_ns:
                    yield ns(start_ns)
                yield from bus.transport(handle, count)
                yield ns(5)  # idle gap, then a second burst
                yield from bus.transport(handle, count)
                finish[name] = sim.now.femtoseconds

            return body

        for index, (priority, start, count) in enumerate(zip(priorities, starts, words)):
            sim.spawn(master(f"m{index}", priority, start, count)(), f"m{index}")
        sim.run()
        stats = bus.stats
        return finish, stats.transactions, stats.words, stats.busy_fs, stats.wait_fs

    def test_contended_traffic_matches_reference(self):
        assert self._run_traffic(fast=True) == self._run_traffic(fast=False)

    def test_priority_contention_matches_reference(self):
        kwargs = dict(priorities=(2, 1, 0), starts=(0, 0, 0),
                      policy=StaticPriority())
        assert (
            self._run_traffic(fast=True, **kwargs)
            == self._run_traffic(fast=False, **kwargs)
        )

    def test_uncontended_single_master_matches_reference(self):
        kwargs = dict(priorities=(0,), starts=(0,), words=(13,))
        assert (
            self._run_traffic(fast=True, **kwargs)
            == self._run_traffic(fast=False, **kwargs)
        )
