"""RMI transactors: transfer accounting, chunking, grant polling."""

import pytest

from repro.core import FunctionTask, SharedObject, guarded, osss_method
from repro.core.serialisation import Serialisable
from repro.kernel import Simulator, ns, us
from repro.vta import ObjectSocket, OpbBus, P2PChannel, RmiClient


@pytest.fixture
def sim():
    return Simulator()


CYCLE = ns(10)


class BigPayload(Serialisable):
    def __init__(self, words):
        self.words = words

    def payload_bits(self):
        return self.words * 32


class Echo:
    @osss_method()
    def echo(self, payload):
        return payload

    @osss_method()
    def ping(self):
        return "pong"


def build(sim, channel, behaviour=None, **rmi_kwargs):
    so = SharedObject(sim, "so", behaviour or Echo())
    socket = ObjectSocket(so)
    client = RmiClient(channel, socket, **rmi_kwargs)
    task = FunctionTask(sim, "caller", lambda t: iter(()))
    port = task.port("p")
    port.bind(client)
    return so, socket, client, port


class TestTransferAccounting:
    def test_call_time_includes_both_directions(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        _, _, client, port = build(sim, bus)
        finish = []

        def body():
            result = yield from port.call("ping")
            finish.append((result, sim.now))

        sim.spawn(body(), "c")
        sim.run()
        # request: header 1 word; response: header + "pong" (4 bytes) = 2.
        assert finish == [("pong", ns(30))]
        assert client.calls == 1
        assert client.words_sent == 1
        assert client.words_received == 2

    def test_payload_size_drives_duration(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        _, _, _, port = build(sim, bus)
        finish = []

        def body():
            yield from port.call("echo", BigPayload(100))
            finish.append(sim.now)

        sim.spawn(body(), "c")
        sim.run()
        # request: 1 + 100; response: 1 + 100 -> 202 words at 1 cycle each
        assert finish == [ns(2020)]


class TestChunking:
    def test_large_transfer_split_into_transactions(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        _, _, _, port = build(sim, bus, chunk_words=32)

        def body():
            yield from port.call("echo", BigPayload(100))

        sim.spawn(body(), "c")
        sim.run()
        # 101 request words -> 4 chunks; 101 response words -> 4 chunks.
        assert bus.stats.transactions == 8
        assert bus.stats.words == 202

    def test_chunking_lets_other_master_interleave(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        _, _, _, port = build(sim, bus, chunk_words=16)
        other = bus.connect_master("other")
        other_done = []

        def bulk():
            yield from port.call("echo", BigPayload(200))

        def small():
            yield ns(5)  # arrive mid-bulk
            yield from bus.transport(other, 4)
            other_done.append(sim.now)

        sim.spawn(bulk(), "bulk")
        sim.spawn(small(), "small")
        sim.run()
        # Without chunking the small transfer would wait ~2000 ns; with
        # 16-word chunks it slots in after the first chunk.
        assert other_done[0] < ns(500)


class TestPolling:
    class Gate:
        def __init__(self):
            self.open = False

        @osss_method()
        def unlock(self):
            self.open = True

        @osss_method(guard=guarded(lambda self: self.open))
        def enter(self):
            return "entered"

    def test_blocked_call_polls_the_bus(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        gate = self.Gate()
        so = SharedObject(sim, "gate", gate)
        socket = ObjectSocket(so)
        waiter_client = RmiClient(bus, socket, poll_interval=us(1))
        opener_client = RmiClient(bus, socket)
        results = []

        def waiter(task):
            value = yield from task.p.call("enter")
            results.append((value, sim.now))

        def opener(task):
            yield us(20)
            yield from task.p.call("unlock")

        wait_task = FunctionTask(sim, "waiter", waiter)
        port = wait_task.port("p")
        port.bind(waiter_client)
        wait_task.p = port
        open_task = FunctionTask(sim, "opener", opener)
        port = open_task.port("p")
        port.bind(opener_client)
        open_task.p = port
        wait_task.start()
        open_task.start()
        sim.run()
        assert results and results[0][0] == "entered"
        assert waiter_client.polls > 0  # status reads happened on the bus

    def test_fast_grant_avoids_polling(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        _, _, client, port = build(sim, bus, poll_interval=us(1))

        def body():
            yield from port.call("ping")

        sim.spawn(body(), "c")
        sim.run()
        assert client.polls == 0

    def test_backoff_limits_poll_count(self, sim):
        bus = OpbBus(sim, CYCLE, arbitration_cycles=0, setup_cycles=0,
                     cycles_per_word=1.0)
        gate = self.Gate()
        so = SharedObject(sim, "gate", gate)
        socket = ObjectSocket(so)
        client = RmiClient(bus, socket, poll_interval=us(1))
        task = FunctionTask(sim, "w", lambda t: iter(()))
        port = task.port("p")
        port.bind(client)

        def waiter():
            yield from port.call("enter")

        def opener():
            yield us(5000)  # a long wait: backoff must kick in
            gate.open = True
            so._state_changed.notify(delta=True)

        sim.spawn(waiter(), "w")
        sim.spawn(opener(), "o")
        sim.run()
        # Without backoff ~5000 polls; with doubling up to 64x far fewer.
        assert client.polls < 150


class TestSeamlessness:
    def test_same_code_runs_bound_directly_or_via_rmi(self, sim):
        """The refinement invariant: behaviour code identical either way."""

        def body(task):
            result = yield from task.p.call("ping")
            task.result_value = result

        # Application Layer: direct binding.
        so_direct = SharedObject(sim, "so_direct", Echo())
        direct = FunctionTask(sim, "direct", body)
        port = direct.port("p")
        port.bind(so_direct)
        direct.p = port
        # VTA: via RMI over a P2P channel.
        link = P2PChannel(sim, CYCLE)
        so_remote = SharedObject(sim, "so_remote", Echo())
        remote = FunctionTask(sim, "remote", body)
        port = remote.port("p")
        port.bind(RmiClient(link, ObjectSocket(so_remote)))
        remote.p = port
        direct.start()
        remote.start()
        sim.run()
        assert direct.result_value == remote.result_value == "pong"
