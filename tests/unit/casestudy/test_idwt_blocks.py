"""The IDWT subsystem blocks in isolation (control + filter pipeline)."""

import pytest

from repro.casestudy.idwt_blocks import Idwt2dControl, IdwtFilterBlock, IdwtMetrics
from repro.casestudy.messages import WirePayload
from repro.casestudy.shared_objects import IdwtParamsBehaviour, TileStoreBehaviour
from repro.casestudy.workload import paper_workload
from repro.core import FunctionTask, SharedObject
from repro.kernel import Simulator, ms


def build_subsystem(sim, workload, total_jobs):
    store = TileStoreBehaviour(workload, capacity_tiles=8)
    store_so = SharedObject(sim, "store", store)
    params_so = SharedObject(sim, "params", IdwtParamsBehaviour())
    metrics = IdwtMetrics()
    control = Idwt2dControl(sim, "idwt2d", workload, total_jobs)
    control.store_port.bind(store_so)
    control.params_port.bind(params_so)
    filters = [
        IdwtFilterBlock(sim, "idwt53", workload, "5/3", metrics),
        IdwtFilterBlock(sim, "idwt97", workload, "9/7", metrics),
    ]
    for block in filters:
        block.store_port.bind(store_so)
        block.params_port.bind(params_so)
    control.start()
    for block in filters:
        block.start()
    return store, store_so, metrics, filters


class TestFilterPipeline:
    def test_processes_submitted_components(self):
        sim = Simulator()
        workload = paper_workload(True)
        store, store_so, metrics, _ = build_subsystem(sim, workload, total_jobs=3)

        def feeder(task):
            for component in range(3):
                yield from task.p.call(
                    "put_component", 0, component, WirePayload(workload.words_per_component)
                )
            result = yield from task.p.call("get_result", 0)
            task.result = result

        task = FunctionTask(sim, "feeder", feeder)
        port = task.port("p")
        port.bind(store_so)
        task.p = port
        task.start()
        sim.run()
        assert task.finished
        assert metrics.jobs == 3
        assert metrics.busy_ms > 0

    def test_mode_routing(self):
        """Lossless jobs run on the 5/3 filter, lossy on the 9/7 one."""
        for lossless in (True, False):
            sim = Simulator()
            workload = paper_workload(lossless)
            store, store_so, metrics, filters = build_subsystem(sim, workload, 3)

            def feeder(task):
                for component in range(workload.num_components):
                    yield from task.p.call("put_component", 0, component, WirePayload(1))
                yield from task.p.call("get_result", 0)

            task = FunctionTask(sim, "feeder", feeder)
            port = task.port("p")
            port.bind(store_so)
            task.p = port
            task.start()
            sim.run()
            assert task.finished

    def test_compute_scale_inflates_busy_time(self):
        def run(scale):
            sim = Simulator()
            workload = paper_workload(True)
            store, store_so, metrics, filters = build_subsystem(sim, workload, 3)
            for block in filters:
                block.compute_time_scale = scale

            def feeder(task):
                for component in range(workload.num_components):
                    yield from task.p.call("put_component", 0, component, WirePayload(1))
                yield from task.p.call("get_result", 0)

            task = FunctionTask(sim, "feeder", feeder)
            port = task.port("p")
            port.bind(store_so)
            task.p = port
            task.start()
            sim.run()
            return metrics.busy_ms

        assert run(2.0) > 1.5 * run(1.0)

    def test_invalid_mode_rejected(self):
        sim = Simulator()
        workload = paper_workload(True)
        with pytest.raises(ValueError, match="mode"):
            IdwtFilterBlock(sim, "bad", workload, "4/2", IdwtMetrics())


class TestMetrics:
    def test_union_accounts_overlap_once(self):
        metrics = IdwtMetrics()
        # two jobs overlapping: union is 0..30, latencies 20+20
        metrics.job_started(0)
        metrics.job_started(10_000)
        metrics.job_finished(20_000, 0)
        metrics.job_finished(30_000, 10_000)
        assert metrics.busy_fs == 30_000
        assert metrics.latency_fs == 40_000
        assert metrics.jobs == 2

    def test_disjoint_jobs_sum(self):
        metrics = IdwtMetrics()
        metrics.job_started(0)
        metrics.job_finished(10_000, 0)
        metrics.job_started(50_000)
        metrics.job_finished(65_000, 50_000)
        assert metrics.busy_fs == 25_000
