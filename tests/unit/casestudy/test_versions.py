"""Application-Layer versions 1-5: timing shape on the paper workload.

These are the quantitative claims of the paper's section 3 prose; the
full-matrix reconstruction lives in the integration tests.
"""

import pytest

from repro.casestudy import APPLICATION_VERSIONS, paper_workload, run_version


@pytest.fixture(scope="module")
def reports():
    out = {}
    for lossless in (True, False):
        workload = paper_workload(lossless)
        mode = "lossless" if lossless else "lossy"
        for name in APPLICATION_VERSIONS:
            out[(name, mode)] = run_version(name, lossless, workload)
    return out


class TestVersion1:
    def test_totals_match_profile(self, reports):
        assert reports[("1", "lossless")].decode_ms == pytest.approx(3243.2, abs=1.0)
        assert reports[("1", "lossy")].decode_ms == pytest.approx(3664.1, abs=1.0)

    def test_idwt_share_matches_fig1(self, reports):
        report = reports[("1", "lossless")]
        assert report.idwt_ms / report.decode_ms == pytest.approx(0.055, abs=0.002)
        report = reports[("1", "lossy")]
        assert report.idwt_ms / report.decode_ms == pytest.approx(0.124, abs=0.002)


class TestVersion2:
    def test_speedup_about_10_and_19_percent(self, reports):
        for mode, expected in (("lossless", 1.10), ("lossy", 1.19)):
            speedup = (
                reports[("1", mode)].decode_ms / reports[("2", mode)].decode_ms
            )
            assert speedup == pytest.approx(expected, abs=0.03)

    def test_idwt_moves_to_hardware(self, reports):
        for mode in ("lossless", "lossy"):
            assert reports[("2", mode)].idwt_ms < reports[("1", mode)].idwt_ms / 10


class TestVersion3:
    def test_small_additional_impact_over_v2(self, reports):
        for mode in ("lossless", "lossy"):
            v2 = reports[("2", mode)].decode_ms
            v3 = reports[("3", mode)].decode_ms
            assert v3 <= v2  # pipelining can only help
            assert (v2 - v3) / v2 < 0.03  # ... but only a little

    def test_still_dominated_by_software(self, reports):
        v1 = reports[("1", "lossless")].decode_ms
        v3 = reports[("3", "lossless")].decode_ms
        assert v3 > 0.85 * v1


class TestVersion4:
    def test_speedup_factor_4_5_and_5(self, reports):
        assert reports[("1", "lossless")].decode_ms / reports[
            ("4", "lossless")
        ].decode_ms == pytest.approx(4.5, abs=0.3)
        assert reports[("1", "lossy")].decode_ms / reports[
            ("4", "lossy")
        ].decode_ms == pytest.approx(5.0, abs=0.4)


class TestVersion5:
    def test_close_to_version_4(self, reports):
        """The paper reports 5 'slightly slower' than 4; our arbitration
        model reproduces near-equality (see EXPERIMENTS.md for the
        discussion of the residual ordering)."""
        for mode in ("lossless", "lossy"):
            v4 = reports[("4", mode)].decode_ms
            v5 = reports[("5", mode)].decode_ms
            assert abs(v5 - v4) / v4 < 0.03

    def test_seven_clients_on_the_shared_object(self):
        workload = paper_workload(True)
        model = APPLICATION_VERSIONS["5"](workload)
        assert model.shared_object.num_clients == 7

    def test_version3_has_four_clients(self):
        workload = paper_workload(True)
        model = APPLICATION_VERSIONS["3"](workload)
        assert model.shared_object.num_clients == 4


class TestReports:
    def test_all_jobs_processed_in_pipelined_models(self, reports):
        report = reports[("3", "lossless")]
        assert report.details["idwt_jobs"] == 16 * 3

    def test_mode_label(self, reports):
        assert reports[("1", "lossless")].mode == "lossless"
        assert reports[("1", "lossy")].mode == "lossy"

    def test_performance_mode_has_no_image(self, reports):
        assert reports[("1", "lossless")].image is None
