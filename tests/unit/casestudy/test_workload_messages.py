"""Workload construction and the case-study payload types."""

import pytest

from repro.casestudy.messages import IdwtResult, TileComponentJob, WirePayload
from repro.casestudy.workload import (
    PAPER_COMPONENTS,
    PAPER_TILE_SIZE,
    PAPER_TILES,
    functional_workload,
    paper_workload,
)


class TestPaperWorkload:
    def test_table1_geometry(self):
        workload = paper_workload(True)
        assert workload.num_tiles == PAPER_TILES == 16
        assert workload.num_components == PAPER_COMPONENTS == 3
        assert workload.tile_width == PAPER_TILE_SIZE == 128
        assert not workload.functional

    def test_wire_sizes(self):
        workload = paper_workload(True)
        assert workload.words_per_component == 128 * 128
        assert workload.stripe_words == 8 * 128
        assert workload.stripes_per_component == 16

    def test_mode_selects_profile(self):
        lossless = paper_workload(True)
        lossy = paper_workload(False)
        assert lossless.stage_times.idwt < lossy.stage_times.idwt


class TestFunctionalWorkload:
    def test_carries_decoder_and_reference(self):
        workload = functional_workload(True, image_size=64, tile_size=32)
        assert workload.functional
        assert workload.num_tiles == 4
        assert workload.reference.width == 64

    def test_stage_times_scaled_by_tile_area(self):
        paper = paper_workload(True)
        small = functional_workload(True, image_size=64, tile_size=32)
        ratio = (32 * 32) / (128 * 128)
        assert small.stage_times.arith == pytest.approx(paper.stage_times.arith * ratio)

    def test_reference_decode_is_deterministic(self):
        a = functional_workload(False, image_size=64, tile_size=32)
        b = functional_workload(False, image_size=64, tile_size=32)
        assert a.reference == b.reference


class TestPayloads:
    def test_wire_payload_bits(self):
        assert WirePayload(100).payload_bits() == 3200
        assert WirePayload(0).payload_bits() == 0

    def test_wire_payload_validation(self):
        with pytest.raises(ValueError):
            WirePayload(-1)

    def test_wire_payload_carries_content_by_reference(self):
        content = {"big": "object"}
        payload = WirePayload(4, content)
        assert payload.content is content

    def test_job_descriptor_is_small_on_wire(self):
        job = TileComponentJob(tile_index=3, component=1, lossless=True, words=16384)
        assert job.payload_bits() == 128  # descriptor only, not the data

    def test_job_mode(self):
        assert TileComponentJob(0, 0, True, 1).mode == "5/3"
        assert TileComponentJob(0, 0, False, 1).mode == "9/7"

    def test_result_payload(self):
        assert IdwtResult(0, 2).payload_bits() == 64
