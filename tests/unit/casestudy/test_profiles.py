"""Profile calibration: Fig. 1 shares, EET derivation, cost model."""

import pytest

from repro.casestudy import (
    ARITH_MS_PER_TILE,
    CYCLES_PER_OP,
    PAPER_SHARES_LOSSLESS,
    PAPER_SHARES_LOSSY,
    PROFILE_LOSSLESS,
    PROFILE_LOSSY,
    measured_shares,
    measured_stage_times,
    profile_for,
    stage_times_from_shares,
)
from repro.jpeg2000 import StageOps
from repro.kernel import ms


class TestPaperShares:
    def test_shares_sum_to_100(self):
        assert sum(PAPER_SHARES_LOSSLESS.values()) == pytest.approx(100.0)
        assert sum(PAPER_SHARES_LOSSY.values()) == pytest.approx(100.0)

    def test_arith_dominates_both_modes(self):
        assert PAPER_SHARES_LOSSLESS["arith"] == 88.8
        assert PAPER_SHARES_LOSSY["arith"] == 78.6

    def test_idwt_is_second_in_lossy(self):
        non_arith = {k: v for k, v in PAPER_SHARES_LOSSY.items() if k != "arith"}
        assert max(non_arith, key=non_arith.get) == "idwt"


class TestDerivedStageTimes:
    def test_anchor_preserved(self):
        assert PROFILE_LOSSLESS.arith == ARITH_MS_PER_TILE
        assert PROFILE_LOSSY.arith == ARITH_MS_PER_TILE

    def test_totals_match_shares(self):
        # total = arith / arith_share
        expected = ARITH_MS_PER_TILE / 0.888
        assert PROFILE_LOSSLESS.total == pytest.approx(expected, rel=1e-6)

    def test_full_image_decode_time(self):
        # 16 tiles: the version-1 row of Table 1.
        assert 16 * PROFILE_LOSSLESS.total == pytest.approx(3243.2, abs=0.5)
        assert 16 * PROFILE_LOSSY.total == pytest.approx(3664.1, abs=0.5)

    def test_lossy_idwt_heavier_than_lossless(self):
        assert PROFILE_LOSSY.idwt > 2 * PROFILE_LOSSLESS.idwt

    def test_scaled(self):
        half = PROFILE_LOSSLESS.scaled(0.5)
        assert half.arith == PROFILE_LOSSLESS.arith / 2
        assert half.total == pytest.approx(PROFILE_LOSSLESS.total / 2)

    def test_eet_lookup(self):
        assert PROFILE_LOSSLESS.eet("arith") == ms(180)

    def test_profile_for(self):
        assert profile_for(True) is PROFILE_LOSSLESS
        assert profile_for(False) is PROFILE_LOSSY

    def test_custom_shares(self):
        times = stage_times_from_shares(
            {"arith": 50.0, "iq": 20.0, "idwt": 20.0, "ict": 5.0, "dc": 5.0},
            arith_ms=100.0,
        )
        assert times.iq == pytest.approx(40.0)
        assert times.total == pytest.approx(200.0)


class TestCostModel:
    def test_measured_shares_sum_to_100(self):
        ops = StageOps()
        for stage in ("arith", "iq", "idwt", "ict", "dc"):
            ops.add(stage, 1000)
        shares = measured_shares(ops)
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_zero_ops_rejected(self):
        with pytest.raises(ValueError):
            measured_shares(StageOps())

    def test_arith_weight_dominates(self):
        assert CYCLES_PER_OP["arith"] > 2 * max(
            weight for stage, weight in CYCLES_PER_OP.items() if stage != "arith"
        )

    def test_measured_stage_times_scale_with_frequency(self):
        ops = StageOps()
        ops.add("arith", 10_000)
        slow = measured_stage_times(ops, frequency_hz=50e6)
        fast = measured_stage_times(ops, frequency_hz=100e6)
        assert slow["arith"] == pytest.approx(2 * fast["arith"])
