"""The tile-store and IDWT-params Shared Object behaviours in isolation."""

import pytest

from repro.casestudy.messages import IdwtResult, TileComponentJob, WirePayload
from repro.casestudy.shared_objects import IdwtParamsBehaviour, TileStoreBehaviour
from repro.casestudy.workload import paper_workload
from repro.core import FunctionTask, SharedObject
from repro.kernel import Simulator, ms


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def workload():
    return paper_workload(True)


def bind_task(sim, so, name, body):
    task = FunctionTask(sim, name, body)
    port = task.port("p")
    port.bind(so)
    task.p = port
    task.start()
    return task


class TestTileStore:
    def test_claim_follows_put(self, sim, workload):
        store = TileStoreBehaviour(workload)
        so = SharedObject(sim, "store", store)
        claimed = []

        def producer(task):
            yield from task.p.call("put_component", 0, 1, WirePayload(16384))

        def consumer(task):
            job = yield from task.p.call("claim_component")
            claimed.append(job)

        bind_task(sim, so, "prod", producer)
        bind_task(sim, so, "cons", consumer)
        sim.run()
        assert claimed[0].tile_index == 0
        assert claimed[0].component == 1
        assert claimed[0].lossless

    def test_component_claimed_only_once(self, sim, workload):
        store = TileStoreBehaviour(workload)
        so = SharedObject(sim, "store", store)
        claims = []

        def producer(task):
            for comp in range(2):
                yield from task.p.call("put_component", 0, comp, WirePayload(1))

        def consumer(task):
            for _ in range(2):
                job = yield from task.p.call("claim_component")
                claims.append((job.tile_index, job.component))

        bind_task(sim, so, "prod", producer)
        bind_task(sim, so, "cons", consumer)
        sim.run()
        assert sorted(claims) == [(0, 0), (0, 1)]

    def test_get_result_waits_for_all_components(self, sim, workload):
        store = TileStoreBehaviour(workload)
        so = SharedObject(sim, "store", store)
        collected = []

        def producer(task):
            for comp in range(3):
                yield from task.p.call("put_component", 0, comp, WirePayload(1))
            # mark components done one at a time with visible delays
            for comp in range(3):
                yield ms(10)
                yield from task.p.call("component_done", IdwtResult(0, comp))

        def collector(task):
            yield from task.p.call("get_result", 0)
            collected.append(sim.now)

        bind_task(sim, so, "prod", producer)
        bind_task(sim, so, "col", collector)
        sim.run()
        assert collected == [ms(30)]

    def test_capacity_backpressure(self, sim, workload):
        store = TileStoreBehaviour(workload, capacity_tiles=2)
        so = SharedObject(sim, "store", store)
        timeline = []

        def producer(task):
            for tile in range(3):
                yield from task.p.call("put_component", tile, 0, WirePayload(1))
                timeline.append((tile, sim.now))

        def drainer(task):
            yield ms(50)
            # complete tile 0 so its slot frees up
            yield from task.p.call("claim_component")
            yield from task.p.call("component_done", IdwtResult(0, 0))
            # other components of tile 0 never arrived: fake completion
            store.slots[0].done = [True] * 3
            so._state_changed.notify(delta=True)
            yield from task.p.call("get_result", 0)

        bind_task(sim, so, "prod", producer)
        bind_task(sim, so, "drain", drainer)
        sim.run()
        assert timeline[0][1] < ms(1) and timeline[1][1] < ms(1)
        assert timeline[2][1] >= ms(50)  # third tile waited for space

    def test_iq_consumes_hardware_time(self, sim, workload):
        store = TileStoreBehaviour(workload)
        so = SharedObject(sim, "store", store)
        marks = []

        def body(task):
            yield from task.p.call("put_component", 0, 0, WirePayload(1))
            start = sim.now
            yield from task.p.call("iq", 0, 0)
            marks.append(sim.now - start)

        bind_task(sim, so, "t", body)
        sim.run()
        expected_ms = workload.stage_times.iq / 3 / 16.0
        assert marks[0].femtoseconds == pytest.approx(expected_ms * 1e12, rel=0.01)

    def test_iq_streaming_mode_is_cheap(self, sim, workload):
        store = TileStoreBehaviour(workload)
        store.iq_streaming = True
        so = SharedObject(sim, "store", store)
        marks = []

        def body(task):
            yield from task.p.call("put_component", 0, 0, WirePayload(1))
            start = sim.now
            yield from task.p.call("iq", 0, 0)
            marks.append((sim.now - start).femtoseconds)

        bind_task(sim, so, "t", body)
        sim.run()
        assert marks[0] < ms(0.001).femtoseconds

    def test_coprocessor_call_records_idwt_time(self, sim, workload):
        store = TileStoreBehaviour(workload)
        so = SharedObject(sim, "store", store)

        def body(task):
            yield from task.p.call("iq_idwt", 0, WirePayload(3 * 16384))

        bind_task(sim, so, "t", body)
        sim.run()
        expected_ms = workload.stage_times.idwt / 16.0
        assert store.coprocessor_idwt_fs == pytest.approx(expected_ms * 1e12, rel=0.01)


class TestIdwtParams:
    def test_jobs_dispatched_by_mode(self, sim):
        params = IdwtParamsBehaviour()
        so = SharedObject(sim, "params", params)
        got = {}

        def control(task):
            yield from task.p.call(
                "put_job", TileComponentJob(0, 0, lossless=True, words=1)
            )
            yield from task.p.call(
                "put_job", TileComponentJob(0, 1, lossless=False, words=1)
            )
            yield from task.p.call("shutdown")

        def filter53(task):
            job = yield from task.p.call("get_job_53")
            got["53"] = job
            assert (yield from task.p.call("get_job_53")) is None

        def filter97(task):
            job = yield from task.p.call("get_job_97")
            got["97"] = job
            assert (yield from task.p.call("get_job_97")) is None

        bind_task(sim, so, "ctl", control)
        bind_task(sim, so, "f53", filter53)
        bind_task(sim, so, "f97", filter97)
        sim.run()
        assert got["53"].mode == "5/3"
        assert got["97"].mode == "9/7"

    def test_queue_capacity_blocks_put(self, sim):
        params = IdwtParamsBehaviour(queue_capacity=1)
        so = SharedObject(sim, "params", params)
        puts = []

        def control(task):
            for index in range(2):
                yield from task.p.call(
                    "put_job", TileComponentJob(index, 0, True, 1)
                )
                puts.append(sim.now)

        def consumer(task):
            yield ms(5)
            yield from task.p.call("get_job_53")

        bind_task(sim, so, "ctl", control)
        bind_task(sim, so, "f", consumer)
        sim.run()
        assert puts[0] < ms(1)
        assert puts[1] >= ms(5)

    def test_shutdown_releases_blocked_filters(self, sim):
        params = IdwtParamsBehaviour()
        so = SharedObject(sim, "params", params)
        released = []

        def filter53(task):
            job = yield from task.p.call("get_job_53")
            released.append(job)

        def control(task):
            yield ms(3)
            yield from task.p.call("shutdown")

        bind_task(sim, so, "f53", filter53)
        bind_task(sim, so, "ctl", control)
        sim.run()
        assert released == [None]
