"""VTA mappings 6a-7b: architecture wiring and the Table 1 VTA shape."""

import pytest

from repro.casestudy import VTA_VERSIONS, paper_workload, run_version
from repro.casestudy.vta_versions import (
    Version6aBusOnly,
    Version6bBusAndP2p,
    Version7aBusOnly,
    Version7bBusAndP2p,
)


@pytest.fixture(scope="module")
def lossless_reports():
    workload = paper_workload(True)
    v1 = run_version("1", True, workload)
    v3 = run_version("3", True, workload)
    vta = {name: run_version(name, True, workload) for name in VTA_VERSIONS}
    return v1, v3, vta


class TestArchitectureWiring:
    def test_processor_counts(self):
        workload = paper_workload(True)
        assert len(Version6aBusOnly(workload).processors) == 1
        assert len(Version7aBusOnly(workload).processors) == 4

    def test_6a_puts_idwt_links_on_the_bus(self):
        model = Version6aBusOnly(paper_workload(True))
        # masters: 1 SW + control + 2 filters = 4 on the OPB
        assert len(model.opb.masters) == 4
        assert model._p2p_count == 3  # params links only (control + 2 filters)

    def test_6b_moves_idwt_links_to_p2p(self):
        model = Version6bBusAndP2p(paper_workload(True))
        assert len(model.opb.masters) == 1  # only the software task
        assert model._p2p_count == 6  # 3 store links + 3 params links

    def test_7a_has_seven_bus_masters(self):
        model = Version7aBusOnly(paper_workload(True))
        assert len(model.opb.masters) == 7  # 4 SW + control + 2 filters

    def test_explicit_memory_knobs_set(self):
        model = Version6bBusAndP2p(paper_workload(True))
        assert model.store.iq_streaming
        assert model.store.port_setup
        for block in model.filters:
            assert block.compute_time_scale > 1.0

    def test_tasks_mapped_to_processors(self):
        model = Version7bBusAndP2p(paper_workload(True))
        for task, cpu in zip(model.tasks, model.processors):
            assert task.mapped_processor is cpu


class TestVtaShape:
    def test_overall_time_barely_affected_in_6x(self, lossless_reports):
        """Paper: 'the overall decoding time is not affected significantly'."""
        v1, v3, vta = lossless_reports
        for name in ("6a", "6b"):
            assert vta[name].decode_ms < v3.decode_ms * 1.05
            assert vta[name].decode_ms < v1.decode_ms

    def test_idwt_inflated_on_bus_only_mapping(self, lossless_reports):
        """Paper: IDWT time increases 'up to a factor of 8' from 3 to 6a."""
        _, v3, vta = lossless_reports
        ratio = vta["6a"].idwt_ms / v3.idwt_ms
        assert 3.0 < ratio < 9.0

    def test_7a_idwt_worse_than_6a(self, lossless_reports):
        """Paper: 'in 7a the IDWT time is increased even more than in 6a'."""
        _, _, vta = lossless_reports
        assert vta["7a"].idwt_ms > vta["6a"].idwt_ms

    def test_6b_and_7b_idwt_equal(self, lossless_reports):
        """Paper: 'the IDWT times of 6b and 7b are equal'."""
        _, _, vta = lossless_reports
        assert vta["7b"].idwt_ms == pytest.approx(vta["6b"].idwt_ms, rel=0.10)

    def test_p2p_beats_bus_for_idwt(self, lossless_reports):
        _, _, vta = lossless_reports
        assert vta["6b"].idwt_ms < vta["6a"].idwt_ms / 2
        assert vta["7b"].idwt_ms < vta["7a"].idwt_ms / 2

    def test_idwt_hw_speedup_vs_sw_about_12x(self, lossless_reports):
        """Paper: 'a speed-up by a factor of 12 for the IDWT in HW'."""
        v1, _, vta = lossless_reports
        speedup = v1.idwt_ms / vta["6b"].idwt_ms
        assert 9.0 < speedup < 15.0

    def test_7x_keeps_software_parallel_speedup(self, lossless_reports):
        v1, _, vta = lossless_reports
        for name in ("7a", "7b"):
            assert v1.decode_ms / vta[name].decode_ms > 3.8

    def test_stats_exposed(self, lossless_reports):
        _, _, vta = lossless_reports
        details = vta["7a"].details
        assert details["opb"].transactions > 0
        assert len(details["cpu_busy_ms"]) == 4
        assert all(busy > 500 for busy in details["cpu_busy_ms"])


class TestExternalMemory:
    """The DDR controller behind the MCH: coded input and decoded output."""

    def test_ddr_traffic_accounted(self):
        workload = paper_workload(True)
        model = Version6aBusOnly(workload)
        report = model.run()
        ddr = report.details["ddr"]
        # per tile: coded input (quarter of raw) + full decoded output
        per_tile = int(3 * 128 * 128 * 0.25) + 3 * 128 * 128
        assert ddr.words == 16 * per_tile
        assert ddr.transactions == 32  # one read + one write burst per tile

    def test_four_processors_contend_for_ddr(self):
        workload = paper_workload(True)
        single = Version6aBusOnly(workload)
        single.run()
        quad = Version7aBusOnly(workload)
        quad.run()
        assert quad.ddr.stats.wait_fs > single.ddr.stats.wait_fs

    def test_application_layer_has_no_ddr(self):
        from repro.casestudy.versions import Version3HwSwParallel

        workload = paper_workload(True)
        model = Version3HwSwParallel(workload)
        report = model.run()
        assert "ddr" not in report.details
