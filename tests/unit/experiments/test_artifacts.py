"""The artifact pipeline: results/ files regenerate byte-identically.

Full-matrix regeneration is exercised by ``python -m repro results
--regen --check`` (the CI drift job); here the cheap experiments prove
byte-identity against the committed files, and the drift detection is
driven against a scratch directory.
"""

import pytest

from repro.experiments import ResultCache, Runner, artifacts, registry

#: Registry entries cheap enough for the unit suite (< 1 s together).
CHEAP = ("table2", "loc", "wallclock_decode")


@pytest.fixture(scope="module")
def cheap_files(tmp_path_factory):
    runner = Runner(cache=ResultCache(tmp_path_factory.mktemp("cache")))
    return artifacts.render_artifacts(registry.expand(list(CHEAP)), runner)


class TestRenderArtifacts:
    def test_covers_both_formats(self, cheap_files):
        stems = {stem for entry in registry.expand(list(CHEAP))
                 for stem in entry.artefacts}
        assert set(cheap_files) == {
            f"{stem}.{ext}" for stem in stems for ext in ("txt", "csv")
        }

    def test_byte_identical_to_committed_results(self, cheap_files):
        for name, content in cheap_files.items():
            committed = (artifacts.results_dir() / name).read_text(encoding="utf-8")
            assert content == committed, f"results/{name} drifted"

    def test_deterministic_across_renders(self, cheap_files, tmp_path):
        again = artifacts.render_artifacts(
            registry.expand(list(CHEAP)), Runner(cache=ResultCache(tmp_path))
        )
        assert again == cheap_files


class TestRegenerateAndCheck:
    def _runner(self, tmp_path):
        return Runner(cache=ResultCache(tmp_path / "cache"))

    def test_regenerate_then_check_clean(self, tmp_path):
        experiments = registry.expand(list(CHEAP))
        out = tmp_path / "results"
        written = artifacts.regenerate(experiments, self._runner(tmp_path), out)
        stems = sum(len(entry.artefacts) for entry in experiments)
        assert len(written) == stems * 2  # txt + csv per stem
        assert artifacts.check(experiments, self._runner(tmp_path), out) == []

    def test_check_reports_drift_with_diff(self, tmp_path):
        experiments = registry.expand(["wallclock_decode"])
        out = tmp_path / "results"
        artifacts.regenerate(experiments, self._runner(tmp_path), out)
        victim = out / "wallclock_decode.txt"
        victim.write_text(victim.read_text().replace("lossless", "lossful"))
        drift = artifacts.check(experiments, self._runner(tmp_path), out)
        assert len(drift) == 1
        assert "wallclock_decode.txt" in drift[0]
        assert "-" in drift[0] and "+" in drift[0]  # unified diff body

    def test_check_reports_missing_file(self, tmp_path):
        experiments = registry.expand(["wallclock_decode"])
        out = tmp_path / "results"
        artifacts.regenerate(experiments, self._runner(tmp_path), out)
        (out / "wallclock_decode.csv").unlink()
        drift = artifacts.check(experiments, self._runner(tmp_path), out)
        assert any("missing" in report for report in drift)
