"""The sweep runner: cache integration, dedup, pool/sequential parity.

The expensive simulation kinds are covered by the benchmarks; these
tests drive the runner with the cheap ``synthesise`` and ``layers``
kinds so the whole engine path (key -> cache -> execute -> normalise ->
store) runs in well under a second.
"""

import pytest

from repro.experiments import (
    KIND_LAYERS,
    KIND_SYNTHESISE,
    ResultCache,
    Runner,
    RunRequest,
    execute_request,
)

SYNTH_53 = RunRequest("synth:idwt53", KIND_SYNTHESISE, {"block": "idwt53"})
SYNTH_97 = RunRequest("synth:idwt97", KIND_SYNTHESISE, {"block": "idwt97"})


def _layers_request(rid="layers:1", count=1):
    return RunRequest(
        rid, KIND_LAYERS,
        {"size": 32, "tile": 16, "levels": 2, "num_layers": 2,
         "seed": 7, "layers": count},
    )


class TestRunner:
    def test_results_preserve_request_order(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        results = runner.run([SYNTH_97, SYNTH_53])
        assert [r.rid for r in results] == ["synth:idwt97", "synth:idwt53"]

    def test_cold_then_warm(self, tmp_path):
        cold = Runner(cache=ResultCache(tmp_path))
        first = cold.run([SYNTH_53])[0]
        assert not first.cached

        warm = Runner(cache=ResultCache(tmp_path))
        second = warm.run([SYNTH_53])[0]
        assert second.cached
        assert second.payload == first.payload  # bit-identical
        assert warm.last_stats["executed"] == 0

    def test_duplicate_cells_execute_once(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        renamed = RunRequest("other:rid", KIND_SYNTHESISE, {"block": "idwt53"})
        results = runner.run([SYNTH_53, renamed])
        assert runner.last_stats["executed"] == 1
        assert runner.last_stats["deduplicated"] == 1
        assert results[0].payload == results[1].payload
        # The alias shares the payload, not the owner's timing: timing
        # aggregates must count the shared cell's work exactly once.
        assert not results[0].deduplicated
        assert results[1].deduplicated
        assert results[1].seconds == 0.0

    def test_dedup_without_cache(self):
        runner = Runner(cache=None)
        results = runner.run([SYNTH_53, SYNTH_53])
        assert runner.last_stats["executed"] == 1
        assert results[0].payload == results[1].payload

    def test_no_cache_runner_stores_nothing(self, tmp_path):
        Runner(cache=None).run([SYNTH_53])
        assert list(tmp_path.iterdir()) == []

    def test_payloads_match_direct_execution(self, tmp_path):
        """Runner results are the JSON-normalised interpreter payloads."""
        import json

        direct = json.loads(json.dumps(execute_request(SYNTH_53)))
        result = Runner(cache=ResultCache(tmp_path)).run([SYNTH_53])[0]
        assert result.payload == direct

    def test_parallel_matches_sequential(self, tmp_path):
        requests = [SYNTH_53, SYNTH_97,
                    _layers_request(), _layers_request("layers:2", 2)]
        sequential = Runner(cache=None).run(requests)
        parallel = Runner(jobs=2, cache=None).run(requests)
        assert [r.payload for r in parallel] == [r.payload for r in sequential]

    def test_corrupt_cache_entry_reruns(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(cache=cache)
        first = runner.run([SYNTH_53])[0]
        path = tmp_path / f"{first.key.key}.json"
        path.write_text("garbage")
        again = Runner(cache=ResultCache(tmp_path))
        second = again.run([SYNTH_53])[0]
        assert not second.cached
        assert second.payload == first.payload


class TestExperimentApi:
    def test_run_experiment_by_id(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        outcome = runner.run_experiment("table2")
        assert set(outcome.payloads) == {"synth:idwt53", "synth:idwt97"}
        tables = outcome.tables()
        assert set(tables) == {"table2_synthesis", "table2_ratios"}
        assert "FOSSY" in tables["table2_synthesis"].render()

    def test_sweep_deduplicates_across_experiments(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        outcomes = runner.sweep(["table2", "loc"])
        assert [o.experiment.id for o in outcomes] == ["table2", "loc"]
        # table2 and loc share both synthesis cells.
        assert runner.last_stats["executed"] == 2
        assert runner.last_stats["deduplicated"] == 2
        assert (
            outcomes[0].payloads["synth:idwt53"]
            == outcomes[1].payloads["synth:idwt53"]
        )

    def test_sweep_accepts_group_name(self, monkeypatch):
        # Stub execution: this checks group expansion and result fan-in,
        # not the (expensive) Table 1 simulations themselves.
        monkeypatch.setattr(
            Runner, "_execute",
            lambda self, reqs: [({"stub": r.rid}, 0.0) for r in reqs],
        )
        runner = Runner(cache=None)
        outcomes = runner.sweep("table1")
        assert [o.experiment.id for o in outcomes] == [
            "table1_application_layer", "table1_vta_layer",
        ]
        assert all(len(o.results) == 10 for o in outcomes)
        # The two halves share the v1/v3 lossless cells.
        assert runner.last_stats["deduplicated"] == 2

    def test_telemetry_option_rides_into_cache(self, tmp_path):
        """An instrumented run is its own cache cell, spans included."""
        pytest.importorskip("repro.telemetry")
        from repro.experiments import KIND_SIMULATE

        plain = RunRequest("sim:2:lossless", KIND_SIMULATE,
                           {"version": "2", "lossless": True})
        instrumented = plain.with_options(telemetry=True)
        runner = Runner(cache=ResultCache(tmp_path))
        bare, rich = runner.run([plain, instrumented])
        assert runner.last_stats["executed"] == 2  # distinct cells
        assert bare.telemetry is None
        assert rich.telemetry is not None and rich.telemetry["stage_shares"]

        warm = Runner(cache=ResultCache(tmp_path)).run([instrumented])[0]
        assert warm.cached
        assert warm.telemetry == rich.telemetry


class TestRegistryScoping:
    """Engine runs must not leak metrics into an ambient recorder."""

    def test_simulation_run_leaves_ambient_registry_untouched(self, tmp_path):
        from repro import telemetry
        from repro.experiments import KIND_SIMULATE

        request = RunRequest("sim:2:lossless", KIND_SIMULATE,
                             {"version": "2", "lossless": True})
        ambient = telemetry.install()
        try:
            ambient.metrics.count("test.sentinel", 3)
            before = ambient.metrics.as_dict()
            Runner(cache=ResultCache(tmp_path)).run([request])
            assert telemetry.active() is ambient
            assert ambient.metrics.as_dict() == before
            warm = Runner(cache=ResultCache(tmp_path)).run([request])[0]
            assert warm.cached
            assert telemetry.active() is ambient
            assert ambient.metrics.as_dict() == before
        finally:
            telemetry.uninstall()

    def test_warm_sweep_leaves_ambient_registry_untouched(self, tmp_path):
        from repro import telemetry

        Runner(cache=ResultCache(tmp_path)).sweep(["table2", "loc"])
        ambient = telemetry.install()
        try:
            before = ambient.metrics.as_dict()
            runner = Runner(cache=ResultCache(tmp_path))
            runner.sweep(["table2", "loc"])
            assert runner.last_stats["executed"] == 0  # fully warm
            assert telemetry.active() is ambient
            assert ambient.metrics.as_dict() == before
        finally:
            telemetry.uninstall()
