"""Cache-key material and the cache safety guard.

The load-bearing satellite test: flipping one field of a design spec, or
one byte of a fingerprinted source file, must change the content address
(a cache miss) — and a corrupt or stale entry must be evicted and
re-run, never returned.
"""

import dataclasses
import json

import pytest

from repro.design import catalog
from repro.experiments import (
    CacheKey,
    KIND_SIMULATE,
    KIND_SYNTHESISE,
    ResultCache,
    RunRequest,
    cache_key,
)
from repro.experiments import fingerprint as fp
from repro.experiments.cache import CACHE_SCHEMA


def _sim_request(**options):
    return RunRequest(
        "sim:6a:lossless", KIND_SIMULATE,
        {"version": "6a", "lossless": True}, options,
    )


class TestCacheKey:
    def test_stable_across_calls(self):
        assert cache_key(_sim_request()) == cache_key(_sim_request())

    def test_params_and_options_are_identity_bearing(self):
        base = cache_key(_sim_request())
        lossy = cache_key(RunRequest(
            "sim:6a:lossy", KIND_SIMULATE, {"version": "6a", "lossless": False}
        ))
        tweaked = cache_key(_sim_request(opb_burst_threshold_words=8))
        assert base.key != lossy.key
        assert base.key != tweaked.key

    def test_rid_is_not_identity_bearing(self):
        """Two experiments naming the same cell share one cache entry."""
        renamed = dataclasses.replace(_sim_request(), rid="other:rid")
        assert cache_key(renamed).key == cache_key(_sim_request()).key

    def test_decode_options_fingerprint_is_canonical(self):
        """Satellite regression: the cache fingerprints the decode
        schedule through ``DecodeOptions.as_dict()``.  Equal-valued
        schedules hash identically however they were spelled; one field
        flip misses."""
        from repro.jpeg2000.options import DecodeOptions

        def profile(decode):
            return RunRequest(
                "profile:lossless", "profile",
                {"size": 64, "tile": 32, "lossless": True},
                {"decode": decode},
            )

        spelled_out = cache_key(profile(DecodeOptions(workers=2).as_dict()))
        as_value = cache_key(profile(DecodeOptions(workers=2)))
        defaults_omitted = cache_key(profile({"workers": 2}))
        assert spelled_out.key == as_value.key == defaults_omitted.key
        flipped = cache_key(profile({"workers": 2, "chunk_size": 9}))
        assert flipped.key != spelled_out.key

    def test_wallclock_requests_are_uncacheable(self):
        request = RunRequest("wallclock", "wallclock", {"source": "x.json"})
        assert not request.cacheable
        assert cache_key(request) is None

    def test_spec_field_flip_changes_key(self, monkeypatch):
        """Satellite guard, part 1: one changed spec field == a miss."""
        base = cache_key(_sim_request())
        original = catalog.get("6a")
        flipped = dataclasses.replace(original, label=original.label + " (flipped)")
        monkeypatch.setattr(catalog, "get", lambda name: flipped)
        changed = cache_key(_sim_request())
        assert changed.spec_hash != base.spec_hash
        assert changed.key != base.key

    def test_source_byte_flip_changes_fingerprint(self, tmp_path):
        """Satellite guard, part 2: one changed source byte == a miss."""
        root = tmp_path / "repro"
        for subsystem in ("design", "kernel"):
            (root / subsystem).mkdir(parents=True)
            (root / subsystem / "mod.py").write_text("VALUE = 1\n")
        before = fp.code_fingerprint(("design", "kernel"), root=root)
        (root / "kernel" / "mod.py").write_text("VALUE = 2\n")
        after = fp.code_fingerprint(("design", "kernel"), root=root)
        assert before != after

    def test_default_subsystems_cover_runtime_packages(self):
        """Every package a run executes is fingerprinted.

        ``experiments`` machinery is covered via EXTRA_FILES,
        ``reporting`` only renders tables from payloads (never cached),
        ``explore`` only ranks and reports payloads post-hoc (objective
        extraction and the area proxy run outside the cached cell),
        ``tools`` only reads benchmark baselines and ledger records
        (never executes experiments), and ``fossy`` joins for synthesis
        kinds — everything else must be in DEFAULT_SUBSYSTEMS or edits
        there serve stale payloads.
        """
        root = fp.package_root()
        runtime = {
            path.name for path in root.iterdir()
            if path.is_dir() and path.name not in
            {"experiments", "reporting", "explore", "tools", "fossy",
             "__pycache__"}
        }
        assert runtime <= set(fp.DEFAULT_SUBSYSTEMS)

    def test_core_and_telemetry_byte_flips_change_fingerprint(self, tmp_path):
        """Regression: core primitives and cached telemetry summaries
        are part of what a payload means, so both invalidate the key."""
        assert "core" in fp.DEFAULT_SUBSYSTEMS
        assert "telemetry" in fp.DEFAULT_SUBSYSTEMS
        root = tmp_path / "repro"
        for subsystem in fp.DEFAULT_SUBSYSTEMS:
            (root / subsystem).mkdir(parents=True)
            (root / subsystem / "mod.py").write_text("VALUE = 1\n")
        base = fp.code_fingerprint(fp.DEFAULT_SUBSYSTEMS, root=root)
        (root / "core" / "mod.py").write_text("VALUE = 2\n")
        core_flip = fp.code_fingerprint(fp.DEFAULT_SUBSYSTEMS, root=root)
        assert core_flip != base
        (root / "telemetry" / "mod.py").write_text("VALUE = 2\n")
        assert fp.code_fingerprint(fp.DEFAULT_SUBSYSTEMS, root=root) != core_flip

    def test_fingerprint_ignores_unlisted_subsystems(self, tmp_path):
        root = tmp_path / "repro"
        (root / "design").mkdir(parents=True)
        (root / "design" / "mod.py").write_text("VALUE = 1\n")
        (root / "other").mkdir()
        (root / "other" / "mod.py").write_text("VALUE = 1\n")
        before = fp.code_fingerprint(("design",), root=root)
        (root / "other" / "mod.py").write_text("VALUE = 2\n")
        assert fp.code_fingerprint(("design",), root=root) == before

    def test_synthesise_kind_hashes_fossy_sources(self):
        assert "fossy" in fp.subsystems_for_kind(KIND_SYNTHESISE)
        assert "fossy" not in fp.subsystems_for_kind(KIND_SIMULATE)


class TestResultCache:
    def _key(self, suffix=""):
        return CacheKey(
            key=f"deadbeef{suffix}", spec_hash="s1",
            workload_hash="w1", code_fingerprint="c1",
        )

    def _store(self, cache, key):
        cache.store(key, _sim_request(), {"decode_ms": 1.0}, seconds=0.5)

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._key()
        assert cache.load(key) is None  # miss before store
        self._store(cache, key)
        entry = cache.load(key)
        assert entry["payload"] == {"decode_ms": 1.0}
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0}

    def test_corrupt_entry_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._key()
        self._store(cache, key)
        path = tmp_path / f"{key.key}.json"
        path.write_text("{ not json")
        assert cache.load(key) is None
        assert not path.exists(), "corrupt entry must be deleted"
        assert cache.evictions == 1

    @pytest.mark.parametrize("field", ["spec_hash", "workload_hash", "code_fingerprint"])
    def test_stale_guard_field_is_evicted(self, tmp_path, field):
        """An entry whose embedded guard hashes mismatch is never returned."""
        cache = ResultCache(tmp_path)
        key = self._key()
        self._store(cache, key)
        path = tmp_path / f"{key.key}.json"
        entry = json.loads(path.read_text())
        entry[field] = "stale"
        path.write_text(json.dumps(entry))
        assert cache.load(key) is None
        assert not path.exists()
        assert cache.evictions == 1

    def test_old_schema_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._key()
        self._store(cache, key)
        path = tmp_path / f"{key.key}.json"
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA - 1
        path.write_text(json.dumps(entry))
        assert cache.load(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache, self._key("a"))
        self._store(cache, self._key("b"))
        assert cache.clear() == 2
        assert cache.load(self._key("a")) is None
