"""The experiment registry and the one version-selection helper."""

import pytest

from repro.casestudy import build_table1
from repro.design import catalog
from repro.experiments import registry


class TestCatalogSelect:
    def test_default_is_row_order(self):
        assert catalog.select() == list(catalog.ROW_ORDER)

    def test_subset_is_reordered_and_deduplicated(self):
        assert catalog.select(["7a", "1", "6a", "1"]) == ["1", "6a", "7a"]

    def test_single_string(self):
        assert catalog.select("6b") == ["6b"]

    def test_layer_halves(self):
        assert catalog.select(layer="application") == ["1", "2", "3", "4", "5"]
        assert catalog.select(layer="vta") == ["6a", "6b", "7a", "7b"]

    def test_ids_and_layer_compose(self):
        assert catalog.select(["1", "6a", "7b"], layer="vta") == ["6a", "7b"]

    def test_unknown_id_raises_with_vocabulary(self):
        with pytest.raises(ValueError, match=r"'99'.*registered versions"):
            catalog.select(["1", "99"])

    def test_unknown_layer_raises(self):
        with pytest.raises(ValueError, match="unknown layer"):
            catalog.select(layer="rtl")

    def test_build_table1_routes_through_select(self):
        with pytest.raises(ValueError, match="registered versions"):
            build_table1(versions=["nope"])


class TestRegistry:
    def test_all_paper_artefacts_have_owners(self):
        stems = registry.artefact_stems()
        for stem in (
            "fig1_profile", "fig1_anchor",
            "table1_application_layer", "table1_vta_layer",
            "table1_vta_bus_traffic", "table2_synthesis", "table2_ratios",
            "loc_comparison", "loc_states", "scaling_parallelism",
            "wallclock_decode",
        ):
            assert stem in stems
        assert len(stems) == len(set(stems)), "artefact stems must be unique"

    def test_get_unknown_names_vocabulary(self):
        with pytest.raises(KeyError, match="registered"):
            registry.get("nope")

    def test_expand_group(self):
        entries = registry.expand("table1")
        assert [e.id for e in entries] == [
            "table1_application_layer", "table1_vta_layer",
        ]

    def test_expand_mixes_groups_and_ids_in_registry_order(self):
        entries = registry.expand(["scaling", "table1"])
        ids = [e.id for e in entries]
        assert ids == ["table1_application_layer", "table1_vta_layer", "scaling"]

    def test_expand_unknown_token(self):
        with pytest.raises(KeyError, match="unknown experiment or group"):
            registry.expand(["table1", "bogus"])

    def test_all_group_covers_every_entry(self):
        assert {e.id for e in registry.expand("all")} == set(registry.ids())

    def test_requests_have_unique_rids_per_experiment(self):
        for entry in registry.all_experiments():
            rids = [request.rid for request in entry.requests()]
            assert len(rids) == len(set(rids)), entry.id

    def test_duplicate_registration_rejected(self):
        entry = registry.get("fig1")
        with pytest.raises(ValueError, match="registered twice"):
            registry.register(entry)


class TestRegistryLoading:
    def test_failed_defs_import_rolls_back_partial_registrations(self):
        """A defs import that dies partway must not leave a partial
        registry behind: later calls would silently see a subset, and a
        retry would hit a spurious "registered twice"."""
        import sys

        import repro.experiments as pkg

        saved_registry = dict(registry._REGISTRY)
        saved_groups = dict(registry.GROUPS)
        saved_loaded = registry._LOADED
        saved_module = sys.modules.get("repro.experiments.defs")
        # ``from . import defs`` short-circuits to the package attribute
        # when one exists; drop it so the import machinery actually runs.
        saved_attr = pkg.__dict__.pop("defs", None)

        partial = registry.Experiment(
            id="partial", title="partial", category="ablation",
            description="registered before the import dies",
            artefacts=("partial_stem",),
            build_requests=tuple, build_tables=lambda payloads: {},
        )

        class _DiesPartway:
            def find_spec(self, name, path=None, target=None):
                if name == "repro.experiments.defs":
                    registry.register(partial)
                    raise ImportError("defs import died partway")
                return None

        finder = _DiesPartway()
        try:
            registry._REGISTRY.clear()
            registry.GROUPS.clear()
            registry._LOADED = False
            sys.modules.pop("repro.experiments.defs", None)
            sys.meta_path.insert(0, finder)
            with pytest.raises(ImportError, match="died partway"):
                registry.ids()
            assert registry._REGISTRY == {}, "partial registrations must roll back"
            assert not registry._LOADED

            sys.meta_path.remove(finder)
            assert "fig1" in registry.ids()  # retry loads cleanly
        finally:
            if finder in sys.meta_path:
                sys.meta_path.remove(finder)
            registry._REGISTRY.clear()
            registry._REGISTRY.update(saved_registry)
            registry.GROUPS.clear()
            registry.GROUPS.update(saved_groups)
            registry._LOADED = saved_loaded
            if saved_module is not None:
                sys.modules["repro.experiments.defs"] = saved_module
            if saved_attr is not None:
                pkg.defs = saved_attr
