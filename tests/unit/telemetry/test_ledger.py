"""The run ledger: records, append/read robustness, diffing."""

import json

import pytest

from repro.telemetry import ledger


class TestRecords:
    def test_make_record_core_fields(self):
        record = ledger.make_record(
            "decode", label="512x512/lossless", wall_seconds=1.23456,
            schedule={"kernel": "fast"}, degraded=True,
        )
        assert record["schema"] == ledger.LEDGER_SCHEMA
        assert record["kind"] == "decode"
        assert record["label"] == "512x512/lossless"
        assert record["wall_seconds"] == 1.2346
        assert record["schedule"] == {"kernel": "fast"}
        assert record["degraded"] is True
        assert record["resumed"] is False
        assert len(record["run_id"]) == 16
        assert record["host"]["pid"] > 0

    def test_fingerprints_name_every_subsystem(self):
        record = ledger.make_record("simulate")
        fingerprints = record["fingerprints"]
        for subsystem in ("jpeg2000", "kernel", "telemetry", "vta"):
            assert len(fingerprints[subsystem]) == 64
        assert "fossy" not in fingerprints
        assert "fossy" in ledger.make_record("synthesise")["fingerprints"]

    def test_records_are_json_serialisable(self):
        record = ledger.make_record("sweep", metrics={"counters": {"a": 1}})
        json.dumps(record)


class TestAppendRead:
    def test_append_creates_and_reads_back(self, tmp_path):
        path = tmp_path / "sub" / "ledger.jsonl"
        first = ledger.make_record("decode", label="a")
        second = ledger.make_record("simulate", label="b")
        ledger.append_record(first, path)
        ledger.append_record(second, path)
        records = ledger.read_ledger(path)
        assert [r["label"] for r in records] == ["a", "b"]

    def test_torn_and_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        good = ledger.make_record("decode", label="good")
        ledger.append_record(good, path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"schema": 999, "run_id": "future"}\n')
            handle.write('{"torn": ')  # killed mid-append
        records = ledger.read_ledger(path)
        assert [r["label"] for r in records] == ["good"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert ledger.read_ledger(tmp_path / "absent.jsonl") == []

    def test_env_path_override(self, tmp_path, monkeypatch):
        override = tmp_path / "elsewhere.jsonl"
        monkeypatch.setenv(ledger.ENV_LEDGER_PATH, str(override))
        ledger.append_record(ledger.make_record("decode"))
        assert override.is_file()
        assert len(ledger.read_ledger()) == 1

    def test_ledger_enabled_flag(self, monkeypatch):
        monkeypatch.delenv(ledger.ENV_LEDGER, raising=False)
        assert ledger.ledger_enabled()
        monkeypatch.setenv(ledger.ENV_LEDGER, "0")
        assert not ledger.ledger_enabled()


class TestFindAndDiff:
    def _records(self):
        return [
            {"schema": 1, "run_id": "aa11", "kind": "decode"},
            {"schema": 1, "run_id": "ab22", "kind": "decode"},
            {"schema": 1, "run_id": "bb33", "kind": "sweep"},
        ]

    def test_find_by_index_and_negative(self):
        records = self._records()
        assert ledger.find_record(records, "0")["run_id"] == "aa11"
        assert ledger.find_record(records, "-1")["run_id"] == "bb33"

    def test_find_by_prefix_and_ambiguity(self):
        records = self._records()
        assert ledger.find_record(records, "bb")["run_id"] == "bb33"
        with pytest.raises(LookupError, match="ambiguous"):
            ledger.find_record(records, "a")
        with pytest.raises(LookupError, match="no ledger record"):
            ledger.find_record(records, "zz")

    def test_find_on_empty_ledger(self):
        with pytest.raises(LookupError, match="empty"):
            ledger.find_record([], "-1")

    def test_diff_names_changed_subsystems(self):
        old = ledger.make_record("simulate", wall_seconds=2.0)
        new = ledger.make_record("simulate", wall_seconds=3.0)
        new["fingerprints"] = dict(new["fingerprints"], kernel="0" * 64)
        diff = ledger.diff_records(old, new)
        assert diff["fingerprints_changed"] == ["kernel"]
        assert diff["wall_ratio"] == 1.5
        assert diff["spec_hash_changed"] is False

    def test_diff_metric_deltas(self):
        old = ledger.make_record(
            "decode", metrics={"counters": {"ops": 10, "same": 1}}
        )
        new = ledger.make_record(
            "decode", metrics={"counters": {"ops": 20, "same": 1}}
        )
        deltas = ledger.diff_records(old, new)["metric_deltas"]
        assert deltas == {"counter:ops": {"old": 10, "new": 20}}
