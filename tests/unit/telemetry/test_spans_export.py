"""Span recording, recorder clock, and the Chrome trace-event exporter."""

import json

import pytest

from repro import telemetry
from repro.kernel import Simulator, ns
from repro.telemetry import (
    Span,
    TelemetryRecorder,
    aggregate,
    flame_summary,
    stage_shares,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.export import FS_PER_US


@pytest.fixture
def recorder():
    return TelemetryRecorder()


class TestRecorder:
    def test_complete_records_span(self, recorder):
        recorder.complete("bus", "opb", "cpu0", 100, 400, {"words": 4})
        (span,) = recorder.spans
        assert (span.category, span.name, span.track) == ("bus", "opb", "cpu0")
        assert span.duration_fs == 300
        assert span.attrs == {"words": 4}

    def test_busy_fs_sums_per_category_and_name(self, recorder):
        recorder.complete("bus", "opb", "a", 0, 10)
        recorder.complete("bus", "opb", "b", 10, 30)
        recorder.complete("bus", "ddr", "a", 0, 5)
        recorder.complete("rmi", "x", "a", 0, 100)
        assert recorder.busy_fs("bus") == 35
        assert recorder.busy_fs("bus", "opb") == 30
        assert recorder.busy_fs("bus", "ddr") == 5

    def test_tracks_in_first_seen_order(self, recorder):
        recorder.complete("c", "n", "beta", 0, 1)
        recorder.complete("c", "n", "alpha", 0, 1)
        recorder.complete("c", "n", "beta", 1, 2)
        assert recorder.tracks() == ["beta", "alpha"]

    def test_span_context_manager_uses_sim_clock(self, recorder):
        sim = Simulator()
        recorder.bind_sim(sim)

        def body():
            with recorder.span("sw", "work", "proc"):
                yield ns(25)

        sim.spawn(body(), "p")
        sim.run()
        (span,) = recorder.spans
        assert span.duration_fs == ns(25).femtoseconds

    def test_span_context_manager_wall_clock_fallback(self, recorder):
        with recorder.span("sw", "host", "main"):
            pass
        (span,) = recorder.spans
        assert span.end_fs >= span.begin_fs

    def test_instant_marker_zero_duration(self, recorder):
        recorder.instant("kernel", "mark", "sched")
        (span,) = recorder.spans
        assert span.duration_fs == 0


class TestModuleState:
    def test_install_uninstall_cycle(self):
        assert telemetry.active() is None
        assert not telemetry.enabled()
        recorder = telemetry.install()
        try:
            assert telemetry.active() is recorder
            assert telemetry.enabled()
        finally:
            assert telemetry.uninstall() is recorder
        assert telemetry.active() is None

    def test_count_no_op_when_disabled(self):
        telemetry.count("never")  # must not raise with no recorder

    def test_count_reaches_recorder_when_enabled(self):
        recorder = telemetry.install()
        try:
            telemetry.count("hits", 3)
        finally:
            telemetry.uninstall()
        assert recorder.metrics.counter("hits") == 3

    def test_software_span_null_when_disabled(self):
        with telemetry.software_span("sw", "x") as live:
            assert live is None

    def test_simulator_binds_active_recorder(self):
        recorder = telemetry.install()
        try:
            sim = Simulator()
            assert sim.telemetry is recorder
            assert recorder.now_fs() == 0
        finally:
            telemetry.uninstall()
        assert Simulator().telemetry is None


class TestChromeTraceExport:
    def _recorder_with_spans(self):
        recorder = TelemetryRecorder()
        recorder.complete("bus", "opb", "cpu0", 0, 2 * FS_PER_US, {"words": 8})
        recorder.complete("stage", "idwt", "task0", FS_PER_US, 3 * FS_PER_US)
        recorder.metrics.count("kernel.delta_cycles", 12)
        return recorder

    def test_structure_is_valid_trace_event_json(self):
        payload = to_chrome_trace(self._recorder_with_spans(), label="unit")
        # Must survive a JSON round trip untouched.
        payload = json.loads(json.dumps(payload))
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        process_meta = next(e for e in meta if e["name"] == "process_name")
        assert process_meta["args"]["name"] == "unit"
        thread_names = {
            e["tid"]: e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert set(thread_names.values()) == {"cpu0", "task0"}
        for event in spans:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert event["tid"] in thread_names

    def test_timestamps_are_microseconds(self):
        payload = to_chrome_trace(self._recorder_with_spans())
        bus = next(e for e in payload["traceEvents"]
                   if e.get("cat") == "bus")
        assert bus["ts"] == 0.0
        assert bus["dur"] == 2.0
        assert bus["args"] == {"words": 8}

    def test_metrics_ride_along(self):
        payload = to_chrome_trace(self._recorder_with_spans())
        assert payload["repro_metrics"]["counters"]["kernel.delta_cycles"] == 12

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._recorder_with_spans(), path)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded["traceEvents"], list)

    def test_empty_recorder_round_trips(self, tmp_path):
        path = tmp_path / "empty.json"
        write_chrome_trace(TelemetryRecorder(), path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["displayTimeUnit"] == "ms"
        spans = [e for e in loaded["traceEvents"] if e.get("ph") == "X"]
        assert spans == []

    def test_metadata_only_recorder_round_trips(self, tmp_path):
        # Metrics but no spans: the trace still loads and the metrics
        # payload survives intact.
        recorder = TelemetryRecorder()
        recorder.metrics.count("kernel.delta_cycles", 7)
        recorder.metrics.gauge_set("kernel.now_fs", 123.0)
        path = tmp_path / "meta.json"
        write_chrome_trace(recorder, path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert all(e["ph"] != "X" for e in loaded["traceEvents"])
        assert loaded["repro_metrics"]["counters"]["kernel.delta_cycles"] == 7
        assert loaded["repro_metrics"]["gauges"]["kernel.now_fs"] == 123.0


class TestAggregation:
    def test_aggregate_groups_by_category_and_name(self):
        recorder = TelemetryRecorder()
        recorder.complete("bus", "opb", "a", 0, 10)
        recorder.complete("bus", "opb", "b", 0, 30)
        recorder.complete("rmi", "so.get", "a", 0, 5)
        groups = aggregate(recorder)
        assert groups["bus/opb"]["count"] == 2
        assert groups["bus/opb"]["total_fs"] == 40
        assert aggregate(recorder, "rmi") == {
            "rmi/so.get": {
                "category": "rmi", "name": "so.get", "count": 1, "total_fs": 5,
            }
        }

    def test_stage_shares_normalise(self):
        recorder = TelemetryRecorder()
        recorder.complete("stage", "arith", "t", 0, 75)
        recorder.complete("stage", "idwt", "t", 0, 25)
        recorder.complete("bus", "opb", "t", 0, 1000)  # ignored
        shares = stage_shares(recorder)
        assert shares == {"arith": 0.75, "idwt": 0.25}

    def test_stage_shares_empty_without_stage_spans(self):
        assert stage_shares(TelemetryRecorder()) == {}

    def test_flame_summary_mentions_widest_group(self):
        recorder = TelemetryRecorder()
        recorder.complete("bus", "opb", "a", 0, 10**12)
        recorder.complete("rmi", "so.get", "a", 0, 10**9)
        text = flame_summary(recorder)
        lines = text.splitlines()
        assert "bus/opb" in lines[2]  # widest first, after the two headers
        assert "rmi/so.get" in text


class TestSpanRepr:
    def test_repr_is_informative(self):
        span = Span("bus", "opb", "cpu0", 1, 2)
        assert "bus/opb" in repr(span)
