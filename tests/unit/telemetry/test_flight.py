"""The flight recorder: bounded history, crash reports, excepthook."""

import json
import sys

import pytest

from repro import telemetry
from repro.telemetry.flight import FlightRecorder, install_excepthook, uninstall_excepthook


@pytest.fixture(autouse=True)
def _clean_sinks():
    telemetry.uninstall_log()
    telemetry.uninstall_flight()
    yield
    telemetry.uninstall_log()
    telemetry.uninstall_flight()
    uninstall_excepthook()


class TestRingBuffer:
    def test_capacity_bounds_history(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.note("tick", n=index)
        assert len(recorder) == 3
        assert [event["n"] for event in recorder.events] == [7, 8, 9]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_context_and_chunk_states(self):
        recorder = FlightRecorder()
        recorder.set_context("schedule", {"workers": 4})
        recorder.chunk_state(0, "submitted")
        recorder.chunk_state(0, "done")
        recorder.chunk_state(1, "lost")
        snapshot = recorder.snapshot()
        assert snapshot["context"]["schedule"] == {"workers": 4}
        assert snapshot["chunks"] == {"0": "done", "1": "lost"}
        recorder.reset_chunks()
        assert recorder.snapshot()["chunks"] == {}


class TestDump:
    def test_dump_writes_numbered_reports(self, tmp_path):
        recorder = FlightRecorder(crash_dir=tmp_path)
        recorder.note("before", n=1)
        first = recorder.dump("parallel-degraded")
        second = recorder.dump("broken-pool")
        assert first.name == f"crash-{recorder.run_id}-1.json"
        assert second.name == f"crash-{recorder.run_id}-2.json"
        report = json.loads(first.read_text(encoding="utf-8"))
        assert report["reason"] == "parallel-degraded"
        assert report["run_id"] == recorder.run_id
        assert report["events"][0]["event"] == "before"

    def test_dump_serialises_error_with_traceback(self, tmp_path):
        recorder = FlightRecorder(crash_dir=tmp_path)
        try:
            raise RuntimeError("worker died")
        except RuntimeError as error:
            path = recorder.dump("unhandled", error=error)
        report = json.loads(path.read_text(encoding="utf-8"))
        assert report["error"]["type"] == "RuntimeError"
        assert report["error"]["message"] == "worker died"
        assert any("RuntimeError" in line for line in report["error"]["traceback"])

    def test_env_crash_dir_is_honoured(self, tmp_path, monkeypatch):
        crash_dir = tmp_path / "elsewhere"
        monkeypatch.setenv("REPRO_CRASH_DIR", str(crash_dir))
        path = FlightRecorder().dump("test")
        assert path.parent == crash_dir


class TestExcepthook:
    def test_unhandled_exception_dumps_active_recorder(self, tmp_path):
        recorder = telemetry.install_flight(
            FlightRecorder(crash_dir=tmp_path)
        )
        recorder.note("the last thing that happened")
        install_excepthook()
        try:
            try:
                raise ValueError("boom")
            except ValueError:
                sys.excepthook(*sys.exc_info())
        finally:
            uninstall_excepthook()
        reports = list(tmp_path.glob("crash-*.json"))
        assert len(reports) == 1
        report = json.loads(reports[0].read_text(encoding="utf-8"))
        assert report["reason"] == "unhandled-exception"
        assert report["error"]["type"] == "ValueError"
        assert report["events"][0]["event"] == "the last thing that happened"

    def test_install_is_idempotent_and_chains(self, tmp_path, capsys):
        install_excepthook()
        hook = sys.excepthook
        install_excepthook()
        assert sys.excepthook is hook
        uninstall_excepthook()
        assert sys.excepthook is not hook

    def test_env_armed_flight_dumps_on_unhandled_exception(self, tmp_path):
        """REPRO_FLIGHT=1 must arm the excepthook too, not just the ring:
        a process that dies unhandled leaves a crash report behind."""
        import os
        import subprocess

        env = dict(
            os.environ,
            REPRO_FLIGHT="1",
            REPRO_CRASH_DIR=str(tmp_path),
        )
        script = (
            "from repro import telemetry\n"
            "telemetry.log_event('last.words', n=1)\n"
            "raise RuntimeError('env-armed crash')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True,
        )
        assert proc.returncode != 0
        assert "RuntimeError" in proc.stderr  # original traceback intact
        (report_path,) = tmp_path.glob("crash-*.json")
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["reason"] == "unhandled-exception"
        assert report["error"]["message"] == "env-armed crash"
        assert report["events"][-1]["event"] == "last.words"
