"""Structured logging: EventLog, worker capture/merge, module wiring."""

import json

import pytest

from repro import telemetry
from repro.telemetry.log import EventLog, capture_events, new_run_id, new_span_id


@pytest.fixture(autouse=True)
def _clean_sinks():
    """Every test starts and ends with logging and flight disabled."""
    telemetry.uninstall_log()
    telemetry.uninstall_flight()
    yield
    telemetry.uninstall_log()
    telemetry.uninstall_flight()


class TestIds:
    def test_run_ids_are_distinct_hex(self):
        first, second = new_run_id(), new_run_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)  # raises if not hex

    def test_span_ids_monotonic(self):
        first, second = new_span_id(), new_span_id()
        assert second > first


class TestEventLog:
    def test_emit_stamps_run_seq_and_ts(self):
        log = EventLog()
        record = log.emit("decode.start", tiles=16)
        assert record["run_id"] == log.run_id
        assert record["seq"] == 1
        assert record["ts"] > 0
        assert record["tiles"] == 16
        assert log.emit("decode.done")["seq"] == 2

    def test_select_preserves_stream_order(self):
        log = EventLog()
        log.emit("a", n=1)
        log.emit("b")
        log.emit("a", n=2)
        assert [r["n"] for r in log.select("a")] == [1, 2]

    def test_merge_restamps_run_and_seq_keeps_fields(self):
        log = EventLog()
        log.emit("parallel.fanout")
        worker = [
            {"ts": 1.0, "event": "parallel.chunk_decoded", "pid": 4242},
            {"ts": 2.0, "event": "parallel.chunk_decoded", "pid": 4242},
        ]
        log.merge(worker)
        merged = log.select("parallel.chunk_decoded")
        assert [r["seq"] for r in merged] == [2, 3]
        assert all(r["run_id"] == log.run_id for r in merged)
        assert all(r["pid"] == 4242 for r in merged)
        # The worker-side dicts are not mutated.
        assert "run_id" not in worker[0]

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("one", value=1)
        log.emit("two", text="x=y")
        path = log.write(tmp_path / "events.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["event"] == "one"
        assert parsed[1]["text"] == "x=y"

    def test_capture_events_buffers_without_stamps(self):
        with capture_events() as buffer:
            buffer.emit("parallel.chunk_decoded", blocks=3)
        (record,) = buffer.events
        assert record["event"] == "parallel.chunk_decoded"
        assert "seq" not in record and "run_id" not in record


class TestModuleWiring:
    def test_disabled_log_event_is_noop(self):
        telemetry.log_event("anything", cost="must be zero")
        assert telemetry.event_log() is None
        assert not telemetry.log_enabled()

    def test_install_uninstall_cycle(self):
        log = telemetry.install_log()
        assert telemetry.log_enabled()
        assert telemetry.event_log() is log
        telemetry.log_event("hello", n=1)
        assert log.select("hello")[0]["n"] == 1
        assert telemetry.uninstall_log() is log
        assert not telemetry.log_enabled()

    def test_run_id_prefers_log_then_flight(self):
        assert telemetry.run_id() is None
        flight = telemetry.install_flight()
        assert telemetry.run_id() == flight.run_id
        log = telemetry.install_log()
        assert telemetry.run_id() == log.run_id

    def test_log_event_feeds_armed_flight_recorder(self):
        flight = telemetry.install_flight()
        telemetry.log_event("only.flight", n=1)
        assert len(flight.events) == 1
        log = telemetry.install_log()
        telemetry.log_event("both", n=2)
        assert log.select("both")
        assert flight.events[-1]["event"] == "both"
        # The flight copy is the stamped record, not a re-build.
        assert flight.events[-1]["run_id"] == log.run_id

    def test_merge_worker_events_reaches_both_sinks(self):
        log = telemetry.install_log()
        flight = telemetry.install_flight()
        telemetry.merge_worker_events(
            [{"ts": 1.0, "event": "w", "pid": 1}]
        )
        assert log.select("w")
        assert flight.events[-1]["event"] == "w"

    def test_merge_worker_events_none_is_noop(self):
        telemetry.install_log()
        telemetry.merge_worker_events(None)
        telemetry.merge_worker_events([])
        assert len(telemetry.event_log()) == 0
