"""Prometheus exposition: grammar conformance and value fidelity.

The parser below implements the text exposition format (0.0.4) grammar
the way a scraper would read it: ``# TYPE`` before the family's samples,
valid metric/label names, escaped label values, float-parseable sample
values.  Every rendering test round-trips through it.
"""

import re

import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry, TelemetryRecorder
from repro.telemetry.prometheus import (
    escape_label_value,
    normalise_label_name,
    normalise_name,
    render_metrics,
    render_recorder,
    split_labels,
)

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str) -> dict:
    """Validate *text* against the exposition grammar; returns families.

    ``{family: {"type": ..., "help": ..., "samples": [(name, labels,
    value), ...]}}`` — raises AssertionError on any grammar violation.
    """
    families: dict = {}
    current = None
    for line in text.splitlines():
        assert line == line.rstrip(), f"trailing whitespace: {line!r}"
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert METRIC_NAME.match(name), name
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"type": None, "help": help_text, "samples": []}
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name == current, "TYPE must follow its HELP line"
            assert kind in ("counter", "gauge", "histogram", "summary"), kind
            assert families[name]["type"] is None, f"duplicate TYPE {name}"
            families[name]["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if family not in families and family.endswith(suffix):
                family = family[: -len(suffix)]
                break
        assert family in families, f"sample {name} outside any family"
        assert families[family]["type"] is not None, "samples before TYPE"
        labels = {}
        raw = match.group("labels")
        if raw is not None:
            consumed = ",".join(
                f'{key}="{value}"' for key, value in LABEL_PAIR.findall(raw)
            )
            assert consumed == raw, f"malformed label block: {raw!r}"
            for key, value in LABEL_PAIR.findall(raw):
                assert LABEL_NAME.match(key), key
                labels[key] = (
                    value.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
        value = float(match.group("value"))
        families[family]["samples"].append((name, labels, value))
    return families


class TestNames:
    def test_dots_become_underscores_with_namespace(self):
        assert (
            normalise_name("jpeg2000.parallel.broken_pools")
            == "repro_jpeg2000_parallel_broken_pools"
        )

    def test_leading_digit_guarded(self):
        assert METRIC_NAME.match(normalise_name("2fast", namespace=""))

    def test_label_name_normalised(self):
        assert normalise_label_name("my-label") == "my_label"
        assert LABEL_NAME.match(normalise_label_name("0bad"))

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_split_labels(self):
        base, labels = split_labels(
            "x.y{reason=clamped to os.cpu_count(),phase=t1}"
        )
        assert base == "x.y"
        assert labels == {"reason": "clamped to os.cpu_count()", "phase": "t1"}
        assert split_labels("plain.name") == ("plain.name", {})


class TestRenderMetrics:
    def test_counters_and_gauges_conform(self):
        registry = MetricsRegistry()
        registry.count("jpeg2000.parallel.broken_pools", 2)
        registry.count('weird.counter{reason=has "quotes" and \\slash}', 1)
        registry.gauge_set("kernel.now_fs", 1.5e12)
        families = parse_exposition(render_metrics(registry))
        broken = families["repro_jpeg2000_parallel_broken_pools"]
        assert broken["type"] == "counter"
        assert broken["samples"][0][2] == 2
        weird = families["repro_weird_counter"]
        (_, labels, value) = weird["samples"][0]
        assert labels == {"reason": 'has "quotes" and \\slash'}
        now = families["repro_kernel_now_fs"]
        assert now["type"] == "gauge"
        assert now["samples"][0][2] == 1.5e12

    def test_histogram_buckets_cumulative_and_monotonic(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wait_fs", bounds=(10, 100, 1000))
        for value in (5, 50, 50, 500, 5000):
            hist.observe(value)
        families = parse_exposition(render_metrics(registry))
        family = families["repro_wait_fs"]
        assert family["type"] == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        ]
        assert [le for le, _ in buckets] == ["10", "100", "1000", "+Inf"]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 5  # +Inf sees every observation
        total = [v for n, _, v in family["samples"] if n.endswith("_sum")]
        count = [v for n, _, v in family["samples"] if n.endswith("_count")]
        assert total == [5605]
        assert count == [5]

    def test_const_labels_on_every_sample(self):
        registry = MetricsRegistry()
        registry.count("a", 1)
        registry.gauge_set("b", 2)
        families = parse_exposition(
            render_metrics(registry, const_labels={"run_id": "abc"})
        )
        for family in families.values():
            for _, labels, _ in family["samples"]:
                assert labels["run_id"] == "abc"

    def test_empty_registry_renders_empty(self):
        assert render_metrics(MetricsRegistry()) == ""


class TestRenderRecorder:
    def test_span_aggregates_and_design_info(self):
        recorder = TelemetryRecorder()
        recorder.complete("bus", "opb", "hw", 0, 1000)
        recorder.complete("bus", "opb", "hw", 2000, 3500)
        recorder.design = {"version": "7a", "label": "par HW/SW"}
        families = parse_exposition(render_recorder(recorder))
        busy = families["repro_span_busy_fs_total"]
        assert busy["type"] == "counter"
        (_, labels, value) = busy["samples"][0]
        assert labels == {"category": "bus", "name": "opb"}
        assert value == 2500
        count = families["repro_span_count_total"]
        assert count["samples"][0][2] == 2
        info = families["repro_design_info"]
        assert info["samples"][0][1]["version"] == "7a"
        assert info["samples"][0][2] == 1

    def test_table1_run_busy_fs_equals_channel_stats(self):
        from repro.casestudy.explorer import ALL_VERSIONS
        from repro.casestudy.workload import paper_workload

        recorder = telemetry.install()
        try:
            model = ALL_VERSIONS["7a"](paper_workload(True))
            model.run()
        finally:
            telemetry.uninstall()
        stats = model.detail_stats()
        families = parse_exposition(render_recorder(recorder))
        busy = {
            labels["name"]: value
            for _, labels, value in families["repro_span_busy_fs_total"]["samples"]
            if labels["category"] == "bus"
        }
        for channel in ("opb", "ddr"):
            assert busy[channel] == stats[channel].busy_fs
