"""Metrics registry: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.telemetry import DEFAULT_BUCKETS_FS, Histogram, MetricsRegistry


class TestCounters:
    def test_count_accumulates(self):
        registry = MetricsRegistry()
        registry.count("events")
        registry.count("events", 4)
        assert registry.counter("events") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("missing") == 0

    def test_counters_are_independent(self):
        registry = MetricsRegistry()
        registry.count("a", 2)
        registry.count("b", 3)
        assert registry.counter("a") == 2
        assert registry.counter("b") == 3


class TestGauges:
    def test_gauge_set_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge_set("depth", 7)
        registry.gauge_set("depth", 3)
        assert registry.gauge("depth") == 3

    def test_unknown_gauge_is_none(self):
        assert MetricsRegistry().gauge("missing") is None


class TestHistograms:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", bounds=(10, 100, 1000))
        for value in (5, 10, 50, 5000):
            histogram.observe(value)
        # bounds are inclusive upper edges; 5000 exceeds every bucket
        assert histogram.counts == [2, 1, 0]
        assert histogram.overflow == 1
        assert histogram.count == 4
        assert histogram.total == 5065
        assert histogram.mean == pytest.approx(5065 / 4)

    def test_empty_histogram_mean_zero(self):
        assert Histogram("h", bounds=(1,)).mean == 0.0

    def test_default_buckets_span_ns_to_ms(self):
        assert DEFAULT_BUCKETS_FS[0] == 10**6  # 1 ns
        assert DEFAULT_BUCKETS_FS[-1] == 10**13  # 10 ms
        assert list(DEFAULT_BUCKETS_FS) == sorted(DEFAULT_BUCKETS_FS)

    def test_registry_observe_creates_and_reuses(self):
        registry = MetricsRegistry()
        registry.observe("wait", 10**6)
        registry.observe("wait", 10**9)
        histogram = registry.histogram("wait")
        assert histogram.count == 2
        assert registry.histogram("wait") is histogram


class TestAsDict:
    def test_round_trip_shape(self):
        registry = MetricsRegistry()
        registry.count("z", 1)
        registry.count("a", 2)
        registry.gauge_set("g", 9)
        registry.observe("h", 42)
        data = registry.as_dict()
        assert list(data["counters"]) == ["a", "z"]  # sorted keys
        assert data["gauges"] == {"g": 9}
        assert data["histograms"]["h"]["count"] == 1
        assert data["histograms"]["h"]["total"] == 42

    def test_len_counts_all_series(self):
        registry = MetricsRegistry()
        assert len(registry) == 0
        registry.count("c")
        registry.gauge_set("g", 1)
        registry.observe("h", 1)
        assert len(registry) == 3
