"""Cross-layer telemetry: hooks, value invariance, and the 7a trace.

The contract under test: telemetry must *observe* the simulation without
perturbing it — every reported millisecond is identical with the recorder
installed or not, a disabled run records nothing anywhere, and the bus
spans in an exported trace account for exactly the femtoseconds the
channel statistics counted.
"""

import json

import pytest

from repro import telemetry
from repro.casestudy.explorer import ALL_VERSIONS, run_version
from repro.casestudy.workload import paper_workload
from repro.kernel import Simulator, ns, set_default_fast
from repro.telemetry import TelemetryRecorder, to_chrome_trace


def _run_recorded(version, lossless=True):
    """Run one version under a fresh recorder; returns (report, recorder, model)."""
    recorder = telemetry.install()
    try:
        model = ALL_VERSIONS[version](paper_workload(lossless))
        report = model.run()
    finally:
        telemetry.uninstall()
    return report, recorder, model


@pytest.fixture(scope="module")
def traced_7a():
    return _run_recorded("7a")


class TestKernelHooks:
    def test_scheduler_counters_match_kernel_state(self):
        recorder = telemetry.install()
        try:
            sim = Simulator()

            def body():
                for _ in range(5):
                    yield ns(1)

            sim.spawn(body(), "p")
            sim.run()
        finally:
            telemetry.uninstall()
        counters = recorder.metrics.as_dict()["counters"]
        assert counters["kernel.delta_cycles"] == sim.delta_count
        assert counters["kernel.process_steps"] >= 5
        assert counters["kernel.timer_pops"] >= 5

    def test_disabled_run_records_nothing(self):
        recorder = telemetry.install()
        telemetry.uninstall()
        before = recorder.metrics.as_dict()
        sim = Simulator()
        assert sim.telemetry is None

        def body():
            yield ns(1)

        sim.spawn(body(), "p")
        sim.run()
        # Identity check: the registry never saw the simulation.
        assert recorder.metrics.as_dict() == before
        assert len(recorder.metrics) == 0
        assert recorder.spans == []


class TestSharedObjectHooks:
    def test_grant_wait_and_guard_metrics(self):
        report, recorder, _model = _run_recorded("6a")
        counters = recorder.metrics.as_dict()["counters"]
        histograms = recorder.metrics.as_dict()["histograms"]
        # Bus-attached clients poll closed guards, so both show up.
        assert counters["so.guard_blocked"] > 0
        assert counters["rmi.polls"] > 0
        assert histograms["so.grant_wait_fs"]["count"] > 0
        so_spans = recorder.category_spans("so")
        assert so_spans, "no Shared Object execution spans recorded"
        assert all(span.duration_fs >= 0 for span in so_spans)


class TestStageSpans:
    def test_version1_records_all_five_stages(self):
        report, recorder, _model = _run_recorded("1")
        names = {span.name for span in recorder.category_spans("stage")}
        assert names == {"arith", "iq", "idwt", "ict", "dc"}
        # Fig. 1: entropy decoding dominates the pure-software decoder.
        from repro.telemetry import stage_shares

        shares = stage_shares(recorder)
        assert shares["arith"] > 0.5
        assert sum(shares.values()) == pytest.approx(1.0)


class TestValueInvariance:
    @pytest.mark.parametrize("version", ["3", "6a"])
    def test_reported_values_identical_with_telemetry(self, version):
        workload = paper_workload(True)
        bare = run_version(version, True, workload)
        recorded, _, _ = _run_recorded(version)
        assert recorded.decode_ms == bare.decode_ms
        assert recorded.idwt_ms == bare.idwt_ms

    def test_span_totals_substrate_invariant(self):
        previous = set_default_fast(False)
        try:
            _, reference, _ = _run_recorded("6b")
        finally:
            set_default_fast(previous)
        _, fast, _ = _run_recorded("6b")
        for category in ("bus", "rmi", "so", "stage"):
            assert fast.busy_fs(category) == reference.busy_fs(category)


class TestTrace7a:
    """Acceptance: the 7a trace is valid and accounts for every bus fs."""

    def test_bus_spans_sum_to_channel_stats(self, traced_7a):
        _report, recorder, model = traced_7a
        stats = model.detail_stats()
        assert recorder.busy_fs("bus", "opb") == stats["opb"].busy_fs
        assert recorder.busy_fs("bus", "ddr") == stats["ddr"].busy_fs

    def test_rmi_spans_cover_their_bus_time(self, traced_7a):
        _report, recorder, _model = traced_7a
        rmi_spans = recorder.category_spans("rmi")
        assert rmi_spans
        for span in rmi_spans:
            assert span.attrs["words_sent"] > 0
            assert span.attrs["words_received"] > 0

    def test_chrome_trace_structurally_valid(self, traced_7a, tmp_path):
        _report, recorder, model = traced_7a
        payload = json.loads(json.dumps(to_chrome_trace(recorder, label="7a")))
        events = payload["traceEvents"]
        span_events = [e for e in events if e["ph"] == "X"]
        meta_events = [e for e in events if e["ph"] == "M"]
        assert len(span_events) == len(recorder.spans)
        tids = {e["tid"] for e in meta_events if e["name"] == "thread_name"}
        for event in span_events:
            assert event["tid"] in tids
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # The exported bus events carry the same total busy time as the
        # channel statistics, in trace units (us).
        opb_dur = sum(
            e["dur"] for e in span_events
            if e.get("cat") == "bus" and e["name"] == "opb"
        )
        assert opb_dur == pytest.approx(
            model.detail_stats()["opb"].busy_fs / 1e9
        )
