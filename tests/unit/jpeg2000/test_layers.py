"""Quality layers: layered Tier-2, prefix decoding, rate scalability."""

import pytest

from repro.jpeg2000 import (
    CodingParameters,
    Jpeg2000Decoder,
    decode_codestream,
    encode_image,
    synthetic_image,
)
from repro.jpeg2000.t1 import CodeBlockEncoder
from repro.jpeg2000.t2 import CodeBlockContribution


def params(layers, lossless=False, size=64, tile=32):
    return CodingParameters(
        width=size,
        height=size,
        num_components=3,
        tile_width=tile,
        tile_height=tile,
        num_levels=3,
        lossless=lossless,
        num_layers=layers,
        base_step=1 / 8,
    )


@pytest.fixture(scope="module")
def image():
    return synthetic_image(64, 64, 3, seed=77)


class TestLayeredRoundtrip:
    @pytest.mark.parametrize("layers", [1, 2, 3, 8])
    def test_lossless_exact_any_layer_count(self, image, layers):
        codestream = encode_image(image, params(layers, lossless=True))
        assert decode_codestream(codestream) == image

    @pytest.mark.parametrize("layers", [2, 5])
    def test_lossy_full_decode_matches_single_layer_quality(self, image, layers):
        single = decode_codestream(encode_image(image, params(1)))
        layered = decode_codestream(encode_image(image, params(layers)))
        assert layered.psnr(image) == pytest.approx(single.psnr(image), abs=0.2)

    def test_layer_overhead_is_modest(self, image):
        single = len(encode_image(image, params(1, lossless=True)))
        five = len(encode_image(image, params(5, lossless=True)))
        assert five > single  # extra packet headers
        assert five < single * 1.15  # ... but only a few percent


class TestPrefixDecoding:
    def test_quality_monotone_in_layers(self, image):
        codestream = encode_image(image, params(5))
        psnrs = [
            Jpeg2000Decoder(codestream, max_layers=count).decode().psnr(image)
            for count in range(1, 6)
        ]
        assert all(a <= b + 0.01 for a, b in zip(psnrs, psnrs[1:]))
        assert psnrs[-1] - psnrs[0] > 10.0  # the progression is real

    def test_prefix_of_lossless_stream_is_lossy(self, image):
        codestream = encode_image(image, params(4, lossless=True))
        partial = Jpeg2000Decoder(codestream, max_layers=1).decode()
        full = Jpeg2000Decoder(codestream).decode()
        assert full == image
        assert partial != image
        assert partial.psnr(image) > 15.0

    def test_max_layers_beyond_available_is_full_decode(self, image):
        codestream = encode_image(image, params(2, lossless=True))
        assert Jpeg2000Decoder(codestream, max_layers=99).decode() == image

    def test_layer_count_validated(self, image):
        from repro.jpeg2000.codestream import CodestreamError

        with pytest.raises(CodestreamError, match="layer count"):
            encode_image(image, params(0))
        good = params(2, lossless=True)
        data = bytearray(encode_image(image, good))
        # corrupt the layer count field in COD (offset: find marker)
        cod = bytes(data).find(b"\xff\x52")
        data[cod + 6] = 0xFF  # layers high byte -> 65280
        data[cod + 7] = 0x00
        with pytest.raises(CodestreamError, match="layer count"):
            Jpeg2000Decoder(bytes(data))


class TestPassSegmentation:
    def test_pass_lengths_monotone(self):
        import random

        rng = random.Random(5)
        coeffs = [rng.randrange(-255, 256) for _ in range(256)]
        result = CodeBlockEncoder(coeffs, 16, 16, "HL").encode()
        assert len(result.pass_lengths) == result.num_passes
        assert all(
            a <= b for a, b in zip(result.pass_lengths, result.pass_lengths[1:])
        )
        assert result.pass_lengths[-1] == len(result.data)

    def test_truncated_segment_decodes_identically(self):
        import random

        from repro.jpeg2000.t1 import CodeBlockDecoder

        rng = random.Random(6)
        coeffs = [rng.randrange(-127, 128) if rng.random() < 0.5 else 0
                  for _ in range(256)]
        result = CodeBlockEncoder(coeffs, 16, 16, "HL").encode()
        for passes in range(1, result.num_passes + 1):
            prefix = result.data[: result.bytes_for_passes(passes)]
            full = CodeBlockDecoder(
                result.data, 16, 16, "HL", result.num_bitplanes, passes
            ).decode()
            truncated = CodeBlockDecoder(
                prefix, 16, 16, "HL", result.num_bitplanes, passes
            ).decode()
            assert truncated == full

    def test_default_allocation_spreads_passes(self):
        from repro.jpeg2000.structure import CodeBlockGeometry

        block = CodeBlockContribution(
            geometry=CodeBlockGeometry(0, 0, 0, 0, 4, 4), num_passes=10
        )
        allocation = block.allocation(3)
        assert allocation[-1] == 10
        assert allocation == sorted(allocation)
        assert block.first_layer(3) == 0

    def test_empty_block_never_included(self):
        from repro.jpeg2000.structure import CodeBlockGeometry

        block = CodeBlockContribution(
            geometry=CodeBlockGeometry(0, 0, 0, 0, 4, 4), num_passes=0
        )
        assert block.first_layer(4) == 4
