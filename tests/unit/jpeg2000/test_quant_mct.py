"""Quantisation (IQ) and colour transforms / DC shift."""

import numpy as np
import pytest

from repro.jpeg2000 import mct, quant


RNG = np.random.default_rng(13)


class TestStepSize:
    def test_pack_unpack_roundtrip(self):
        step = quant.StepSize(exponent=13, mantissa=1027)
        assert quant.StepSize.unpack(step.packed()) == step

    def test_delta_formula(self):
        step = quant.StepSize(exponent=8, mantissa=0)
        assert step.delta(8) == pytest.approx(1.0)
        step = quant.StepSize(exponent=8, mantissa=1024)
        assert step.delta(8) == pytest.approx(1.5)

    def test_from_delta_inverts_delta(self):
        for delta in (0.001, 0.01, 0.33, 1.0, 7.5):
            step = quant.StepSize.from_delta(delta, 10)
            assert step.delta(10) == pytest.approx(delta, rel=1e-3)

    def test_from_delta_validates(self):
        with pytest.raises(ValueError):
            quant.StepSize.from_delta(0, 8)


class TestQuantisation:
    def test_roundtrip_error_bounded_by_step(self):
        values = RNG.uniform(-100, 100, 1000)
        delta = 0.25
        reconstructed = quant.dequantise(quant.quantise(values, delta), delta)
        assert np.max(np.abs(values - reconstructed)) <= delta

    def test_deadzone_maps_small_values_to_zero(self):
        values = np.array([0.2, -0.3, 0.49])
        assert np.all(quant.quantise(values, 0.5) == 0)

    def test_midpoint_reconstruction(self):
        indices = np.array([3, -3, 0])
        out = quant.dequantise(indices, 1.0)
        assert out[0] == pytest.approx(3.5)
        assert out[1] == pytest.approx(-3.5)
        assert out[2] == 0.0

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            quant.quantise(np.zeros(3), 0)

    def test_step_schedule_coarser_for_finer_levels(self):
        fine = quant.default_step("HH", level=1, num_levels=3)
        coarse = quant.default_step("HH", level=3, num_levels=3)
        assert fine > coarse

    def test_step_schedule_gain_order(self):
        ll = quant.default_step("LL", 3, 3)
        hl = quant.default_step("HL", 3, 3)
        hh = quant.default_step("HH", 3, 3)
        assert ll < hl < hh


class TestRct:
    def test_exact_roundtrip(self):
        r = RNG.integers(-128, 128, (16, 16))
        g = RNG.integers(-128, 128, (16, 16))
        b = RNG.integers(-128, 128, (16, 16))
        y, u, v = mct.rct_forward(r, g, b)
        r2, g2, b2 = mct.rct_inverse(y, u, v)
        assert np.array_equal(r, r2)
        assert np.array_equal(g, g2)
        assert np.array_equal(b, b2)

    def test_grey_input_has_zero_chroma(self):
        grey = np.full((4, 4), 77)
        y, u, v = mct.rct_forward(grey, grey, grey)
        assert np.all(u == 0) and np.all(v == 0)
        assert np.all(y == 77)


class TestIct:
    def test_roundtrip_within_float_tolerance(self):
        r = RNG.uniform(-128, 128, (16, 16))
        g = RNG.uniform(-128, 128, (16, 16))
        b = RNG.uniform(-128, 128, (16, 16))
        r2, g2, b2 = mct.ict_inverse(*mct.ict_forward(r, g, b))
        assert np.allclose(r, r2, atol=1e-2)
        assert np.allclose(g, g2, atol=1e-2)
        assert np.allclose(b, b2, atol=1e-2)

    def test_luma_weights_sum_to_one(self):
        ones = np.ones((2, 2))
        y, cb, cr = mct.ict_forward(ones, ones, ones)
        assert np.allclose(y, 1.0)
        assert np.allclose(cb, 0.0, atol=1e-9)
        assert np.allclose(cr, 0.0, atol=1e-9)


class TestDcShift:
    def test_roundtrip(self):
        samples = RNG.integers(0, 256, (8, 8))
        shifted = mct.dc_shift_forward(samples, 8)
        assert shifted.min() >= -128 and shifted.max() <= 127
        assert np.array_equal(mct.dc_shift_inverse(shifted, 8), samples)

    def test_clamping(self):
        out = mct.dc_shift_inverse(np.array([-500.0, 500.0]), 8)
        assert list(out) == [0, 255]

    def test_rounding(self):
        out = mct.dc_shift_inverse(np.array([0.4, 0.6]), 8)
        assert list(out) == [128, 129]


class TestBounds:
    def test_max_bitplanes_formula(self):
        step = quant.StepSize(exponent=10, mantissa=0)
        assert quant.max_bitplanes(8, "LL", step) == quant.guard_bits() + 10 - 1

    def test_reversible_exponent_includes_gain(self):
        assert quant.reversible_exponent(8, "LL") == 8
        assert quant.reversible_exponent(8, "HL") == 9
        assert quant.reversible_exponent(8, "HH") == 10
