"""Progression orders and resolution scalability."""

import numpy as np
import pytest

from repro.jpeg2000 import (
    CodingParameters,
    Jpeg2000Decoder,
    decode_codestream,
    encode_image,
    synthetic_image,
)
from repro.jpeg2000.codestream import PROGRESSION_LRCP, PROGRESSION_RLCP
from repro.jpeg2000.decoder import DecodingError


def params(progression, layers=1, lossless=True, size=64, tile=32):
    return CodingParameters(
        width=size,
        height=size,
        num_components=3,
        tile_width=tile,
        tile_height=tile,
        num_levels=3,
        lossless=lossless,
        num_layers=layers,
        progression=progression,
        base_step=1 / 8,
    )


@pytest.fixture(scope="module")
def image():
    return synthetic_image(64, 64, 3, seed=31)


class TestProgressionOrders:
    @pytest.mark.parametrize("progression", [PROGRESSION_LRCP, PROGRESSION_RLCP])
    @pytest.mark.parametrize("layers", [1, 3])
    def test_roundtrip_exact(self, image, progression, layers):
        codestream = encode_image(image, params(progression, layers))
        assert decode_codestream(codestream) == image

    def test_same_payload_different_order(self, image):
        lrcp = encode_image(image, params(PROGRESSION_LRCP, layers=2))
        rlcp = encode_image(image, params(PROGRESSION_RLCP, layers=2))
        # identical content, reordered packets: near-identical size
        assert abs(len(lrcp) - len(rlcp)) < len(lrcp) * 0.02

    def test_progression_signalled_in_codestream(self, image):
        codestream = encode_image(image, params(PROGRESSION_RLCP))
        assert Jpeg2000Decoder(codestream).parameters.progression == PROGRESSION_RLCP

    def test_layer_truncation_requires_lrcp(self, image):
        codestream = encode_image(image, params(PROGRESSION_RLCP, layers=3))
        with pytest.raises(DecodingError, match="LRCP"):
            Jpeg2000Decoder(codestream, max_layers=1).decode()


class TestResolutionScalability:
    @pytest.mark.parametrize("progression", [PROGRESSION_LRCP, PROGRESSION_RLCP])
    def test_reduced_sizes(self, image, progression):
        codestream = encode_image(image, params(progression))
        for resolution, size in ((0, 8), (1, 16), (2, 32), (3, 64)):
            out = Jpeg2000Decoder(codestream, max_resolution=resolution).decode()
            assert (out.width, out.height) == (size, size)

    def test_full_resolution_request_is_exact(self, image):
        codestream = encode_image(image, params(PROGRESSION_LRCP))
        out = Jpeg2000Decoder(codestream, max_resolution=3).decode()
        assert out == image

    def test_thumbnail_resembles_downsampled_original(self, image):
        """The 5/3 LL band is a (lifting) local average of the image."""
        codestream = encode_image(image, params(PROGRESSION_LRCP))
        thumb = Jpeg2000Decoder(codestream, max_resolution=1).decode()
        reference = image.components[0].reshape(16, 4, 16, 4).mean(axis=(1, 3))
        got = thumb.components[0].astype(np.float64)
        correlation = np.corrcoef(reference.flatten(), got.flatten())[0, 1]
        # the 5/3 low band aliases the synthetic texture somewhat, so the
        # match is strong but not perfect
        assert correlation > 0.75

    def test_reduced_decode_does_less_entropy_work(self, image):
        codestream = encode_image(image, params(PROGRESSION_RLCP))
        small = Jpeg2000Decoder(codestream, max_resolution=0)
        small.decode()
        full = Jpeg2000Decoder(codestream)
        full.decode()
        assert small.ops["arith"] < full.ops["arith"] / 4

    def test_lrcp_reduced_decode_still_works(self, image):
        """With LRCP the packets interleave; truncation still reconstructs."""
        codestream = encode_image(image, params(PROGRESSION_LRCP))
        out = Jpeg2000Decoder(codestream, max_resolution=1).decode()
        assert (out.width, out.height) == (16, 16)

    def test_multi_tile_mosaic_alignment(self):
        """Reduced tiles must land at the right offsets in the mosaic."""
        image = synthetic_image(96, 64, 3, seed=5)
        p = CodingParameters(
            width=96, height=64, num_components=3,
            tile_width=32, tile_height=32, num_levels=2, lossless=True,
        )
        codestream = encode_image(image, p)
        out = Jpeg2000Decoder(codestream, max_resolution=1).decode()
        assert (out.width, out.height) == (48, 32)

    def test_negative_resolution_rejected(self, image):
        codestream = encode_image(image, params(PROGRESSION_LRCP))
        with pytest.raises(ValueError):
            Jpeg2000Decoder(codestream, max_resolution=-1)
