"""MQ arithmetic coder: table integrity, roundtrips, edge cases."""

import random

import pytest

from repro.jpeg2000.mq import (
    ContextState,
    MqDecoder,
    MqEncoder,
    QE_TABLE,
    make_contexts,
    roundtrip,
)


class TestQeTable:
    def test_has_47_states(self):
        assert len(QE_TABLE) == 47

    def test_transitions_stay_in_table(self):
        for qe, nmps, nlps, switch in QE_TABLE:
            assert 0 <= nmps < 47
            assert 0 <= nlps < 47
            assert switch in (0, 1)
            assert 0 < qe <= 0x5601

    def test_state_zero_is_startup(self):
        qe, nmps, nlps, switch = QE_TABLE[0]
        assert qe == 0x5601 and switch == 1

    def test_terminal_state_is_absorbing(self):
        qe, nmps, nlps, switch = QE_TABLE[46]
        assert nmps == 46 and nlps == 46

    def test_mps_path_probability_non_increasing(self):
        # Following NMPS from state 0 (skipping the fast-attack states)
        # must reach ever smaller Qe eventually ending at a fixed point.
        state = 14
        visited = []
        for _ in range(60):
            visited.append(state)
            state = QE_TABLE[state][1]
        assert state == visited[-1]  # converged


class TestRoundtrips:
    def test_single_bits(self):
        assert roundtrip([0], [0], 1)
        assert roundtrip([1], [0], 1)

    def test_long_runs(self):
        assert roundtrip([0] * 4096, [0] * 4096, 1)
        assert roundtrip([1] * 4096, [0] * 4096, 1)

    def test_alternating(self):
        bits = [0, 1] * 1000
        assert roundtrip(bits, [0] * len(bits), 1)

    def test_multi_context(self):
        rng = random.Random(1)
        bits = [rng.randrange(2) for _ in range(2000)]
        ctxs = [rng.randrange(19) for _ in range(2000)]
        assert roundtrip(bits, ctxs, 19)

    def test_skewed_streams_compress(self):
        rng = random.Random(2)
        bits = [1 if rng.random() < 0.02 else 0 for _ in range(8000)]
        encoder = MqEncoder()
        ctx = ContextState()
        for bit in bits:
            encoder.encode(bit, ctx)
        data = encoder.flush()
        assert len(data) < 8000 / 8 / 4  # far better than 1 bit per symbol

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            roundtrip([0, 1], [0], 1)


class TestByteStuffing:
    def test_ff_bytes_followed_by_small_byte(self):
        # Streams heavy in MPS hits produce 0xFF bytes; the byte after any
        # 0xFF must have its top bit clear (value <= 0x8F per the spec).
        rng = random.Random(3)
        bits = [1 if rng.random() < 0.9 else 0 for _ in range(4000)]
        encoder = MqEncoder()
        ctx = ContextState()
        for bit in bits:
            encoder.encode(bit, ctx)
        data = encoder.flush()
        for index in range(len(data) - 1):
            if data[index] == 0xFF:
                assert data[index + 1] <= 0x8F

    def test_flush_never_ends_in_ff(self):
        for seed in range(20):
            rng = random.Random(seed)
            bits = [rng.randrange(2) for _ in range(rng.randrange(1, 500))]
            encoder = MqEncoder()
            ctx = ContextState()
            for bit in bits:
                encoder.encode(bit, ctx)
            assert not encoder.flush().endswith(b"\xff")

    def test_decoder_survives_truncated_data(self):
        # Reading past the end must behave like 0xFF fill, not crash.
        decoder = MqDecoder(b"\x12")
        ctx = ContextState()
        for _ in range(100):
            assert decoder.decode(ctx) in (0, 1)


class TestContextState:
    def test_reset(self):
        ctx = ContextState(index=5, mps=1)
        ctx.reset()
        assert ctx.index == 0 and ctx.mps == 0

    def test_make_contexts(self):
        bank = make_contexts(19)
        assert len(bank) == 19
        assert all(c.index == 0 and c.mps == 0 for c in bank)

    def test_adaptation_changes_state(self):
        encoder = MqEncoder()
        ctx = ContextState()
        for _ in range(10):
            encoder.encode(0, ctx)
        assert ctx.index != 0  # the state adapted towards skewed MPS


class TestOpsCounter:
    def test_encoder_counts_work(self):
        encoder = MqEncoder()
        ctx = ContextState()
        for _ in range(100):
            encoder.encode(0, ctx)
        assert encoder.ops >= 100

    def test_decoder_counts_work(self):
        encoder = MqEncoder()
        ctx = ContextState()
        for _ in range(100):
            encoder.encode(1, ctx)
        decoder = MqDecoder(encoder.flush())
        ctx = ContextState()
        for _ in range(100):
            decoder.decode(ctx)
        assert decoder.ops >= 100
