"""Unit tests of the parallel entropy-decode scheduling layer."""

import os

import numpy as np
import pytest

from repro.jpeg2000 import parallel
from repro.jpeg2000.parallel import (
    DecodeOptions,
    KERNEL_FAST,
    KERNEL_REFERENCE,
    _chunked,
    decode_block,
    decode_blocks,
    shutdown_pool,
)
from repro.jpeg2000.t1 import CodeBlockEncoder


def _encode_block(seed: int, width: int = 8, height: int = 8, orientation: str = "HH"):
    rng = np.random.default_rng(seed)
    coeffs = rng.integers(-64, 65, size=width * height).tolist()
    result = CodeBlockEncoder(coeffs, width, height, orientation).encode()
    return (
        (result.data, width, height, orientation, result.num_bitplanes, result.num_passes),
        coeffs,
    )


class TestDecodeOptions:
    def test_defaults_are_sequential_fast(self):
        options = DecodeOptions()
        assert options.workers == 0
        assert options.kernel == KERNEL_FAST
        assert not options.parallel

    def test_none_workers_uses_cpu_count(self):
        options = DecodeOptions(workers=None)
        assert options.effective_workers == (os.cpu_count() or 1)

    def test_workers_clamped_to_cpu_count(self):
        cpus = os.cpu_count() or 1
        assert DecodeOptions(workers=cpus + 7).effective_workers == cpus

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            DecodeOptions(workers=-1)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            DecodeOptions(chunk_size=0)

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            DecodeOptions(kernel="simd")

    def test_single_worker_is_not_parallel(self):
        assert not DecodeOptions(workers=1).parallel
        # Parallelism only engages when the host actually has the CPUs.
        assert DecodeOptions(workers=2).parallel == ((os.cpu_count() or 1) >= 2)


class TestChunking:
    def test_chunks_cover_in_order(self):
        tasks = list(range(10))
        chunks = list(_chunked(tasks, 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_single_chunk(self):
        assert list(_chunked([1, 2], 8)) == [[1, 2]]


class TestDecodeBlocks:
    def test_kernels_agree_per_block(self):
        task, coeffs = _encode_block(seed=1)
        fast_values, fast_ops = decode_block(task, KERNEL_FAST)
        ref_values, ref_ops = decode_block(task, KERNEL_REFERENCE)
        assert fast_values.tolist() == coeffs
        assert np.array_equal(fast_values, ref_values)
        assert fast_ops == ref_ops

    def test_sequential_order_is_preserved(self):
        tasks, expected = zip(*(_encode_block(seed) for seed in range(6)))
        results = decode_blocks(list(tasks), DecodeOptions())
        assert len(results) == 6
        for (values, ops), coeffs in zip(results, expected):
            assert values.tolist() == coeffs
            assert ops > 0

    def test_pool_matches_sequential(self):
        tasks, _ = zip(*(_encode_block(seed) for seed in range(9)))
        sequential = decode_blocks(list(tasks), DecodeOptions())
        pooled = decode_blocks(
            list(tasks), DecodeOptions(workers=2, chunk_size=2)
        )
        assert len(pooled) == len(sequential)
        for (seq_values, seq_ops), (par_values, par_ops) in zip(sequential, pooled):
            assert np.array_equal(seq_values, par_values)
            assert seq_ops == par_ops
        shutdown_pool()

    def test_empty_task_list(self):
        assert decode_blocks([], DecodeOptions(workers=2)) == []

    def test_pool_failure_falls_back_to_sequential(self, monkeypatch):
        tasks, expected = zip(*(_encode_block(seed) for seed in range(3)))
        monkeypatch.setattr(parallel, "_get_pool", lambda workers: None)
        results = decode_blocks(list(tasks), DecodeOptions(workers=4))
        for (values, _), coeffs in zip(results, expected):
            assert values.tolist() == coeffs

    def test_pool_is_cached_per_worker_count(self):
        first = parallel._get_pool(2)
        second = parallel._get_pool(2)
        assert first is second
        shutdown_pool()
        assert parallel._pool is None
