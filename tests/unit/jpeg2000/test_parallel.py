"""Unit tests of the parallel entropy-decode scheduling layer."""

import os

import numpy as np
import pytest

from repro import telemetry
from repro.jpeg2000 import parallel
from repro.jpeg2000.stages import entropy
from repro.jpeg2000.parallel import (
    BlockSpec,
    DecodeOptions,
    KERNEL_BATCHED,
    KERNEL_FAST,
    KERNEL_REFERENCE,
    ParallelDegradedWarning,
    SharedArena,
    _chunked,
    decode_block,
    decode_blocks,
    decode_blocks_spec,
    plan_chunks,
    shutdown_pool,
)
from repro.jpeg2000.t1 import CodeBlockEncoder


def _encode_block(seed: int, width: int = 8, height: int = 8, orientation: str = "HH"):
    rng = np.random.default_rng(seed)
    coeffs = rng.integers(-64, 65, size=width * height).tolist()
    result = CodeBlockEncoder(coeffs, width, height, orientation).encode()
    return (
        (result.data, width, height, orientation, result.num_bitplanes, result.num_passes),
        coeffs,
    )


def _spec_workload(seeds):
    """Encoded blocks as one concatenated source + segment-span specs."""
    tasks, expected = zip(*(_encode_block(seed) for seed in seeds))
    source = bytearray()
    specs = []
    for data, width, height, orientation, num_bitplanes, num_passes in tasks:
        start = len(source)
        source += data
        specs.append((0, BlockSpec(
            width, height, orientation, num_bitplanes, num_passes,
            ((start, start + len(data)),),
        )))
    return bytes(source), specs, list(expected)


class TestDecodeOptions:
    def test_defaults_are_sequential_fast(self):
        options = DecodeOptions()
        assert options.workers == 0
        assert options.kernel == KERNEL_FAST
        assert not options.parallel

    def test_none_workers_uses_cpu_count(self):
        options = DecodeOptions(workers=None)
        assert options.effective_workers == (os.cpu_count() or 1)

    def test_workers_clamped_to_cpu_count(self):
        cpus = os.cpu_count() or 1
        assert DecodeOptions(workers=cpus + 7).effective_workers == cpus

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            DecodeOptions(workers=-1)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            DecodeOptions(chunk_size=0)

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            DecodeOptions(kernel="simd")

    def test_single_worker_is_not_parallel(self):
        assert not DecodeOptions(workers=1).parallel
        # Parallelism only engages when the host actually has the CPUs.
        assert DecodeOptions(workers=2).parallel == ((os.cpu_count() or 1) >= 2)


class TestChunking:
    def test_chunks_cover_in_order(self):
        tasks = list(range(10))
        chunks = list(_chunked(tasks, 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_single_chunk(self):
        assert list(_chunked([1, 2], 8)) == [[1, 2]]


class TestDecodeBlocks:
    def test_kernels_agree_per_block(self):
        task, coeffs = _encode_block(seed=1)
        fast_values, fast_ops = decode_block(task, KERNEL_FAST)
        ref_values, ref_ops = decode_block(task, KERNEL_REFERENCE)
        assert fast_values.tolist() == coeffs
        assert np.array_equal(fast_values, ref_values)
        assert fast_ops == ref_ops

    def test_sequential_order_is_preserved(self):
        tasks, expected = zip(*(_encode_block(seed) for seed in range(6)))
        results = decode_blocks(list(tasks), DecodeOptions())
        assert len(results) == 6
        for (values, ops), coeffs in zip(results, expected):
            assert values.tolist() == coeffs
            assert ops > 0

    def test_pool_matches_sequential(self):
        tasks, _ = zip(*(_encode_block(seed) for seed in range(9)))
        sequential = decode_blocks(list(tasks), DecodeOptions())
        pooled = decode_blocks(
            list(tasks), DecodeOptions(workers=2, chunk_size=2)
        )
        assert len(pooled) == len(sequential)
        for (seq_values, seq_ops), (par_values, par_ops) in zip(sequential, pooled):
            assert np.array_equal(seq_values, par_values)
            assert seq_ops == par_ops
        shutdown_pool()

    def test_empty_task_list(self):
        assert decode_blocks([], DecodeOptions(workers=2)) == []

    def test_pool_failure_falls_back_to_sequential(self, monkeypatch):
        tasks, expected = zip(*(_encode_block(seed) for seed in range(3)))
        monkeypatch.setattr(
            entropy, "_get_pool", lambda workers, start_method=None: None
        )
        parallel._degradations_warned.clear()
        with pytest.warns(parallel.ParallelDegradedWarning):
            results = decode_blocks(
                list(tasks), DecodeOptions(workers=4, oversubscribe=True)
            )
        for (values, _), coeffs in zip(results, expected):
            assert values.tolist() == coeffs

    def test_pool_is_cached_per_worker_count(self):
        first = entropy._get_pool(2)
        second = entropy._get_pool(2)
        assert first is second
        shutdown_pool()
        assert entropy._pool is None

    def test_pool_recreated_on_start_method_change(self):
        first = entropy._get_pool(2, None)
        second = entropy._get_pool(2, "fork")
        assert first is not second
        shutdown_pool()


class TestScheduleInfo:
    def test_degraded_flags_clamped_request(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        options = DecodeOptions(workers=4)
        assert options.requested_workers == 4
        assert options.effective_workers == 1
        assert options.degraded
        info = options.schedule_info()
        assert info["requested_workers"] == 4
        assert info["effective_workers"] == 1
        assert info["degraded"] is True
        assert info["granularity"] == "codeblock/sequential"

    def test_oversubscribe_bypasses_clamp(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        options = DecodeOptions(workers=4, oversubscribe=True)
        assert options.effective_workers == 4
        assert not options.degraded
        assert options.schedule_info()["granularity"] == "codeblock/size-aware"

    def test_pickle_transport_granularity(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        options = DecodeOptions(workers=4, shared_memory=False)
        assert options.schedule_info()["granularity"] == "codeblock/fixed"

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ValueError):
            DecodeOptions(start_method="teleport")

    def test_degraded_request_warns_once(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        parallel._degradations_warned.clear()
        tasks, _ = zip(*(_encode_block(seed) for seed in range(2)))
        with pytest.warns(ParallelDegradedWarning):
            decode_blocks(list(tasks), DecodeOptions(workers=4))
        # Deduplicated: the same degradation does not warn a second time.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", ParallelDegradedWarning)
            decode_blocks(list(tasks), DecodeOptions(workers=4))


class TestPlanChunks:
    def test_covers_every_block_once(self):
        costs = [5, 1, 9, 3, 7, 2, 8, 4]
        chunks = plan_chunks(costs, workers=2, chunk_size=3)
        seen = sorted(block for chunk in chunks for block in chunk)
        assert seen == list(range(len(costs)))

    def test_respects_chunk_size_cap(self):
        chunks = plan_chunks([1] * 20, workers=2, chunk_size=4)
        assert max(len(chunk) for chunk in chunks) <= 4

    def test_largest_first_balances_cost(self):
        # One giant block plus many small ones: the giant block must not
        # share a chunk with everything else.
        costs = [100] + [1] * 7
        chunks = plan_chunks(costs, workers=2, chunk_size=4)
        giant = next(chunk for chunk in chunks if 0 in chunk)
        loads = [sum(costs[block] for block in chunk) for chunk in chunks]
        assert giant == [0]  # scheduled alone: everything else backfills
        assert max(loads) == 100

    def test_empty(self):
        assert plan_chunks([], workers=2, chunk_size=4) == []


class TestBlockSpec:
    def test_codeword_joins_segments(self):
        spec = BlockSpec(2, 2, "HH", 3, None, ((1, 3), (5, 7)))
        assert spec.codeword(b"abcdefgh") == b"bcfg"
        assert spec.size == 4
        assert spec.cost == 5

    def test_rebased_shifts_spans(self):
        spec = BlockSpec(2, 2, "HH", 3, None, ((1, 3),))
        assert spec.rebased(10).segments == ((11, 13),)
        assert spec.rebased(0) is spec


class TestSharedArena:
    def test_registry_and_sweep(self):
        pytest.importorskip("multiprocessing.shared_memory")
        arena = SharedArena(64)
        assert arena.name in parallel._live_arenas
        arena.buf[:4] = b"abcd"
        assert bytes(arena.buf[:4]) == b"abcd"
        shutdown_pool()
        assert arena.name not in parallel._live_arenas

    def test_destroy_is_idempotent(self):
        pytest.importorskip("multiprocessing.shared_memory")
        arena = SharedArena(16)
        arena.destroy()
        arena.destroy()
        assert arena.name not in parallel._live_arenas


class TestDecodeBlocksSpec:
    @pytest.mark.parametrize("kernel", [KERNEL_FAST, KERNEL_BATCHED, KERNEL_REFERENCE])
    def test_sequential_kernels_agree(self, kernel):
        source, specs, expected = _spec_workload(range(6))
        flat, offsets, ops = decode_blocks_spec(
            [source], specs, DecodeOptions(kernel=kernel)
        )
        assert len(ops) == len(specs)
        for index, coeffs in enumerate(expected):
            start, end = int(offsets[index]), int(offsets[index + 1])
            assert flat[start:end].tolist() == coeffs
            assert ops[index] > 0

    def test_shm_parallel_matches_sequential(self):
        pytest.importorskip("multiprocessing.shared_memory")
        source, specs, _ = _spec_workload(range(9))
        seq_flat, seq_offsets, seq_ops = decode_blocks_spec(
            [source], specs, DecodeOptions()
        )
        par_flat, par_offsets, par_ops = decode_blocks_spec(
            [source], specs,
            DecodeOptions(workers=2, chunk_size=2, oversubscribe=True),
        )
        assert np.array_equal(seq_flat, par_flat)
        assert np.array_equal(seq_offsets, par_offsets)
        assert seq_ops == par_ops
        shutdown_pool()

    def test_pickle_parallel_matches_sequential(self):
        source, specs, _ = _spec_workload(range(7))
        seq_flat, _, seq_ops = decode_blocks_spec([source], specs, DecodeOptions())
        par_flat, _, par_ops = decode_blocks_spec(
            [source], specs,
            DecodeOptions(
                workers=2, chunk_size=3, oversubscribe=True, shared_memory=False
            ),
        )
        assert np.array_equal(seq_flat, np.asarray(par_flat))
        assert seq_ops == par_ops
        shutdown_pool()

    def test_multiple_sources(self):
        source_a, specs_a, expected_a = _spec_workload(range(3))
        source_b, specs_b, expected_b = _spec_workload(range(10, 13))
        specs = [(0, spec) for _, spec in specs_a] + [(1, spec) for _, spec in specs_b]
        flat, offsets, ops = decode_blocks_spec(
            [source_a, source_b], specs, DecodeOptions()
        )
        expected = expected_a + expected_b
        for index, coeffs in enumerate(expected):
            start, end = int(offsets[index]), int(offsets[index + 1])
            assert flat[start:end].tolist() == coeffs

    def test_empty_spec_list(self):
        flat, offsets, ops = decode_blocks_spec([b""], [], DecodeOptions(workers=2))
        assert len(flat) == 0
        assert offsets.tolist() == [0]
        assert ops == []

    def test_no_shm_segments_leak(self):
        pytest.importorskip("multiprocessing.shared_memory")
        source, specs, _ = _spec_workload(range(5))
        decode_blocks_spec(
            [source], specs, DecodeOptions(workers=2, oversubscribe=True)
        )
        assert parallel._live_arenas == {}
        shutdown_pool()


def _exploding_sequential(chunk, kernel, *, parent_pid, bomb_data, marker, real):
    """Fork-inherited bomb: kill the worker process on the marked chunk,
    but only after some other chunk has completed (so the resume path has
    something to resume from)."""
    import time

    if os.getpid() != parent_pid and any(task[0] == bomb_data for task in chunk):
        deadline = time.monotonic() + 30.0
        while not os.path.exists(marker) and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.3)  # let the parent drain completed results
        os._exit(1)
    result = real(chunk, kernel)
    if os.getpid() != parent_pid:
        with open(marker, "w") as handle:
            handle.write("done")
    return result


class TestBrokenPoolResume:
    def test_resumes_completed_chunks_after_worker_crash(
        self, tmp_path, monkeypatch
    ):
        """Fault injection: one worker dies mid-run (fork start method, so
        the child inherits the monkeypatched chunk decoder).  The fallback
        must keep the completed chunks' results and re-decode only the
        chunks the broken pool lost."""
        if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only test
            pytest.skip("fork start method unavailable")
        tasks, expected = zip(*(_encode_block(seed) for seed in range(6)))
        marker = str(tmp_path / "chunk-done")
        real = entropy._decode_tasks_sequential
        parent_pid = os.getpid()
        bomb_data = tasks[-1][0]

        def bomb(chunk, kernel):
            return _exploding_sequential(
                chunk, kernel, parent_pid=parent_pid, bomb_data=bomb_data,
                marker=marker, real=real,
            )

        shutdown_pool()  # the bomb must be in place before the fork
        monkeypatch.setattr(entropy, "_decode_tasks_sequential", bomb)
        recorder = telemetry.install()
        try:
            results = decode_blocks(
                list(tasks),
                DecodeOptions(
                    workers=2, chunk_size=1, oversubscribe=True,
                    start_method="fork",
                ),
            )
        finally:
            telemetry.uninstall()
            shutdown_pool()
        for (values, ops), coeffs in zip(results, expected):
            assert values.tolist() == coeffs
            assert ops > 0
        counters = recorder.metrics
        assert counters.counter("jpeg2000.parallel.broken_pools") == 1
        assert counters.counter("jpeg2000.parallel.chunks_resumed") >= 1
        assert counters.counter("jpeg2000.parallel.chunks_redecoded") >= 1
        # Resume must NOT have re-decoded everything from scratch.
        assert (
            counters.counter("jpeg2000.parallel.chunks_redecoded") < len(tasks)
        )


class TestParallelObservability:
    """Worker events ride back with results and merge deterministically."""

    def test_pickle_transport_carries_worker_events(self):
        tasks, _ = zip(*(_encode_block(seed) for seed in range(6)))
        log = telemetry.install_log()
        try:
            decode_blocks(
                list(tasks),
                DecodeOptions(workers=2, chunk_size=2, oversubscribe=True),
            )
        finally:
            telemetry.uninstall_log()
            shutdown_pool()
        (fanout,) = log.select("parallel.fanout")
        assert fanout["transport"] == "pickle"
        assert fanout["chunks"] == 3
        chunks = log.select("parallel.chunk_decoded")
        assert len(chunks) == 3
        for record in chunks:
            assert record["transport"] == "pickle"
            assert record["pid"] > 0
        assert log.select("parallel.gathered")
        # Merged events are one coherent stream: one run id, unique
        # strictly-increasing sequence numbers.
        seqs = [record["seq"] for record in log.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert {record["run_id"] for record in log.events} == {log.run_id}

    def test_shm_transport_carries_worker_events(self):
        pytest.importorskip("multiprocessing.shared_memory")
        source, specs, _ = _spec_workload(range(6))
        log = telemetry.install_log()
        try:
            decode_blocks_spec(
                [source], specs,
                DecodeOptions(workers=2, chunk_size=2, oversubscribe=True),
            )
        finally:
            telemetry.uninstall_log()
            shutdown_pool()
        (fanout,) = log.select("parallel.fanout")
        assert fanout["transport"] == "shm"
        chunks = log.select("parallel.chunk_decoded")
        assert chunks and all(r["transport"] == "shm" for r in chunks)
        assert all(r["pid"] > 0 for r in chunks)

    def test_workers_send_no_events_when_log_disabled(self):
        tasks, _ = zip(*(_encode_block(seed) for seed in range(4)))
        kernel = DecodeOptions().kernel
        results, events = parallel._decode_chunk((kernel, list(tasks), False))
        assert events is None
        assert len(results) == len(tasks)

    def test_degraded_counter_is_reason_labelled(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        parallel._degradations_warned.clear()
        tasks, _ = zip(*(_encode_block(seed) for seed in range(2)))
        recorder = telemetry.install()
        log = telemetry.install_log()
        try:
            with pytest.warns(ParallelDegradedWarning):
                decode_blocks(list(tasks), DecodeOptions(workers=4))
        finally:
            telemetry.uninstall_log()
            telemetry.uninstall()
        assert recorder.metrics.counter(
            "jpeg2000.parallel.degraded_total{reason=clamped to os.cpu_count()}"
        ) == 1
        (event,) = log.select("parallel.degraded")
        assert event["reason"] == "clamped to os.cpu_count()"
        assert event["requested"] == 4
        assert event["effective"] == 1


class TestCrashReport:
    def test_worker_crash_dumps_flight_report(self, tmp_path, monkeypatch):
        """Acceptance: a worker crash mid-decode produces a crash report
        carrying the pool-broken event and the per-chunk fate map."""
        import json

        from repro.telemetry.flight import FlightRecorder

        if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only test
            pytest.skip("fork start method unavailable")
        tasks, expected = zip(*(_encode_block(seed) for seed in range(6)))
        marker = str(tmp_path / "chunk-done")
        real = entropy._decode_tasks_sequential
        parent_pid = os.getpid()
        bomb_data = tasks[-1][0]

        def bomb(chunk, kernel):
            return _exploding_sequential(
                chunk, kernel, parent_pid=parent_pid, bomb_data=bomb_data,
                marker=marker, real=real,
            )

        shutdown_pool()  # the bomb must be in place before the fork
        monkeypatch.setattr(entropy, "_decode_tasks_sequential", bomb)
        telemetry.install_log()
        telemetry.install_flight(FlightRecorder(crash_dir=tmp_path))
        try:
            results = decode_blocks(
                list(tasks),
                DecodeOptions(
                    workers=2, chunk_size=1, oversubscribe=True,
                    start_method="fork",
                ),
            )
        finally:
            telemetry.uninstall_flight()
            telemetry.uninstall_log()
            shutdown_pool()
        for (values, _), coeffs in zip(results, expected):
            assert values.tolist() == coeffs
        (report_path,) = tmp_path.glob("crash-*.json")
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["reason"] == "broken-pool"
        events = [record["event"] for record in report["events"]]
        assert "parallel.pool_broken" in events
        assert "parallel.fanout" in events
        fates = set(report["chunks"].values())
        assert "redecoded" in fates  # the lost chunk was re-decoded
        assert fates <= {"submitted", "done", "resumed", "redecoded"}
        assert report["context"]["schedule"]["effective_workers"] == 2
