"""EBCOT context tables (T.800 Annex D)."""

import pytest

from repro.jpeg2000.context import (
    CTX_RUN,
    CTX_UNI,
    HH,
    HL,
    LH,
    LL,
    NUM_CONTEXTS,
    initial_contexts,
    mr_context,
    sc_context,
    zc_context,
)


class TestInitialStates:
    def test_bank_size(self):
        assert len(initial_contexts()) == NUM_CONTEXTS == 19

    def test_standard_initialisation(self):
        bank = initial_contexts()
        assert bank[0].index == 4  # all-zero-neighbourhood ZC
        assert bank[CTX_RUN].index == 3
        assert bank[CTX_UNI].index == 46
        # everything else starts at state 0
        for index, ctx in enumerate(bank):
            if index not in (0, CTX_RUN, CTX_UNI):
                assert ctx.index == 0


class TestZeroCoding:
    def test_all_zero_neighbourhood(self):
        for orientation in (LL, HL, LH, HH):
            assert zc_context(orientation, 0, 0, 0) == 0

    def test_lh_table_rows(self):
        # T.800 Table D.1 spot checks for LL/LH
        assert zc_context(LH, 2, 0, 0) == 8
        assert zc_context(LH, 1, 1, 0) == 7
        assert zc_context(LH, 1, 0, 1) == 6
        assert zc_context(LH, 1, 0, 0) == 5
        assert zc_context(LH, 0, 2, 0) == 4
        assert zc_context(LH, 0, 1, 0) == 3
        assert zc_context(LH, 0, 0, 2) == 2
        assert zc_context(LH, 0, 0, 1) == 1

    def test_hl_swaps_h_and_v(self):
        for h in range(3):
            for v in range(3):
                for d in range(5):
                    assert zc_context(HL, h, v, d) == zc_context(LH, v, h, d)

    def test_hh_diagonal_dominant(self):
        assert zc_context(HH, 0, 0, 3) == 8
        assert zc_context(HH, 1, 1, 2) == 7
        assert zc_context(HH, 0, 0, 2) == 6
        assert zc_context(HH, 2, 0, 1) == 5
        assert zc_context(HH, 1, 0, 1) == 4
        assert zc_context(HH, 0, 0, 1) == 3
        assert zc_context(HH, 2, 0, 0) == 2
        assert zc_context(HH, 1, 0, 0) == 1

    def test_unknown_orientation_rejected(self):
        with pytest.raises(ValueError):
            zc_context("XX", 0, 0, 0)

    def test_range_is_0_to_8(self):
        for orientation in (LL, HL, LH, HH):
            for h in range(3):
                for v in range(3):
                    for d in range(5):
                        assert 0 <= zc_context(orientation, h, v, d) <= 8


class TestSignCoding:
    def test_table_entries(self):
        assert sc_context(0, 0) == (9, 0)
        assert sc_context(1, 1) == (13, 0)
        assert sc_context(-1, -1) == (13, 1)
        assert sc_context(0, -1) == (10, 1)
        assert sc_context(-1, 0) == (12, 1)

    def test_symmetry_negation_flips_xor(self):
        for h in (-1, 0, 1):
            for v in (-1, 0, 1):
                if (h, v) == (0, 0):
                    continue
                ctx_pos, xor_pos = sc_context(h, v)
                ctx_neg, xor_neg = sc_context(-h, -v)
                assert ctx_pos == ctx_neg
                assert xor_pos != xor_neg

    def test_context_range(self):
        for h in (-1, 0, 1):
            for v in (-1, 0, 1):
                ctx, xor_bit = sc_context(h, v)
                assert 9 <= ctx <= 13
                assert xor_bit in (0, 1)


class TestMagnitudeRefinement:
    def test_first_refinement_contexts(self):
        assert mr_context(True, False) == 14
        assert mr_context(True, True) == 15

    def test_later_refinements(self):
        assert mr_context(False, False) == 16
        assert mr_context(False, True) == 16
