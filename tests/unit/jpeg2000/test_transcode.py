"""Layer-dropping transcoder: byte surgery, not re-encoding."""

import pytest

from repro.jpeg2000 import (
    CodingParameters,
    Jpeg2000Decoder,
    decode_codestream,
    encode_image,
    synthetic_image,
)
from repro.jpeg2000.codestream import PROGRESSION_RLCP
from repro.jpeg2000.transcode import TranscodeError, drop_layers


def params(**overrides):
    defaults = dict(
        width=64, height=64, num_components=3,
        tile_width=32, tile_height=32, num_levels=3,
        lossless=False, num_layers=5, base_step=1 / 8,
    )
    defaults.update(overrides)
    return CodingParameters(**defaults)


@pytest.fixture(scope="module")
def image():
    return synthetic_image(64, 64, 3, seed=9)


@pytest.fixture(scope="module")
def codestream(image):
    return encode_image(image, params())


class TestDropLayers:
    @pytest.mark.parametrize("keep", [1, 2, 4])
    def test_matches_prefix_decode_exactly(self, codestream, keep):
        transcoded = drop_layers(codestream, keep)
        reference = Jpeg2000Decoder(codestream, max_layers=keep).decode()
        assert decode_codestream(transcoded) == reference

    def test_output_is_smaller(self, codestream):
        assert len(drop_layers(codestream, 1)) < len(codestream) / 2

    def test_keep_all_is_identity(self, codestream):
        assert drop_layers(codestream, 5) == codestream
        assert drop_layers(codestream, 9) == codestream

    def test_header_announces_reduced_layers(self, codestream):
        transcoded = drop_layers(codestream, 2)
        assert Jpeg2000Decoder(transcoded).parameters.num_layers == 2

    def test_transcoded_stream_is_transcodable_again(self, codestream):
        twice = drop_layers(drop_layers(codestream, 3), 1)
        once = drop_layers(codestream, 1)
        assert decode_codestream(twice) == decode_codestream(once)

    def test_zero_layers_rejected(self, codestream):
        with pytest.raises(TranscodeError, match="at least one"):
            drop_layers(codestream, 0)

    def test_rlcp_streams_rejected(self, image):
        rlcp = encode_image(image, params(progression=PROGRESSION_RLCP))
        with pytest.raises(TranscodeError, match="LRCP"):
            drop_layers(rlcp, 1)

    def test_works_with_resilience_markers(self, image):
        marked = encode_image(image, params(use_sop=True, use_eph=True))
        transcoded = drop_layers(marked, 2)
        reference = Jpeg2000Decoder(marked, max_layers=2).decode()
        assert decode_codestream(transcoded) == reference

    def test_lossless_streams_supported(self, image):
        lossless = encode_image(image, params(lossless=True))
        transcoded = drop_layers(lossless, 3)
        reference = Jpeg2000Decoder(lossless, max_layers=3).decode()
        assert decode_codestream(transcoded) == reference
