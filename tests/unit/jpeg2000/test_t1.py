"""Tier-1 code-block coding."""

import random

import pytest

from repro.jpeg2000.t1 import CodeBlockDecoder, CodeBlockEncoder


def encode_decode(coeffs, width, height, orientation="HL", passes=None):
    result = CodeBlockEncoder(coeffs, width, height, orientation).encode()
    limit = passes if passes is not None else result.num_passes
    decoder = CodeBlockDecoder(
        result.data, width, height, orientation, result.num_bitplanes, limit
    )
    return result, decoder.decode()


class TestRoundtrip:
    def test_all_zero_block(self):
        result, decoded = encode_decode([0] * 16, 4, 4)
        assert result.num_bitplanes == 0
        assert result.num_passes == 0
        assert result.data == b""
        assert decoded == [0] * 16

    def test_single_coefficient(self):
        coeffs = [0] * 16
        coeffs[5] = -37
        _, decoded = encode_decode(coeffs, 4, 4)
        assert decoded == coeffs

    def test_all_orientations(self):
        rng = random.Random(5)
        coeffs = [rng.randrange(-63, 64) for _ in range(64)]
        for orientation in ("LL", "HL", "LH", "HH"):
            _, decoded = encode_decode(coeffs, 8, 8, orientation)
            assert decoded == coeffs

    def test_non_multiple_of_four_height(self):
        # stripes of 4: heights 5, 6, 7 exercise the truncated last stripe
        rng = random.Random(6)
        for height in (1, 2, 3, 5, 6, 7):
            coeffs = [rng.randrange(-15, 16) for _ in range(3 * height)]
            _, decoded = encode_decode(coeffs, 3, height)
            assert decoded == coeffs

    def test_single_row_and_column(self):
        _, decoded = encode_decode([1, -2, 3, -4], 4, 1)
        assert decoded == [1, -2, 3, -4]
        _, decoded = encode_decode([1, -2, 3, -4], 1, 4)
        assert decoded == [1, -2, 3, -4]

    def test_wide_dynamic_range(self):
        coeffs = [0, (1 << 15) - 1, -(1 << 15), 1]
        result, decoded = encode_decode(coeffs, 2, 2)
        assert decoded == coeffs
        assert result.num_bitplanes == 16

    def test_dense_block(self):
        rng = random.Random(7)
        coeffs = [rng.randrange(-255, 256) for _ in range(32 * 32)]
        _, decoded = encode_decode(coeffs, 32, 32)
        assert decoded == coeffs


class TestPassStructure:
    def test_pass_count_formula(self):
        coeffs = [0] * 16
        coeffs[0] = 7  # 3 bitplanes
        result, _ = encode_decode(coeffs, 4, 4)
        assert result.num_bitplanes == 3
        assert result.num_passes == 3 * 3 - 2

    def test_truncated_passes_give_progressive_quality(self):
        rng = random.Random(8)
        coeffs = [rng.randrange(-127, 128) for _ in range(64)]
        result = CodeBlockEncoder(coeffs, 8, 8, "HL").encode()
        errors = []
        for passes in range(1, result.num_passes + 1):
            decoder = CodeBlockDecoder(
                result.data, 8, 8, "HL", result.num_bitplanes, passes
            )
            decoded = decoder.decode()
            errors.append(sum((a - b) ** 2 for a, b in zip(coeffs, decoded)))
        assert errors[-1] == 0  # all passes = exact
        assert errors[0] >= errors[-1]
        # quality must be (weakly) monotone in decoded pass count
        assert all(errors[i] >= errors[i + 1] for i in range(len(errors) - 1))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            CodeBlockEncoder([0] * 5, 2, 2, "HL")

    def test_sparse_blocks_use_run_mode_efficiently(self):
        # A nearly-empty block should cost only a few bytes thanks to the
        # cleanup pass run-length mode.
        coeffs = [0] * (32 * 32)
        coeffs[500] = 3
        result = CodeBlockEncoder(coeffs, 32, 32, "HH").encode()
        assert len(result.data) < 40


class TestOps:
    def test_decoder_ops_scale_with_content(self):
        rng = random.Random(9)
        sparse = [0] * 256
        sparse[10] = 5
        dense = [rng.randrange(-255, 256) for _ in range(256)]
        sparse_result = CodeBlockEncoder(sparse, 16, 16, "HL").encode()
        dense_result = CodeBlockEncoder(dense, 16, 16, "HL").encode()
        sparse_decoder = CodeBlockDecoder(
            sparse_result.data, 16, 16, "HL", sparse_result.num_bitplanes
        )
        dense_decoder = CodeBlockDecoder(
            dense_result.data, 16, 16, "HL", dense_result.num_bitplanes
        )
        sparse_decoder.decode()
        dense_decoder.decode()
        assert dense_decoder.ops > sparse_decoder.ops
