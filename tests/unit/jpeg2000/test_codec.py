"""End-to-end codec behaviour."""

import numpy as np
import pytest

from repro.jpeg2000 import (
    CodingParameters,
    EncodingError,
    Jpeg2000Decoder,
    decode_codestream,
    encode_image,
    synthetic_image,
)
from repro.jpeg2000.image import Image


def params(size=64, tile=32, lossless=True, components=3, **overrides):
    defaults = dict(
        width=size,
        height=size,
        num_components=components,
        tile_width=tile,
        tile_height=tile,
        num_levels=3,
        lossless=lossless,
        use_mct=components >= 3,
        base_step=1 / 8,
    )
    defaults.update(overrides)
    return CodingParameters(**defaults)


class TestLossless:
    def test_roundtrip_exact_multi_tile(self):
        image = synthetic_image(64, 64, 3, seed=20)
        assert decode_codestream(encode_image(image, params())) == image

    def test_roundtrip_exact_single_tile(self):
        image = synthetic_image(32, 32, 3, seed=21)
        assert decode_codestream(
            encode_image(image, params(size=32, tile=32))
        ) == image

    def test_roundtrip_grayscale(self):
        image = synthetic_image(32, 32, 1, seed=22)
        out = decode_codestream(encode_image(image, params(size=32, components=1)))
        assert out == image

    def test_roundtrip_without_mct(self):
        image = synthetic_image(32, 32, 3, seed=23)
        p = params(size=32, use_mct=False)
        assert decode_codestream(encode_image(image, p)) == image

    def test_non_square_non_tile_aligned(self):
        image = synthetic_image(48, 80, 3, seed=24)
        p = params()
        p.width, p.height = 48, 80
        assert decode_codestream(encode_image(image, p)) == image

    def test_compresses_below_raw(self):
        image = synthetic_image(64, 64, 3, seed=25)
        data = encode_image(image, params())
        assert len(data) < 64 * 64 * 3  # less than 8 bpp raw

    def test_pathological_flat_image(self):
        flat = Image([np.full((32, 32), 200, dtype=np.int64)] * 3, bit_depth=8)
        p = params(size=32)
        data = encode_image(flat, p)
        assert decode_codestream(data) == flat
        assert len(data) < 600  # near-empty packets

    def test_extreme_values(self):
        rng = np.random.default_rng(26)
        extreme = Image(
            [rng.choice([0, 255], size=(32, 32)).astype(np.int64) for _ in range(3)],
            bit_depth=8,
        )
        assert decode_codestream(encode_image(extreme, params(size=32))) == extreme


class TestLossy:
    def test_quality_improves_with_finer_steps(self):
        image = synthetic_image(64, 64, 3, seed=27)
        psnrs = []
        for base in (1 / 2, 1 / 8, 1 / 32):
            p = params(lossless=False, base_step=base)
            out = decode_codestream(encode_image(image, p))
            psnrs.append(out.psnr(image))
        assert psnrs[0] < psnrs[1] < psnrs[2]

    def test_rate_decreases_with_coarser_steps(self):
        image = synthetic_image(64, 64, 3, seed=28)
        fine = len(encode_image(image, params(lossless=False, base_step=1 / 32)))
        coarse = len(encode_image(image, params(lossless=False, base_step=1 / 2)))
        assert coarse < fine

    def test_reasonable_quality_at_moderate_rate(self):
        image = synthetic_image(64, 64, 3, seed=29)
        out = decode_codestream(encode_image(image, params(lossless=False, base_step=1 / 8)))
        assert out.psnr(image) > 35.0


class TestStageInstrumentation:
    def test_ops_recorded_per_stage(self):
        image = synthetic_image(32, 32, 3, seed=30)
        decoder = Jpeg2000Decoder(encode_image(image, params(size=32)))
        decoder.decode()
        ops = decoder.ops
        assert ops["arith"] > 0
        assert ops["iq"] > 0
        assert ops["idwt"] > 0
        assert ops["ict"] == 3 * 32 * 32
        assert ops["dc"] == 3 * 32 * 32

    def test_tile_stages_match_full_decode(self):
        image = synthetic_image(64, 64, 3, seed=31)
        data = encode_image(image, params())
        full = decode_codestream(data)
        decoder = Jpeg2000Decoder(data)
        from repro.jpeg2000 import TileGrid

        grid = TileGrid(64, 64, 32, 32)
        pieces = [
            np.zeros((64, 64), dtype=np.int64) for _ in range(3)
        ]
        for tile_index in range(grid.num_tiles):
            planes = decoder.tile_stages(tile_index).run()
            for target, plane in zip(pieces, planes):
                grid.insert(target, tile_index, plane)
        assert all(
            np.array_equal(a, b) for a, b in zip(pieces, full.components)
        )


class TestEncoderValidation:
    def test_size_mismatch_rejected(self):
        image = synthetic_image(32, 32, 3)
        with pytest.raises(EncodingError, match="size"):
            encode_image(image, params(size=64))

    def test_component_mismatch_rejected(self):
        image = synthetic_image(32, 32, 1)
        with pytest.raises(EncodingError, match="component"):
            encode_image(image, params(size=32, components=3))

    def test_bit_depth_mismatch_rejected(self):
        image = synthetic_image(32, 32, 3, bit_depth=10)
        with pytest.raises(EncodingError, match="depth"):
            encode_image(image, params(size=32))
