"""Error-resilience markers: SOP sequence numbers and EPH."""

import pytest

from repro.jpeg2000 import (
    CodingParameters,
    decode_codestream,
    encode_image,
    synthetic_image,
)
from repro.jpeg2000.t2 import EPH_MARKER, PacketError, SOP_MARKER, consume_sop, sop_segment


def params(use_sop=False, use_eph=False, **overrides):
    defaults = dict(
        width=64, height=64, num_components=3,
        tile_width=32, tile_height=32, num_levels=3,
        lossless=True, use_sop=use_sop, use_eph=use_eph,
    )
    defaults.update(overrides)
    return CodingParameters(**defaults)


@pytest.fixture(scope="module")
def image():
    return synthetic_image(64, 64, 3, seed=44)


class TestMarkers:
    def test_sop_segment_layout(self):
        segment = sop_segment(0x1234)
        assert segment == b"\xff\x91\x00\x04\x12\x34"

    def test_sop_sequence_wraps_16_bits(self):
        assert sop_segment(0x1_0005)[-2:] == b"\x00\x05"
        assert consume_sop(sop_segment(0x1_0005), 0, 0x1_0005) == 6

    def test_consume_sop_rejects_wrong_marker(self):
        with pytest.raises(PacketError, match="desynchronised"):
            consume_sop(b"\x00\x00\x00\x04\x00\x00", 0, 0)

    def test_consume_sop_rejects_wrong_sequence(self):
        with pytest.raises(PacketError, match="sequence mismatch"):
            consume_sop(sop_segment(3), 0, 4)


class TestRoundtrips:
    @pytest.mark.parametrize("use_sop,use_eph", [
        (True, False), (False, True), (True, True),
    ])
    def test_exact_with_markers(self, image, use_sop, use_eph):
        codestream = encode_image(image, params(use_sop, use_eph))
        assert decode_codestream(codestream) == image

    def test_markers_signalled_in_cod(self, image):
        from repro.jpeg2000 import parse_codestream

        codestream = encode_image(image, params(True, True))
        parsed = parse_codestream(codestream).parameters
        assert parsed.use_sop and parsed.use_eph

    def test_markers_present_in_stream(self, image):
        plain = encode_image(image, params())
        marked = encode_image(image, params(True, True))
        assert SOP_MARKER not in _tile_body(plain)
        assert marked.count(SOP_MARKER) >= 4  # one per packet
        assert EPH_MARKER in marked

    def test_layered_streams_with_markers(self, image):
        codestream = encode_image(image, params(True, True, num_layers=3))
        assert decode_codestream(codestream) == image


def _tile_body(codestream):
    sod = codestream.find(b"\xff\x93")
    return codestream[sod + 2:]


class TestCorruptionDetection:
    def test_sequence_corruption_detected(self, image):
        codestream = bytearray(encode_image(image, params(True, False)))
        position = bytes(codestream).find(SOP_MARKER, 200)
        codestream[position + 5] ^= 0x01
        with pytest.raises(PacketError, match="sequence mismatch"):
            decode_codestream(bytes(codestream))

    def test_missing_eph_detected(self, image):
        codestream = bytearray(encode_image(image, params(False, True)))
        position = bytes(codestream).find(EPH_MARKER)
        codestream[position] = 0x00
        with pytest.raises(PacketError, match="EPH"):
            decode_codestream(bytes(codestream))

    def test_plain_stream_has_no_detection(self, image):
        """Without markers the same corruption passes silently or decodes
        to garbage — the motivation for the resilience options."""
        codestream = bytearray(encode_image(image, params()))
        # flip a bit deep inside a packet body
        codestream[len(codestream) // 2] ^= 0x10
        try:
            out = decode_codestream(bytes(codestream))
            assert out != image  # silently wrong
        except Exception:
            pass  # or some downstream error: either way, no clean detection
