"""Geometry bookkeeping and image containers."""

import numpy as np
import pytest

from repro.jpeg2000 import dwt
from repro.jpeg2000.image import Image, TileGrid, synthetic_image
from repro.jpeg2000.structure import band_shapes, codeblock_grid, effective_levels, grid_dimensions


class TestBandShapes:
    def test_matches_dwt_output(self):
        rng = np.random.default_rng(3)
        for shape in [(16, 16), (17, 13), (5, 9), (128, 128)]:
            tile = rng.integers(0, 10, shape)
            subbands = dwt.forward(tile, "5/3", 3)
            actual = {
                (res, orient): arr.shape for res, orient, arr in subbands.iter_bands()
            }
            predicted = {
                (s.resolution, s.orientation): (s.height, s.width)
                for s in band_shapes(shape[1], shape[0], 3)
            }
            assert predicted == actual

    def test_level_zero(self):
        shapes = band_shapes(16, 16, 0)
        assert len(shapes) == 1
        assert shapes[0].orientation == "LL"
        assert (shapes[0].height, shapes[0].width) == (16, 16)

    def test_effective_levels_stops_at_degenerate(self):
        assert effective_levels(1, 1, 5) == 0
        assert effective_levels(2, 2, 5) == 1
        assert effective_levels(128, 128, 3) == 3


class TestCodeblockGrid:
    def test_exact_division(self):
        blocks = codeblock_grid(64, 64, 32)
        assert len(blocks) == 4
        assert blocks[0].width == blocks[0].height == 32

    def test_edge_blocks_truncated(self):
        blocks = codeblock_grid(40, 40, 32)
        assert grid_dimensions(40, 40, 32) == (2, 2)
        widths = {(b.index_x, b.index_y): b.width for b in blocks}
        assert widths[(0, 0)] == 32 and widths[(1, 0)] == 8

    def test_empty_band(self):
        assert codeblock_grid(0, 16, 32) == []
        assert grid_dimensions(0, 16, 32) == (0, 0)

    def test_raster_order(self):
        blocks = codeblock_grid(96, 64, 32)
        order = [(b.index_x, b.index_y) for b in blocks]
        assert order == [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]


class TestTileGrid:
    def test_tile_counts(self):
        grid = TileGrid(512, 512, 128, 128)
        assert grid.num_tiles == 16
        assert grid.tiles_across == grid.tiles_down == 4

    def test_partial_edge_tiles(self):
        grid = TileGrid(100, 60, 32, 32)
        assert grid.tiles_across == 4 and grid.tiles_down == 2
        x0, y0, x1, y1 = grid.tile_bounds(3)
        assert (x1 - x0, y1 - y0) == (4, 32)

    def test_extract_insert_roundtrip(self):
        rng = np.random.default_rng(4)
        source = rng.integers(0, 256, (64, 64))
        grid = TileGrid(64, 64, 32, 32)
        target = np.zeros_like(source)
        for index in range(grid.num_tiles):
            grid.insert(target, index, grid.extract(source, index))
        assert np.array_equal(source, target)

    def test_out_of_range_tile(self):
        grid = TileGrid(64, 64, 32, 32)
        with pytest.raises(IndexError):
            grid.tile_bounds(4)


class TestImage:
    def test_equality(self):
        a = synthetic_image(32, 32, 3, seed=1)
        b = synthetic_image(32, 32, 3, seed=1)
        c = synthetic_image(32, 32, 3, seed=2)
        assert a == b
        assert a != c

    def test_mismatched_component_shapes_rejected(self):
        with pytest.raises(ValueError):
            Image(components=[np.zeros((4, 4)), np.zeros((8, 8))])

    def test_psnr_identical_is_infinite(self):
        image = synthetic_image(32, 32, 1)
        assert image.psnr(image) == float("inf")

    def test_psnr_decreases_with_noise(self):
        image = synthetic_image(32, 32, 1, seed=5)
        slightly = Image([image.components[0] + 1], bit_depth=8)
        very = Image([image.components[0] + 16], bit_depth=8)
        assert image.psnr(slightly) > image.psnr(very)

    def test_synthetic_respects_bit_depth(self):
        image = synthetic_image(32, 32, 2, bit_depth=10)
        for comp in image.components:
            assert comp.min() >= 0
            assert comp.max() <= 1023

    def test_synthetic_has_texture(self):
        image = synthetic_image(64, 64, 1)
        assert image.components[0].std() > 10  # not flat
