"""Unit tests for the decode-plan IR: planner, validator, rewrites.

The properties pinned here are the contract the driver relies on:
compilation is *total* (every constructible ``DecodeOptions`` yields a
valid plan), the canonical serialisation is deterministic (the digest is
a usable cache/ledger key), ``options_for_plan`` round-trips, and every
documented validation rule actually fires with its code.
"""

import itertools
import json

import pytest

from repro.jpeg2000.options import DecodeOptions
from repro.jpeg2000.plan import (
    ASSEMBLE_MOSAIC,
    EXECUTOR_INLINE,
    EXECUTOR_POOL,
    INLINE,
    RECONSTRUCT_VECTORISED,
    STAGE_ASSEMBLE,
    STAGE_ENTROPY,
    STAGE_ORDER,
    STAGE_PARSE,
    STAGE_RECONSTRUCT,
    TRANSPORT_ARENA,
    TRANSPORT_PICKLE,
    DecodePlan,
    ExecutorSpec,
    PlanEnvironment,
    PlanValidationError,
    StageBinding,
    check_plan,
    compile_plan,
    degrade_to_inline,
    degrade_to_pickle,
    options_for_plan,
    validate_plan,
    without_overlap,
)

#: A host that can run everything (so validation exercises the plan, not
#: the machine the tests happen to run on).
BIG_HOST = PlanEnvironment(cpu_count=8, shared_memory_available=True)
#: A host with no shared memory.
NO_SHM_HOST = PlanEnvironment(cpu_count=8, shared_memory_available=False)
#: A single-CPU host.
SMALL_HOST = PlanEnvironment(cpu_count=1, shared_memory_available=True)


def valid_pool_plan(**executor_overrides) -> DecodePlan:
    """A known-good parallel plan to perturb in validator tests."""
    fields = {
        "kind": EXECUTOR_POOL, "workers": 4, "chunk_size": 8,
        "transport": TRANSPORT_ARENA, "overlap": True,
        **executor_overrides,
    }
    executor = ExecutorSpec(**fields)
    return DecodePlan((
        StageBinding(STAGE_PARSE, "fast"),
        StageBinding(STAGE_ENTROPY, "batched", executor),
        StageBinding(STAGE_RECONSTRUCT, RECONSTRUCT_VECTORISED),
        StageBinding(STAGE_ASSEMBLE, ASSEMBLE_MOSAIC),
    ))


def rules_of(plan, env=BIG_HOST):
    return {issue.rule for issue in validate_plan(plan, env)}


class TestCompileTotality:
    """compile_plan(options, env) validates for every constructible options."""

    # The full cross product is ~1.5k combinations; cheap, and the whole
    # point of a totality property.
    WORKERS = (0, 1, 2, 4, None)
    KERNELS = ("fast", "batched", "reference")
    TIER2 = ("fast", "reference")
    BOOLS = (False, True)

    @pytest.mark.parametrize("env", [BIG_HOST, NO_SHM_HOST, SMALL_HOST])
    def test_every_options_value_compiles_valid(self, env):
        for workers, kernel, shm, tier2, overlap, oversub in itertools.product(
            self.WORKERS, self.KERNELS, self.BOOLS, self.TIER2,
            self.BOOLS, self.BOOLS,
        ):
            options = DecodeOptions(
                workers=workers, kernel=kernel, shared_memory=shm,
                tier2=tier2, overlap=overlap, oversubscribe=oversub,
            )
            plan = compile_plan(options, env)
            issues = validate_plan(plan, env)
            assert not issues, (
                f"options {options} compiled to invalid plan on {env}: "
                f"{[i.as_dict() for i in issues]}"
            )

    def test_sequential_options_bind_inline_entropy(self):
        plan = compile_plan(DecodeOptions(workers=0), BIG_HOST)
        assert plan.stage(STAGE_ENTROPY).executor == INLINE

    def test_parallel_options_bind_pool_entropy(self):
        plan = compile_plan(DecodeOptions(workers=4), BIG_HOST)
        ex = plan.stage(STAGE_ENTROPY).executor
        assert ex.kind == EXECUTOR_POOL
        assert ex.workers == 4
        assert ex.transport == TRANSPORT_ARENA
        assert ex.overlap

    def test_host_clamp_compiles_parallel_request_to_inline(self):
        # On a 1-CPU host without oversubscribe, workers=4 is clamped to
        # 1 worker — which is not a pool at all.
        plan = compile_plan(DecodeOptions(workers=4), SMALL_HOST)
        assert plan.stage(STAGE_ENTROPY).executor.kind == EXECUTOR_INLINE

    def test_oversubscribe_defeats_host_clamp(self):
        plan = compile_plan(
            DecodeOptions(workers=4, oversubscribe=True), SMALL_HOST
        )
        assert plan.stage(STAGE_ENTROPY).executor.workers == 4

    def test_workers_none_takes_env_cpu_count(self):
        plan = compile_plan(DecodeOptions(workers=None), BIG_HOST)
        assert plan.stage(STAGE_ENTROPY).executor.workers == BIG_HOST.cpu_count

    def test_no_shared_memory_compiles_to_pickle_transport(self):
        plan = compile_plan(DecodeOptions(workers=4), NO_SHM_HOST)
        ex = plan.stage(STAGE_ENTROPY).executor
        assert ex.transport == TRANSPORT_PICKLE
        assert not ex.overlap  # streaming needs the arena

    def test_arena_normalises_fast_kernel_to_batched(self):
        # Arena workers always run the batched kernel; the plan records
        # what actually executes.
        plan = compile_plan(DecodeOptions(workers=4, kernel="fast"), BIG_HOST)
        assert plan.stage(STAGE_ENTROPY).impl == "batched"

    def test_pickle_transport_keeps_fast_kernel(self):
        plan = compile_plan(
            DecodeOptions(workers=4, kernel="fast"), NO_SHM_HOST
        )
        assert plan.stage(STAGE_ENTROPY).impl == "fast"

    def test_tier2_choice_lands_on_parse_stage(self):
        plan = compile_plan(DecodeOptions(tier2="reference"), BIG_HOST)
        assert plan.stage(STAGE_PARSE).impl == "reference"


class TestCanonicalForm:
    def test_digest_is_deterministic(self):
        a = compile_plan(DecodeOptions(workers=4), BIG_HOST)
        b = compile_plan(DecodeOptions(workers=4), BIG_HOST)
        assert a == b
        assert a.digest() == b.digest()
        assert a.canonical_json() == b.canonical_json()

    def test_digest_distinguishes_plans(self):
        a = compile_plan(DecodeOptions(workers=4), BIG_HOST)
        b = compile_plan(DecodeOptions(workers=2), BIG_HOST)
        assert a.digest() != b.digest()

    def test_canonical_json_round_trips_as_data(self):
        plan = valid_pool_plan()
        data = json.loads(plan.canonical_json())
        assert [s["stage"] for s in data["stages"]] == list(STAGE_ORDER)

    def test_describe_is_deterministic_and_carries_digest(self):
        plan = valid_pool_plan()
        text = plan.describe()
        assert text == plan.describe()
        assert plan.digest()[:12] in text.splitlines()[0]
        assert len(text.splitlines()) == 1 + len(plan.stages)

    def test_stage_lookup_raises_on_unbound_stage(self):
        with pytest.raises(KeyError):
            DecodePlan(()).stage(STAGE_ENTROPY)


class TestValidatorRules:
    def test_valid_plan_has_no_issues(self):
        assert validate_plan(valid_pool_plan(), BIG_HOST) == []

    def test_stage_missing(self):
        plan = DecodePlan(tuple(
            b for b in valid_pool_plan().stages if b.stage != STAGE_RECONSTRUCT
        ))
        assert "plan.stage-missing" in rules_of(plan)

    def test_stage_order(self):
        plan = DecodePlan(tuple(reversed(valid_pool_plan().stages)))
        assert "plan.stage-order" in rules_of(plan)

    def test_duplicate_stage_is_an_order_issue(self):
        stages = valid_pool_plan().stages
        plan = DecodePlan(stages + (stages[0],))
        assert "plan.stage-order" in rules_of(plan)

    def test_unknown_impl(self):
        plan = valid_pool_plan().with_stage(
            StageBinding(STAGE_RECONSTRUCT, "quantum")
        )
        assert "stage.unknown-impl" in rules_of(plan)

    def test_unknown_executor_kind(self):
        plan = valid_pool_plan().with_stage(StageBinding(
            STAGE_ENTROPY, "batched", ExecutorSpec(kind="gpu")
        ))
        assert "executor.unknown-kind" in rules_of(plan)

    def test_pool_requires_workers(self):
        assert "executor.pool-requires-workers" in rules_of(
            valid_pool_plan(workers=1)
        )

    def test_pool_requires_chunking(self):
        assert "executor.pool-requires-chunking" in rules_of(
            valid_pool_plan(chunk_size=0)
        )

    def test_transport_required(self):
        assert "executor.transport-required" in rules_of(
            valid_pool_plan(transport=None, overlap=False)
        )

    def test_unknown_transport(self):
        assert "executor.unknown-transport" in rules_of(
            valid_pool_plan(transport="carrier-pigeon", overlap=False)
        )

    def test_unknown_start_method(self):
        assert "executor.unknown-start-method" in rules_of(
            valid_pool_plan(start_method="teleport")
        )

    def test_inline_carries_pool_config(self):
        plan = valid_pool_plan().with_stage(StageBinding(
            STAGE_ENTROPY, "fast", ExecutorSpec(kind=EXECUTOR_INLINE, workers=4)
        ))
        assert "executor.inline-carries-pool-config" in rules_of(plan)

    def test_stage_not_parallel(self):
        plan = valid_pool_plan().with_stage(StageBinding(
            STAGE_RECONSTRUCT, RECONSTRUCT_VECTORISED,
            ExecutorSpec(
                kind=EXECUTOR_POOL, workers=4, chunk_size=8,
                transport=TRANSPORT_PICKLE,
            ),
        ))
        assert "executor.stage-not-parallel" in rules_of(plan)

    def test_overlap_requires_arena(self):
        assert "executor.overlap-requires-arena" in rules_of(
            valid_pool_plan(transport=TRANSPORT_PICKLE, overlap=True)
        )

    def test_arena_unavailable(self):
        assert "executor.arena-unavailable" in rules_of(
            valid_pool_plan(), NO_SHM_HOST
        )

    def test_arena_requires_batched(self):
        plan = valid_pool_plan().with_stage(StageBinding(
            STAGE_ENTROPY, "fast",
            valid_pool_plan().stage(STAGE_ENTROPY).executor,
        ))
        assert "kernel.arena-requires-batched" in rules_of(plan)

    def test_issues_carry_paths(self):
        issues = validate_plan(valid_pool_plan(workers=1), BIG_HOST)
        assert issues
        for issue in issues:
            record = issue.as_dict()
            assert set(record) == {"rule", "path", "message"}
            assert record["path"].startswith(STAGE_ENTROPY)

    def test_check_plan_returns_plan_or_raises(self):
        plan = valid_pool_plan()
        assert check_plan(plan, BIG_HOST) is plan
        with pytest.raises(PlanValidationError) as excinfo:
            check_plan(valid_pool_plan(workers=1), BIG_HOST)
        assert "executor.pool-requires-workers" in str(excinfo.value)
        assert excinfo.value.issues


class TestOptionsRoundTrip:
    @pytest.mark.parametrize("options", [
        DecodeOptions(),
        DecodeOptions(kernel="reference", tier2="reference"),
        DecodeOptions(workers=4),
        DecodeOptions(workers=4, kernel="reference", chunk_size=3),
        DecodeOptions(workers=2, shared_memory=False, start_method="spawn"),
        DecodeOptions(workers=6, overlap=False),
    ])
    def test_compile_options_for_plan_reproduces_plan(self, options):
        plan = compile_plan(options, BIG_HOST)
        recovered = options_for_plan(plan)
        assert compile_plan(recovered, BIG_HOST) == plan

    def test_pool_round_trip_pins_workers_with_oversubscribe(self):
        # The recovered options must reproduce the plan even on a
        # smaller host, which is exactly what oversubscribe grants.
        plan = compile_plan(DecodeOptions(workers=4), BIG_HOST)
        recovered = options_for_plan(plan)
        assert recovered.oversubscribe
        assert compile_plan(recovered, SMALL_HOST) == plan


class TestRewrites:
    def test_degrade_to_pickle_drops_arena_and_overlap(self):
        degraded = degrade_to_pickle(valid_pool_plan())
        ex = degraded.stage(STAGE_ENTROPY).executor
        assert ex.transport == TRANSPORT_PICKLE
        assert not ex.overlap
        assert ex.workers == 4  # pool preserved
        assert validate_plan(degraded, NO_SHM_HOST) == []

    def test_degrade_to_inline_is_terminal(self):
        degraded = degrade_to_inline(valid_pool_plan())
        assert degraded.stage(STAGE_ENTROPY).executor == INLINE

    def test_without_overlap_keeps_everything_else(self):
        plan = valid_pool_plan()
        barrier = without_overlap(plan)
        assert not barrier.stage(STAGE_ENTROPY).executor.overlap
        assert barrier.stage(STAGE_ENTROPY).executor.transport == TRANSPORT_ARENA
        # Idempotent, and identity on non-overlapped plans.
        assert without_overlap(barrier) == barrier

    def test_rewrites_only_touch_the_entropy_stage(self):
        plan = valid_pool_plan()
        for rewrite in (degrade_to_pickle, degrade_to_inline, without_overlap):
            rewritten = rewrite(plan)
            for stage in (STAGE_PARSE, STAGE_RECONSTRUCT, STAGE_ASSEMBLE):
                assert rewritten.stage(stage) == plan.stage(stage)


class TestOptionsCanonicalDict:
    """Satellite regression: as_dict is the identity the cache hashes."""

    def test_equal_valued_instances_serialise_identically(self):
        a = DecodeOptions(workers=4, kernel="batched", chunk_size=16)
        b = DecodeOptions(workers=4, kernel="batched", chunk_size=16)
        assert a == b
        assert a.as_dict() == b.as_dict()
        assert (
            json.dumps(a.as_dict(), sort_keys=True)
            == json.dumps(b.as_dict(), sort_keys=True)
        )

    @pytest.mark.parametrize("flip", [
        {"workers": 2},
        {"chunk_size": 9},
        {"kernel": "reference"},
        {"shared_memory": False},
        {"start_method": "spawn"},
        {"oversubscribe": True},
        {"tier2": "reference"},
        {"overlap": False},
    ])
    def test_every_field_flip_changes_the_serialisation(self, flip):
        base = DecodeOptions(workers=4)
        flipped = DecodeOptions(**{**base.as_dict(), **flip})
        assert base.as_dict() != flipped.as_dict()

    def test_from_dict_round_trips(self):
        options = DecodeOptions(
            workers=None, kernel="reference", start_method="forkserver",
            oversubscribe=True, overlap=False,
        )
        assert DecodeOptions.from_dict(options.as_dict()) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError):
            DecodeOptions.from_dict({"workers": 2, "turbo": True})
