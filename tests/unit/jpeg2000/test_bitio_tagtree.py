"""Packet-header bit I/O (with stuffing) and tag trees."""

import pytest

from repro.jpeg2000.bitio import BitReader, BitWriter
from repro.jpeg2000.tagtree import TagTree


class TestBitWriter:
    def test_bits_pack_msb_first(self):
        writer = BitWriter()
        writer.put_bits(0b1010, 4)
        data = writer.flush()
        assert data == bytes([0b10100000])

    def test_stuffing_after_ff(self):
        writer = BitWriter()
        writer.put_bits(0xFF, 8)
        writer.put_bits(0b1111111, 7)  # exactly fills the 7-bit byte
        data = writer.flush()
        assert data[0] == 0xFF
        assert data[1] == 0x7F  # MSB forced to 0

    def test_header_cannot_end_in_ff(self):
        writer = BitWriter()
        writer.put_bits(0xFF, 8)
        data = writer.flush()
        assert data == b"\xff\x00"

    def test_comma_code(self):
        writer = BitWriter()
        writer.put_comma_code(3)
        reader = BitReader(writer.flush())
        assert reader.get_comma_code() == 3

    def test_roundtrip_various_lengths(self):
        for n in (1, 7, 8, 9, 15, 16, 17, 64):
            writer = BitWriter()
            bits = [(i * 7 + 3) % 2 for i in range(n)]
            for bit in bits:
                writer.put_bit(bit)
            reader = BitReader(writer.flush())
            assert [reader.get_bit() for _ in range(n)] == bits


class TestBitReader:
    def test_eof_raises(self):
        reader = BitReader(b"\x80")
        for _ in range(8):
            reader.get_bit()
        with pytest.raises(EOFError):
            reader.get_bit()

    def test_get_bits_value(self):
        writer = BitWriter()
        writer.put_bits(0b110101, 6)
        reader = BitReader(writer.flush())
        assert reader.get_bits(6) == 0b110101

    def test_align_returns_next_byte_position(self):
        writer = BitWriter()
        writer.put_bits(0b101, 3)
        data = writer.flush() + b"\xAB"
        reader = BitReader(data)
        reader.get_bits(3)
        position = reader.align()
        assert data[position] == 0xAB

    def test_align_skips_stuffed_zero_after_ff(self):
        writer = BitWriter()
        writer.put_bits(0xFF, 8)
        data = writer.flush() + b"\xCD"
        reader = BitReader(data)
        reader.get_bits(8)
        position = reader.align()
        assert data[position] == 0xCD


class TestTagTree:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            TagTree(0, 1)

    def test_1x1_tree(self):
        enc, dec = TagTree(1, 1), TagTree(1, 1)
        enc.set_value(0, 0, 2)
        writer = BitWriter()
        enc.encode(writer, 0, 0, 3)
        reader = BitReader(writer.flush())
        assert dec.decode(reader, 0, 0, 3)
        assert dec.value_of(0, 0) == 2

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            TagTree(2, 2).set_value(0, 0, -1)

    def test_value_of_undetermined_leaf(self):
        tree = TagTree(2, 2)
        with pytest.raises(ValueError, match="not determined"):
            tree.value_of(0, 0)

    def test_threshold_boundary(self):
        enc, dec = TagTree(1, 1), TagTree(1, 1)
        enc.set_value(0, 0, 5)
        writer = BitWriter()
        enc.encode(writer, 0, 0, 5)  # value == threshold: not below
        enc.encode(writer, 0, 0, 6)  # now resolved
        reader = BitReader(writer.flush())
        assert not dec.decode(reader, 0, 0, 5)
        assert dec.decode(reader, 0, 0, 6)

    def test_quadtree_sharing_compresses_headers(self):
        # A uniform grid should cost far fewer bits than leaves x value.
        size = 8
        enc = TagTree(size, size)
        for y in range(size):
            for x in range(size):
                enc.set_value(x, y, 3)
        writer = BitWriter()
        for y in range(size):
            for x in range(size):
                enc.encode(writer, x, y, 4)
        # 64 leaves of value 3, naive cost 64 x 4 zero-bits + stop bits;
        # the shared ancestors make it much cheaper.
        assert len(writer.flush()) < 20

    def test_reset_clears_state(self):
        tree = TagTree(2, 2)
        tree.set_value(0, 0, 1)
        tree.reset()
        with pytest.raises(ValueError):
            tree.value_of(0, 0)

    def test_non_square_and_non_power_of_two(self):
        enc, dec = TagTree(3, 5), TagTree(3, 5)
        values = {(x, y): (x * 5 + y) % 4 for x in range(3) for y in range(5)}
        for (x, y), value in values.items():
            enc.set_value(x, y, value)
        writer = BitWriter()
        for threshold in range(1, 5):
            for (x, y) in values:
                enc.encode(writer, x, y, threshold)
        reader = BitReader(writer.flush())
        for threshold in range(1, 5):
            for (x, y), value in values.items():
                assert dec.decode(reader, x, y, threshold) == (value < threshold)
