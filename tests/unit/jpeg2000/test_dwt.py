"""Wavelet transforms: reconstruction, shapes, operation counts."""

import numpy as np
import pytest

from repro.jpeg2000 import dwt


RNG = np.random.default_rng(11)


class Test1D53:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 8, 9, 16, 17, 101, 128])
    def test_perfect_reconstruction(self, length):
        signal = RNG.integers(-512, 512, length)
        low, high = dwt.fdwt53_1d(signal)
        assert np.array_equal(dwt.idwt53_1d(low, high), signal)

    def test_band_lengths(self):
        low, high = dwt.fdwt53_1d(np.arange(9))
        assert low.shape[0] == 5 and high.shape[0] == 4

    def test_constant_signal_has_zero_detail(self):
        low, high = dwt.fdwt53_1d(np.full(16, 100))
        assert np.all(high == 0)
        assert np.all(low == 100)

    def test_integer_arithmetic_exact(self):
        signal = np.array([3, -7, 12, 5, -2, 9, 0, 1])
        low, high = dwt.fdwt53_1d(signal)
        assert low.dtype == np.int64 and high.dtype == np.int64


class Test1D97:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 8, 9, 16, 17, 101, 128])
    def test_reconstruction_within_tolerance(self, length):
        signal = RNG.uniform(-512, 512, length)
        low, high = dwt.fdwt97_1d(signal)
        assert np.allclose(dwt.idwt97_1d(low, high), signal, atol=1e-9)

    def test_constant_signal_detail_near_zero(self):
        low, high = dwt.fdwt97_1d(np.full(16, 100.0))
        assert np.allclose(high, 0.0, atol=1e-9)

    def test_lowpass_gain(self):
        # DC gain of the normalised 9/7 low band is sqrt(2)-like via 1/K.
        low, _ = dwt.fdwt97_1d(np.full(64, 1.0))
        assert low[5] == pytest.approx(1.0 / dwt.KAPPA * (1 + abs(dwt.BETA) * 0 + 1) / 1, rel=1)


class Test2DMultilevel:
    @pytest.mark.parametrize("shape", [(1, 1), (2, 2), (4, 4), (5, 7), (16, 16), (33, 31)])
    @pytest.mark.parametrize("levels", [0, 1, 3])
    def test_53_reconstruction(self, shape, levels):
        tile = RNG.integers(-128, 128, shape)
        subbands = dwt.forward(tile, "5/3", levels)
        assert np.array_equal(dwt.inverse(subbands), tile)

    @pytest.mark.parametrize("shape", [(4, 4), (16, 16), (33, 31)])
    def test_97_reconstruction(self, shape):
        tile = RNG.uniform(-128, 128, shape)
        subbands = dwt.forward(tile, "9/7", 3)
        assert np.allclose(dwt.inverse(subbands), tile, atol=1e-6)

    def test_levels_stop_on_degenerate_tiles(self):
        subbands = dwt.forward(RNG.integers(0, 10, (2, 2)), "5/3", 5)
        assert subbands.num_levels < 5

    def test_band_iteration_order(self):
        subbands = dwt.forward(RNG.integers(0, 10, (16, 16)), "5/3", 2)
        listing = [(res, orient) for res, orient, _ in subbands.iter_bands()]
        assert listing == [
            (0, "LL"),
            (1, "HL"), (1, "LH"), (1, "HH"),
            (2, "HL"), (2, "LH"), (2, "HH"),
        ]

    def test_band_shapes_halve_per_level(self):
        subbands = dwt.forward(RNG.integers(0, 10, (16, 16)), "5/3", 2)
        shapes = {(res, orient): arr.shape for res, orient, arr in subbands.iter_bands()}
        assert shapes[(0, "LL")] == (4, 4)
        assert shapes[(1, "HL")] == (4, 4)
        assert shapes[(2, "HH")] == (8, 8)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            dwt.forward(np.zeros((4, 4)), "7/5", 1)

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            dwt.forward(np.zeros((4, 4)), "5/3", -1)


class TestOpCounts:
    def test_counts_proportional_to_samples(self):
        small = dwt.DwtOpCounts()
        large = dwt.DwtOpCounts()
        dwt.inverse(dwt.forward(RNG.integers(0, 10, (16, 16)), "5/3", 1), small)
        dwt.inverse(dwt.forward(RNG.integers(0, 10, (32, 32)), "5/3", 1), large)
        assert large.total == pytest.approx(4 * small.total, rel=0.05)

    def test_97_costs_more_than_53(self):
        tile = RNG.integers(0, 10, (32, 32))
        ops53 = dwt.DwtOpCounts()
        ops97 = dwt.DwtOpCounts()
        dwt.inverse(dwt.forward(tile, "5/3", 3), ops53)
        dwt.inverse(dwt.forward(tile, "9/7", 3), ops97)
        assert ops97.total > 2 * ops53.total
        assert ops53.mul_ops == 0
        assert ops97.mul_ops > 0

    def test_merge(self):
        a = dwt.DwtOpCounts(add_ops=1, mul_ops=2, samples=3)
        b = dwt.DwtOpCounts(add_ops=10, mul_ops=20, samples=30)
        a.merge(b)
        assert (a.add_ops, a.mul_ops, a.samples) == (11, 22, 33)
