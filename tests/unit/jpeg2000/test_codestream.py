"""Codestream marker syntax: writer/parser inverse, error handling."""

import pytest

from repro.jpeg2000.codestream import (
    CodestreamError,
    CodingParameters,
    TilePart,
    parse_codestream,
    write_codestream,
)
from repro.jpeg2000.quant import StepSize


def params_lossless(**overrides):
    defaults = dict(
        width=256,
        height=256,
        num_components=3,
        tile_width=128,
        tile_height=128,
        num_levels=3,
        lossless=True,
    )
    defaults.update(overrides)
    params = CodingParameters(**defaults)
    params.exponents = [10] * params.num_subbands()
    return params


def params_lossy(**overrides):
    params = params_lossless(lossless=False, **overrides)
    params.exponents = []
    params.step_sizes = [StepSize(12, 512)] * params.num_subbands()
    return params


class TestRoundtrip:
    def test_lossless_header_roundtrip(self):
        params = params_lossless()
        tiles = [TilePart(i, bytes([i] * 10)) for i in range(4)]
        data = write_codestream(params, tiles)
        parsed = parse_codestream(data)
        out = parsed.parameters
        assert (out.width, out.height) == (256, 256)
        assert out.num_components == 3
        assert out.tile_width == 128
        assert out.num_levels == 3
        assert out.lossless
        assert out.exponents == params.exponents
        assert [t.tile_index for t in parsed.tile_parts] == [0, 1, 2, 3]
        assert parsed.tile_parts[2].data == bytes([2] * 10)

    def test_lossy_header_roundtrip(self):
        params = params_lossy(base_step=1 / 16)
        data = write_codestream(params, [TilePart(0, b"xx")])
        out = parse_codestream(data).parameters
        assert not out.lossless
        assert out.step_sizes == params.step_sizes
        assert out.guard_bits == params.guard_bits

    def test_markers_present(self):
        data = write_codestream(params_lossless(), [TilePart(0, b"")])
        assert data.startswith(b"\xff\x4f")  # SOC
        assert data.endswith(b"\xff\xd9")  # EOC
        assert b"\xff\x51" in data  # SIZ
        assert b"\xff\x52" in data  # COD
        assert b"\xff\x5c" in data  # QCD

    def test_empty_tile_list(self):
        data = write_codestream(params_lossless(), [])
        assert parse_codestream(data).tile_parts == []


class TestValidation:
    def test_missing_soc(self):
        with pytest.raises(CodestreamError, match="SOC"):
            parse_codestream(b"\x00\x00")

    def test_truncated_stream(self):
        data = write_codestream(params_lossless(), [TilePart(0, b"abcdef")])
        with pytest.raises((CodestreamError, Exception)):
            parse_codestream(data[:20])

    def test_unknown_marker_rejected(self):
        data = bytearray(write_codestream(params_lossless(), []))
        # Corrupt the COD marker into an unknown one.
        index = bytes(data).find(b"\xff\x52")
        data[index + 1] = 0x7E
        with pytest.raises(CodestreamError, match="unsupported marker"):
            parse_codestream(bytes(data))

    def test_bad_dimensions_rejected(self):
        with pytest.raises(CodestreamError):
            write_codestream(params_lossless(width=0), [])

    def test_mct_needs_three_components(self):
        params = params_lossless(num_components=1, use_mct=True)
        with pytest.raises(CodestreamError, match="colour transform"):
            write_codestream(params, [])

    def test_bit_depth_range(self):
        with pytest.raises(CodestreamError):
            write_codestream(params_lossless(bit_depth=17), [])

    def test_qcd_exponent_count_checked(self):
        params = params_lossless()
        params.exponents = [10]  # wrong count
        data = write_codestream(params_lossless(), [])
        # build bad stream manually: reuse good header but patch levels
        bad = params_lossless(num_levels=2)
        bad.exponents = [10] * params_lossless().num_subbands()  # too many
        with pytest.raises(CodestreamError, match="count"):
            parse_codestream(write_codestream(bad, []))


class TestDerivedProperties:
    def test_num_subbands(self):
        assert params_lossless(num_levels=0).num_subbands() == 1
        assert params_lossless(num_levels=3).num_subbands() == 10

    def test_codeblock_size(self):
        assert params_lossless(codeblock_exp=5).codeblock_size == 32

    def test_transform_name(self):
        assert params_lossless().transform == "5/3"
        assert params_lossy().transform == "9/7"
