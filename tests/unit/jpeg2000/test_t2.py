"""Tier-2 packet coding: pass counts, lengths, inclusion."""

import random

import pytest

from repro.jpeg2000.bitio import BitReader, BitWriter
from repro.jpeg2000.structure import codeblock_grid
from repro.jpeg2000.t2 import (
    CodeBlockContribution,
    PacketBand,
    PacketError,
    _decode_num_passes,
    _encode_num_passes,
    decode_packet,
    encode_packet,
)


class TestNumPassesCode:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 6, 7, 36, 37, 100, 164])
    def test_roundtrip(self, count):
        writer = BitWriter()
        _encode_num_passes(writer, count)
        reader = BitReader(writer.flush())
        assert _decode_num_passes(reader) == count

    def test_out_of_range_rejected(self):
        writer = BitWriter()
        with pytest.raises(PacketError):
            _encode_num_passes(writer, 0)
        with pytest.raises(PacketError):
            _encode_num_passes(writer, 165)

    def test_small_counts_are_short(self):
        writer = BitWriter()
        _encode_num_passes(writer, 1)
        assert len(writer.flush()) == 1  # a single bit, padded


def make_band(width, height, cb_size, orientation="HL"):
    return PacketBand(
        orientation=orientation,
        band_width=width,
        band_height=height,
        cb_size=cb_size,
        blocks=[
            CodeBlockContribution(geometry=geo)
            for geo in codeblock_grid(width, height, cb_size)
        ],
    )


def fresh_bands_like(band):
    return make_band(band.band_width, band.band_height, band.cb_size, band.orientation)


class TestPacketRoundtrip:
    def test_empty_packet_is_one_byte(self):
        band = make_band(64, 64, 32)
        packet = encode_packet([band], {"HL": 8})
        assert packet == b"\x00"
        out = fresh_bands_like(band)
        end = decode_packet(packet, 0, [out], {"HL": 8})
        assert end == 1
        assert all(not blk.included for blk in out.blocks)

    def test_single_block_roundtrip(self):
        rng = random.Random(1)
        band = make_band(32, 32, 32)
        band.blocks[0].data = bytes(rng.randrange(256) for _ in range(57))
        band.blocks[0].num_passes = 7
        band.blocks[0].num_bitplanes = 5
        packet = encode_packet([band], {"HL": 8})
        out = fresh_bands_like(band)
        end = decode_packet(packet, 0, [out], {"HL": 8})
        block = out.blocks[0]
        assert end == len(packet)
        assert block.num_passes == 7
        assert block.num_bitplanes == 5
        assert block.data == band.blocks[0].data

    def test_mixed_inclusion(self):
        rng = random.Random(2)
        band = make_band(96, 64, 32)  # 3x2 blocks
        for index, block in enumerate(band.blocks):
            if index % 2 == 0:
                block.data = bytes(rng.randrange(256) for _ in range(index * 3 + 1))
                block.num_passes = index + 1
                block.num_bitplanes = 3
        packet = encode_packet([band], {"HL": 6})
        out = fresh_bands_like(band)
        decode_packet(packet, 0, [out], {"HL": 6})
        for index, (mine, theirs) in enumerate(zip(band.blocks, out.blocks)):
            assert theirs.included == mine.included
            if mine.included:
                assert theirs.data == mine.data
                assert theirs.num_passes == mine.num_passes

    def test_multiple_bands_in_one_packet(self):
        rng = random.Random(3)
        bands = [make_band(32, 32, 32, orient) for orient in ("HL", "LH", "HH")]
        for band in bands:
            band.blocks[0].data = bytes(rng.randrange(256) for _ in range(20))
            band.blocks[0].num_passes = 4
            band.blocks[0].num_bitplanes = 4
        bounds = {"HL": 8, "LH": 8, "HH": 7}
        packet = encode_packet(bands, bounds)
        outs = [fresh_bands_like(band) for band in bands]
        decode_packet(packet, 0, outs, bounds)
        for mine, theirs in zip(bands, outs):
            assert theirs.blocks[0].data == mine.blocks[0].data

    def test_sequential_packets_share_buffer(self):
        rng = random.Random(4)
        packets = []
        originals = []
        for index in range(3):
            band = make_band(32, 32, 32)
            band.blocks[0].data = bytes(rng.randrange(256) for _ in range(index + 5))
            band.blocks[0].num_passes = 2
            band.blocks[0].num_bitplanes = 2
            originals.append(band)
            packets.append(encode_packet([band], {"HL": 4}))
        buffer = b"".join(packets)
        offset = 0
        for band in originals:
            out = fresh_bands_like(band)
            offset = decode_packet(buffer, offset, [out], {"HL": 4})
            assert out.blocks[0].data == band.blocks[0].data
        assert offset == len(buffer)

    def test_large_body_uses_lblock_expansion(self):
        band = make_band(32, 32, 32)
        band.blocks[0].data = bytes(10_000)
        band.blocks[0].num_passes = 1
        band.blocks[0].num_bitplanes = 8
        packet = encode_packet([band], {"HL": 10})
        out = fresh_bands_like(band)
        decode_packet(packet, 0, [out], {"HL": 10})
        assert len(out.blocks[0].data) == 10_000

    def test_bitplane_bound_violation_rejected(self):
        band = make_band(32, 32, 32)
        band.blocks[0].data = b"x"
        band.blocks[0].num_passes = 1
        band.blocks[0].num_bitplanes = 9  # exceeds the signalled bound
        with pytest.raises(PacketError, match="bound"):
            encode_packet([band], {"HL": 8})

    def test_truncated_body_detected(self):
        band = make_band(32, 32, 32)
        band.blocks[0].data = bytes(100)
        band.blocks[0].num_passes = 1
        band.blocks[0].num_bitplanes = 2
        packet = encode_packet([band], {"HL": 4})
        out = fresh_bands_like(band)
        with pytest.raises(PacketError, match="exceeds"):
            decode_packet(packet[:-50], 0, [out], {"HL": 4})
