"""Signal evaluate/update semantics and the clock."""

import pytest

from repro.kernel import Clock, Signal, Simulator, ns


@pytest.fixture
def sim():
    return Simulator()


class TestSignal:
    def test_write_not_visible_until_update(self, sim):
        sig = Signal(sim, initial=0, name="s")
        seen = []

        def writer():
            sig.write(7)
            seen.append(("same-phase", sig.read()))
            yield sim.wait_fs(0)
            seen.append(("next-delta", sig.read()))

        sim.spawn(writer(), "w")
        sim.run()
        assert seen == [("same-phase", 0), ("next-delta", 7)]

    def test_changed_event_fires_on_change(self, sim):
        sig = Signal(sim, initial=0, name="s")
        changes = []

        def watcher():
            while True:
                yield sig.changed
                changes.append(sig.read())

        def driver():
            sig.write(1)
            yield ns(1)
            sig.write(2)
            yield ns(1)

        sim.spawn(watcher(), "watch")
        sim.spawn(driver(), "drive")
        sim.run()
        assert changes == [1, 2]

    def test_no_event_when_value_unchanged(self, sim):
        sig = Signal(sim, initial=5, name="s")
        changes = []

        def watcher():
            yield sig.changed
            changes.append(sig.read())

        def driver():
            sig.write(5)  # same value: no change event
            yield ns(1)

        sim.spawn(watcher(), "watch")
        sim.spawn(driver(), "drive")
        sim.run()
        assert changes == []

    def test_last_write_in_delta_wins(self, sim):
        sig = Signal(sim, initial=0, name="s")

        def driver():
            sig.write(1)
            sig.write(2)
            yield ns(1)

        sim.spawn(driver(), "d")
        sim.run()
        assert sig.read() == 2


class TestClock:
    def test_period_validation(self, sim):
        with pytest.raises(ValueError):
            Clock(sim, sim.wait_fs(0))

    def test_frequency(self, sim):
        clock = Clock(sim, ns(10))
        assert clock.frequency_hz == pytest.approx(100e6)

    def test_cycles_duration(self, sim):
        clock = Clock(sim, ns(10))
        assert clock.cycles(3) == ns(30)
        assert clock.cycles(0.5) == ns(5)

    def test_cycles_between(self, sim):
        clock = Clock(sim, ns(10))
        assert clock.cycles_between(ns(5), ns(45)) == 4

    def test_edges_when_started(self, sim):
        clock = Clock(sim, ns(10), "clk")
        edges = []

        def counter():
            for _ in range(3):
                yield clock.posedge
                edges.append(("pos", sim.now))

        sim.spawn(counter(), "count")
        clock.start()
        sim.run(until=ns(100))
        assert edges == [("pos", ns(0)), ("pos", ns(10)), ("pos", ns(20))]

    def test_negedge_between_posedges(self, sim):
        clock = Clock(sim, ns(10), "clk")
        marks = []

        def watcher():
            yield clock.negedge
            marks.append(sim.now)

        sim.spawn(watcher(), "w")
        clock.start()
        sim.run(until=ns(30))
        assert marks == [ns(5)]

    def test_start_idempotent(self, sim):
        clock = Clock(sim, ns(10))
        clock.start()
        clock.start()
        drivers = [p for p in sim.processes if "driver" in p.name]
        assert len(drivers) == 1
