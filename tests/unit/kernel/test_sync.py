"""Mutex, semaphore, barrier."""

import pytest

from repro.kernel import Barrier, Mutex, Semaphore, Simulator, ns


@pytest.fixture
def sim():
    return Simulator()


class TestMutex:
    def test_exclusive_and_fifo_handoff(self, sim):
        mutex = Mutex(sim)
        order = []

        def worker(name, hold):
            token = yield from mutex.lock()
            order.append((name, sim.now))
            yield hold
            mutex.unlock(token)

        sim.spawn(worker("a", ns(10)), "a")
        sim.spawn(worker("b", ns(10)), "b")
        sim.spawn(worker("c", ns(10)), "c")
        sim.run()
        assert [name for name, _ in order] == ["a", "b", "c"]
        assert [when for _, when in order] == [ns(0), ns(10), ns(20)]

    def test_no_barging_past_waiters(self, sim):
        mutex = Mutex(sim)
        order = []

        def early(name):
            token = yield from mutex.lock()
            order.append(name)
            yield ns(10)
            mutex.unlock(token)

        def late():
            yield ns(5)
            assert not mutex.try_lock()  # waiter queue guards the lock
            token = yield from mutex.lock()
            order.append("late")
            mutex.unlock(token)

        sim.spawn(early("first"), "f")
        sim.spawn(early("second"), "s")
        sim.spawn(late(), "l")
        sim.run()
        assert order == ["first", "second", "late"]

    def test_unlock_unlocked_rejected(self, sim):
        mutex = Mutex(sim)
        with pytest.raises(RuntimeError, match="unlocked"):
            mutex.unlock()

    def test_unlock_by_non_owner_rejected(self, sim):
        mutex = Mutex(sim)
        assert mutex.try_lock(owner="me")
        with pytest.raises(RuntimeError, match="non-owner"):
            mutex.unlock(owner="you")


class TestSemaphore:
    def test_counts(self, sim):
        sem = Semaphore(sim, initial=2)
        assert sem.try_acquire()
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.count == 1

    def test_blocking_acquire(self, sim):
        sem = Semaphore(sim, initial=1)
        order = []

        def worker(name):
            yield from sem.acquire()
            order.append((name, sim.now))
            yield ns(10)
            sem.release()

        sim.spawn(worker("a"), "a")
        sim.spawn(worker("b"), "b")
        sim.run()
        assert order == [("a", ns(0)), ("b", ns(10))]

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, initial=-1)


class TestBarrier:
    def test_all_released_together(self, sim):
        barrier = Barrier(sim, parties=3)
        releases = []

        def party(delay):
            yield delay
            yield from barrier.wait()
            releases.append(sim.now)

        sim.spawn(party(ns(1)), "p1")
        sim.spawn(party(ns(5)), "p2")
        sim.spawn(party(ns(9)), "p3")
        sim.run()
        assert releases == [ns(9), ns(9), ns(9)]

    def test_reusable_for_second_round(self, sim):
        barrier = Barrier(sim, parties=2)
        rounds = []

        def party(name):
            yield from barrier.wait()
            rounds.append((name, 1, sim.now))
            yield ns(3)
            yield from barrier.wait()
            rounds.append((name, 2, sim.now))

        sim.spawn(party("a"), "a")
        sim.spawn(party("b"), "b")
        sim.run()
        assert all(when == ns(0) for _, round_no, when in rounds if round_no == 1)
        assert all(when == ns(3) for _, round_no, when in rounds if round_no == 2)

    def test_party_count_validation(self, sim):
        with pytest.raises(ValueError):
            Barrier(sim, parties=0)
