"""Scheduler semantics: delta cycles, time limits, determinism."""

import pytest

from repro.kernel import SimulationError, Simulator, ns


@pytest.fixture
def sim():
    return Simulator()


class TestQuiescence:
    def test_empty_simulation_ends_at_zero(self, sim):
        assert sim.run().femtoseconds == 0

    def test_run_returns_final_time(self, sim):
        def body():
            yield ns(12)

        sim.spawn(body(), "p")
        assert sim.run() == ns(12)

    def test_waiting_process_without_notifier_ends_run(self, sim):
        event = sim.event("never")

        def body():
            yield event

        proc = sim.spawn(body(), "p")
        sim.run()
        assert not proc.finished  # parked forever; the run simply ends


class TestTimeLimit:
    def test_until_stops_at_limit(self, sim):
        marks = []

        def body():
            for _ in range(10):
                yield ns(10)
                marks.append(sim.now)

        sim.spawn(body(), "p")
        final = sim.run(until=ns(35))
        assert final == ns(35)
        assert marks == [ns(10), ns(20), ns(30)]

    def test_until_is_inclusive(self, sim):
        marks = []

        def body():
            yield ns(35)
            marks.append(sim.now)

        sim.spawn(body(), "p")
        sim.run(until=ns(35))
        assert marks == [ns(35)]

    def test_run_for_extends_from_now(self, sim):
        def body():
            while True:
                yield ns(10)

        sim.spawn(body(), "p")
        sim.run_for(ns(25))
        assert sim.now == ns(25)
        sim.run_for(ns(25))
        assert sim.now == ns(50)

    def test_resume_after_limit(self, sim):
        marks = []

        def body():
            yield ns(100)
            marks.append(sim.now)

        sim.spawn(body(), "p")
        sim.run(until=ns(50))
        assert marks == []
        sim.run()
        assert marks == [ns(100)]


class TestDeltaCycles:
    def test_delta_count_advances_without_time(self, sim):
        event = sim.event("chain")
        hops = []

        def ping(remaining):
            for _ in range(remaining):
                event.notify(delta=True)
                hops.append(sim.delta_count)
                yield event

        sim.spawn(ping(5), "ping")
        sim.run()
        assert sim.now.femtoseconds == 0
        assert len(hops) == 5
        assert hops == sorted(hops)

    def test_two_processes_same_time_both_run(self, sim):
        order = []

        def make(name):
            def body():
                yield ns(5)
                order.append(name)

            return body

        sim.spawn(make("a")(), "a")
        sim.spawn(make("b")(), "b")
        sim.run()
        assert sorted(order) == ["a", "b"]

    def test_spawn_order_is_deterministic(self):
        def run_once():
            sim = Simulator()
            order = []

            def make(name):
                def body():
                    yield ns(1)
                    order.append(name)

                return body

            for name in "abcde":
                sim.spawn(make(name)(), name)
            sim.run()
            return order

        assert run_once() == run_once()


class TestReentrancy:
    def test_nested_run_rejected(self, sim):
        def body():
            sim.run()
            yield ns(1)

        sim.spawn(body(), "p")
        with pytest.raises(Exception):  # ProcessError wrapping SimulationError
            sim.run()
