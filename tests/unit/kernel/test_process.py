"""Process semantics: waits, composition, termination, failure."""

import pytest

from repro.kernel import (
    AllOf,
    AnyOf,
    ProcessError,
    ProcessState,
    Simulator,
    join,
    ns,
)


@pytest.fixture
def sim():
    return Simulator()


class TestWaits:
    def test_timed_wait_advances_clock(self, sim):
        marks = []

        def body():
            yield ns(3)
            marks.append(sim.now)
            yield ns(4)
            marks.append(sim.now)

        sim.spawn(body(), "p")
        sim.run()
        assert marks == [ns(3), ns(7)]

    def test_any_of_first_event_wins(self, sim):
        e1, e2 = sim.event("e1"), sim.event("e2")
        woken = []

        def waiter():
            yield AnyOf(e1, e2)
            woken.append(sim.now)

        sim.spawn(waiter(), "w")
        e2.notify(ns(2))
        e1.notify(ns(9))
        sim.run()
        assert woken == [ns(2)]

    def test_any_of_does_not_double_wake(self, sim):
        e1, e2 = sim.event("e1"), sim.event("e2")
        wakes = []

        def waiter():
            yield AnyOf(e1, e2)
            wakes.append("first")
            yield ns(100)

        sim.spawn(waiter(), "w")
        e1.notify(ns(1))
        e2.notify(ns(2))  # second event fires while process sleeps
        sim.run()
        assert wakes == ["first"]

    def test_all_of_waits_for_every_event(self, sim):
        e1, e2 = sim.event("e1"), sim.event("e2")
        woken = []

        def waiter():
            yield AllOf(e1, e2)
            woken.append(sim.now)

        sim.spawn(waiter(), "w")
        e1.notify(ns(2))
        e2.notify(ns(6))
        sim.run()
        assert woken == [ns(6)]

    def test_empty_anyof_rejected(self):
        with pytest.raises(ValueError):
            AnyOf()

    def test_empty_allof_rejected(self):
        with pytest.raises(ValueError):
            AllOf()

    def test_invalid_yield_raises(self, sim):
        def body():
            yield "nonsense"

        sim.spawn(body(), "bad")
        with pytest.raises(ProcessError, match="expected a SimTime"):
            sim.run()


class TestYieldFromComposition:
    def test_subroutine_composes(self, sim):
        marks = []

        def sub():
            yield ns(5)
            return "sub-result"

        def body():
            result = yield from sub()
            marks.append((result, sim.now))

        sim.spawn(body(), "p")
        sim.run()
        assert marks == [("sub-result", ns(5))]


class TestTermination:
    def test_result_captured(self, sim):
        def body():
            yield ns(1)
            return 42

        proc = sim.spawn(body(), "p")
        sim.run()
        assert proc.state is ProcessState.FINISHED
        assert proc.result == 42

    def test_done_event_fires(self, sim):
        def worker():
            yield ns(5)

        marks = []
        proc = sim.spawn(worker(), "w")

        def watcher():
            yield proc.done_event
            marks.append(sim.now)

        sim.spawn(watcher(), "watch")
        sim.run()
        assert marks == [ns(5)]

    def test_join_waits_for_all(self, sim):
        def worker(duration):
            yield duration

        procs = [sim.spawn(worker(ns(t)), f"w{t}") for t in (3, 9, 5)]
        marks = []

        def joiner():
            yield from join(procs)
            marks.append(sim.now)

        sim.spawn(joiner(), "join")
        sim.run()
        assert marks == [ns(9)]

    def test_join_with_already_finished(self, sim):
        def quick():
            return 1
            yield  # pragma: no cover

        proc = sim.spawn(quick(), "q")
        sim.run()
        marks = []

        def joiner():
            yield from join([proc])
            marks.append(True)

        sim.spawn(joiner(), "join")
        sim.run()
        assert marks == [True]

    def test_kill_stops_process(self, sim):
        marks = []

        def body():
            yield ns(10)
            marks.append("ran")  # must never happen

        proc = sim.spawn(body(), "p")

        def killer():
            yield ns(1)
            proc.kill()

        sim.spawn(killer(), "k")
        sim.run()
        assert marks == []
        assert proc.finished


class TestFailure:
    def test_exception_aborts_run(self, sim):
        def body():
            yield ns(1)
            raise RuntimeError("boom")

        sim.spawn(body(), "p")
        with pytest.raises(ProcessError, match="boom"):
            sim.run()

    def test_failure_records_cause(self, sim):
        def body():
            raise ValueError("bad value")
            yield  # pragma: no cover

        proc = sim.spawn(body(), "p")
        with pytest.raises(ProcessError):
            sim.run()
        assert isinstance(proc.exception, ValueError)
        assert proc.state is ProcessState.FAILED

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError, match="generator"):
            sim.spawn(lambda: None, "notgen")
