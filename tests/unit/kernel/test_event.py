"""Event notification semantics: immediate, delta, timed, cancellation."""

import pytest

from repro.kernel import Event, Simulator, ns


@pytest.fixture
def sim():
    return Simulator()


def run_collecting(sim, body_fn):
    log = []
    sim.spawn(body_fn(log), "collector")
    sim.run()
    return log


class TestImmediateNotify:
    def test_wakes_in_same_evaluate_phase(self, sim):
        event = sim.event("e")
        log = []

        def waiter():
            yield event
            log.append(("woke", sim.now.femtoseconds, sim.delta_count))

        def notifier():
            yield ns(5)
            event.notify()

        sim.spawn(waiter(), "waiter")
        sim.spawn(notifier(), "notifier")
        sim.run()
        assert log == [("woke", ns(5).femtoseconds, pytest.approx(log[0][2]))]

    def test_no_waiters_is_harmless(self, sim):
        event = sim.event("e")
        event.notify()
        assert sim.run() == sim.now


class TestDeltaNotify:
    def test_wakes_in_next_delta_same_time(self, sim):
        event = sim.event("e")
        log = []

        def waiter():
            yield event
            log.append(sim.now)

        def notifier():
            event.notify(delta=True)
            yield ns(1)

        sim.spawn(waiter(), "waiter")
        sim.spawn(notifier(), "notifier")
        sim.run()
        assert log == [sim.wait_fs(0)]

    def test_zero_delay_is_delta(self, sim):
        event = sim.event("e")
        woken = []

        def waiter():
            yield event
            woken.append(sim.now.femtoseconds)

        sim.spawn(waiter(), "w")
        event.notify(sim.wait_fs(0))
        sim.run()
        assert woken == [0]

    def test_delta_and_delay_both_rejected(self, sim):
        event = sim.event("e")
        with pytest.raises(ValueError, match="not both"):
            event.notify(ns(1), delta=True)


class TestTimedNotify:
    def test_fires_at_offset(self, sim):
        event = sim.event("e")
        woken = []

        def waiter():
            yield event
            woken.append(sim.now)

        sim.spawn(waiter(), "w")
        event.notify(ns(7))
        sim.run()
        assert woken == [ns(7)]

    def test_earlier_notification_wins(self, sim):
        event = sim.event("e")
        woken = []

        def waiter():
            yield event
            woken.append(sim.now)

        sim.spawn(waiter(), "w")
        event.notify(ns(10))
        event.notify(ns(3))  # earlier: overrides
        sim.run()
        assert woken == [ns(3)]

    def test_later_notification_ignored(self, sim):
        event = sim.event("e")
        woken = []

        def waiter():
            yield event
            woken.append(sim.now)

        sim.spawn(waiter(), "w")
        event.notify(ns(3))
        event.notify(ns(10))  # later: ignored per SystemC rules
        sim.run()
        assert woken == [ns(3)]

    def test_immediate_overrides_pending_timed(self, sim):
        event = sim.event("e")
        woken = []

        def waiter():
            yield event
            woken.append(sim.now)

        def notifier():
            event.notify(ns(10))
            yield ns(2)
            event.notify()  # immediate at 2 ns

        sim.spawn(waiter(), "w")
        sim.spawn(notifier(), "n")
        sim.run()
        assert woken == [ns(2)]


class TestCancel:
    def test_cancel_suppresses_timed(self, sim):
        event = sim.event("e")
        woken = []

        def waiter():
            yield event
            woken.append(sim.now)

        sim.spawn(waiter(), "w")
        event.notify(ns(5))
        event.cancel()
        sim.run()
        assert woken == []

    def test_renotify_after_cancel(self, sim):
        event = sim.event("e")
        woken = []

        def waiter():
            yield event
            woken.append(sim.now)

        sim.spawn(waiter(), "w")
        event.notify(ns(5))
        event.cancel()
        event.notify(ns(8))
        sim.run()
        assert woken == [ns(8)]
