"""Fast-substrate primitives and scheduler double-enqueue regressions.

Everything here runs against both scheduler modes: the fast substrate
must agree with the reference scheduler on observable behaviour, and the
reference scheduler itself must never run a process twice in one delta.
"""

import pytest

from repro.kernel import (
    AnyOf,
    SimProfiler,
    SimTime,
    Simulator,
    Timeout,
    default_fast,
    ns,
    set_default_fast,
)


@pytest.fixture(params=[False, True], ids=["reference", "fast"])
def sim(request):
    return Simulator(fast=request.param)


class TestDoubleEnqueue:
    def test_two_events_same_delta_run_once(self, sim):
        """A process notified by two events in one delta steps exactly once."""
        first, second = sim.event("first"), sim.event("second")
        runs = []

        def waiter():
            yield AnyOf(first, second)
            runs.append(sim.delta_count)
            yield AnyOf(first, second)
            runs.append(sim.delta_count)

        def notifier():
            first.notify(delta=True)
            second.notify(delta=True)
            yield ns(1)

        sim.spawn(waiter(), "waiter")
        sim.spawn(notifier(), "notifier")
        sim.run()
        # One wake from the double notification; the second wait parks
        # forever (nobody notifies again), so exactly one run is recorded.
        assert len(runs) == 1

    def test_duplicate_event_in_anyof_runs_once(self, sim):
        event = sim.event("dup")
        runs = []

        def waiter():
            yield AnyOf(event, event)
            runs.append(sim.now.femtoseconds)

        sim.spawn(waiter(), "waiter")
        event.notify(SimTime.from_fs(5))
        sim.run()
        assert runs == [5]

    def test_immediate_and_delta_notification_same_delta(self, sim):
        """An event notified twice within one delta wakes the waiter once."""
        event = sim.event("twice")
        runs = []

        def waiter():
            yield event
            runs.append(True)

        def notifier():
            event.notify(delta=True)
            event.notify(delta=True)
            yield ns(1)

        sim.spawn(waiter(), "waiter")
        sim.spawn(notifier(), "notifier")
        sim.run()
        assert runs == [True]


class TestTimeout:
    def test_event_wins_when_notified_first(self, sim):
        event = sim.event("grant")
        observed = []

        def waiter():
            yield Timeout(event, ns(100))
            observed.append(sim.now)

        sim.spawn(waiter(), "waiter")
        event.notify(ns(10))
        sim.run()
        assert observed == [ns(10)]

    def test_timer_wins_when_event_never_fires(self, sim):
        event = sim.event("never")
        observed = []

        def waiter():
            yield Timeout(event, ns(100))
            observed.append(sim.now)

        sim.spawn(waiter(), "waiter")
        sim.run()
        assert observed == [ns(100)]
        assert not event._waiting  # expiry dropped the subscription

    def test_timer_expiry_then_late_notify_does_not_rewake(self, sim):
        event = sim.event("late")
        observed = []

        def waiter():
            yield Timeout(event, ns(5))
            observed.append(sim.now)
            yield ns(100)

        sim.spawn(waiter(), "waiter")
        event.notify(ns(50))  # after the timeout expired
        sim.run()
        assert observed == [ns(5)]

    def test_zero_delay_wakes_next_delta(self, sim):
        event = sim.event("never")
        observed = []

        def waiter():
            yield Timeout(event, SimTime.from_fs(0))
            observed.append(sim.now.femtoseconds)

        sim.spawn(waiter(), "waiter")
        sim.run()
        assert observed == [0]


class TestDefaultFastSwitch:
    def test_set_default_fast_returns_previous(self):
        previous = set_default_fast(False)
        try:
            assert default_fast() is False
            assert Simulator().fast is False
            assert set_default_fast(True) is False
            assert Simulator().fast is True
        finally:
            set_default_fast(previous)

    def test_explicit_flag_overrides_default(self):
        previous = set_default_fast(True)
        try:
            assert Simulator(fast=False).fast is False
            assert Simulator(fast=True).fast is True
        finally:
            set_default_fast(previous)


class TestSimProfiler:
    def test_profiler_counts_steps_per_process(self, sim):
        profiler = SimProfiler(sim)

        def worker():
            for _ in range(3):
                yield ns(1)

        sim.spawn(worker(), "worker")
        sim.run()
        stats = profiler.as_dict()
        by_name = {entry["name"]: entry for entry in stats["processes"]}
        # 3 waits + the final StopIteration step.
        assert by_name["worker"]["steps"] == 4
        assert stats["total_steps"] == profiler.total_steps
        assert profiler.total_seconds >= 0.0

    def test_detach_stops_recording(self, sim):
        profiler = SimProfiler(sim)
        profiler.detach()

        def worker():
            yield ns(1)

        sim.spawn(worker(), "worker")
        sim.run()
        assert profiler.total_steps == 0

    def test_report_renders_table(self, sim):
        profiler = SimProfiler(sim)

        def worker():
            yield ns(1)

        sim.spawn(worker(), "worker")
        sim.run()
        assert "worker" in profiler.report()


class TestBatchedClock:
    @pytest.mark.parametrize("period_fs", [10, 7])  # even and odd periods
    def test_edge_timestamps_match_reference_driver(self, period_fs):
        def edge_trace(fast: bool):
            sim = Simulator(fast=fast)
            from repro.kernel import Clock

            clock = Clock(sim, SimTime.from_fs(period_fs), "clk")
            clock.start()
            edges = []

            def monitor():
                for _ in range(6):
                    yield clock.posedge
                    edges.append(("pos", sim.now.femtoseconds))
                    yield clock.negedge
                    edges.append(("neg", sim.now.femtoseconds))

            sim.spawn(monitor(), "monitor")
            sim.run(until=SimTime.from_fs(period_fs * 8))
            return edges

        assert edge_trace(fast=True) == edge_trace(fast=False)
