"""Module hierarchy and value-change tracing."""

import pytest

from repro.kernel import Module, Signal, Simulator, Trace, ns


@pytest.fixture
def sim():
    return Simulator()


class TestModuleHierarchy:
    def test_full_names(self, sim):
        top = Module(sim, "top")
        child = Module(sim, "dec", parent=top)
        grandchild = Module(sim, "idwt", parent=child)
        assert grandchild.name == "top.dec.idwt"

    def test_duplicate_child_rejected(self, sim):
        top = Module(sim, "top")
        Module(sim, "a", parent=top)
        with pytest.raises(ValueError, match="duplicate"):
            Module(sim, "a", parent=top)

    def test_invalid_names_rejected(self, sim):
        with pytest.raises(ValueError):
            Module(sim, "")
        with pytest.raises(ValueError):
            Module(sim, "a.b")

    def test_find_descendant(self, sim):
        top = Module(sim, "top")
        child = Module(sim, "sub", parent=top)
        leaf = Module(sim, "leaf", parent=child)
        assert top.find("sub.leaf") is leaf
        with pytest.raises(KeyError):
            top.find("sub.missing")

    def test_walk_visits_all(self, sim):
        top = Module(sim, "top")
        Module(sim, "a", parent=top)
        b = Module(sim, "b", parent=top)
        Module(sim, "c", parent=b)
        assert [m.basename for m in top.walk()] == ["top", "a", "b", "c"]

    def test_add_thread_names_process(self, sim):
        top = Module(sim, "top")

        def body():
            yield ns(1)

        proc = top.add_thread(body)
        assert proc.name == "top.body"
        sim.run()
        assert proc.finished


class TestTrace:
    def test_manual_record_and_waveform(self, sim):
        trace = Trace(sim)

        def body():
            trace.record("x", 1)
            yield ns(5)
            trace.record("x", 2)

        sim.spawn(body(), "p")
        sim.run()
        assert trace.waveform("x") == [(ns(0), 1), (ns(5), 2)]

    def test_watch_signal(self, sim):
        sig = Signal(sim, initial=0, name="sig")
        trace = Trace(sim)
        trace.watch(sig)

        def driver():
            sig.write(3)
            yield ns(2)
            sig.write(7)
            yield ns(2)

        sim.spawn(driver(), "d")
        sim.run()
        values = [value for _, value in trace.waveform("sig")]
        assert values == [0, 3, 7]

    def test_value_at(self, sim):
        trace = Trace(sim)

        def body():
            trace.record("v", "a")
            yield ns(10)
            trace.record("v", "b")

        sim.spawn(body(), "p")
        sim.run()
        assert trace.value_at("v", ns(5)) == "a"
        assert trace.value_at("v", ns(10)) == "b"

    def test_value_at_before_first_record(self, sim):
        trace = Trace(sim)

        def body():
            yield ns(10)
            trace.record("v", 1)

        sim.spawn(body(), "p")
        sim.run()
        with pytest.raises(KeyError):
            trace.value_at("v", ns(1))

    def test_dump_contains_records(self, sim):
        trace = Trace(sim, name="t")
        trace.record("probe", 42)
        text = trace.dump()
        assert "probe" in text and "42" in text


class TestVcdExport:
    def test_vcd_structure(self, sim):
        trace = Trace(sim, name="wave")

        def body():
            trace.record("counter", 1)
            yield ns(5)
            trace.record("counter", 2)
            trace.record("level", 0.5)

        sim.spawn(body(), "p")
        sim.run()
        vcd = trace.to_vcd(timescale="1ns")
        assert "$timescale 1ns $end" in vcd
        assert "$var real 64" in vcd
        assert "counter" in vcd and "level" in vcd
        assert "#0" in vcd and "#5" in vcd
        assert vcd.count("r1 ") == 1 and vcd.count("r2 ") == 1

    def test_vcd_skips_untraceable_values(self, sim):
        trace = Trace(sim)
        trace.record("blob", object())
        trace.record("value", 7)
        vcd = trace.to_vcd()
        assert "blob" not in vcd
        assert "value" in vcd

    def test_vcd_bool_probe_is_one_bit_wire(self, sim):
        trace = Trace(sim)

        def body():
            trace.record("busy", False)
            yield ns(3)
            trace.record("busy", True)
            yield ns(3)
            trace.record("busy", False)

        sim.spawn(body(), "p")
        sim.run()
        vcd = trace.to_vcd(timescale="1ns")
        assert "$var wire 1 ! busy $end" in vcd
        lines = vcd.splitlines()
        # Scalar changes: value glued to the identifier, no 'r' prefix.
        assert lines[lines.index("#0") + 1] == "0!"
        assert lines[lines.index("#3") + 1] == "1!"
        assert lines[lines.index("#6") + 1] == "0!"
        assert "r" + "0" not in [l[:2] for l in lines]

    def test_vcd_string_probe(self, sim):
        trace = Trace(sim)

        def body():
            trace.record("state", "IDLE")
            yield ns(2)
            trace.record("state", "DECODE TILE")

        sim.spawn(body(), "p")
        sim.run()
        vcd = trace.to_vcd(timescale="1ns")
        assert "$var string 1 ! state $end" in vcd
        assert "sIDLE !" in vcd
        assert "sDECODE_TILE !" in vcd

    def test_vcd_mixed_probe_types_share_dump(self, sim):
        trace = Trace(sim)
        trace.record("busy", True)
        trace.record("level", 0.5)
        trace.record("state", "RUN")
        vcd = trace.to_vcd()
        assert "$var wire 1" in vcd
        assert "$var real 64" in vcd
        assert "$var string 1" in vcd
        # Type is pinned by the first record; mismatching later records drop.
        trace.record("busy", "oops")
        vcd2 = trace.to_vcd()
        assert "soops" not in vcd2

    def test_vcd_timescale_validated(self, sim):
        with pytest.raises(ValueError):
            Trace(sim).to_vcd(timescale="2ns")
