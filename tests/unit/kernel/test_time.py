"""SimTime: construction, arithmetic, ordering, formatting."""

import pytest

from repro.kernel import SimTime, ZERO_TIME, fs, ms, ns, ps, sec, us


class TestConstruction:
    def test_femtosecond_base(self):
        assert SimTime(1, "fs").femtoseconds == 1

    def test_unit_scaling(self):
        assert SimTime(1, "ps").femtoseconds == 10**3
        assert SimTime(1, "ns").femtoseconds == 10**6
        assert SimTime(1, "us").femtoseconds == 10**9
        assert SimTime(1, "ms").femtoseconds == 10**12
        assert SimTime(1, "s").femtoseconds == 10**15

    def test_fractional_values_round(self):
        assert SimTime(1.5, "ps").femtoseconds == 1500
        assert SimTime(0.1, "ns").femtoseconds == 100_000

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError, match="unknown time unit"):
            SimTime(1, "minutes")

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SimTime(-1, "ns")

    def test_from_fs(self):
        assert SimTime.from_fs(42).femtoseconds == 42

    def test_from_fs_negative_rejected(self):
        with pytest.raises(ValueError):
            SimTime.from_fs(-1)

    def test_helpers_match_units(self):
        assert fs(3) == SimTime(3, "fs")
        assert ps(3) == SimTime(3, "ps")
        assert ns(3) == SimTime(3, "ns")
        assert us(3) == SimTime(3, "us")
        assert ms(3) == SimTime(3, "ms")
        assert sec(3) == SimTime(3, "s")


class TestArithmetic:
    def test_addition(self):
        assert ns(1) + ps(500) == ps(1500)

    def test_subtraction(self):
        assert ns(2) - ns(1) == ns(1)

    def test_subtraction_below_zero_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ns(1) - ns(2)

    def test_scalar_multiplication(self):
        assert ns(2) * 3 == ns(6)
        assert 3 * ns(2) == ns(6)

    def test_fractional_multiplication_rounds(self):
        assert (fs(3) * 0.5).femtoseconds == 2  # banker's rounding of 1.5

    def test_floor_division_counts_periods(self):
        assert ns(10) // ns(3) == 3

    def test_modulo(self):
        assert ns(10) % ns(3) == ns(1)


class TestComparison:
    def test_ordering(self):
        assert ns(1) < ns(2)
        assert ns(2) > ns(1)
        assert ns(1) <= ns(1)

    def test_equality_across_units(self):
        assert ns(1) == ps(1000)

    def test_not_equal_to_other_types(self):
        assert ns(1) != 1_000_000

    def test_hashable(self):
        assert len({ns(1), ps(1000), ns(2)}) == 2

    def test_truthiness(self):
        assert not ZERO_TIME
        assert ns(1)


class TestFormatting:
    def test_zero(self):
        assert str(ZERO_TIME) == "0 s"

    def test_exact_unit_chosen(self):
        assert str(ns(1)) == "1 ns"
        assert str(us(15)) == "15 us"
        assert str(ms(3)) == "3 ms"

    def test_inexact_falls_to_smaller_unit(self):
        assert str(ps(1500)) == "1500 ps"

    def test_conversion(self):
        assert ns(1500).to("us") == pytest.approx(1.5)


class TestDivision:
    def test_ratio_of_durations(self):
        assert ns(30) / ns(10) == pytest.approx(3.0)
        assert ns(5) / ns(10) == pytest.approx(0.5)

    def test_scaling_by_number(self):
        assert ns(30) / 3 == ns(10)
        assert (ns(10) / 4).femtoseconds == 2_500_000
