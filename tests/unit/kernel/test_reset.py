"""Resettable processes and the ResetSignal."""

import pytest

from repro.kernel import ProcessState, ResetSignal, Simulator, ns


@pytest.fixture
def sim():
    return Simulator()


class TestRestart:
    def test_restart_runs_from_the_top(self, sim):
        log = []

        def body():
            log.append(("start", sim.now))
            while True:
                yield ns(10)
                log.append(("tick", sim.now))

        proc = sim.spawn_resettable(body, "p")

        def controller():
            yield ns(25)
            proc.restart()
            yield ns(15)
            proc.kill()

        sim.spawn(controller(), "ctl")
        sim.run()
        starts = [when for tag, when in log if tag == "start"]
        assert starts == [ns(0), ns(25)]
        assert proc.restarts == 1

    def test_restart_clears_pending_waits(self, sim):
        never = sim.event("never")
        log = []

        def body():
            log.append(sim.now)
            yield never  # would park forever without the reset

        proc = sim.spawn_resettable(body, "p")

        def controller():
            yield ns(5)
            proc.restart()
            yield ns(5)
            proc.kill()

        sim.spawn(controller(), "ctl")
        sim.run()
        assert log == [ns(0), ns(5)]
        assert not never._waiting  # unsubscribed cleanly

    def test_plain_process_cannot_restart(self, sim):
        def body():
            yield ns(1)

        proc = sim.spawn(body(), "p")
        with pytest.raises(RuntimeError, match="resettable"):
            proc.restart()

    def test_restart_of_finished_process_revives_it(self, sim):
        runs = []

        def body():
            runs.append(sim.now)
            yield ns(1)

        proc = sim.spawn_resettable(body, "p")
        sim.run()
        assert proc.finished
        proc.restart()
        sim.run()
        assert len(runs) == 2
        assert proc.state is ProcessState.FINISHED


class TestResetSignal:
    def test_assertion_restarts_bound_processes(self, sim):
        reset = ResetSignal(sim, "rst")
        starts = []

        def body():
            starts.append(sim.now)
            while True:
                yield ns(100)

        proc = sim.spawn_resettable(body, "p")
        reset.bind(proc)

        def controller():
            yield ns(30)
            reset.write(True)
            yield ns(10)
            reset.write(False)
            yield ns(10)
            proc.kill()

        sim.spawn(controller(), "ctl")
        sim.run()
        assert starts == [ns(0), ns(30)]

    def test_deassertion_does_not_restart(self, sim):
        reset = ResetSignal(sim)
        starts = []

        def body():
            starts.append(sim.now)
            while True:
                yield ns(100)

        proc = sim.spawn_resettable(body, "p")
        reset.bind(proc)

        def controller():
            yield ns(10)
            reset.write(True)
            yield ns(10)
            reset.write(False)  # falling edge: no restart
            yield ns(10)
            proc.kill()

        sim.spawn(controller(), "ctl")
        sim.run()
        assert len(starts) == 2

    def test_multiple_processes_one_line(self, sim):
        reset = ResetSignal(sim)
        counts = {"a": 0, "b": 0}

        def make(name):
            def body():
                counts[name] += 1
                while True:
                    yield ns(50)

            return body

        procs = [sim.spawn_resettable(make(name), name) for name in ("a", "b")]
        for proc in procs:
            reset.bind(proc)

        def controller():
            yield ns(5)
            reset.write(True)
            yield ns(5)
            for proc in procs:
                proc.kill()

        sim.spawn(controller(), "ctl")
        sim.run()
        assert counts == {"a": 2, "b": 2}
