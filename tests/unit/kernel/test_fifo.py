"""Blocking FIFO channel behaviour."""

import pytest

from repro.kernel import Fifo, Simulator, ns


@pytest.fixture
def sim():
    return Simulator()


class TestNonBlocking:
    def test_try_put_and_get(self, sim):
        fifo = Fifo(sim, capacity=2)
        assert fifo.try_put(1)
        assert fifo.try_put(2)
        assert not fifo.try_put(3)  # full
        ok, item = fifo.try_get()
        assert ok and item == 1
        assert len(fifo) == 1
        assert fifo.free == 1

    def test_try_get_empty(self, sim):
        fifo = Fifo(sim, capacity=1)
        ok, item = fifo.try_get()
        assert not ok and item is None

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Fifo(sim, capacity=0)


class TestBlocking:
    def test_put_blocks_until_space(self, sim):
        fifo = Fifo(sim, capacity=1)
        events = []

        def producer():
            yield from fifo.put("a")
            events.append(("put-a", sim.now))
            yield from fifo.put("b")
            events.append(("put-b", sim.now))

        def consumer():
            yield ns(10)
            item = yield from fifo.get()
            events.append(("got", item, sim.now))

        sim.spawn(producer(), "prod")
        sim.spawn(consumer(), "cons")
        sim.run()
        assert events[0] == ("put-a", ns(0))
        assert events[1] == ("got", "a", ns(10))
        assert events[2] == ("put-b", ns(10))

    def test_get_blocks_until_data(self, sim):
        fifo = Fifo(sim, capacity=4)
        events = []

        def consumer():
            item = yield from fifo.get()
            events.append((item, sim.now))

        def producer():
            yield ns(7)
            yield from fifo.put(99)

        sim.spawn(consumer(), "cons")
        sim.spawn(producer(), "prod")
        sim.run()
        assert events == [(99, ns(7))]

    def test_order_preserved(self, sim):
        fifo = Fifo(sim, capacity=3)
        received = []

        def producer():
            for index in range(6):
                yield from fifo.put(index)

        def consumer():
            for _ in range(6):
                item = yield from fifo.get()
                received.append(item)
                yield ns(1)

        sim.spawn(producer(), "prod")
        sim.spawn(consumer(), "cons")
        sim.run()
        assert received == list(range(6))
