"""Unit tests for the exploration maths: dominance, fronts, objectives,
and the area proxy."""

import math

import pytest

from repro.design import catalog
from repro.design.mutate import SetProcessorCount, canonicalise
from repro.explore import (
    ObjectiveVector,
    area_proxy,
    dominates,
    objectives_from,
    pareto_front,
)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_better_in_one_equal_in_rest(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_trade_off_does_not_dominate(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            dominates((1.0,), (1.0, 2.0))


class TestParetoFront:
    def test_hand_built_front(self):
        points = [
            (1.0, 5.0),  # front
            (2.0, 4.0),  # front
            (3.0, 6.0),  # dominated by (2, 4)? no: 6 > 4 → dominated
            (2.5, 4.0),  # dominated by (2, 4)
            (5.0, 1.0),  # front
        ]
        assert pareto_front(points) == [(1.0, 5.0), (2.0, 4.0), (5.0, 1.0)]

    def test_single_point_is_its_own_front(self):
        assert pareto_front([(3.0, 3.0)]) == [(3.0, 3.0)]

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_input_order_is_stable(self):
        points = [(5.0, 1.0), (1.0, 5.0), (3.0, 3.0)]
        assert pareto_front(points) == points

    def test_duplicate_vectors_all_survive(self):
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert pareto_front(points) == [(1.0, 1.0), (1.0, 1.0)]

    def test_key_extraction(self):
        items = [{"v": (2.0, 2.0)}, {"v": (1.0, 1.0)}]
        front = pareto_front(items, key=lambda item: item["v"])
        assert front == [{"v": (1.0, 1.0)}]

    def test_nan_rejected_loudly(self):
        with pytest.raises(ValueError, match="NaN"):
            pareto_front([(1.0, float("nan"))])

    def test_one_dominator_collapses_front(self):
        points = [(2.0, 2.0, 2.0), (1.0, 1.0, 1.0), (3.0, 1.5, 2.0)]
        assert pareto_front(points) == [(1.0, 1.0, 1.0)]


class TestObjectives:
    def _payload(self, decode_ms=10.0, words=100.0):
        return {
            "decode_ms": decode_ms,
            "details": {"opb": {"words": words}},
        }

    def test_vector_from_payload(self):
        spec = catalog.get("6b")
        vector = objectives_from(spec, self._payload(12.5, 4096.0))
        assert vector.decode_ms == 12.5
        assert vector.bus_words == 4096.0
        assert vector.area == float(area_proxy(spec).slice_equivalents)
        assert vector.as_tuple() == (
            vector.decode_ms,
            vector.bus_words,
            vector.area,
        )

    def test_missing_bus_details_mean_zero_words(self):
        spec = catalog.get("3")
        vector = objectives_from(spec, {"decode_ms": 5.0})
        assert vector.bus_words == 0.0

    def test_failed_payload_raises(self):
        spec = catalog.get("6b")
        with pytest.raises(ValueError, match="failed"):
            objectives_from(spec, {"failed": {"error": "ValueError"}})

    def test_non_finite_decode_raises(self):
        spec = catalog.get("6b")
        with pytest.raises(ValueError, match="non-finite"):
            objectives_from(spec, self._payload(decode_ms=math.inf))

    def test_as_dict_round_trip(self):
        vector = ObjectiveVector(1.0, 2.0, 3.0)
        assert vector.as_dict() == {
            "decode_ms": 1.0,
            "bus_words": 2.0,
            "area": 3.0,
        }


class TestAreaProxy:
    def test_deterministic(self):
        assert area_proxy(catalog.get("7b")) == area_proxy(catalog.get("7b"))

    def test_application_layer_counts_one_implicit_cpu(self):
        proxy = area_proxy(catalog.get("1"))
        assert proxy.cpus == 1
        assert proxy.brams == 0

    def test_cpus_track_the_mapping(self):
        assert area_proxy(catalog.get("6b")).cpus == 1
        assert area_proxy(catalog.get("7b")).cpus == 4

    def test_more_processors_cost_more_fabric(self):
        one = area_proxy(catalog.get("6b"))
        four = area_proxy(catalog.get("7b"))
        assert four.slices > one.slices
        assert four.slice_equivalents > one.slice_equivalents

    def test_slice_equivalents_fold_brams(self):
        proxy = area_proxy(catalog.get("6b"))
        assert proxy.brams > 0
        assert proxy.slice_equivalents == proxy.slices + 128 * proxy.brams

    def test_mutated_spec_pays_for_added_processors(self):
        base = catalog.get("7a")
        result = SetProcessorCount(8).apply(base)
        assert result.ok
        grown = canonicalise(result.spec)
        assert area_proxy(grown).cpus == 8
        assert area_proxy(grown).slices > area_proxy(base).slices
