"""EET / RET annotations and the cycle budget."""

import pytest

from repro.core import CycleBudget, RetViolation, eet, ret
from repro.kernel import Simulator, ms, ns, us


@pytest.fixture
def sim():
    return Simulator()


class TestEet:
    def test_consumes_annotated_time(self, sim):
        marks = []

        def body():
            yield from eet(ms(180))
            marks.append(sim.now)

        sim.spawn(body(), "p")
        sim.run()
        assert marks == [ms(180)]

    def test_body_runs_functionally(self, sim):
        results = []

        def body():
            value = yield from eet(ns(10), lambda: 6 * 7)
            results.append(value)

        sim.spawn(body(), "p")
        sim.run()
        assert results == [42]


class TestRet:
    def test_within_bound_passes(self, sim):
        results = []

        def inner():
            yield ns(50)
            return "ok"

        def body():
            value = yield from ret(sim, ns(100), inner(), "deadline")
            results.append(value)

        sim.spawn(body(), "p")
        sim.run()
        assert results == ["ok"]

    def test_violation_raises(self, sim):
        def inner():
            yield ns(200)

        def body():
            yield from ret(sim, ns(100), inner(), "deadline")

        sim.spawn(body(), "p")
        with pytest.raises(Exception, match="deadline"):
            sim.run()

    def test_violation_reports_times(self, sim):
        def inner():
            yield us(3)

        def body():
            yield from ret(sim, us(1), inner(), "hard")

        sim.spawn(body(), "p")
        with pytest.raises(Exception) as info:
            sim.run()
        assert isinstance(info.value.cause, RetViolation)
        assert info.value.cause.bound == us(1)
        assert info.value.cause.actual == us(3)


class TestCycleBudget:
    def test_cycle_period(self):
        budget = CycleBudget(100e6)
        assert budget.cycle == ns(10)

    def test_cycles_duration(self):
        budget = CycleBudget(100e6)
        assert budget.cycles(100) == us(1)
        assert budget.cycles(2.5) == ns(25)

    def test_cycles_for_ceiling(self):
        budget = CycleBudget(100e6)
        assert budget.cycles_for(ns(25)) == 3
        assert budget.cycles_for(ns(30)) == 3

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            CycleBudget(0)
