"""Wire-size computation and chunking for method-call payloads."""

import numpy as np
import pytest

from repro.core import (
    Serialisable,
    SerialisationError,
    SerialisedPayload,
    payload_bits,
    register_payload_type,
    serialise_call,
)


class TestPayloadBits:
    def test_none_is_empty(self):
        assert payload_bits(None) == 0

    def test_scalars(self):
        assert payload_bits(True) == 1
        assert payload_bits(7) == 32
        assert payload_bits(3.14) == 32

    def test_bytes_and_str(self):
        assert payload_bits(b"abcd") == 32
        assert payload_bits("hi") == 16

    def test_numpy_arrays(self):
        arr = np.zeros((4, 4), dtype=np.int32)
        assert payload_bits(arr) == 4 * 4 * 32
        assert payload_bits(np.int16(3)) == 16

    def test_containers_sum(self):
        assert payload_bits((1, 2, 3)) == 96
        assert payload_bits([1, "ab"]) == 48
        assert payload_bits({1: 2}) == 64

    def test_custom_serialisable(self):
        class Tile(Serialisable):
            def payload_bits(self):
                return 1000

        assert payload_bits(Tile()) == 1000

    def test_registered_external_type(self):
        class External:
            pass

        register_payload_type(External, lambda obj: 77)
        assert payload_bits(External()) == 77

    def test_unserialisable_rejected(self):
        class Pointerish:
            pass

        with pytest.raises(SerialisationError, match="pointers"):
            payload_bits(Pointerish())


class TestSerialisedPayload:
    def test_word_count_rounds_up(self):
        payload = SerialisedPayload((1, 2, 3), word_bits=32)
        assert payload.words == 3
        payload = SerialisedPayload("abcde", word_bits=32)  # 40 bits
        assert payload.words == 2

    def test_empty_payload_has_zero_words(self):
        # headers are charged by the transport layer, not here
        assert SerialisedPayload(None, word_bits=32).words == 0

    def test_word_width_validation(self):
        with pytest.raises(ValueError):
            SerialisedPayload(1, word_bits=0)


class TestSerialiseCall:
    def test_args_and_kwargs_counted(self):
        payload = serialise_call((1, 2), {"flag": True}, word_bits=32)
        # 2 x 32 (args) + 32 ("flag" is 4 utf-8 bytes) + 1 (bool) = 97 bits
        assert payload.bits == 97
        assert payload.words == 4

    def test_kwarg_order_is_canonical(self):
        a = serialise_call((), {"b": 1, "a": 2}, 32)
        b = serialise_call((), {"a": 2, "b": 1}, 32)
        assert a.bits == b.bits
