"""Port-to-interface binding rules."""

import pytest

from repro.core import BindingError, FunctionTask, OsssInterface, SharedObject, osss_method
from repro.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


class Adder:
    @osss_method()
    def add(self, a, b):
        return a + b


class TestInterfaces:
    def test_interface_requires_methods(self):
        with pytest.raises(ValueError):
            OsssInterface("empty", [])

    def test_contains(self):
        iface = OsssInterface("math", ["add", "sub"])
        assert "add" in iface
        assert "mul" not in iface


class TestBinding:
    def test_unbound_port_rejects_calls(self, sim):
        task = FunctionTask(sim, "t", lambda task: iter(()))
        port = task.port("p")
        with pytest.raises(BindingError, match="before binding"):
            port.call("add", 1, 2)

    def test_double_bind_rejected(self, sim):
        so = SharedObject(sim, "adder", Adder())
        task = FunctionTask(sim, "t", lambda task: iter(()))
        port = task.port("p")
        port.bind(so)
        with pytest.raises(BindingError, match="already bound"):
            port.bind(so)

    def test_interface_mismatch_rejected_at_bind(self, sim):
        so = SharedObject(sim, "adder", Adder())
        iface = OsssInterface("math", ["add", "sub"])
        task = FunctionTask(sim, "t", lambda task: iter(()))
        port = task.port("p", interface=iface)
        with pytest.raises(BindingError, match="sub"):
            port.bind(so)

    def test_interface_restricts_callable_methods(self, sim):
        class Rich(Adder):
            @osss_method()
            def sub(self, a, b):
                return a - b

            @osss_method()
            def secret(self):
                return "hidden"

        so = SharedObject(sim, "rich", Rich())
        iface = OsssInterface("math", ["add", "sub"])
        results = []

        def body(task):
            value = yield from task.p.call("add", 2, 3)
            results.append(value)

        task = FunctionTask(sim, "t", body)
        port = task.port("p", interface=iface)
        port.bind(so)
        task.p = port
        task.start()
        sim.run()
        assert results == [5]
        with pytest.raises(BindingError, match="not part of interface"):
            port.call("secret")

    def test_port_names_include_owner(self, sim):
        task = FunctionTask(sim, "dec", lambda task: iter(()))
        port = task.port("link")
        assert port.name == "dec.link"

    def test_client_registration_counts(self, sim):
        so = SharedObject(sim, "adder", Adder())
        for index in range(4):
            task = FunctionTask(sim, f"t{index}", lambda task: iter(()))
            task.port("p").bind(so)
        assert so.num_clients == 4
