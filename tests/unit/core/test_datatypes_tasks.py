"""osss_array, sized integers, and software-task mechanics."""

import pytest

from repro.core import (
    AccessCounter,
    FunctionTask,
    IntN,
    OsssArray,
    SoftwareTask,
    UIntN,
)
from repro.kernel import Simulator, ms, ns


@pytest.fixture
def sim():
    return Simulator()


class TestSizedIntegers:
    def test_uint_wraps_modulo(self):
        assert UIntN(300, 8) == 44
        assert UIntN(255, 8) == 255

    def test_uint_width_validation(self):
        with pytest.raises(ValueError):
            UIntN(1, 0)

    def test_int_two_complement_wrap(self):
        assert IntN(130, 8) == -126
        assert IntN(-129, 8) == 127
        assert IntN(-1, 8) == -1

    def test_payload_bits_match_width(self):
        assert UIntN(3, 12).payload_bits() == 12
        assert IntN(-3, 16).payload_bits() == 16


class TestOsssArray:
    def test_read_write(self):
        array = OsssArray(8, element_bits=16)
        array[3] = 42
        assert array[3] == 42
        assert len(array) == 8

    def test_payload_bits(self):
        assert OsssArray(261, element_bits=18).payload_bits() == 261 * 18

    def test_load_bulk(self):
        array = OsssArray(4, element_bits=8)
        array.load([1, 2, 3], offset=1)
        assert list(array) == [0, 1, 2, 3]

    def test_storage_policy_counts_accesses(self):
        array = OsssArray(4, element_bits=8)
        counter = AccessCounter()
        array.storage_policy = counter
        array[0] = 1
        _ = array[0]
        _ = array[1]
        assert counter.writes == 1
        assert counter.reads == 2
        assert counter.total == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            OsssArray(0, 8)
        with pytest.raises(ValueError):
            OsssArray(4, 0)


class TestSoftwareTask:
    def test_subclass_main_runs(self, sim):
        marks = []

        class MyTask(SoftwareTask):
            def main(self):
                yield from self.eet(ms(1))
                marks.append(self.sim.now)

        task = MyTask(sim, "t")
        task.start()
        sim.run()
        assert marks == [ms(1)]

    def test_start_idempotent(self, sim):
        class MyTask(SoftwareTask):
            def main(self):
                yield ns(1)

        task = MyTask(sim, "t")
        first = task.start()
        second = task.start()
        assert first is second

    def test_main_must_be_overridden(self, sim):
        task = SoftwareTask(sim, "t")
        task.start()
        with pytest.raises(Exception, match="must implement"):
            sim.run()

    def test_eet_scale_multiplies(self, sim):
        marks = []

        class MyTask(SoftwareTask):
            def main(self):
                yield from self.eet(ms(1))
                marks.append(self.sim.now)

        task = MyTask(sim, "t")
        task.eet_scale = 2.0
        task.start()
        sim.run()
        assert marks == [ms(2)]

    def test_function_task_receives_args(self, sim):
        results = []

        def body(task, first, second):
            yield ns(1)
            results.append((task.name, first, second))

        FunctionTask(sim, "ft", body, "a", "b").start()
        sim.run()
        assert results == [("ft", "a", "b")]

    def test_finished_property(self, sim):
        def body(task):
            yield ns(1)

        task = FunctionTask(sim, "t", body)
        assert not task.finished
        task.start()
        sim.run()
        assert task.finished
