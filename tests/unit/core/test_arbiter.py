"""Arbitration policy laws."""

import pytest

from repro.core import Fcfs, LeastRecentlyServed, Request, RoundRobin, StaticPriority


def req(client, priority=0, arrival=0, seq=None):
    return Request(client, priority, arrival, seq if seq is not None else client)


class TestRoundRobin:
    def test_first_grant_is_lowest_id(self):
        policy = RoundRobin()
        chosen = policy.select([req(3), req(1), req(2)], last_client=None)
        assert chosen.client_id == 1

    def test_rotates_after_last_client(self):
        policy = RoundRobin()
        chosen = policy.select([req(0), req(1), req(2)], last_client=1)
        assert chosen.client_id == 2

    def test_wraps_around(self):
        policy = RoundRobin()
        chosen = policy.select([req(0), req(1)], last_client=1)
        assert chosen.client_id == 0

    def test_skips_absent_clients(self):
        policy = RoundRobin()
        chosen = policy.select([req(0), req(3)], last_client=1)
        assert chosen.client_id == 3

    def test_full_rotation_is_fair(self):
        policy = RoundRobin()
        last = None
        grants = []
        for _ in range(8):
            chosen = policy.select([req(0), req(1), req(2), req(3)], last)
            grants.append(chosen.client_id)
            last = chosen.client_id
        assert grants[:4] == [0, 1, 2, 3]
        assert grants[4:] == [0, 1, 2, 3]


class TestStaticPriority:
    def test_lowest_priority_value_wins(self):
        policy = StaticPriority()
        chosen = policy.select([req(0, priority=5), req(1, priority=2)], None)
        assert chosen.client_id == 1

    def test_tie_broken_by_submission_order(self):
        policy = StaticPriority()
        chosen = policy.select(
            [req(0, priority=1, seq=10), req(1, priority=1, seq=3)], None
        )
        assert chosen.client_id == 1


class TestFcfs:
    def test_earliest_arrival_wins(self):
        policy = Fcfs()
        chosen = policy.select([req(0, arrival=50), req(1, arrival=10)], None)
        assert chosen.client_id == 1

    def test_same_arrival_uses_seq(self):
        policy = Fcfs()
        chosen = policy.select(
            [req(0, arrival=10, seq=2), req(1, arrival=10, seq=1)], None
        )
        assert chosen.client_id == 1


class TestLeastRecentlyServed:
    def test_unserved_clients_first(self):
        policy = LeastRecentlyServed()
        first = policy.select([req(0), req(1)], None)
        second = policy.select([req(0), req(1)], None)
        assert {first.client_id, second.client_id} == {0, 1}

    def test_recent_grantee_deprioritised(self):
        policy = LeastRecentlyServed()
        policy.select([req(0)], None)  # serve 0
        chosen = policy.select([req(0), req(1)], None)
        assert chosen.client_id == 1
