"""Shared Object semantics: blocking, exclusion, guards, arbitration."""

import pytest

from repro.core import (
    Fcfs,
    FunctionTask,
    SharedObject,
    StaticPriority,
    guarded,
    guarded_args,
    osss_method,
)
from repro.kernel import Simulator, ns, us


@pytest.fixture
def sim():
    return Simulator()


class Counter:
    def __init__(self):
        self.value = 0
        self.trace = []

    @osss_method(eet=ns(10))
    def bump(self, amount=1):
        self.value += amount
        self.trace.append(self.value)
        return self.value

    @osss_method()
    def read(self):
        return self.value


def make_task(sim, so, name, body):
    task = FunctionTask(sim, name, body)
    port = task.port("p")
    port.bind(so)
    task.p = port
    return task


class TestBlockingCalls:
    def test_call_returns_result_after_eet(self, sim):
        so = SharedObject(sim, "cnt", Counter())
        results = []

        def body(task):
            value = yield from task.p.call("bump", 5)
            results.append((value, sim.now))

        make_task(sim, so, "t", body).start()
        sim.run()
        assert results == [(5, ns(10))]

    def test_unknown_method_rejected(self, sim):
        so = SharedObject(sim, "cnt", Counter())

        def body(task):
            yield from task.p.call("missing")

        make_task(sim, so, "t", body).start()
        with pytest.raises(Exception, match="no method"):
            sim.run()

    def test_mutual_exclusion_serialises_calls(self, sim):
        so = SharedObject(sim, "cnt", Counter())
        times = []

        def body(task):
            yield from task.p.call("bump")
            times.append(sim.now)

        for index in range(3):
            make_task(sim, so, f"t{index}", body).start()
        sim.run()
        assert times == [ns(10), ns(20), ns(30)]

    def test_behaviour_without_exports_rejected(self, sim):
        class Bare:
            def method(self):
                return None

        with pytest.raises(ValueError, match="exports no methods"):
            SharedObject(sim, "bare", Bare())


class TestGuards:
    def test_guard_defers_until_state_opens(self, sim):
        class Box:
            def __init__(self):
                self.items = []

            @osss_method()
            def put(self, item):
                self.items.append(item)

            @osss_method(guard=guarded(lambda self: bool(self.items)))
            def take(self):
                return self.items.pop(0)

        box = Box()
        so = SharedObject(sim, "box", box)
        taken = []

        def consumer(task):
            item = yield from task.p.call("take")
            taken.append((item, sim.now))

        def producer(task):
            yield ns(25)
            yield from task.p.call("put", "x")

        make_task(sim, so, "cons", consumer).start()
        make_task(sim, so, "prod", producer).start()
        sim.run()
        assert taken == [("x", ns(25))]

    def test_args_aware_guard_filters_per_call(self, sim):
        class PerTicket:
            def __init__(self):
                self.ready = set()

            @osss_method()
            def publish(self, ticket):
                self.ready.add(ticket)

            @osss_method(guard=guarded_args(lambda self, ticket: ticket in self.ready))
            def redeem(self, ticket):
                self.ready.discard(ticket)
                return ticket

        so = SharedObject(sim, "tickets", PerTicket())
        redeemed = []

        def waiter(task, ticket):
            value = yield from task.p.call("redeem", ticket)
            redeemed.append((value, sim.now))

        def publisher(task):
            yield ns(10)
            yield from task.p.call("publish", "b")
            yield ns(10)
            yield from task.p.call("publish", "a")

        make_task(sim, so, "wa", lambda t: waiter(t, "a")).start()
        make_task(sim, so, "wb", lambda t: waiter(t, "b")).start()
        make_task(sim, so, "pub", publisher).start()
        sim.run()
        # "b" published first, so its waiter redeems first even though the
        # "a" waiter queued earlier.
        assert redeemed == [("b", ns(10)), ("a", ns(20))]

    def test_blocked_guard_never_opens_leaves_pending(self, sim):
        class Stuck:
            @osss_method(guard=guarded(lambda self: False, "never"))
            def wait_forever(self):
                return None

        so = SharedObject(sim, "stuck", Stuck())

        def body(task):
            yield from task.p.call("wait_forever")

        task = make_task(sim, so, "t", body)
        task.start()
        sim.run()
        assert not task.finished
        assert so.pending_count == 1
        assert so.stats.guard_blocked > 0


class TestArbitration:
    def test_priority_policy_orders_grants(self, sim):
        so = SharedObject(sim, "cnt", Counter(), policy=StaticPriority())
        order = []

        def body(name):
            def run(task):
                yield from task.p.call("bump")
                order.append(name)

            return run

        low = FunctionTask(sim, "low", body("low"))
        port = low.port("p", priority=9)
        port.bind(so)
        low.p = port
        high = FunctionTask(sim, "high", body("high"))
        port = high.port("p", priority=0)
        port.bind(so)
        high.p = port
        low.start()
        high.start()
        sim.run()
        assert order == ["high", "low"]

    def test_grant_overhead_charged(self, sim):
        so = SharedObject(
            sim, "cnt", Counter(), grant_overhead=us(1), per_client_overhead=us(1)
        )
        finish = []

        def body(task):
            yield from task.p.call("bump")
            finish.append(sim.now)

        make_task(sim, so, "t", body).start()
        sim.run()
        # 1 us grant + 1 us x 1 client + 10 ns method EET
        assert finish == [us(2) + ns(10)]

    def test_contention_statistics(self, sim):
        so = SharedObject(sim, "cnt", Counter())

        def body(task):
            yield from task.p.call("bump")

        for index in range(3):
            make_task(sim, so, f"t{index}", body).start()
        sim.run()
        assert so.stats.requests == 3
        assert so.stats.grants == 3
        assert so.stats.contended_grants >= 1


class TestGeneratorMethods:
    def test_method_may_consume_time_itself(self, sim):
        class Slow:
            @osss_method()
            def work(self):
                yield ns(42)
                return "done"

        so = SharedObject(sim, "slow", Slow())
        results = []

        def body(task):
            value = yield from task.p.call("work")
            results.append((value, sim.now))

        make_task(sim, so, "t", body).start()
        sim.run()
        assert results == [("done", ns(42))]

    def test_object_released_after_failure(self, sim):
        class Fragile:
            @osss_method()
            def explode(self):
                raise RuntimeError("bang")

            @osss_method()
            def ok(self):
                return True

        so = SharedObject(sim, "fragile", Fragile())

        def body(task):
            yield from task.p.call("explode")

        make_task(sim, so, "t", body).start()
        with pytest.raises(Exception, match="bang"):
            sim.run()
        # The object must not be left busy.
        assert so._busy is False
