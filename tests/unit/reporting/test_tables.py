"""Result table rendering."""

import locale

import pytest

from repro.reporting import CHANNEL_TRAFFIC_COLUMNS, Table, channel_traffic_row


class TestTable:
    def test_basic_rendering(self):
        table = Table(["name", "value"], title="Demo")
        table.add_row("alpha", 1.5)
        table.add_row("beta", 2)
        text = table.render()
        assert "Demo" in text
        assert "alpha" in text
        assert "1.50" in text  # floats get two decimals

    def test_column_alignment(self):
        table = Table(["a", "long_header"])
        table.add_row("xxxxxxxxxx", "y")
        lines = table.render().splitlines()
        header, rule, row = lines[0], lines[1], lines[2]
        assert len(header) == len(row)
        assert set(rule) <= {"-", "+"}

    def test_cell_count_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_separator_between_sections(self):
        table = Table(["v"])
        table.add_row("app")
        table.add_separator()
        table.add_row("vta")
        text = table.render()
        body = text.splitlines()[2:]
        assert any(set(line) <= {"-", "+"} for line in body)

    def test_csv_output(self):
        table = Table(["a", "b"])
        table.add_row("x,y", 1)
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "x;y" in csv  # commas in cells are escaped

    def test_write_files(self, tmp_path):
        table = Table(["a"])
        table.add_row("value")
        text_path = tmp_path / "out.txt"
        csv_path = tmp_path / "out.csv"
        table.write(text_path, csv_path)
        assert "value" in text_path.read_text()
        assert "value" in csv_path.read_text()


def _artifact_table():
    """A table shaped like the committed artifacts: mixed cell types,
    a separator, a comma in a cell."""
    table = Table(["version", "decode [ms]", "speedup", "note"],
                  title="Determinism probe")
    table.add_row("1", 3664.125, 1.0, "baseline, seed")
    table.add_separator()
    table.add_row("6a", 812.0, 4.51125, "")
    table.add_row("7b", 800, 4.58, "int cell stays int")
    return table


class TestDeterminism:
    """The artifact pipeline's byte-identity rests on these properties."""

    def test_render_byte_identical_across_instances(self):
        assert _artifact_table().render() == _artifact_table().render()
        assert _artifact_table().to_csv() == _artifact_table().to_csv()

    def test_row_order_is_insertion_order(self):
        text = _artifact_table().render()
        assert text.index("\n1 ") < text.index("\n6a") < text.index("\n7b")

    def test_float_formatting_is_fixed_two_decimals(self):
        table = Table(["x"])
        table.add_row(1234567.891)
        rendered = table.render()
        assert "1234567.89" in rendered
        assert "," not in rendered  # no thousands grouping, ever

    def test_rendering_ignores_locale(self):
        """Floats must not pick up locale decimal commas or grouping.

        Only locales available in the container can be exercised; if no
        comma-decimal locale exists the f-string guarantee still holds
        and the instance-identity check above covers it.
        """
        baseline = _artifact_table().render()
        csv_baseline = _artifact_table().to_csv()
        original = locale.setlocale(locale.LC_ALL)
        candidates = ("de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "C.utf8", "C")
        exercised = 0
        try:
            for name in candidates:
                try:
                    locale.setlocale(locale.LC_ALL, name)
                except locale.Error:
                    continue
                exercised += 1
                assert _artifact_table().render() == baseline, name
                assert _artifact_table().to_csv() == csv_baseline, name
        finally:
            locale.setlocale(locale.LC_ALL, original)
        assert exercised > 0, "no locale could be exercised at all"

    def test_csv_round_trips_the_rendered_cells(self):
        """Every rendered cell survives the CSV form (modulo the comma
        escape), so the .txt and .csv artifacts carry the same data."""
        table = _artifact_table()
        lines = table.to_csv().splitlines()
        assert lines[0] == "version,decode [ms],speedup,note"
        rows = [line.split(",") for line in lines[1:]]
        assert rows[0] == ["1", "3664.12", "1.00", "baseline; seed"]
        assert rows[2] == ["7b", "800", "4.58", "int cell stays int"]
        # Each CSV row matches the rendered text row cell-for-cell
        # (title, "=" rule, header and dash rules are skipped).
        rendered_rows = [
            [cell.strip() for cell in line.split(" | ")]
            for line in table.render().splitlines()[4:]
            if set(line) - {"-", "+"}  # skip separator rules
        ]
        for csv_row, text_row in zip(rows, rendered_rows):
            assert [c.replace(",", ";") for c in text_row] == csv_row


class TestChannelTrafficRow:
    _STATS = {"transactions": 10, "words": 40, "busy_fs": 1, "wait_fs": 2.5e12}

    def test_accepts_plain_dicts(self):
        row = channel_traffic_row("6a", self._STATS)
        assert row == ("6a", 10, 40, 2.5, "n/a")
        assert len(row) == len(CHANNEL_TRAFFIC_COLUMNS)

    def test_accepts_as_dict_objects(self):
        class Stats:
            def as_dict(self_inner):
                return dict(self._STATS)

        assert channel_traffic_row("6a", Stats()) == ("6a", 10, 40, 2.5, "n/a")
