"""Result table rendering."""

import pytest

from repro.reporting import Table


class TestTable:
    def test_basic_rendering(self):
        table = Table(["name", "value"], title="Demo")
        table.add_row("alpha", 1.5)
        table.add_row("beta", 2)
        text = table.render()
        assert "Demo" in text
        assert "alpha" in text
        assert "1.50" in text  # floats get two decimals

    def test_column_alignment(self):
        table = Table(["a", "long_header"])
        table.add_row("xxxxxxxxxx", "y")
        lines = table.render().splitlines()
        header, rule, row = lines[0], lines[1], lines[2]
        assert len(header) == len(row)
        assert set(rule) <= {"-", "+"}

    def test_cell_count_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_separator_between_sections(self):
        table = Table(["v"])
        table.add_row("app")
        table.add_separator()
        table.add_row("vta")
        text = table.render()
        body = text.splitlines()[2:]
        assert any(set(line) <= {"-", "+"} for line in body)

    def test_csv_output(self):
        table = Table(["a", "b"])
        table.add_row("x,y", 1)
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "x;y" in csv  # commas in cells are escaped

    def test_write_files(self, tmp_path):
        table = Table(["a"])
        table.add_row("value")
        text_path = tmp_path / "out.txt"
        csv_path = tmp_path / "out.csv"
        table.write(text_path, csv_path)
        assert "value" in text_path.read_text()
        assert "value" in csv_path.read_text()
