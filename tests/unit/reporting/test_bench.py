"""Unit tests for the wall-clock benchmark harness."""

import json

import pytest

from repro.reporting.bench import DECODE_SCHEMA_VERSION, DecodeBench, machine_info, time_call


def test_machine_info_has_interpretability_keys():
    info = machine_info()
    assert set(info) == {"python", "implementation", "platform", "cpu_count"}
    assert info["cpu_count"] >= 1


def test_time_call_returns_first_result_and_positive_time():
    calls = []

    def fn():
        calls.append(len(calls))
        return len(calls)

    seconds, result = time_call(fn, repeats=3)
    assert calls == [0, 1, 2]
    assert result == 1  # result of the first run, not the fastest
    assert seconds >= 0


def test_time_call_rejects_zero_repeats():
    with pytest.raises(ValueError):
        time_call(lambda: None, repeats=0)


def test_speedups_relative_to_baseline():
    bench = DecodeBench({"tiles": 16}, baseline="reference")
    bench.record("lossless", "reference", 10.0)
    bench.record("lossless", "fast", 5.0)
    bench.record("lossless", "parallel", 4.0)
    assert bench.speedups("lossless") == {"fast": 2.0, "parallel": 2.5}
    assert bench.speedups("missing-mode") == {}


def test_payload_includes_seed_anchor():
    bench = DecodeBench(
        {"tiles": 16},
        baseline="reference",
        seed_baseline_seconds={"lossless": 20.0},
    )
    bench.record("lossless", "reference", 10.0)
    bench.record("lossless", "fast", 5.0)
    payload = bench.payload(byte_identical=True)
    assert payload["schema"] == DECODE_SCHEMA_VERSION
    assert payload["byte_identical"] is True
    mode = payload["modes"]["lossless"]
    assert mode["seed_sequential_seconds"] == 20.0
    assert mode["speedup_vs_seed"] == {"reference": 2.0, "fast": 4.0}
    assert mode["speedup_vs_reference"] == {"fast": 2.0}


def test_payload_carries_schedule_metadata():
    bench = DecodeBench({"tiles": 16}, baseline="reference")
    bench.record("lossless", "parallel-shm-4", 3.0)
    bench.record_schedule(
        "parallel-shm-4",
        {"requested_workers": 4, "effective_workers": 1, "degraded": True,
         "granularity": "codeblock/size-aware"},
    )
    payload = bench.payload()
    schedule = payload["schedules"]["parallel-shm-4"]
    assert schedule["requested_workers"] == 4
    assert schedule["degraded"] is True


def test_payload_carries_plan_labels():
    from repro.jpeg2000.options import DecodeOptions
    from repro.jpeg2000.plan import PlanEnvironment, compile_plan

    plan = compile_plan(
        DecodeOptions(workers=4),
        PlanEnvironment(cpu_count=8, shared_memory_available=True),
    )
    bench = DecodeBench({"tiles": 16}, baseline="reference")
    bench.record("lossless", "parallel-shm-4", 3.0)
    bench.record_plan(
        "parallel-shm-4", {"digest": plan.digest(), **plan.as_dict()}
    )
    payload = bench.payload()
    record = payload["plans"]["parallel-shm-4"]
    assert record["digest"] == plan.digest()
    assert [s["stage"] for s in record["stages"]] == [
        "parse", "entropy", "reconstruct", "assemble",
    ]


def test_payload_carries_stage_shares():
    bench = DecodeBench({"tiles": 16}, baseline="reference")
    bench.record("lossless", "batched-sequential", 3.0)
    bench.record_stages(
        "lossless", "batched-sequential",
        {"t1_decode": 0.81234, "idwt": 0.1, "t2_parse": 0.01},
    )
    payload = bench.payload()
    shares = payload["modes"]["lossless"]["stage_shares"]["batched-sequential"]
    assert shares["t1_decode"] == 0.8123  # rounded to 4 places
    assert set(shares) == {"t1_decode", "idwt", "t2_parse"}


def test_stage_shares_absent_when_not_recorded():
    bench = DecodeBench({"tiles": 16}, baseline="reference")
    bench.record("lossless", "reference", 2.0)
    assert "stage_shares" not in bench.payload()["modes"]["lossless"]


def test_degraded_label_suffix():
    bench = DecodeBench({"tiles": 16}, baseline="reference")
    bench.record_schedule("parallel-shm-4", {"degraded": True})
    bench.record_schedule("fast-sequential", {"degraded": False})
    assert bench.degraded("parallel-shm-4")
    assert bench.label("parallel-shm-4") == "parallel-shm-4 (degraded)"
    assert bench.label("fast-sequential") == "fast-sequential"
    assert bench.label("never-recorded") == "never-recorded"


def test_write_round_trips_json(tmp_path):
    bench = DecodeBench({"tiles": 4}, baseline="reference")
    bench.record("lossy", "reference", 2.0)
    out = tmp_path / "BENCH_decode.json"
    payload = bench.write(out)
    assert json.loads(out.read_text()) == payload
