#!/usr/bin/env python3
"""Quality layers: one codestream, many operating points.

JPEG 2000's embedded quality layers let a single compressed stream serve
several rate/quality targets — a transcoder (or a struggling network) just
stops forwarding packets after layer N.  This extension of the paper's
decoder demonstrates the library's layered Tier-2 implementation: encode
once with five layers, then decode every prefix.

Run:  python examples/quality_scalability.py
"""

from repro.jpeg2000 import (
    CodingParameters,
    Jpeg2000Decoder,
    encode_image,
    synthetic_image,
)
from repro.reporting import Table


def main() -> None:
    image = synthetic_image(128, 128, 3, seed=7)
    params = CodingParameters(
        width=128,
        height=128,
        num_components=3,
        tile_width=64,
        tile_height=64,
        num_levels=3,
        lossless=False,
        num_layers=5,
        base_step=1 / 8,
    )
    codestream = encode_image(image, params)
    raw = image.width * image.height * 3
    print(f"encoded once: {len(codestream)} bytes "
          f"({8 * len(codestream) / raw:.2f} bpp), 5 quality layers\n")

    table = Table(
        ["layers decoded", "PSNR [dB]", "entropy ops", "relative work"],
        title="Prefix decoding of one layered codestream",
    )
    baseline_ops = None
    for count in range(1, 6):
        decoder = Jpeg2000Decoder(codestream, max_layers=count)
        decoded = decoder.decode()
        ops = decoder.ops["arith"]
        if baseline_ops is None:
            baseline_ops = ops
        table.add_row(
            f"{count} / 5",
            decoded.psnr(image),
            ops,
            f"{ops / baseline_ops:.2f}x",
        )
    print(table.render())
    print("fewer layers -> fewer arithmetic-decoder operations -> exactly the")
    print("knob the case study's dominant pipeline stage (Fig. 1) would turn")
    print("on a constrained target.")


if __name__ == "__main__":
    main()
