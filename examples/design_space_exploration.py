#!/usr/bin/env python3
"""The paper's design-space exploration: reconstructing Table 1.

Walks the nine design versions of the JPEG 2000 decoder case study —
software-only (1) through the fully parallel HW/SW architecture on the
virtual target architecture (7b) — on the paper workload (16 tiles, 3
components, 100 MHz) and prints the reconstructed Table 1 with the
speed-up and IDWT columns the paper discusses.

Run:  python examples/design_space_exploration.py
"""

from repro.casestudy import ROW_LABELS, build_table1
from repro.reporting import Table


def main() -> None:
    print("simulating all nine versions in both modes "
          "(about 15 s of wall clock)...\n")
    table1 = build_table1()
    output = Table(
        [
            "ver", "model",
            "lossless [ms]", "lossy [ms]",
            "IDWT ll [ms]", "IDWT ly [ms]",
            "speedup ll", "speedup ly",
        ],
        title="Table 1 (reconstructed) - decoding 16 tiles with 3 components",
    )
    baseline = table1.row("1")
    for row in table1.rows:
        if row.version == "6a":
            output.add_separator()  # application layer | VTA layer
        output.add_row(
            row.version,
            ROW_LABELS[row.version],
            row.decode_ms["lossless"],
            row.decode_ms["lossy"],
            row.idwt_ms["lossless"],
            row.idwt_ms["lossy"],
            row.speedup(baseline, "lossless"),
            row.speedup(baseline, "lossy"),
        )
    print(output.render())

    relations = table1.shape_relations()
    print("the paper's prose, checked against the simulation:")
    checks = [
        ("v2 speed-up 'about 10%/19%'",
         f"{relations['lossless']['v2_speedup']:.2f} / "
         f"{relations['lossy']['v2_speedup']:.2f}"),
        ("v4/v5 speed-up 'factor 4.5/5'",
         f"{relations['lossless']['v4_speedup']:.2f} / "
         f"{relations['lossy']['v4_speedup']:.2f}"),
        ("IDWT 3->6a 'up to a factor of 8'",
         f"{relations['lossless']['idwt_6a_vs_3']:.1f}x / "
         f"{relations['lossy']['idwt_6a_vs_3']:.1f}x"),
        ("7a 'increased even more than 6a'",
         f"{relations['lossless']['idwt_7a_vs_6a']:.2f}x"),
        ("'IDWT times of 6b and 7b are equal'",
         f"ratio {relations['lossless']['idwt_7b_vs_6b']:.2f}"),
        ("IDWT in HW 'speed-up by 12/16' vs SW",
         f"{relations['lossless']['idwt_speedup_6b']:.1f}x / "
         f"{relations['lossy']['idwt_speedup_6b']:.1f}x"),
    ]
    for claim, measured in checks:
        print(f"  {claim:42s} -> {measured}")


if __name__ == "__main__":
    main()
