#!/usr/bin/env python3
"""Seamless refinement: the same behaviour, three architectures.

The paper's central claim is that OSSS models refine from the Application
Layer to a cycle-accurate Virtual Target Architecture *without touching
the behavioural code*.  This script demonstrates it with real data: one
codestream is decoded through

  * version 3  (Application Layer, abstract communication),
  * version 6a (VTA, everything on one OPB bus),
  * version 6b (VTA, IDWT links on point-to-point channels),

and all three produce the bit-identical image while reporting very
different timing — which is exactly the methodology's value proposition.

Run:  python examples/seamless_refinement.py
"""

from repro.casestudy import functional_workload, run_version
from repro.reporting import Table


def main() -> None:
    # A small real workload: a 64x64 image in four 32x32 tiles, encoded by
    # our own encoder and decoded *through the OSSS models* for real.
    workload = functional_workload(lossless=True, image_size=64, tile_size=32)
    print("decoding a real codestream through three refinements "
          "of the same model...\n")

    table = Table(
        ["model", "layer", "decode [ms]", "IDWT [ms]", "output"],
        title="One behaviour, three architectures",
    )
    outputs = {}
    for version, layer in (("3", "application"), ("6a", "VTA: bus only"),
                           ("6b", "VTA: bus + P2P")):
        report = run_version(version, True, workload)
        matches = report.image == workload.reference
        outputs[version] = report.image
        table.add_row(
            version, layer, report.decode_ms, report.idwt_ms,
            "bit-exact" if matches else "MISMATCH",
        )
    print(table.render())

    assert outputs["3"] == outputs["6a"] == outputs["6b"] == workload.reference
    print("all three decodes are bit-identical to the reference decoder.")
    print("only the timing changed — the refinement never touched the "
          "behavioural code.")

    # Show what the refinement *did* change: the architecture statistics.
    report_6a = run_version("6a", True, workload)
    bus = report_6a.details["opb"]
    print(f"\n6a bus traffic: {bus.transactions} transactions, "
          f"{bus.words} words, {bus.wait_fs / 1e12:.2f} ms spent waiting "
          f"for grants")


if __name__ == "__main__":
    main()
