#!/usr/bin/env python3
"""Quickstart: encode and decode a JPEG 2000 image with `repro`.

The codec substrate is a complete, self-contained JPEG 2000
implementation (codestream syntax, MQ coder, EBCOT, wavelets).  This
script fabricates test content, compresses it losslessly and lossily, and
verifies the results — the same decoder the OSSS case-study models run.

Run:  python examples/quickstart.py
"""

from repro.jpeg2000 import (
    CodingParameters,
    Jpeg2000Decoder,
    encode_image,
    synthetic_image,
)


def main() -> None:
    # 1. Test material: a synthetic 128x128 RGB image with natural texture.
    image = synthetic_image(width=128, height=128, num_components=3, seed=42)
    raw_bytes = image.width * image.height * image.num_components
    print(f"source image: {image.width}x{image.height}, "
          f"{image.num_components} components, {raw_bytes} bytes raw")

    # 2. Lossless compression (the 5/3 reversible wavelet path).
    lossless = CodingParameters(
        width=image.width,
        height=image.height,
        num_components=3,
        tile_width=64,
        tile_height=64,
        num_levels=3,
        lossless=True,
    )
    codestream = encode_image(image, lossless)
    decoded = Jpeg2000Decoder(codestream).decode()
    assert decoded == image, "lossless roundtrip must be bit exact"
    print(f"lossless: {len(codestream)} bytes "
          f"({8 * len(codestream) / raw_bytes:.2f} bpp), exact reconstruction")

    # 3. Lossy compression (the 9/7 path) at a few quality points.
    for base_step in (1 / 32, 1 / 8, 1 / 2):
        lossy = CodingParameters(
            width=image.width,
            height=image.height,
            num_components=3,
            tile_width=64,
            tile_height=64,
            num_levels=3,
            lossless=False,
            base_step=base_step,
        )
        codestream = encode_image(image, lossy)
        decoded = Jpeg2000Decoder(codestream).decode()
        print(f"lossy (step {base_step:>6.4f}): {len(codestream):6d} bytes "
              f"({8 * len(codestream) / raw_bytes:.2f} bpp), "
              f"PSNR {decoded.psnr(image):5.1f} dB")

    # 4. The per-stage instrumentation the case study profiles (Fig. 1).
    decoder = Jpeg2000Decoder(encode_image(image, lossless))
    decoder.decode()
    print("\nper-stage operation counts (the Fig. 1 profiling input):")
    for stage in ("arith", "iq", "idwt", "ict", "dc"):
        print(f"  {stage:6s} {decoder.ops[stage]:>10,d} ops")


if __name__ == "__main__":
    main()
