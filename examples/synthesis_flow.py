#!/usr/bin/env python3
"""The FOSSY synthesis flow (paper Fig. 4), end to end.

Takes the two IDWT hardware models through both implementation paths and
writes every artefact of the flow into ``synthesis_output/``:

  * handcrafted-style reference VHDL (procedures preserved),
  * FOSSY VHDL (everything inlined into one explicit state machine),
  * the EDK platform files (system.mhs / system.mss),
  * the generated C for the software tasks,

then prints the reconstructed Table 2 (Virtex-4 LX25 estimates).

Run:  python examples/synthesis_flow.py
"""

import pathlib

from repro.fossy import synthesise_system
from repro.reporting import Table

OUTPUT_DIR = pathlib.Path("synthesis_output")


def main() -> None:
    print("running the FOSSY flow for the JPEG 2000 hardware subsystem...\n")
    system = synthesise_system(num_processors=4)

    OUTPUT_DIR.mkdir(exist_ok=True)
    written = []
    for block in system.blocks:
        ref_path = OUTPUT_DIR / f"{block.name}_reference.vhd"
        fossy_path = OUTPUT_DIR / f"{block.name}_fossy.vhd"
        tb_path = OUTPUT_DIR / f"{block.name}_tb.vhd"
        ref_path.write_text(block.reference_vhdl)
        fossy_path.write_text(block.fossy_vhdl)
        tb_path.write_text(block.testbench_vhdl)
        written += [ref_path, fossy_path, tb_path]
    (OUTPUT_DIR / "system.mhs").write_text(system.mhs)
    (OUTPUT_DIR / "system.mss").write_text(system.mss)
    (OUTPUT_DIR / "software.c").write_text(system.software_c)
    written += [OUTPUT_DIR / "system.mhs", OUTPUT_DIR / "system.mss",
                OUTPUT_DIR / "software.c"]
    for path in written:
        print(f"  wrote {path} ({len(path.read_text().splitlines())} lines)")

    table = Table(
        ["metric", "53 FOSSY", "53 ref", "97 FOSSY", "97 ref"],
        title="\nTable 2 (reconstructed) - RTL synthesis results, Virtex-4 LX25",
    )
    b53 = system.block("idwt53")
    b97 = system.block("idwt97")
    table.add_row("slice flip flops",
                  b53.fossy_report.flip_flops, b53.reference_report.flip_flops,
                  b97.fossy_report.flip_flops, b97.reference_report.flip_flops)
    table.add_row("4-input LUTs",
                  b53.fossy_report.luts, b53.reference_report.luts,
                  b97.fossy_report.luts, b97.reference_report.luts)
    table.add_row("occupied slices",
                  b53.fossy_report.slices, b53.reference_report.slices,
                  b97.fossy_report.slices, b97.reference_report.slices)
    table.add_row("equivalent gates",
                  b53.fossy_report.gate_count, b53.reference_report.gate_count,
                  b97.fossy_report.gate_count, b97.reference_report.gate_count)
    table.add_row("est. frequency [MHz]",
                  b53.fossy_report.frequency_mhz, b53.reference_report.frequency_mhz,
                  b97.fossy_report.frequency_mhz, b97.reference_report.frequency_mhz)
    print(table.render())

    print("paper section 4, checked:")
    print(f"  IDWT53 area overhead 'about 10%':  measured "
          f"{(b53.area_ratio - 1) * 100:+.0f}%")
    print(f"  IDWT97 '15% smaller':              measured "
          f"{(b97.area_ratio - 1) * 100:+.0f}%")
    print(f"  IDWT97 '28% slower':               measured "
          f"{(1 - b97.frequency_ratio) * 100:.0f}% slower")
    print(f"  code size blow-up (inlined FSM):   53: "
          f"{b53.reference_loc} -> {b53.fossy_loc} lines, 97: "
          f"{b97.reference_loc} -> {b97.fossy_loc} lines")


if __name__ == "__main__":
    main()
