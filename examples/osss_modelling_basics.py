#!/usr/bin/env python3
"""OSSS modelling basics: Shared Objects, guards, EETs.

A miniature Application-Layer model in the style of the OSSS tutorial: a
producer software task and a consumer hardware module communicate through
a guarded Shared Object, with estimated execution times annotating the
computation.  This is the modelling vocabulary the JPEG 2000 case study
is built from.

Run:  python examples/osss_modelling_basics.py
"""

from repro.core import (
    FunctionTask,
    OsssModule,
    RoundRobin,
    SharedObject,
    guarded,
    osss_method,
)
from repro.kernel import Simulator, ms, us


class FrameQueue:
    """The Shared Object behaviour: a bounded queue with a computation.

    Guards express condition synchronisation declaratively — `pop` is
    simply not eligible while the queue is empty, `push` while it is full.
    The `checksum` method shows the OSSS idea of computing *inside* the
    object (the case study's IQ lives in its tile store the same way).
    """

    def __init__(self, capacity: int = 2):
        self.capacity = capacity
        self.frames: list[int] = []
        self.pushed = 0

    @osss_method(guard=guarded(lambda self: len(self.frames) < self.capacity),
                 eet=us(2))
    def push(self, frame: int):
        self.frames.append(frame)
        self.pushed += 1

    @osss_method(guard=guarded(lambda self: bool(self.frames)), eet=us(2))
    def pop(self) -> int:
        return self.frames.pop(0)

    @osss_method(eet=us(40))
    def checksum(self) -> int:
        return sum(self.frames) & 0xFFFF


class Camera(FunctionTask):
    """A software task producing frames every 5 ms."""

    def __init__(self, sim, queue_object):
        super().__init__(sim, "camera", self._run)
        self.out = self.port("out")
        self.out.bind(queue_object)

    def _run(self, task):
        for frame in range(8):
            yield from task.eet(ms(5))  # capture + preprocess
            yield from self.out.call("push", frame)
            print(f"[{task.sim.now}] camera pushed frame {frame}")


class Filter(OsssModule):
    """A hardware module consuming frames (two concurrent processes)."""

    def __init__(self, sim, queue_object):
        super().__init__(sim, "filter")
        self.inp = self.port("in")
        self.inp.bind(queue_object)
        self.done = []

    def start(self):
        self.add_thread(self._consume, name="consume")
        self.add_thread(self._monitor, name="monitor")

    def _consume(self):
        for _ in range(8):
            frame = yield from self.inp.call("pop")
            yield from self.eet(ms(2))  # the filter kernel in hardware
            self.done.append(frame)
            print(f"[{self.sim.now}] filter finished frame {frame}")

    def _monitor(self):
        # A second client of the same object: contends under round-robin.
        for _ in range(3):
            yield ms(11)
            value = yield from self.inp.call("checksum")
            print(f"[{self.sim.now}] monitor checksum {value:#06x}")


def main() -> None:
    sim = Simulator()
    queue = SharedObject(sim, "frame_queue", FrameQueue(), policy=RoundRobin())
    camera = Camera(sim, queue)
    filt = Filter(sim, queue)
    camera.start()
    filt.start()
    sim.run()
    print(f"\nsimulation finished at {sim.now}")
    print(f"frames processed in order: {filt.done}")
    print(f"shared object statistics:  {queue.stats}")
    assert filt.done == list(range(8))


if __name__ == "__main__":
    main()
