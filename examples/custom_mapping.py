#!/usr/bin/env python3
"""A user-defined design description: 7b remapped onto two processors.

The nine paper versions are pure data in ``repro.design.catalog``; this
script shows that the same machinery is open to *new* mappings.  It
declares a complete VTA design — the 7b application description (four
pipeline stages worth of behaviour on parallel software tasks, two IDWT
filters, two Shared Objects) bound to only **two** MicroBlaze-style
processors — as plain dataclasses, statically validates it, and then
simulates it end-to-end from the very same spec.

The spec is exposed as ``SPEC``, so the CLI validates it too:

    python -m repro validate examples/custom_mapping.py

Run:  python examples/custom_mapping.py [--quick]
      (--quick decodes 4 tiles instead of the paper's 16)
"""

import argparse

from repro.casestudy.profiles import (
    BRAM_EXTRA_CYCLES_PER_SAMPLE,
    OPB_ARBITRATION_CYCLES,
    OPB_CYCLES_PER_WORD,
    P2P_CYCLES_PER_WORD,
    RMI_CHUNK_WORDS,
    SO_GRANT_OVERHEAD,
    SO_PER_CLIENT_OVERHEAD,
    profile_for,
)
from repro.casestudy.workload import Workload, paper_workload
from repro.design import (
    BufferSpec,
    ChannelSpec,
    DatapathSpec,
    DesignSpec,
    ExternalMemorySpec,
    HardwareModuleSpec,
    LinkSpec,
    MappingSpec,
    MemoryPlacementSpec,
    MemorySpec,
    ProcessorSpec,
    SharedObjectSpec,
    TaskSpec,
    check_spec,
    elaborate_design,
)
from repro.design.catalog import (
    PORT_SETUP_CYCLES,
    POLL_CYCLES,
    RAM_SECONDS_PER_WORD,
    TILE_WORDS,
)
from repro.reporting import Table

NUM_CPUS = 2
SLOTS = 4 * NUM_CPUS  # tile-store capacity scales with the task count

# -- the application description (identical behaviour to version 7b) --------

TASKS = tuple(
    TaskSpec(f"sw{i}", "decode_pipelined", ports=("so",)) for i in range(NUM_CPUS)
)

SHARED_OBJECTS = (
    SharedObjectSpec(
        name="hwsw_so",
        behaviour="tile_store",
        policy="round_robin",
        grant_overhead_us=SO_GRANT_OVERHEAD.femtoseconds / 1e9,
        per_client_overhead_us=SO_PER_CLIENT_OVERHEAD.femtoseconds / 1e9,
        capacity=SLOTS,
    ),
    SharedObjectSpec(name="idwt_params_so", behaviour="idwt_params"),
)

MODULES = (
    HardwareModuleSpec("idwt2d", "idwt2d_control"),
    HardwareModuleSpec("idwt53", "idwt_filter", mode="5/3"),
    HardwareModuleSpec("idwt97", "idwt_filter", mode="9/7"),
)

# -- the mapping: two CPUs, OPB bus, dedicated P2P links for the IDWT --------


def _p2p(name):
    return ChannelSpec(name, "p2p", cycles_per_word=P2P_CYCLES_PER_WORD)


CHANNELS = (
    ChannelSpec(
        "opb",
        "opb",
        cycles_per_word=OPB_CYCLES_PER_WORD,
        arbitration_cycles=OPB_ARBITRATION_CYCLES,
    ),
    _p2p("p2p_control_store"),
    _p2p("p2p_control_params"),
    _p2p("p2p_filter_idwt53_store"),
    _p2p("p2p_filter_idwt53_params"),
    _p2p("p2p_filter_idwt97_store"),
    _p2p("p2p_filter_idwt97_params"),
)


def _store(client, port, channel, priority, poll=None):
    return LinkSpec(
        client, port, "hwsw_so", transport="rmi", channel=channel,
        priority=priority, chunk_words=RMI_CHUNK_WORDS, poll_cycles=poll,
    )


def _params(client, channel):
    return LinkSpec(
        client, "params", "idwt_params_so", transport="rmi",
        channel=channel, chunk_words=RMI_CHUNK_WORDS,
    )


LINKS = (
    _store("idwt2d", "store", "p2p_control_store", priority=1),
    _params("idwt2d", "p2p_control_params"),
    _store("idwt53", "store", "p2p_filter_idwt53_store", priority=2),
    _params("idwt53", "p2p_filter_idwt53_params"),
    _store("idwt97", "store", "p2p_filter_idwt97_store", priority=2),
    _params("idwt97", "p2p_filter_idwt97_params"),
    # Software traffic stays on the shared bus and polls the guard.
    *(_store(task.name, "so", "opb", priority=0, poll=POLL_CYCLES)
      for task in TASKS),
)

SPEC = DesignSpec(
    name="7b-2cpu",
    label="SW par., HW/SW SO on bus & P2P [2 cpus]",
    tasks=TASKS,
    shared_objects=SHARED_OBJECTS,
    modules=MODULES,
    memories=(
        MemorySpec(
            "store_bram",
            depth_words=SLOTS * TILE_WORDS,
            seconds_per_word=RAM_SECONDS_PER_WORD,
            port_setup_cycles=PORT_SETUP_CYCLES,
        ),
    ),
    mapping=MappingSpec(
        layer="vta",
        platform="ml401",
        processors=tuple(
            ProcessorSpec(f"cpu{i}", tasks=(task.name,))
            for i, task in enumerate(TASKS)
        ),
        channels=CHANNELS,
        links=LINKS,
        placements=(
            MemoryPlacementSpec(
                memory="store_bram",
                target="hwsw_so",
                buffers=tuple(
                    BufferSpec(f"tile_slot{i}", TILE_WORDS) for i in range(SLOTS)
                ),
                streaming_iq=True,
            ),
        ),
        datapaths=(
            DatapathSpec("idwt53", BRAM_EXTRA_CYCLES_PER_SAMPLE),
            DatapathSpec("idwt97", BRAM_EXTRA_CYCLES_PER_SAMPLE),
        ),
        external_memory=ExternalMemorySpec(kind="ddr", coded_words_ratio=0.25),
    ),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="decode 4 tiles instead of the paper's 16")
    args = parser.parse_args()

    # 1. Static validation: structural errors surface *before* any
    #    simulation time is spent (try deleting a LinkSpec above).
    check_spec(SPEC)
    print(f"spec {SPEC.name!r} is valid: {SPEC.summary()}\n")

    # 2. Elaborate + simulate the very same description, both modes.
    table = Table(
        ["mode", "decode [ms]", "IDWT [ms]"],
        title=f"Custom mapping {SPEC.name}: {SPEC.label}",
    )
    for lossless in (True, False):
        if args.quick:
            workload = Workload(
                num_tiles=4, num_components=3, tile_width=128,
                tile_height=128, lossless=lossless,
                stage_times=profile_for(lossless),
            )
        else:
            workload = paper_workload(lossless)
        model = elaborate_design(SPEC, workload)
        report = model.run()
        table.add_row(report.mode, report.decode_ms, report.idwt_ms)
    print(table.render())
    print(f"\nsimulated {SPEC.name} end-to-end from the declarative spec "
          f"({len(SPEC.mapping.processors)} processors, "
          f"{len(SPEC.p2p_channels)} P2P channels).")


if __name__ == "__main__":
    main()
