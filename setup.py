"""Legacy shim: the build environment has no `wheel` package, so editable
installs must go through `setup.py develop`."""

from setuptools import setup

setup()
