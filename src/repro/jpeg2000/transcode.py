"""Codestream transcoding without re-encoding.

The point of embedded quality layers is that a middlebox can reduce the
rate of a codestream by *dropping packets* — no entropy decoding, no
wavelet work, just byte surgery.  :func:`drop_layers` does exactly that
for LRCP streams: it locates the byte boundary after the last kept layer
in every tile (by replaying the packet headers), truncates the tile
bodies, and rewrites the main header to announce the smaller layer count.

The output is a fully valid codestream; decoding it equals decoding the
original with ``max_layers`` set — which the tests assert bit for bit.
"""

from __future__ import annotations

import dataclasses

from .codestream import (
    CodingParameters,
    PROGRESSION_LRCP,
    TilePart,
    parse_codestream,
    write_codestream,
)
from .decoder import DecodingError, _band_bounds
from .encoder import _progression
from .image import TileGrid
from .structure import band_shapes, codeblock_grid
from .t2 import CodeBlockContribution, PacketBand, consume_sop, decode_packet


class TranscodeError(ValueError):
    """The requested transformation is not possible on this stream."""


def _tile_prefix_length(
    params: CodingParameters,
    tile_width: int,
    tile_height: int,
    data: bytes,
    keep_layers: int,
) -> int:
    """Bytes of tile data covering the first *keep_layers* layers."""
    shapes = band_shapes(tile_width, tile_height, params.num_levels)
    bounds = _band_bounds(params)
    bands_per_component = []
    for _ in range(params.num_components):
        bands = {}
        for shape in shapes:
            bands[(shape.resolution, shape.orientation)] = PacketBand(
                orientation=shape.orientation,
                band_width=shape.width,
                band_height=shape.height,
                cb_size=params.codeblock_size,
                blocks=[
                    CodeBlockContribution(geometry=geo)
                    for geo in codeblock_grid(
                        shape.width, shape.height, params.codeblock_size
                    )
                ],
            )
        bands_per_component.append(bands)
    offset = 0
    packet_sequence = 0
    for layer, resolution in _progression(params):
        if layer >= keep_layers:
            break
        for comp_index in range(params.num_components):
            bands = bands_per_component[comp_index]
            packet_bands = [
                band for (res, _), band in bands.items() if res == resolution
            ]
            res_bounds = {
                orientation: bound
                for (res, orientation), bound in bounds.items()
                if res == resolution
            }
            if params.use_sop:
                offset = consume_sop(data, offset, packet_sequence)
            offset = decode_packet(
                data, offset, packet_bands, res_bounds, layer,
                use_eph=params.use_eph,
            )
            packet_sequence += 1
    return offset


def drop_layers(codestream: bytes, keep_layers: int) -> bytes:
    """Return a codestream containing only the first *keep_layers* layers."""
    parsed = parse_codestream(codestream)
    params = parsed.parameters
    if keep_layers < 1:
        raise TranscodeError("at least one layer must be kept")
    if params.progression != PROGRESSION_LRCP:
        raise TranscodeError(
            "layer dropping needs the LRCP progression (layer-major packets)"
        )
    if keep_layers >= params.num_layers:
        return codestream  # nothing to drop
    grid = TileGrid(params.width, params.height, params.tile_width, params.tile_height)
    new_parts = []
    for part in parsed.tile_parts:
        x0, y0, x1, y1 = grid.tile_bounds(part.tile_index)
        prefix = _tile_prefix_length(
            params, x1 - x0, y1 - y0, part.data, keep_layers
        )
        new_parts.append(TilePart(part.tile_index, part.data[:prefix]))
    new_params = dataclasses.replace(params, num_layers=keep_layers)
    return write_codestream(new_params, new_parts)
