"""Deprecated façade over the plan-driven entropy stage.

The machinery that used to live here is now split along the plan seams:
option vocabulary in :mod:`repro.jpeg2000.options`, the plan IR and
planner in :mod:`repro.jpeg2000.plan`, and every executor (pools,
arenas, streaming, resume) in :mod:`repro.jpeg2000.stages.entropy`.
This module re-exports the old names so existing imports keep working,
and keeps the three legacy entry points — :func:`decode_blocks`,
:func:`decode_blocks_spec`, :func:`open_spec_stream` — as shims that
compile an equivalent plan binding and delegate, emitting
``DeprecationWarning``.  New code should compile a
:class:`~repro.jpeg2000.plan.DecodePlan` and call the stage module (or
just hand options/plan to the decoder).
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from .options import (  # noqa: F401  (re-exported legacy surface)
    ARENA_PREFIX,
    _KERNELS,
    _MAX_ARENA_BITPLANES,
    _START_METHODS,
    _TIER2,
    _degradations_warned,
    _warn_degraded,
    BlockSpec,
    BlockTask,
    DEFAULT_OPTIONS,
    DecodeOptions,
    KERNEL_BATCHED,
    KERNEL_FAST,
    KERNEL_REFERENCE,
    ParallelDegradedWarning,
    TIER2_FAST,
    TIER2_REFERENCE,
    shared_memory,
)
from .plan import (
    EXECUTOR_POOL,
    INLINE,
    STAGE_ENTROPY,
    TRANSPORT_PICKLE,
    ExecutorSpec,
    StageBinding,
    compile_plan,
)
from .stages.entropy import (  # noqa: F401  (re-exported legacy surface)
    _OCCUPANCY_BUCKETS,
    _chunked,
    _close_pool,
    _decode_chunk,
    _decode_chunk_shm,
    _decode_specs_shm,
    _decode_tasks_sequential,
    _get_pool,
    _join_segments,
    _live_arenas,
    _record_occupancy,
    _sweep_arenas,
    SharedArena,
    SpecStream,
    decode_block,
    open_stream,
    plan_chunks,
    run_specs,
    run_tasks,
    shutdown_pool,
)


def _deprecated(name: str, instead: str) -> None:
    warnings.warn(
        f"repro.jpeg2000.parallel.{name} is deprecated; {instead}",
        DeprecationWarning,
        stacklevel=3,
    )


def _pickle_binding(options: DecodeOptions) -> StageBinding:
    """The entropy binding equivalent to *options* on the pickle
    transport (the only transport :func:`decode_blocks` ever had)."""
    workers = options.effective_workers
    if workers > 1:
        executor = ExecutorSpec(
            kind=EXECUTOR_POOL,
            workers=workers,
            chunk_size=options.chunk_size,
            start_method=options.start_method,
            transport=TRANSPORT_PICKLE,
            overlap=False,
        )
    else:
        executor = INLINE
    return StageBinding(STAGE_ENTROPY, options.kernel, executor)


def decode_blocks(
    tasks: Sequence[BlockTask], options: DecodeOptions = DEFAULT_OPTIONS
) -> list:
    """Deprecated: decode materialised block tasks in order.

    Compiles the pickle-transport plan binding equivalent to *options*
    and delegates to :func:`repro.jpeg2000.stages.entropy.run_tasks`
    (results and degradation behaviour unchanged).
    """
    _deprecated(
        "decode_blocks",
        "compile a DecodePlan and call stages.entropy.run_tasks",
    )
    if options.degraded:
        _warn_degraded(
            options.requested_workers, options.effective_workers,
            "clamped to os.cpu_count()",
        )
    return run_tasks(
        tasks, _pickle_binding(options), schedule=options.schedule_info()
    )


def decode_blocks_spec(
    sources: Sequence[bytes],
    specs: Sequence[tuple],
    options: DecodeOptions = DEFAULT_OPTIONS,
):
    """Deprecated: decode segment-described blocks.

    Compiles *options* into a plan and delegates its entropy binding to
    :func:`repro.jpeg2000.stages.entropy.run_specs` — the same
    arena → pickle → in-process degradation chain, now recorded as plan
    rewrites.
    """
    _deprecated(
        "decode_blocks_spec",
        "compile a DecodePlan and call stages.entropy.run_specs",
    )
    if options.degraded:
        _warn_degraded(
            options.requested_workers, options.effective_workers,
            "clamped to os.cpu_count()",
        )
    binding = compile_plan(options).stage(STAGE_ENTROPY)
    return run_specs(
        sources, specs, binding, schedule=options.schedule_info()
    )


def open_spec_stream(
    sources: Sequence[bytes], sizes: Sequence[int],
    options: DecodeOptions = DEFAULT_OPTIONS,
) -> Optional[SpecStream]:
    """Deprecated: open a streaming (overlapped) decode session.

    Compiles *options* into a plan and delegates to
    :func:`repro.jpeg2000.stages.entropy.open_stream`; returns ``None``
    when the plan's entropy executor is not an arena pool (the caller
    then takes the barrier schedule, as before).
    """
    _deprecated(
        "open_spec_stream",
        "compile a DecodePlan and call stages.entropy.open_stream",
    )
    binding = compile_plan(options).stage(STAGE_ENTROPY)
    return open_stream(
        sources, sizes, binding, schedule=options.schedule_info()
    )
