"""Parallel entropy decoding of independent code blocks.

The paper's profile (Fig. 1) puts 78–89 % of software decode time in the
arithmetic decoder, and its case study answers by parallelising exactly
that stage across tasks.  This module is the software mirror of that
move: EBCOT code blocks are coded independently, so once Tier-2 has
sliced the packet bodies into per-block codeword segments, every block
can be decoded in isolation.  A block task is a small picklable tuple
(segment bytes + geometry in, coefficient array out), which makes the
stage embarrassingly parallel over a process pool.

:class:`DecodeOptions` selects the kernel (optimised ``t1_fast`` vs the
reference ``t1``), the worker count, and the chunking used to amortise
inter-process transfer.  ``workers=0`` is the sequential in-process
fallback — also used automatically when a pool cannot be created (no
fork support, sandboxed semaphores, interpreter shutdown).

Both kernels return bit-identical coefficients and identical basic-op
counts, so the Fig. 1 / Table 1 instrumentation is unaffected by how the
work is scheduled.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from .t1 import CodeBlockDecoder
from .t1_fast import FastCodeBlockDecoder

#: Kernel names accepted by :class:`DecodeOptions`.
KERNEL_FAST = "fast"
KERNEL_REFERENCE = "reference"
_KERNELS = (KERNEL_FAST, KERNEL_REFERENCE)

#: A picklable per-block decode task:
#: (data, width, height, orientation, num_bitplanes, num_passes).
BlockTask = tuple


@dataclass(frozen=True)
class DecodeOptions:
    """How the entropy-decode stage schedules its code-block kernel.

    ``workers``
        Worker processes for block decoding.  0 or 1 decodes
        sequentially in-process; ``None`` picks ``os.cpu_count()``.
    ``chunk_size``
        Blocks per unit of work shipped to a worker; larger chunks
        amortise pickling overhead, smaller chunks balance better.
    ``kernel``
        ``"fast"`` (the optimised ``t1_fast`` kernel, default) or
        ``"reference"`` (the readable ``t1`` specification kernel).
    """

    workers: Optional[int] = 0
    chunk_size: int = 8
    kernel: str = KERNEL_FAST

    def __post_init__(self):
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be None or >= 0")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.kernel not in _KERNELS:
            raise ValueError(f"kernel must be one of {_KERNELS}")

    @property
    def effective_workers(self) -> int:
        # Clamped to the host's CPU count: extra workers only add pool
        # and pickling overhead (BENCH_decode.json showed parallel-4 on a
        # 1-CPU machine gaining nothing over fast-sequential).
        cpus = os.cpu_count() or 1
        if self.workers is None:
            return cpus
        return min(self.workers, cpus)

    @property
    def parallel(self) -> bool:
        return self.effective_workers > 1


#: Default options: sequential, fast kernel.
DEFAULT_OPTIONS = DecodeOptions()


def decode_block(task: BlockTask, kernel: str = KERNEL_FAST):
    """Decode one code block; returns (int64 coefficient array, ops)."""
    data, width, height, orientation, num_bitplanes, num_passes = task
    decoder_cls = (
        CodeBlockDecoder if kernel == KERNEL_REFERENCE else FastCodeBlockDecoder
    )
    decoder = decoder_cls(data, width, height, orientation, num_bitplanes, num_passes)
    values = np.asarray(decoder.decode(), dtype=np.int64)
    return values, decoder.ops


def _decode_chunk(payload):
    """Worker entry point: decode a chunk of block tasks."""
    kernel, tasks = payload
    return [decode_block(task, kernel) for task in tasks]


def _chunked(tasks: Sequence[BlockTask], chunk_size: int) -> Iterable[Sequence[BlockTask]]:
    for start in range(0, len(tasks), chunk_size):
        yield tasks[start : start + chunk_size]


# One cached pool per process; re-created only when the worker count
# changes.  Spawning a pool per tile would dominate small decodes.
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0


def _get_pool(workers: int) -> Optional[ProcessPoolExecutor]:
    global _pool, _pool_workers
    if _pool is not None and _pool_workers == workers:
        return _pool
    shutdown_pool()
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError, RuntimeError):
        return None  # no pool available here: sequential fallback
    _pool = pool
    _pool_workers = workers
    return pool


def shutdown_pool() -> None:
    """Tear down the cached worker pool (also runs at interpreter exit)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


def decode_blocks(
    tasks: Sequence[BlockTask], options: DecodeOptions = DEFAULT_OPTIONS
) -> list:
    """Decode *tasks* in order; returns [(coefficient array, ops), ...].

    Results are position-matched to the input regardless of scheduling,
    and the parallel path is byte-identical to the sequential one — the
    only observable difference is wall-clock time.
    """
    kernel = options.kernel
    if not options.parallel or len(tasks) <= 1:
        return [decode_block(task, kernel) for task in tasks]
    pool = _get_pool(options.effective_workers)
    if pool is None:
        return [decode_block(task, kernel) for task in tasks]
    payloads = [(kernel, chunk) for chunk in _chunked(tasks, options.chunk_size)]
    try:
        chunk_results = list(pool.map(_decode_chunk, payloads))
    except BrokenProcessPool:  # pragma: no cover - defensive
        shutdown_pool()
        return [decode_block(task, kernel) for task in tasks]
    results: list = []
    for chunk in chunk_results:
        results.extend(chunk)
    return results
