"""The MQ arithmetic coder of JPEG 2000 (ITU-T T.800, Annex C).

This is the paper's dominant cost centre: the arithmetic decoder accounts
for 88.8 % (lossless) / 78.6 % (lossy) of the software decoding time in
Figure 1, and its resistance to affordable hardware implementation is why
the case study parallelises it as four software tasks instead.

The implementation follows the standard's flowcharts exactly:
INITENC / ENCODE / CODEMPS / CODELPS / RENORME / BYTEOUT / FLUSH for the
encoder and INITDEC / DECODE / MPS-/LPS-EXCHANGE / RENORMD / BYTEIN for the
decoder, including 0xFF byte stuffing and carry propagation.  Probability
adaptation uses the standard 47-state table.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: The 47-row probability state table of ITU-T T.800 Table C.2:
#: (Qe, NMPS, NLPS, SWITCH).
QE_TABLE: tuple[tuple[int, int, int, int], ...] = (
    (0x5601, 1, 1, 1),
    (0x3401, 2, 6, 0),
    (0x1801, 3, 9, 0),
    (0x0AC1, 4, 12, 0),
    (0x0521, 5, 29, 0),
    (0x0221, 38, 33, 0),
    (0x5601, 7, 6, 1),
    (0x5401, 8, 14, 0),
    (0x4801, 9, 14, 0),
    (0x3801, 10, 14, 0),
    (0x3001, 11, 17, 0),
    (0x2401, 12, 18, 0),
    (0x1C01, 13, 20, 0),
    (0x1601, 29, 21, 0),
    (0x5601, 15, 14, 1),
    (0x5401, 16, 14, 0),
    (0x5101, 17, 15, 0),
    (0x4801, 18, 16, 0),
    (0x3801, 19, 17, 0),
    (0x3401, 20, 18, 0),
    (0x3001, 21, 19, 0),
    (0x2801, 22, 19, 0),
    (0x2401, 23, 20, 0),
    (0x2201, 24, 21, 0),
    (0x1C01, 25, 22, 0),
    (0x1801, 26, 23, 0),
    (0x1601, 27, 24, 0),
    (0x1401, 28, 25, 0),
    (0x1201, 29, 26, 0),
    (0x1101, 30, 27, 0),
    (0x0AC1, 31, 28, 0),
    (0x09C1, 32, 29, 0),
    (0x08A1, 33, 30, 0),
    (0x0521, 34, 31, 0),
    (0x0441, 35, 32, 0),
    (0x02A1, 36, 33, 0),
    (0x0221, 37, 34, 0),
    (0x0141, 38, 35, 0),
    (0x0111, 39, 36, 0),
    (0x0085, 40, 37, 0),
    (0x0049, 41, 38, 0),
    (0x0025, 42, 39, 0),
    (0x0015, 43, 40, 0),
    (0x0009, 44, 41, 0),
    (0x0005, 45, 42, 0),
    (0x0001, 45, 43, 0),
    (0x5601, 46, 46, 0),
)


class ContextState:
    """Adaptive state of one coding context: table index + MPS sense."""

    __slots__ = ("index", "mps")

    def __init__(self, index: int = 0, mps: int = 0):
        self.index = index
        self.mps = mps

    def reset(self, index: int = 0, mps: int = 0) -> None:
        self.index = index
        self.mps = mps

    def __repr__(self) -> str:
        return f"ContextState(index={self.index}, mps={self.mps})"


class MqEncoder:
    """MQ encoder over caller-owned context states."""

    def __init__(self):
        self.a = 0
        self.c = 0
        self.ct = 0
        self._out = bytearray()
        #: Basic-operation counter feeding the Fig. 1 profiling model.
        self.ops = 0
        self.init()

    def init(self) -> None:
        """INITENC: reset registers; a zero sentinel byte absorbs nothing
        (CT=12 spacer bits guarantee no carry before the first real byte)."""
        self.a = 0x8000
        self.c = 0
        self._out = bytearray([0x00])  # sentinel, dropped at flush
        self.ct = 12
        self.ops = 0

    def encode(self, bit: int, ctx: ContextState) -> None:
        """ENCODE one decision *bit* in context *ctx*."""
        qe, nmps, nlps, switch = QE_TABLE[ctx.index]
        self.ops += 1
        if bit == ctx.mps:
            self._code_mps(ctx, qe, nmps)
        else:
            self._code_lps(ctx, qe, nlps, switch)

    def _code_mps(self, ctx: ContextState, qe: int, nmps: int) -> None:
        self.a -= qe
        if self.a & 0x8000 == 0:
            if self.a < qe:
                self.a = qe
            else:
                self.c += qe
            ctx.index = nmps
            self._renorm()
        else:
            self.c += qe

    def _code_lps(self, ctx: ContextState, qe: int, nlps: int, switch: int) -> None:
        self.a -= qe
        if self.a < qe:
            self.c += qe
        else:
            self.a = qe
        if switch:
            ctx.mps = 1 - ctx.mps
        ctx.index = nlps
        self._renorm()

    def _renorm(self) -> None:
        while True:
            self.a = (self.a << 1) & 0xFFFF
            self.c <<= 1
            self.ct -= 1
            self.ops += 1
            if self.ct == 0:
                self._byte_out()
            if self.a & 0x8000:
                break

    def _byte_out(self) -> None:
        out = self._out
        if out[-1] == 0xFF:
            out.append((self.c >> 20) & 0xFF)
            self.c &= 0xFFFFF
            self.ct = 7
            return
        if self.c < 0x8000000:
            out.append((self.c >> 19) & 0xFF)
            self.c &= 0x7FFFF
            self.ct = 8
            return
        out[-1] += 1  # carry into the previous byte
        if out[-1] == 0xFF:
            self.c &= 0x7FFFFFF
            out.append((self.c >> 20) & 0xFF)
            self.c &= 0xFFFFF
            self.ct = 7
        else:
            out.append((self.c >> 19) & 0xFF)
            self.c &= 0x7FFFF
            self.ct = 8

    def flush(self) -> bytes:
        """FLUSH: terminate and return the code bytes."""
        self._set_bits()
        self.c <<= self.ct
        self._byte_out()
        self.c <<= self.ct
        self._byte_out()
        data = bytes(self._out[1:])  # drop the sentinel
        if data.endswith(b"\xff"):
            data = data[:-1]  # the terminal 0xFF need not be transmitted
        return data

    def _set_bits(self) -> None:
        temp = self.c + self.a
        self.c |= 0xFFFF
        if self.c >= temp:
            self.c -= 0x8000


class MqDecoder:
    """MQ decoder, symmetric to :class:`MqEncoder`."""

    def __init__(self, data: bytes):
        self.data = data
        self.bp = 0
        self.c = 0
        self.a = 0
        self.ct = 0
        #: Basic-operation counter feeding the Fig. 1 profiling model.
        self.ops = 0
        self.init()

    def _byte_at(self, position: int) -> int:
        if position < len(self.data):
            return self.data[position]
        return 0xFF  # reading past the end behaves like 0xFF (spec C.2.2)

    def init(self) -> None:
        """INITDEC."""
        self.bp = 0
        self.c = self._byte_at(0) << 16
        self._byte_in()
        self.c <<= 7
        self.ct -= 7
        self.a = 0x8000

    def decode(self, ctx: ContextState) -> int:
        """DECODE one decision in context *ctx*.

        DECODE, MPS-/LPS-EXCHANGE, RENORMD and BYTEIN are flattened into
        one function with local-variable register state: the per-bit cost
        of this call dominates the whole decoder (Fig. 1), so the usual
        flowchart-per-procedure structure is collapsed here.  The
        flowcharts themselves still read off :meth:`_renorm` /
        :meth:`_byte_in`, which remain the reference implementation.
        """
        qe, nmps, nlps, switch = QE_TABLE[ctx.index]
        self.ops += 1
        a = self.a - qe
        c = self.c
        if (c >> 16) & 0xFFFF < qe:
            # LPS exchange path
            if a < qe:
                bit = ctx.mps
                ctx.index = nmps
            else:
                bit = 1 - ctx.mps
                if switch:
                    ctx.mps = 1 - ctx.mps
                ctx.index = nlps
            a = qe
        else:
            c -= qe << 16
            if a & 0x8000:
                self.a = a
                self.c = c
                return ctx.mps
            # MPS exchange path
            if a < qe:
                bit = 1 - ctx.mps
                if switch:
                    ctx.mps = 1 - ctx.mps
                ctx.index = nlps
            else:
                bit = ctx.mps
                ctx.index = nmps
        # RENORMD, with BYTEIN inline
        data = self.data
        length = len(data)
        ct = self.ct
        bp = self.bp
        ops = self.ops
        while True:
            if ct == 0:
                byte = data[bp] if bp < length else 0xFF
                if byte == 0xFF:
                    if (data[bp + 1] if bp + 1 < length else 0xFF) > 0x8F:
                        c += 0xFF00
                        ct = 8
                    else:
                        bp += 1
                        c += (data[bp] if bp < length else 0xFF) << 9
                        ct = 7
                else:
                    bp += 1
                    c += (data[bp] if bp < length else 0xFF) << 8
                    ct = 8
            a = (a << 1) & 0xFFFF
            c = (c << 1) & 0xFFFFFFFF
            ct -= 1
            ops += 1
            if a & 0x8000:
                break
        self.a = a
        self.c = c
        self.ct = ct
        self.bp = bp
        self.ops = ops
        return bit

    def _renorm(self) -> None:
        while True:
            if self.ct == 0:
                self._byte_in()
            self.a = (self.a << 1) & 0xFFFF
            self.c = (self.c << 1) & 0xFFFFFFFF
            self.ct -= 1
            self.ops += 1
            if self.a & 0x8000:
                break

    def _byte_in(self) -> None:
        if self._byte_at(self.bp) == 0xFF:
            if self._byte_at(self.bp + 1) > 0x8F:
                self.c += 0xFF00
                self.ct = 8
            else:
                self.bp += 1
                self.c += self._byte_at(self.bp) << 9
                self.ct = 7
        else:
            self.bp += 1
            self.c += self._byte_at(self.bp) << 8
            self.ct = 8


def make_contexts(count: int) -> list[ContextState]:
    """A fresh bank of *count* contexts, all at state 0 / MPS 0."""
    return [ContextState() for _ in range(count)]


def roundtrip(bits: Sequence[int], context_ids: Sequence[int], num_contexts: int) -> bool:
    """Self-check helper: encode then decode a decision sequence."""
    if len(bits) != len(context_ids):
        raise ValueError("bits and context_ids must have equal length")
    enc_ctx = make_contexts(num_contexts)
    encoder = MqEncoder()
    for bit, cid in zip(bits, context_ids):
        encoder.encode(bit, enc_ctx[cid])
    data = encoder.flush()
    dec_ctx = make_contexts(num_contexts)
    decoder = MqDecoder(data)
    decoded = [decoder.decode(dec_ctx[cid]) for cid in context_ids]
    return decoded == list(bits)
