"""Decoder-level error types, shared by the stage modules.

Lives in its own module so the stage implementations
(:mod:`repro.jpeg2000.stages`) and the public façade
(:mod:`repro.jpeg2000.decoder`) can both raise/catch the same types
without importing each other.
"""

from __future__ import annotations


class DecodingError(RuntimeError):
    """The codestream is structurally valid but cannot be decoded."""
