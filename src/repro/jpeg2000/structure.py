"""Tile / subband / code-block geometry.

Pure bookkeeping shared by encoder and decoder: how a tile component
decomposes into subbands per resolution, and how each subband partitions
into code blocks.  The decoder must derive exactly the same geometry from
header parameters that the encoder derived from the data, so both sides
call the same functions here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BandShape:
    """One subband's place in the decomposition."""

    resolution: int  # 0 = LL only; r >= 1 adds detail bands
    orientation: str  # LL, HL, LH, HH
    height: int
    width: int

    @property
    def empty(self) -> bool:
        return self.height == 0 or self.width == 0


def band_shapes(tile_width: int, tile_height: int, num_levels: int) -> list[BandShape]:
    """All subbands of a tile, in QCD/packet order (coarse to fine).

    Mirrors ``repro.jpeg2000.dwt.forward``: each level splits the current
    LL into a ceil-sized low half and floor-sized high half per dimension.
    Levels stop early for degenerate (1x1) tiles, exactly like the DWT.
    """
    dims = [(tile_height, tile_width)]
    h, w = tile_height, tile_width
    effective_levels = 0
    for _ in range(num_levels):
        if h <= 1 and w <= 1:
            break
        h, w = (h + 1) // 2, (w + 1) // 2
        dims.append((h, w))
        effective_levels += 1
    shapes = [BandShape(0, "LL", dims[-1][0], dims[-1][1])]
    # Resolution r corresponds to decomposition level (effective_levels - r + 1).
    for res in range(1, effective_levels + 1):
        parent_h, parent_w = dims[effective_levels - res]
        low_h, low_w = dims[effective_levels - res + 1]
        shapes.append(BandShape(res, "HL", low_h, parent_w - low_w))
        shapes.append(BandShape(res, "LH", parent_h - low_h, low_w))
        shapes.append(BandShape(res, "HH", parent_h - low_h, parent_w - low_w))
    return shapes


def effective_levels(tile_width: int, tile_height: int, num_levels: int) -> int:
    """Decomposition levels actually applied (degenerate tiles stop early)."""
    h, w = tile_height, tile_width
    count = 0
    for _ in range(num_levels):
        if h <= 1 and w <= 1:
            break
        h, w = (h + 1) // 2, (w + 1) // 2
        count += 1
    return count


@dataclass(frozen=True)
class CodeBlockGeometry:
    """Position and size of one code block inside its subband."""

    index_x: int
    index_y: int
    x0: int
    y0: int
    width: int
    height: int


def codeblock_grid(band_width: int, band_height: int, cb_size: int) -> list[CodeBlockGeometry]:
    """Raster-order code blocks covering a subband (anchored at its origin)."""
    if band_width == 0 or band_height == 0:
        return []
    blocks = []
    blocks_across = -(-band_width // cb_size)
    blocks_down = -(-band_height // cb_size)
    for by in range(blocks_down):
        for bx in range(blocks_across):
            x0 = bx * cb_size
            y0 = by * cb_size
            blocks.append(
                CodeBlockGeometry(
                    index_x=bx,
                    index_y=by,
                    x0=x0,
                    y0=y0,
                    width=min(cb_size, band_width - x0),
                    height=min(cb_size, band_height - y0),
                )
            )
    return blocks


def grid_dimensions(band_width: int, band_height: int, cb_size: int) -> tuple[int, int]:
    """(blocks_across, blocks_down) of a subband's code-block grid."""
    if band_width == 0 or band_height == 0:
        return 0, 0
    return -(-band_width // cb_size), -(-band_height // cb_size)
