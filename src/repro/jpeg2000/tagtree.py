"""Tag trees (ITU-T T.800, B.10.2).

A tag tree codes a 2D array of non-negative integers through a quad-tree of
running minima.  Packet headers use two per precinct/subband: one for
first-inclusion layers and one for the number of missing (all-zero)
bit-planes of each code block.

Encoder and decoder share the node structure.  On the encoder side node
values are the true quad-tree minima (built by :meth:`set_value`); on the
decoder side values start at "unknown" (infinity) and are pinned down by
the received threshold-comparison bits.  Bits flow through any object with
``put_bit(bit)`` / ``get_bit()`` (see ``repro.jpeg2000.bitio``).
"""

from __future__ import annotations

import math
from typing import Optional

#: Sentinel for decoder-side nodes whose value is not yet resolved.
UNKNOWN = 1 << 30


class _Node:
    __slots__ = ("value", "low", "known", "parent")

    def __init__(self, parent: Optional["_Node"]):
        self.value = UNKNOWN
        self.low = 0
        self.known = False
        self.parent = parent


class TagTree:
    """Quad-tree over a ``width x height`` grid of leaf values."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("tag tree dimensions must be positive")
        self.width = width
        self.height = height
        # Number of levels: enough halvings to reduce the grid to 1x1.
        levels = 1
        w, h = width, height
        while w > 1 or h > 1:
            w = math.ceil(w / 2)
            h = math.ceil(h / 2)
            levels += 1
        self.levels = levels
        # _grids[0] is the 1x1 root level; the last entry holds the leaves.
        self._grids: list[list[list[_Node]]] = []
        for level in range(levels):
            shrink = levels - 1 - level
            level_w = math.ceil(width / 2**shrink)
            level_h = math.ceil(height / 2**shrink)
            grid = []
            for y in range(level_h):
                row = []
                for x in range(level_w):
                    parent = self._grids[level - 1][y // 2][x // 2] if level > 0 else None
                    row.append(_Node(parent))
                grid.append(row)
            self._grids.append(grid)

    def reset(self) -> None:
        """Forget all values and coding state (decoder reuse between packets)."""
        for grid in self._grids:
            for row in grid:
                for node in row:
                    node.value = UNKNOWN
                    node.low = 0
                    node.known = False

    def _path(self, x: int, y: int) -> list[_Node]:
        """Nodes from root to leaf (x, y)."""
        node = self._grids[-1][y][x]
        path = [node]
        while node.parent is not None:
            node = node.parent
            path.append(node)
        path.reverse()
        return path

    # -- encoder side -------------------------------------------------------------

    def set_value(self, x: int, y: int, value: int) -> None:
        """Set a leaf value; ancestor minima update incrementally."""
        if value < 0:
            raise ValueError("tag tree values must be non-negative")
        node = self._grids[-1][y][x]
        node.value = value
        while node.parent is not None:
            node = node.parent
            if value < node.value:
                node.value = value

    def encode(self, writer, x: int, y: int, threshold: int) -> None:
        """Emit the bits that tell the decoder whether leaf(x,y) < threshold."""
        low = 0
        for node in self._path(x, y):
            if low > node.low:
                node.low = low
            else:
                low = node.low
            while low < threshold:
                if low >= node.value:
                    if not node.known:
                        writer.put_bit(1)
                        node.known = True
                    break
                writer.put_bit(0)
                low += 1
            node.low = low

    # -- decoder side -------------------------------------------------------------

    def decode(self, reader, x: int, y: int, threshold: int) -> bool:
        """Consume bits; return True iff leaf(x,y) < threshold."""
        low = 0
        leaf = self._grids[-1][y][x]
        for node in self._path(x, y):
            if low > node.low:
                node.low = low
            else:
                low = node.low
            while low < threshold and low < node.value:
                if reader.get_bit():
                    node.value = low
                else:
                    low += 1
            node.low = low
        return leaf.value < threshold

    def value_of(self, x: int, y: int) -> int:
        """The (resolved) value of a leaf."""
        value = self._grids[-1][y][x].value
        if value >= UNKNOWN:
            raise ValueError(f"leaf ({x},{y}) not determined yet")
        return value


class FlatTagTree:
    """Decoder-side tag tree over flat arrays (drop-in for :class:`TagTree`).

    Node state lives in two flat lists indexed level-major; the
    root-to-leaf path is pure index arithmetic (``x >> shift``,
    ``y >> shift``) instead of a linked-node walk, and ``reset()`` is two
    slice assignments instead of a full tree traversal.  Decode-side
    behaviour is bit-for-bit identical to :meth:`TagTree.decode`; the
    encoder half is intentionally absent (the encoder keeps the
    readable node tree).
    """

    __slots__ = ("width", "height", "levels", "_widths", "_offsets",
                 "_value", "_low", "_size", "_leaf_base")

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("tag tree dimensions must be positive")
        self.width = width
        self.height = height
        levels = 1
        w, h = width, height
        while w > 1 or h > 1:
            w = math.ceil(w / 2)
            h = math.ceil(h / 2)
            levels += 1
        self.levels = levels
        widths = []
        offsets = []
        total = 0
        for level in range(levels):
            shrink = levels - 1 - level
            level_w = math.ceil(width / 2**shrink)
            level_h = math.ceil(height / 2**shrink)
            widths.append(level_w)
            offsets.append(total)
            total += level_w * level_h
        self._widths = widths
        self._offsets = offsets
        self._size = total
        self._leaf_base = offsets[-1]
        self._value = [UNKNOWN] * total
        self._low = [0] * total

    def reset(self) -> None:
        """Forget all values and coding state (decoder reuse between packets)."""
        self._value[:] = [UNKNOWN] * self._size
        self._low[:] = [0] * self._size

    def decode(self, reader, x: int, y: int, threshold: int) -> bool:
        """Consume bits; return True iff leaf(x,y) < threshold."""
        values, lows = self._value, self._low
        widths, offsets = self._widths, self._offsets
        levels = self.levels
        get_bit = reader.get_bit
        low = 0
        node = 0
        for level in range(levels):
            shift = levels - 1 - level
            node = offsets[level] + (y >> shift) * widths[level] + (x >> shift)
            node_low = lows[node]
            if node_low > low:
                low = node_low
            value = values[node]
            while low < threshold and low < value:
                if get_bit():
                    values[node] = value = low
                else:
                    low += 1
            lows[node] = low
        return values[node] < threshold

    def value_of(self, x: int, y: int) -> int:
        """The (resolved) value of a leaf."""
        value = self._value[self._leaf_base + y * self.width + x]
        if value >= UNKNOWN:
            raise ValueError(f"leaf ({x},{y}) not determined yet")
        return value
