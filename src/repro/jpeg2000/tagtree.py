"""Tag trees (ITU-T T.800, B.10.2).

A tag tree codes a 2D array of non-negative integers through a quad-tree of
running minima.  Packet headers use two per precinct/subband: one for
first-inclusion layers and one for the number of missing (all-zero)
bit-planes of each code block.

Encoder and decoder share the node structure.  On the encoder side node
values are the true quad-tree minima (built by :meth:`set_value`); on the
decoder side values start at "unknown" (infinity) and are pinned down by
the received threshold-comparison bits.  Bits flow through any object with
``put_bit(bit)`` / ``get_bit()`` (see ``repro.jpeg2000.bitio``).
"""

from __future__ import annotations

import math
from typing import Optional

#: Sentinel for decoder-side nodes whose value is not yet resolved.
UNKNOWN = 1 << 30


class _Node:
    __slots__ = ("value", "low", "known", "parent")

    def __init__(self, parent: Optional["_Node"]):
        self.value = UNKNOWN
        self.low = 0
        self.known = False
        self.parent = parent


class TagTree:
    """Quad-tree over a ``width x height`` grid of leaf values."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("tag tree dimensions must be positive")
        self.width = width
        self.height = height
        # Number of levels: enough halvings to reduce the grid to 1x1.
        levels = 1
        w, h = width, height
        while w > 1 or h > 1:
            w = math.ceil(w / 2)
            h = math.ceil(h / 2)
            levels += 1
        self.levels = levels
        # _grids[0] is the 1x1 root level; the last entry holds the leaves.
        self._grids: list[list[list[_Node]]] = []
        for level in range(levels):
            shrink = levels - 1 - level
            level_w = math.ceil(width / 2**shrink)
            level_h = math.ceil(height / 2**shrink)
            grid = []
            for y in range(level_h):
                row = []
                for x in range(level_w):
                    parent = self._grids[level - 1][y // 2][x // 2] if level > 0 else None
                    row.append(_Node(parent))
                grid.append(row)
            self._grids.append(grid)

    def reset(self) -> None:
        """Forget all values and coding state (decoder reuse between packets)."""
        for grid in self._grids:
            for row in grid:
                for node in row:
                    node.value = UNKNOWN
                    node.low = 0
                    node.known = False

    def _path(self, x: int, y: int) -> list[_Node]:
        """Nodes from root to leaf (x, y)."""
        node = self._grids[-1][y][x]
        path = [node]
        while node.parent is not None:
            node = node.parent
            path.append(node)
        path.reverse()
        return path

    # -- encoder side -------------------------------------------------------------

    def set_value(self, x: int, y: int, value: int) -> None:
        """Set a leaf value; ancestor minima update incrementally."""
        if value < 0:
            raise ValueError("tag tree values must be non-negative")
        node = self._grids[-1][y][x]
        node.value = value
        while node.parent is not None:
            node = node.parent
            if value < node.value:
                node.value = value

    def encode(self, writer, x: int, y: int, threshold: int) -> None:
        """Emit the bits that tell the decoder whether leaf(x,y) < threshold."""
        low = 0
        for node in self._path(x, y):
            if low > node.low:
                node.low = low
            else:
                low = node.low
            while low < threshold:
                if low >= node.value:
                    if not node.known:
                        writer.put_bit(1)
                        node.known = True
                    break
                writer.put_bit(0)
                low += 1
            node.low = low

    # -- decoder side -------------------------------------------------------------

    def decode(self, reader, x: int, y: int, threshold: int) -> bool:
        """Consume bits; return True iff leaf(x,y) < threshold."""
        low = 0
        leaf = self._grids[-1][y][x]
        for node in self._path(x, y):
            if low > node.low:
                node.low = low
            else:
                low = node.low
            while low < threshold and low < node.value:
                if reader.get_bit():
                    node.value = low
                else:
                    low += 1
            node.low = low
        return leaf.value < threshold

    def value_of(self, x: int, y: int) -> int:
        """The (resolved) value of a leaf."""
        value = self._grids[-1][y][x].value
        if value >= UNKNOWN:
            raise ValueError(f"leaf ({x},{y}) not determined yet")
        return value
