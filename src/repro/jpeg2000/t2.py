"""EBCOT Tier-2: packet headers and bodies (ITU-T T.800, B.10).

A packet carries, for one (layer, resolution, component) — with whole-
subband precincts, as this reproduction uses — the contributions of every
code block of that resolution: inclusion information (a tag tree for the
first-inclusion layer, a single bit afterwards), the number of missing
all-zero bit-planes (tag-tree coded at first inclusion), the number of
coding passes in this layer (comma-style code) and the segment length
(LBlock code, persistent per code block), followed by the concatenated MQ
codeword segments.

Quality layers split each code block's pass sequence into consecutive
segments; the per-pass byte marks recorded by Tier-1
(:class:`~repro.jpeg2000.t1.CodeBlockResult.pass_lengths`) define the
truncation points.  All inter-layer coding state (first inclusion, LBlock,
accumulated passes/bytes, the two tag trees) lives on the band/block
objects, which therefore must persist across the packets of one tile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .bitio import BitReader, BitWriter, FastBitReader
from .structure import CodeBlockGeometry, grid_dimensions
from .tagtree import FlatTagTree, TagTree

#: Error-resilience marker codes (main codestream syntax, Annex A).
SOP_MARKER = b"\xff\x91"
EPH_MARKER = b"\xff\x92"


def sop_segment(sequence: int) -> bytes:
    """A start-of-packet marker segment with its 16-bit sequence number."""
    return SOP_MARKER + (4).to_bytes(2, "big") + (sequence & 0xFFFF).to_bytes(2, "big")


def consume_sop(data: bytes, offset: int, expected_sequence: int) -> int:
    """Check and skip an SOP segment; raises on desynchronisation."""
    if data[offset:offset + 2] != SOP_MARKER:
        raise PacketError(
            f"expected SOP marker at offset {offset}: packet stream desynchronised"
        )
    sequence = int.from_bytes(data[offset + 4:offset + 6], "big")
    if sequence != expected_sequence & 0xFFFF:
        raise PacketError(
            f"SOP sequence mismatch at offset {offset}: "
            f"expected {expected_sequence & 0xFFFF}, found {sequence}"
        )
    return offset + 6


@dataclass
class CodeBlockContribution:
    """One code block's data and inter-layer coding state."""

    geometry: CodeBlockGeometry
    data: bytes = b""
    num_passes: int = 0
    num_bitplanes: int = 0
    missing_msbs: int = 0
    #: Decoder side: ``(start, end)`` spans of this block's codeword
    #: segments *within the tile-part buffer*, one per contributing
    #: packet.  The parallel decode path ships these spans (plus the tile
    #: buffer, once, via shared memory) instead of materialised per-block
    #: bytes — the segment layout that makes the arena zero-copy.
    segments: list = field(default_factory=list)
    #: Encoder side: per-pass cumulative byte marks from Tier-1.
    pass_lengths: Optional[list] = None
    #: Encoder side: cumulative pass count included up to each layer.
    layer_allocation: Optional[list] = None
    # inter-layer state (both sides)
    included_before: bool = False
    passes_done: int = 0
    bytes_done: int = 0
    lblock: int = 3

    @property
    def included(self) -> bool:
        """Single-layer view: does the block contribute at all?"""
        return self.num_passes > 0

    # -- encoder-side helpers ------------------------------------------------------

    def allocation(self, num_layers: int) -> list:
        """Cumulative passes per layer (default: spread evenly)."""
        if self.layer_allocation is not None:
            return self.layer_allocation
        if num_layers == 1:
            return [self.num_passes]
        return [
            math.ceil(self.num_passes * (layer + 1) / num_layers)
            for layer in range(num_layers)
        ]

    def first_layer(self, num_layers: int) -> int:
        """The first layer with a non-empty contribution (or num_layers)."""
        previous = 0
        for layer, cumulative in enumerate(self.allocation(num_layers)):
            if cumulative > previous:
                return layer
            previous = cumulative
        return num_layers

    def bytes_for(self, passes: int) -> int:
        if self.pass_lengths is None:
            return len(self.data) if passes >= self.num_passes else 0
        if passes <= 0:
            return 0
        return self.pass_lengths[min(passes, self.num_passes) - 1]

    # -- decoder-side helpers ------------------------------------------------------

    def codeword(self, source: bytes) -> bytes:
        """The block's MQ codeword, joined from its spans into *source*.

        Equivalent to the eagerly-materialised ``data`` of a
        ``decode_packet(..., materialise=True)`` run, but computed on
        demand so the decode path can defer (or entirely avoid) the
        per-block byte copies.
        """
        segments = self.segments
        if not segments:
            return self.data
        if len(segments) == 1:
            start, end = segments[0]
            return source[start:end]
        return b"".join(source[start:end] for start, end in segments)


@dataclass
class PacketBand:
    """A subband's code blocks as one packet constituent.

    Holds the two per-band tag trees, which persist across the layers of a
    tile (the inter-layer state of the packet protocol).
    """

    orientation: str
    band_width: int
    band_height: int
    cb_size: int
    blocks: list = field(default_factory=list)
    _inclusion_tree: Optional[TagTree] = None
    _zero_tree: Optional[TagTree] = None
    #: Decode-side: use the array-backed :class:`FlatTagTree` (bit-for-bit
    #: identical to :class:`TagTree`; no encoder half).
    fast: bool = False

    @property
    def grid(self) -> tuple[int, int]:
        return grid_dimensions(self.band_width, self.band_height, self.cb_size)

    def trees(self) -> tuple[TagTree, TagTree]:
        if self._inclusion_tree is None:
            across, down = self.grid
            tree_cls = FlatTagTree if self.fast else TagTree
            self._inclusion_tree = tree_cls(across, down)
            self._zero_tree = tree_cls(across, down)
        return self._inclusion_tree, self._zero_tree


class PacketError(ValueError):
    """Inconsistent packet header or body."""


def _encode_num_passes(writer: BitWriter, count: int) -> None:
    """T.800 Table B.4 coding of the number of passes (1..164)."""
    if count < 1 or count > 164:
        raise PacketError(f"pass count {count} outside 1..164")
    if count == 1:
        writer.put_bit(0)
    elif count == 2:
        writer.put_bits(0b10, 2)
    elif count <= 5:
        writer.put_bits(0b11, 2)
        writer.put_bits(count - 3, 2)
    elif count <= 36:
        writer.put_bits(0b1111, 4)
        writer.put_bits(count - 6, 5)
    else:
        writer.put_bits(0b111111111, 9)
        writer.put_bits(count - 37, 7)


def _decode_num_passes(reader: BitReader) -> int:
    if not reader.get_bit():
        return 1
    if not reader.get_bit():
        return 2
    two = reader.get_bits(2)
    if two != 0b11:
        return 3 + two
    five = reader.get_bits(5)
    if five != 0b11111:
        return 6 + five
    return 37 + reader.get_bits(7)


def _length_bits(num_passes: int, lblock: int) -> int:
    return lblock + int(math.floor(math.log2(num_passes)))


def encode_packet(
    bands: list,
    max_bitplanes: dict,
    layer: int = 0,
    num_layers: int = 1,
    use_eph: bool = False,
) -> bytes:
    """Build the packet of one (layer, resolution, component).

    Must be called with ``layer`` ascending for each band set, since the
    protocol state (tag trees, LBlock, inclusion) is carried on the bands
    and blocks.
    """
    writer = BitWriter()
    contributions: list[tuple[CodeBlockContribution, int, int]] = []
    for band in bands:
        for block in band.blocks:
            allocation = block.allocation(num_layers)
            new_total = allocation[layer]
            if new_total > block.passes_done:
                contributions.append((block, new_total - block.passes_done, new_total))
    writer.put_bit(1 if contributions else 0)
    body = bytearray()
    if contributions:
        contributing = {id(block) for block, _, _ in contributions}
        for band in bands:
            across, down = band.grid
            if across == 0:
                continue
            inclusion, zero_planes = band.trees()
            for block in band.blocks:
                geo = block.geometry
                if not block.included_before:
                    inclusion.set_value(geo.index_x, geo.index_y,
                                        block.first_layer(num_layers))
                    missing = max_bitplanes[band.orientation] - block.num_bitplanes
                    if block.num_passes > 0 and missing < 0:
                        raise PacketError(
                            f"block exceeds signalled bit-plane bound in "
                            f"{band.orientation}: {block.num_bitplanes} > "
                            f"{max_bitplanes[band.orientation]}"
                        )
                    zero_planes.set_value(geo.index_x, geo.index_y, max(missing, 0))
            for block in band.blocks:
                geo = block.geometry
                contributes = id(block) in contributing
                if block.included_before:
                    writer.put_bit(1 if contributes else 0)
                else:
                    inclusion.encode(writer, geo.index_x, geo.index_y, layer + 1)
                if not contributes:
                    continue
                new_passes = next(
                    count for blk, count, _ in contributions if blk is block
                )
                total_after = next(
                    total for blk, _, total in contributions if blk is block
                )
                if not block.included_before:
                    block.missing_msbs = (
                        max_bitplanes[band.orientation] - block.num_bitplanes
                    )
                    zero_planes.encode(
                        writer, geo.index_x, geo.index_y, block.missing_msbs + 1
                    )
                    block.included_before = True
                _encode_num_passes(writer, new_passes)
                segment_end = block.bytes_for(total_after)
                length = segment_end - block.bytes_done
                needed = max(1, length.bit_length())
                while _length_bits(new_passes, block.lblock) < needed:
                    writer.put_bit(1)
                    block.lblock += 1
                writer.put_bit(0)
                writer.put_bits(length, _length_bits(new_passes, block.lblock))
                body += block.data[block.bytes_done:segment_end]
                block.bytes_done = segment_end
                block.passes_done = total_after
    header = writer.flush()
    if use_eph:
        header += EPH_MARKER
    return header + bytes(body)


def decode_packet(
    data: bytes,
    offset: int,
    bands: list,
    max_bitplanes: dict,
    layer: int = 0,
    use_eph: bool = False,
    materialise: bool = True,
    fast: bool = False,
    ff_index=None,
) -> int:
    """Parse the packet at *offset*; accumulates into the bands' blocks.

    Returns the offset just past the packet body.  Must be called with
    ``layer`` ascending over persistent band objects, mirroring
    :func:`encode_packet`.

    Each contributing block's segment span ``(start, end)`` into *data*
    is appended to ``block.segments``; with ``materialise=True`` (the
    default) the bytes are additionally concatenated onto ``block.data``.
    The decoder passes ``materialise=False`` and works from the spans,
    so per-block codeword bytes are never copied on the parent side.

    ``fast=True`` parses through :class:`~repro.jpeg2000.bitio.FastBitReader`
    (pass *ff_index* — :func:`~repro.jpeg2000.bitio.ff_positions` over
    *data* — to share the stuffing-boundary scan across the packets of a
    tile); pair it with ``PacketBand(fast=True)`` so the tag trees are
    array-backed too.  Both parses are bit-for-bit identical.
    """
    if fast:
        reader = FastBitReader(data, offset, ff_index)
    else:
        reader = BitReader(data, offset)
    if not reader.get_bit():
        position = reader.align()
        return _skip_eph(data, position, use_eph)
    lengths: list[tuple[CodeBlockContribution, int]] = []
    for band in bands:
        across, down = band.grid
        if across == 0:
            continue
        inclusion, zero_planes = band.trees()
        for block in band.blocks:
            geo = block.geometry
            if block.included_before:
                contributes = bool(reader.get_bit())
            else:
                contributes = inclusion.decode(reader, geo.index_x, geo.index_y, layer + 1)
            if not contributes:
                continue
            if not block.included_before:
                threshold = 1
                while not zero_planes.decode(reader, geo.index_x, geo.index_y, threshold):
                    threshold += 1
                block.missing_msbs = zero_planes.value_of(geo.index_x, geo.index_y)
                block.num_bitplanes = (
                    max_bitplanes[band.orientation] - block.missing_msbs
                )
                if block.num_bitplanes < 0:
                    raise PacketError("negative bit-plane count decoded")
                block.included_before = True
            new_passes = _decode_num_passes(reader)
            block.num_passes += new_passes
            block.passes_done += new_passes
            while reader.get_bit():
                block.lblock += 1
            length = reader.get_bits(_length_bits(new_passes, block.lblock))
            lengths.append((block, length))
    position = _skip_eph(data, reader.align(), use_eph)
    for block, length in lengths:
        end = position + length
        if end > len(data):
            raise PacketError("packet body exceeds tile data")
        block.segments.append((position, end))
        if materialise:
            block.data = block.data + data[position:end]
        position = end
    return position


def _skip_eph(data: bytes, position: int, use_eph: bool) -> int:
    if not use_eph:
        return position
    if data[position:position + 2] != EPH_MARKER:
        raise PacketError(
            f"expected EPH marker at offset {position}: packet header corrupt"
        )
    return position + 2
