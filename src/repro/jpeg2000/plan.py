"""The decode plan IR: plan → validate → execute.

The paper's method is *seamless refinement*: one explicitly staged
design, refined across abstraction levels without rewrites.  This module
gives the software decoder the same discipline.  A
:class:`DecodePlan` is a small frozen intermediate representation of one
decode run — the four pipeline stages

    ``parse → entropy → reconstruct → assemble``

each bound to an implementation id and an executor (inline, or a worker
pool with start method, chunking, transport, and overlap).  The planner
(:func:`compile_plan`) compiles a
:class:`~repro.jpeg2000.options.DecodeOptions` value plus the host
environment (CPU count, shared-memory availability) into a plan; the
static validator (:func:`validate_plan` / :func:`check_plan`) rejects
impossible combinations *before* any worker spawns, with machine-readable
rule codes in the style of :mod:`repro.design.validate`.

Validation rules
----------------

``plan.stage-missing``              a pipeline stage is not bound
``plan.stage-order``                stages out of order or duplicated
``stage.unknown-impl``              impl id not registered for the stage
``executor.unknown-kind``           executor kind not inline/pool
``executor.pool-requires-workers``  pool executor with fewer than 2 workers
``executor.pool-requires-chunking`` pool executor with chunk_size < 1
``executor.transport-required``     pool executor without a transport
``executor.unknown-transport``      transport not arena/pickle
``executor.unknown-start-method``   start method not fork/spawn/forkserver
``executor.inline-carries-pool-config``
                                    inline executor with workers/transport/
                                    overlap/start-method set (non-canonical)
``executor.stage-not-parallel``     pool executor on a stage other than
                                    entropy (only the entropy stage fans out)
``executor.overlap-requires-arena`` overlap on a non-arena transport (the
                                    streaming schedule needs spans resolved
                                    in a shared output arena)
``executor.arena-unavailable``      arena transport on a host without
                                    ``multiprocessing.shared_memory``
``kernel.arena-requires-batched``   the per-block ``fast`` kernel bound to
                                    the arena transport (arena workers decode
                                    whole chunks through the batched kernel;
                                    the planner normalises ``fast`` →
                                    ``batched`` there)

Runtime degradations (arena → pickle → inline, broken-pool resume) are
expressed as *plan rewrites* (:func:`degrade_to_pickle`,
:func:`degrade_to_inline`, :func:`without_overlap`) applied by the
driver and recorded in the per-stage fate map — testable in isolation
instead of control flow buried in a fan-out function.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from typing import Optional

from .options import (
    DEFAULT_OPTIONS,
    KERNEL_BATCHED,
    KERNEL_FAST,
    KERNEL_REFERENCE,
    TIER2_FAST,
    TIER2_REFERENCE,
    _START_METHODS,
    DecodeOptions,
    shared_memory,
)

#: The pipeline stages, in execution order.
STAGE_PARSE = "parse"
STAGE_ENTROPY = "entropy"
STAGE_RECONSTRUCT = "reconstruct"
STAGE_ASSEMBLE = "assemble"
STAGE_ORDER = (STAGE_PARSE, STAGE_ENTROPY, STAGE_RECONSTRUCT, STAGE_ASSEMBLE)

#: Executor kinds.
EXECUTOR_INLINE = "inline"
EXECUTOR_POOL = "pool"

#: Pool transports.
TRANSPORT_ARENA = "arena"
TRANSPORT_PICKLE = "pickle"

#: Reconstruction / assembly implementation ids (single registered impl
#: each today; the registry exists so refinements slot in as new ids).
RECONSTRUCT_VECTORISED = "vectorised"
ASSEMBLE_MOSAIC = "mosaic"

#: Registered implementation ids per stage.
STAGE_IMPLS = {
    STAGE_PARSE: (TIER2_FAST, TIER2_REFERENCE),
    STAGE_ENTROPY: (KERNEL_FAST, KERNEL_BATCHED, KERNEL_REFERENCE),
    STAGE_RECONSTRUCT: (RECONSTRUCT_VECTORISED,),
    STAGE_ASSEMBLE: (ASSEMBLE_MOSAIC,),
}


@dataclass(frozen=True)
class ExecutorSpec:
    """How one stage's work is executed.

    ``kind="inline"`` runs on the calling process (the canonical form
    carries no pool configuration).  ``kind="pool"`` fans out to a
    process pool: ``workers`` processes created with ``start_method``,
    work shipped in chunks of at most ``chunk_size`` blocks over
    ``transport`` (``"arena"`` = zero-copy shared memory, ``"pickle"`` =
    executor pickle channel), with ``overlap`` streaming chunks during
    Tier-2 parsing (arena transport only).
    """

    kind: str = EXECUTOR_INLINE
    workers: int = 0
    chunk_size: int = 0
    start_method: Optional[str] = None
    transport: Optional[str] = None
    overlap: bool = False

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "start_method": self.start_method,
            "transport": self.transport,
            "overlap": self.overlap,
        }

    def describe(self) -> str:
        if self.kind == EXECUTOR_INLINE:
            return "inline"
        parts = [
            f"pool workers={self.workers}",
            f"chunk={self.chunk_size}",
            f"start={self.start_method or 'default'}",
            f"transport={self.transport}",
            f"overlap={'on' if self.overlap else 'off'}",
        ]
        return " ".join(parts)


#: The canonical inline executor.
INLINE = ExecutorSpec()


@dataclass(frozen=True)
class StageBinding:
    """One stage bound to an implementation id and an executor."""

    stage: str
    impl: str
    executor: ExecutorSpec = INLINE

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "impl": self.impl,
            "executor": self.executor.as_dict(),
        }


@dataclass(frozen=True)
class DecodePlan:
    """An explicit, validatable decode pipeline: the unit the driver
    executes, the benchmark labels, and the ledger records."""

    stages: tuple = ()

    def stage(self, name: str) -> StageBinding:
        for binding in self.stages:
            if binding.stage == name:
                return binding
        raise KeyError(f"plan binds no stage {name!r}")

    def with_stage(self, binding: StageBinding) -> "DecodePlan":
        """A new plan with the same-named stage replaced by *binding*."""
        return DecodePlan(tuple(
            binding if existing.stage == binding.stage else existing
            for existing in self.stages
        ))

    def as_dict(self) -> dict:
        """Canonical plain-data form (stable key order, JSON-safe)."""
        return {"stages": [binding.as_dict() for binding in self.stages]}

    def canonical_json(self) -> str:
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """The plan hash recorded in ledgers and benchmark rows."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Deterministic human-readable rendering (the CLI transcript)."""
        lines = [f"DecodePlan {self.digest()[:12]}"]
        width = max((len(b.stage) for b in self.stages), default=0)
        impl_width = max((len(b.impl) for b in self.stages), default=0)
        for binding in self.stages:
            lines.append(
                f"  {binding.stage:<{width}}  "
                f"impl={binding.impl:<{impl_width}}  "
                f"{binding.executor.describe()}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanEnvironment:
    """The host facts the planner and validator consult."""

    cpu_count: int = 1
    shared_memory_available: bool = False

    @classmethod
    def detect(cls) -> "PlanEnvironment":
        return cls(
            cpu_count=os.cpu_count() or 1,
            shared_memory_available=shared_memory is not None,
        )


# --------------------------------------------------------------------------
# validation (rule/path-coded issues, in the design/validate.py style)
# --------------------------------------------------------------------------


class PlanIssue(str):
    """One validation finding; a str with ``rule`` and ``path`` codes."""

    __slots__ = ("rule", "path")

    def __new__(cls, message: str, rule: str = "generic", path: str = "plan"):
        issue = super().__new__(cls, message)
        issue.rule = rule
        issue.path = path
        return issue

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "message": str(self)}


class PlanValidationError(ValueError):
    """An invalid decode plan, carrying every issue found."""

    def __init__(self, issues):
        self.issues = list(issues)
        bullets = "\n".join(f"  - [{i.rule}] {i.path}: {i}" for i in self.issues)
        super().__init__(
            f"invalid decode plan ({len(self.issues)} issue(s)):\n{bullets}"
        )


class _Collector:
    def __init__(self):
        self.issues: list = []

    def __call__(self, message: str, rule: str, path: str) -> None:
        self.issues.append(PlanIssue(message, rule=rule, path=path))


def validate_plan(plan: DecodePlan,
                  env: Optional[PlanEnvironment] = None) -> list:
    """Every issue that makes *plan* unexecutable on *env* (static)."""
    env = env if env is not None else PlanEnvironment.detect()
    issue = _Collector()
    bound = [binding.stage for binding in plan.stages]
    for name in STAGE_ORDER:
        if name not in bound:
            issue(
                f"stage {name!r} is not bound",
                rule="plan.stage-missing", path="plan.stages",
            )
    if bound != [name for name in STAGE_ORDER if name in bound] or (
        len(bound) != len(set(bound))
    ):
        issue(
            f"stages must appear once each, in order {STAGE_ORDER}; "
            f"got {tuple(bound)}",
            rule="plan.stage-order", path="plan.stages",
        )
    for binding in plan.stages:
        _validate_binding(binding, env, issue)
    return issue.issues


def _validate_binding(binding: StageBinding, env: PlanEnvironment,
                      issue: _Collector) -> None:
    stage = binding.stage
    impls = STAGE_IMPLS.get(stage)
    if impls is not None and binding.impl not in impls:
        issue(
            f"unknown impl {binding.impl!r} for stage {stage!r}; "
            f"registered: {impls}",
            rule="stage.unknown-impl", path=f"{stage}.impl",
        )
    ex = binding.executor
    path = f"{stage}.executor"
    if ex.kind not in (EXECUTOR_INLINE, EXECUTOR_POOL):
        issue(
            f"unknown executor kind {ex.kind!r}",
            rule="executor.unknown-kind", path=path,
        )
        return
    if ex.start_method not in _START_METHODS:
        issue(
            f"unknown start method {ex.start_method!r}; "
            f"expected one of {_START_METHODS}",
            rule="executor.unknown-start-method", path=path,
        )
    if ex.kind == EXECUTOR_INLINE:
        if (ex.workers or ex.chunk_size or ex.transport is not None
                or ex.overlap or ex.start_method is not None):
            issue(
                "inline executors carry no pool configuration "
                "(workers/chunking/transport/overlap/start method)",
                rule="executor.inline-carries-pool-config", path=path,
            )
        return
    # pool executor
    if stage != STAGE_ENTROPY:
        issue(
            f"stage {stage!r} cannot fan out; only the entropy stage "
            "(independent EBCOT code blocks) is parallel",
            rule="executor.stage-not-parallel", path=path,
        )
    if ex.workers < 2:
        issue(
            f"pool executor needs at least 2 workers, got {ex.workers}",
            rule="executor.pool-requires-workers", path=path,
        )
    if ex.chunk_size < 1:
        issue(
            f"pool executor needs chunk_size >= 1, got {ex.chunk_size}",
            rule="executor.pool-requires-chunking", path=path,
        )
    if ex.transport is None:
        issue(
            "pool executor needs a transport (arena or pickle)",
            rule="executor.transport-required", path=path,
        )
        return
    if ex.transport not in (TRANSPORT_ARENA, TRANSPORT_PICKLE):
        issue(
            f"unknown transport {ex.transport!r}",
            rule="executor.unknown-transport", path=path,
        )
        return
    if ex.overlap and ex.transport != TRANSPORT_ARENA:
        issue(
            "the overlapped (streaming) schedule requires the arena "
            "transport: tiles drain from a shared output arena while "
            "later tiles are still parsing",
            rule="executor.overlap-requires-arena", path=path,
        )
    if ex.transport == TRANSPORT_ARENA:
        if not env.shared_memory_available:
            issue(
                "arena transport requires multiprocessing.shared_memory, "
                "which this host does not provide",
                rule="executor.arena-unavailable", path=path,
            )
        if stage == STAGE_ENTROPY and binding.impl == KERNEL_FAST:
            issue(
                "the per-block 'fast' kernel cannot ride the arena "
                "transport; arena workers decode whole chunks through "
                "the batched kernel (use impl 'batched' or 'reference')",
                rule="kernel.arena-requires-batched", path=f"{stage}.impl",
            )


def check_plan(plan: DecodePlan,
               env: Optional[PlanEnvironment] = None) -> DecodePlan:
    """*plan* unchanged if valid; raises :class:`PlanValidationError`."""
    issues = validate_plan(plan, env)
    if issues:
        raise PlanValidationError(issues)
    return plan


# --------------------------------------------------------------------------
# the planner: DecodeOptions + environment -> validated DecodePlan
# --------------------------------------------------------------------------


def compile_plan(options: DecodeOptions = DEFAULT_OPTIONS,
                 env: Optional[PlanEnvironment] = None) -> DecodePlan:
    """Compile *options* into a valid plan for *env*.

    The compilation is total: every constructible
    :class:`DecodeOptions` value yields a plan that passes
    :func:`validate_plan` on the same environment (a property the test
    suite pins).  Host clamping happens here — a parallel request on a
    1-CPU host compiles to an inline entropy executor — and the *report*
    of that degradation stays with the decode entry points
    (``ParallelDegradedWarning``), not the planner, which is pure.
    """
    env = env if env is not None else PlanEnvironment.detect()
    requested = (
        env.cpu_count if options.workers is None else options.workers
    )
    workers = requested if options.oversubscribe else min(requested, env.cpu_count)
    parse = StageBinding(STAGE_PARSE, options.tier2)
    if workers > 1:
        use_arena = options.shared_memory and env.shared_memory_available
        transport = TRANSPORT_ARENA if use_arena else TRANSPORT_PICKLE
        impl = options.kernel
        if transport == TRANSPORT_ARENA and impl == KERNEL_FAST:
            # Arena workers always decode whole chunks through the
            # batched kernel; record what actually runs.
            impl = KERNEL_BATCHED
        executor = ExecutorSpec(
            kind=EXECUTOR_POOL,
            workers=workers,
            chunk_size=options.chunk_size,
            start_method=options.start_method,
            transport=transport,
            overlap=options.overlap and transport == TRANSPORT_ARENA,
        )
        entropy = StageBinding(STAGE_ENTROPY, impl, executor)
    else:
        entropy = StageBinding(STAGE_ENTROPY, options.kernel)
    return DecodePlan((
        parse,
        entropy,
        StageBinding(STAGE_RECONSTRUCT, RECONSTRUCT_VECTORISED),
        StageBinding(STAGE_ASSEMBLE, ASSEMBLE_MOSAIC),
    ))


def options_for_plan(plan: DecodePlan) -> DecodeOptions:
    """The :class:`DecodeOptions` value equivalent to *plan*.

    Best-effort inverse of :func:`compile_plan` — pinned by a round-trip
    property in the test suite: for any valid plan,
    ``compile_plan(options_for_plan(p), env)`` reproduces ``p`` when the
    environment supports its transport.  Lets callers hand the decoder a
    plan directly while schedule reporting keeps working.
    """
    parse = plan.stage(STAGE_PARSE)
    entropy = plan.stage(STAGE_ENTROPY)
    ex = entropy.executor
    if ex.kind == EXECUTOR_POOL:
        return DecodeOptions(
            workers=ex.workers,
            chunk_size=ex.chunk_size,
            kernel=entropy.impl,
            shared_memory=ex.transport == TRANSPORT_ARENA,
            start_method=ex.start_method,
            oversubscribe=True,
            tier2=parse.impl,
            overlap=ex.overlap,
        )
    return DecodeOptions(kernel=entropy.impl, tier2=parse.impl)


# --------------------------------------------------------------------------
# plan rewrites: the degradation chain as explicit, testable functions
# --------------------------------------------------------------------------


def degrade_to_pickle(plan: DecodePlan) -> DecodePlan:
    """arena → pickle: same pool, kernel unchanged, overlap dropped
    (the streaming schedule only exists on the arena transport)."""
    entropy = plan.stage(STAGE_ENTROPY)
    return plan.with_stage(replace(
        entropy,
        executor=replace(
            entropy.executor, transport=TRANSPORT_PICKLE, overlap=False
        ),
    ))


def degrade_to_inline(plan: DecodePlan) -> DecodePlan:
    """pool → inline: the terminal fallback when no pool exists."""
    entropy = plan.stage(STAGE_ENTROPY)
    return plan.with_stage(replace(entropy, executor=INLINE))


def without_overlap(plan: DecodePlan) -> DecodePlan:
    """The same pool schedule with streaming off (barrier fan-out)."""
    entropy = plan.stage(STAGE_ENTROPY)
    if not entropy.executor.overlap:
        return plan
    return plan.with_stage(replace(
        entropy, executor=replace(entropy.executor, overlap=False)
    ))
