"""The JPEG 2000 decoder — the case study's application.

Mirrors Fig. 1 of the paper: entropy (arithmetic) decoding of the
codestream, inverse quantisation (IQ), inverse DWT, inverse colour
transform (ICT/RCT) and DC level shift.  Stage boundaries are explicit —
``decode_tile_stages`` exposes each stage as a separate call — because the
OSSS case-study models distribute exactly these stages between software
tasks and hardware Shared Objects.

Decoding is *plan-driven*: the caller's
:class:`~repro.jpeg2000.options.DecodeOptions` (or an explicit
:class:`~repro.jpeg2000.plan.DecodePlan`) is compiled and statically
validated up front, and the plan is executed by the
:mod:`~repro.jpeg2000.driver` over the stage modules
(:mod:`~repro.jpeg2000.stages`) — the same plan → validate → execute
discipline the paper's seamless refinement applies to the hardware
design, and the reason no decode path here hides behind an ``if``
ladder.

Every stage reports basic-operation counts (see ``pipeline.StageOps``)
used by the profiling model that reconstructs Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import telemetry
from . import driver as plan_driver
from .codestream import (
    Codestream,
    CodingParameters,
    parse_codestream,
)
from .errors import DecodingError
from .image import Image, TileGrid
from .options import (
    DEFAULT_OPTIONS,
    DecodeOptions,
    _warn_degraded,
)
from .pipeline import (
    STAGE_ARITH,
    STAGE_DC,
    STAGE_ICT,
    STAGE_IDWT,
    STAGE_IQ,
    StageOps,
)
from .plan import (
    STAGE_ASSEMBLE,
    STAGE_ENTROPY,
    DecodePlan,
    check_plan,
    compile_plan,
    options_for_plan,
)
from .stages import assemble as assemble_stage
from .stages import entropy as entropy_stage
from .stages import parse as parse_stage
from .stages import reconstruct as reconstruct_stage
from .stages.reconstruct import DecodedBand

#: Legacy import sites (transcode, tests) get these from here.
qcd_delta = parse_stage.qcd_delta
_band_bounds = parse_stage.band_bounds


@dataclass
class TileStages:
    """Stage-by-stage decoder for one tile (the OSSS models drive this).

    The methods are thin seams over the stage modules
    (:mod:`~repro.jpeg2000.stages`): each one binds this tile's coding
    parameters, buffer, and op accumulator to the corresponding stage
    function, so the OSSS models (and the tests) can still drive the
    pipeline one stage at a time while the driver schedules the same
    functions from a compiled plan.
    """

    params: CodingParameters
    tile_width: int
    tile_height: int
    data: bytes
    ops: StageOps = field(default_factory=StageOps)
    #: Decode only the first N quality layers (None = all): the rate
    #: scalability that layered codestreams exist for.
    max_layers: Optional[int] = None
    #: Reconstruct only up to resolution R (None = full size): the image
    #: comes out smaller by 2^(levels-R) per axis.
    max_resolution: Optional[int] = None
    #: Scheduling of the entropy-decode kernel (workers, chunking, kernel).
    options: DecodeOptions = field(default_factory=lambda: DEFAULT_OPTIONS)
    #: Which tile of the grid this is (telemetry span attribution only).
    tile_index: Optional[int] = None

    # -- stage 1: arithmetic decoding (Tier-2 + Tier-1) ---------------------------

    def entropy_specs(self) -> tuple:
        """Tier-2 only: parse every packet, describe every code block.

        Returns ``(layout, specs)``; see
        :func:`repro.jpeg2000.stages.parse.entropy_specs`.
        """
        return parse_stage.entropy_specs(
            self.params, self.tile_width, self.tile_height, self.data,
            tier2=self.options.tier2,
            max_layers=self.max_layers,
            max_resolution=self.max_resolution,
        )

    def block_sizes(self) -> list:
        """Every code block's sample count in scatter order (geometry
        only); see :func:`repro.jpeg2000.stages.parse.block_sizes`."""
        return parse_stage.block_sizes(
            self.params, self.tile_width, self.tile_height
        )

    def scatter_entropy(
        self, layout: list, flat, offsets, ops: list, first: int = 0
    ) -> list:
        """Scatter an entropy-stage result into band planes; see
        :func:`repro.jpeg2000.stages.reconstruct.scatter_entropy`."""
        return reconstruct_stage.scatter_entropy(
            self.params, self.tile_width, self.tile_height,
            layout, flat, offsets, ops, self.ops, first,
        )

    def entropy_decode(self) -> list:
        """Per component, the list of :class:`DecodedBand` planes."""
        if self.options.degraded:
            _warn_degraded(
                self.options.requested_workers,
                self.options.effective_workers,
                "clamped to os.cpu_count()",
            )
        layout, specs = self.entropy_specs()
        binding = compile_plan(self.options).stage(STAGE_ENTROPY)
        flat, offsets, ops = entropy_stage.run_specs(
            [self.data], [(0, spec) for spec in specs], binding,
            schedule=self.options.schedule_info(),
        )
        return self.scatter_entropy(layout, flat, offsets, ops)

    # -- stage 2: inverse quantisation ------------------------------------------------

    def dequantise(self, decoded_bands: list) -> list:
        """Per component, the dequantised :class:`~repro.jpeg2000.dwt.Subbands`."""
        return reconstruct_stage.dequantise(
            self.params, decoded_bands, self.ops, self.max_resolution
        )

    # -- stage 3: inverse DWT ----------------------------------------------------------

    def inverse_dwt(self, subbands_per_component: list) -> list:
        return reconstruct_stage.inverse_dwt(subbands_per_component, self.ops)

    # -- stage 4: inverse colour transform ----------------------------------------------

    def inverse_mct(self, planes: list) -> list:
        return reconstruct_stage.inverse_mct(self.params, planes, self.ops)

    # -- stage 5: DC level shift ----------------------------------------------------------

    def dc_shift(self, planes: list) -> list:
        return reconstruct_stage.dc_shift(self.params, planes, self.ops)

    # -- fused stages 4+5 ---------------------------------------------------------------

    def finish_mct_dc(self, planes: list) -> list:
        """Fused inverse colour transform + DC shift, one pass per plane;
        see :func:`repro.jpeg2000.stages.reconstruct.finish_mct_dc`."""
        return reconstruct_stage.finish_mct_dc(self.params, planes, self.ops)

    # -- all stages ------------------------------------------------------------------------

    def _staged(self, stage, fn, *args):
        track = (
            "decode" if self.tile_index is None else f"tile{self.tile_index}"
        )
        with telemetry.software_span("sw", stage, track, tile=self.tile_index):
            return fn(*args)

    def finish(self, bands: list) -> list:
        """Stages 2–5 (IQ, IDWT, ICT, DC) on entropy-decoded *bands*."""
        subbands = self._staged(STAGE_IQ, self.dequantise, bands)
        planes = self._staged(STAGE_IDWT, self.inverse_dwt, subbands)
        planes = self._staged(STAGE_ICT, self.inverse_mct, planes)
        return self._staged(STAGE_DC, self.dc_shift, planes)

    def run(self) -> list:
        """Run the full tile pipeline; returns component sample planes.

        Each stage runs under a telemetry span (clocked on the recorder:
        host time standalone, simulated time inside a simulation) so a
        trace of a software decode shows the Fig. 1 stage structure per
        tile without any bespoke counters.
        """
        bands = self._staged(STAGE_ARITH, self.entropy_decode)
        return self.finish(bands)


class Jpeg2000Decoder:
    """Decode a codestream into an :class:`~repro.jpeg2000.image.Image`.

    ``max_layers`` truncates the quality progression: only the first N
    layers of every packet sequence are entropy-decoded, trading quality
    for rate exactly as a network transcoder would by dropping packets.

    Scheduling is decided once, up front: ``options`` is compiled into a
    :class:`~repro.jpeg2000.plan.DecodePlan` (or an explicit ``plan`` is
    taken as-is) and statically validated before any worker spawns; the
    compiled plan's digest is what benchmarks and ledgers record.
    """

    def __init__(
        self,
        data: bytes,
        max_layers: Optional[int] = None,
        max_resolution: Optional[int] = None,
        options: Optional[DecodeOptions] = None,
        plan: Optional[DecodePlan] = None,
    ):
        self.codestream: Codestream = parse_codestream(data)
        self.max_layers = max_layers
        self.max_resolution = max_resolution
        if plan is not None:
            check_plan(plan)
            self.plan = plan
            self.options = (
                options if options is not None else options_for_plan(plan)
            )
        else:
            self.options = options if options is not None else DEFAULT_OPTIONS
            self.plan = check_plan(compile_plan(self.options))
        if max_resolution is not None and max_resolution < 0:
            raise ValueError("max_resolution must be non-negative")
        self.ops = StageOps()
        self.fates: Optional[plan_driver.StageFates] = None

    @property
    def parameters(self) -> CodingParameters:
        return self.codestream.parameters

    def tile_stages(self, tile_index: int) -> TileStages:
        """Stage-wise decoder for one tile (used by the OSSS models)."""
        params = self.parameters
        grid = TileGrid(params.width, params.height, params.tile_width, params.tile_height)
        x0, y0, x1, y1 = grid.tile_bounds(tile_index)
        part = next(
            (p for p in self.codestream.tile_parts if p.tile_index == tile_index), None
        )
        if part is None:
            raise DecodingError(f"codestream has no tile-part for tile {tile_index}")
        return TileStages(
            params=params,
            tile_width=x1 - x0,
            tile_height=y1 - y0,
            data=part.data,
            max_layers=self.max_layers,
            max_resolution=self.max_resolution,
            options=self.options,
            tile_index=tile_index,
        )

    def _tile_planes(self, grid: TileGrid) -> dict:
        """Execute the plan over every tile; tile index → sample planes."""
        stages_list = [
            self.tile_stages(tile_index) for tile_index in range(grid.num_tiles)
        ]
        if self.options.degraded:
            _warn_degraded(
                self.options.requested_workers,
                self.options.effective_workers,
                "clamped to os.cpu_count()",
            )
        self.fates = plan_driver.StageFates(self.plan)
        planes = plan_driver.run_tiles(
            self.plan, stages_list,
            schedule=self.options.schedule_info(), fates=self.fates,
        )
        for stages in stages_list:
            self.ops.merge(stages.ops)
        return planes

    def decode(self) -> Image:
        params = self.parameters
        grid = TileGrid(params.width, params.height, params.tile_width, params.tile_height)
        if telemetry.log_enabled() or telemetry.flight_recorder() is not None:
            telemetry.log_event(
                "decode.start",
                width=params.width, height=params.height,
                components=params.num_components, tiles=grid.num_tiles,
                schedule=self.options.schedule_info(),
                plan=self.plan.digest(),
                max_layers=self.max_layers,
                max_resolution=self.max_resolution,
            )
            try:
                image = self._decode_image(grid)
            except BaseException as error:
                telemetry.log_event(
                    "decode.failed", error=type(error).__name__,
                )
                raise
            telemetry.log_event(
                "decode.done",
                width=image.components[0].shape[1],
                height=image.components[0].shape[0],
            )
            return image
        return self._decode_image(grid)

    def _decode_image(self, grid: TileGrid) -> Image:
        params = self.parameters
        if self.max_resolution is None:
            tile_planes = self._tile_planes(grid)
            self.fates.begin(STAGE_ASSEMBLE)
            image = assemble_stage.assemble_full(grid, params, tile_planes)
        else:
            tile_planes = self._tile_planes(grid)
            self.fates.begin(STAGE_ASSEMBLE)
            image = assemble_stage.assemble_reduced(grid, params, tile_planes)
        self.fates.done(STAGE_ASSEMBLE)
        return image


def decode_codestream(
    data: bytes,
    options: Optional[DecodeOptions] = None,
    plan: Optional[DecodePlan] = None,
) -> Image:
    """Convenience one-shot decode (plan-compile + execute)."""
    return Jpeg2000Decoder(data, options=options, plan=plan).decode()
