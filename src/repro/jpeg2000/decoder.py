"""The JPEG 2000 decoder — the case study's application.

Mirrors Fig. 1 of the paper: entropy (arithmetic) decoding of the
codestream, inverse quantisation (IQ), inverse DWT, inverse colour
transform (ICT/RCT) and DC level shift.  Stage boundaries are explicit —
``decode_tile_stages`` exposes each stage as a separate call — because the
OSSS case-study models distribute exactly these stages between software
tasks and hardware Shared Objects.

Every stage reports basic-operation counts (see ``pipeline.StageOps``)
used by the profiling model that reconstructs Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import telemetry
from . import dwt, mct, quant
from .codestream import (
    Codestream,
    CodingParameters,
    PROGRESSION_RLCP,
    parse_codestream,
)
from .encoder import _progression, decomposition_level, subband_order
from .image import Image, TileGrid
from .pipeline import (
    STAGE_ARITH,
    STAGE_DC,
    STAGE_ICT,
    STAGE_IDWT,
    STAGE_IQ,
    StageOps,
)
from .bitio import ff_positions
from .parallel import (
    DEFAULT_OPTIONS,
    TIER2_REFERENCE,
    BlockSpec,
    DecodeOptions,
    decode_blocks_spec,
    open_spec_stream,
)
from .structure import band_shapes, codeblock_grid
from .t2 import CodeBlockContribution, PacketBand, consume_sop, decode_packet


class DecodingError(RuntimeError):
    """The codestream is structurally valid but cannot be decoded."""


@dataclass
class DecodedBand:
    """One subband's coefficient plane after entropy decoding."""

    resolution: int
    orientation: str
    indices: np.ndarray  # signed quantisation indices


@dataclass
class TileStages:
    """Stage-by-stage decoder for one tile (the OSSS models drive this)."""

    params: CodingParameters
    tile_width: int
    tile_height: int
    data: bytes
    ops: StageOps = field(default_factory=StageOps)
    #: Decode only the first N quality layers (None = all): the rate
    #: scalability that layered codestreams exist for.
    max_layers: Optional[int] = None
    #: Reconstruct only up to resolution R (None = full size): the image
    #: comes out smaller by 2^(levels-R) per axis.
    max_resolution: Optional[int] = None
    #: Scheduling of the entropy-decode kernel (workers, chunking, kernel).
    options: DecodeOptions = field(default_factory=lambda: DEFAULT_OPTIONS)
    #: Which tile of the grid this is (telemetry span attribution only).
    tile_index: Optional[int] = None

    # -- stage 1: arithmetic decoding (Tier-2 + Tier-1) ---------------------------

    def entropy_specs(self) -> tuple:
        """Tier-2 only: parse every packet, describe every code block.

        Returns ``(layout, specs)``: *layout* is the per-component band
        dict (the Tier-2 protocol state, needed again by
        :meth:`scatter_entropy`) and *specs* is the tile's
        :class:`~repro.jpeg2000.parallel.BlockSpec` list in scatter
        order.  The packet bodies are left in place — the specs carry
        ``(start, end)`` segment spans into ``self.data``
        (``decode_packet(..., materialise=False)``), so the tile buffer
        can be placed into a shared-memory arena without per-block
        copies.  Tier-1 itself runs in
        :func:`~repro.jpeg2000.parallel.decode_blocks_spec`.
        """
        params = self.params
        shapes = band_shapes(self.tile_width, self.tile_height, params.num_levels)
        bounds = _band_bounds(params)
        # Tier-2 parser selection: the fast path shares one NumPy scan
        # for the 0xFF stuffing boundaries across every packet of the
        # tile and decodes tag trees over flat arrays.  Bit-for-bit
        # identical to the reference parse.
        fast_t2 = self.options.tier2 != TIER2_REFERENCE
        ff_index = ff_positions(self.data) if fast_t2 else None
        per_component_bands: list[dict] = []
        for _ in range(params.num_components):
            bands: dict[tuple[int, str], PacketBand] = {}
            for shape in shapes:
                bands[(shape.resolution, shape.orientation)] = PacketBand(
                    orientation=shape.orientation,
                    band_width=shape.width,
                    band_height=shape.height,
                    cb_size=params.codeblock_size,
                    blocks=[
                        CodeBlockContribution(geometry=geo)
                        for geo in codeblock_grid(
                            shape.width, shape.height, params.codeblock_size
                        )
                    ],
                    fast=fast_t2,
                )
            per_component_bands.append(bands)
        offset = 0
        packet_sequence = 0
        max_layers = params.num_layers
        if self.max_layers is not None:
            if params.progression == PROGRESSION_RLCP:
                raise DecodingError(
                    "layer truncation needs the LRCP progression; this "
                    "codestream is RLCP (use max_resolution instead)"
                )
            max_layers = min(max_layers, self.max_layers)
        for layer, resolution in _progression(params):
            if layer >= max_layers:
                break
            if (
                self.max_resolution is not None
                and params.progression == PROGRESSION_RLCP
                and resolution > self.max_resolution
            ):
                break  # RLCP: everything beyond is a discardable suffix
            for comp_index in range(params.num_components):
                bands = per_component_bands[comp_index]
                packet_bands = [
                    band
                    for (res, _), band in bands.items()
                    if res == resolution
                ]
                res_bounds = {
                    orientation: bound
                    for (res, orientation), bound in bounds.items()
                    if res == resolution
                }
                if params.use_sop:
                    offset = consume_sop(self.data, offset, packet_sequence)
                offset = decode_packet(
                    self.data, offset, packet_bands, res_bounds, layer,
                    use_eph=params.use_eph, materialise=False,
                    fast=fast_t2, ff_index=ff_index,
                )
                packet_sequence += 1
        # Every code block is an independent decode task; describe them
        # all (across components and subbands) as segment-span specs in
        # the fixed scatter order.
        specs: list[BlockSpec] = []
        for comp_index in range(params.num_components):
            bands = per_component_bands[comp_index]
            for shape in shapes:
                for block in bands[(shape.resolution, shape.orientation)].blocks:
                    geo = block.geometry
                    specs.append(BlockSpec(
                        geo.width,
                        geo.height,
                        shape.orientation,
                        block.num_bitplanes,
                        block.num_passes,
                        tuple(block.segments),
                    ))
        return per_component_bands, specs

    def block_sizes(self) -> list:
        """Every code block's sample count in scatter order.

        Pure geometry — no packet is parsed — so the streaming decode
        path can size and lay out its shared output arena before Tier-2
        has read a single bit.  Matches the spec order of
        :meth:`entropy_specs` exactly.
        """
        params = self.params
        shapes = band_shapes(self.tile_width, self.tile_height, params.num_levels)
        sizes = []
        for _ in range(params.num_components):
            for shape in shapes:
                for geo in codeblock_grid(
                    shape.width, shape.height, params.codeblock_size
                ):
                    sizes.append(geo.width * geo.height)
        return sizes

    def scatter_entropy(
        self, layout: list, flat, offsets, ops: list, first: int = 0
    ) -> list:
        """Scatter a ``decode_blocks_spec`` result into band planes.

        ``first`` is this tile's first block index within *flat* —
        non-zero when the decoder batched several tiles' blocks into one
        fan-out.  Returns the per-component :class:`DecodedBand` lists
        and accumulates the per-block op counts into ``self.ops``.
        """
        params = self.params
        shapes = band_shapes(self.tile_width, self.tile_height, params.num_levels)
        components: list[list[DecodedBand]] = []
        index = first
        for comp_index in range(params.num_components):
            bands = layout[comp_index]
            decoded: list[DecodedBand] = []
            for shape in shapes:
                band = bands[(shape.resolution, shape.orientation)]
                plane = np.zeros((shape.height, shape.width), dtype=np.int64)
                for block in band.blocks:
                    geo = block.geometry
                    start = int(offsets[index])
                    self.ops.add(STAGE_ARITH, ops[index])
                    plane[
                        geo.y0 : geo.y0 + geo.height, geo.x0 : geo.x0 + geo.width
                    ] = flat[start : start + geo.width * geo.height].reshape(
                        geo.height, geo.width
                    )
                    index += 1
                decoded.append(DecodedBand(shape.resolution, shape.orientation, plane))
            components.append(decoded)
        return components

    def entropy_decode(self) -> list:
        """Per component, the list of :class:`DecodedBand` planes."""
        layout, specs = self.entropy_specs()
        flat, offsets, ops = decode_blocks_spec(
            [self.data], [(0, spec) for spec in specs], self.options
        )
        return self.scatter_entropy(layout, flat, offsets, ops)

    # -- stage 2: inverse quantisation ------------------------------------------------

    def dequantise(self, decoded_bands: list) -> list:
        """Per component, the dequantised :class:`~repro.jpeg2000.dwt.Subbands`."""
        params = self.params
        result = []
        for component in decoded_bands:
            ll: Optional[np.ndarray] = None
            level_quads: dict[int, dict[str, np.ndarray]] = {}
            for band in component:
                if (
                    self.max_resolution is not None
                    and band.resolution > self.max_resolution
                ):
                    continue  # resolution-truncated reconstruction
                self.ops.add(STAGE_IQ, band.indices.size)
                if params.lossless:
                    values = band.indices
                else:
                    # The step size comes from the parsed QCD segment — the
                    # codestream is self-contained, no side channel.
                    values = quant.dequantise(
                        band.indices,
                        qcd_delta(params, band.resolution, band.orientation),
                    )
                if band.resolution == 0:
                    ll = values
                else:
                    level_quads.setdefault(band.resolution, {})[band.orientation] = values
            levels = [
                level_quads[res]
                for res in sorted(level_quads.keys(), reverse=True)
            ]
            result.append(dwt.Subbands(ll, levels, params.transform))
        return result

    # -- stage 3: inverse DWT ----------------------------------------------------------

    def inverse_dwt(self, subbands_per_component: list) -> list:
        planes = []
        for subbands in subbands_per_component:
            counts = dwt.DwtOpCounts()
            planes.append(dwt.inverse(subbands, counts))
            self.ops.add(STAGE_IDWT, counts.total)
        return planes

    # -- stage 4: inverse colour transform ----------------------------------------------

    def inverse_mct(self, planes: list) -> list:
        params = self.params
        if not params.use_mct:
            return planes
        if params.lossless:
            r, g, b = mct.rct_inverse(
                np.rint(planes[0]).astype(np.int64),
                np.rint(planes[1]).astype(np.int64),
                np.rint(planes[2]).astype(np.int64),
            )
        else:
            r, g, b = mct.ict_inverse(planes[0], planes[1], planes[2])
        self.ops.add(STAGE_ICT, 3 * planes[0].size)
        return [r, g, b] + list(planes[3:])

    # -- stage 5: DC level shift ----------------------------------------------------------

    def dc_shift(self, planes: list) -> list:
        params = self.params
        out = []
        for plane in planes:
            out.append(mct.dc_shift_inverse(plane, params.bit_depth))
            self.ops.add(STAGE_DC, plane.size)
        return out

    # -- fused stages 4+5 ---------------------------------------------------------------

    def finish_mct_dc(self, planes: list) -> list:
        """Fused inverse colour transform + DC shift, one pass per plane.

        Value- and op-count-identical to :meth:`inverse_mct` followed by
        :meth:`dc_shift` (see the fused kernels in
        :mod:`repro.jpeg2000.mct`); the batched reconstruction path uses
        this so each tile plane is traversed once instead of three
        times.
        """
        params = self.params
        if params.use_mct:
            if params.lossless:
                fused = mct.rct_dc_inverse(
                    planes[0], planes[1], planes[2], params.bit_depth
                )
            else:
                fused = mct.ict_dc_inverse(
                    planes[0], planes[1], planes[2], params.bit_depth
                )
            self.ops.add(STAGE_ICT, 3 * planes[0].size)
            out = list(fused)
            rest = planes[3:]
        else:
            out = []
            rest = planes
        for plane in rest:
            out.append(mct.dc_shift_inverse(plane, params.bit_depth))
        for plane in planes:
            self.ops.add(STAGE_DC, plane.size)
        return out

    # -- all stages ------------------------------------------------------------------------

    def _staged(self, stage, fn, *args):
        track = (
            "decode" if self.tile_index is None else f"tile{self.tile_index}"
        )
        with telemetry.software_span("sw", stage, track, tile=self.tile_index):
            return fn(*args)

    def finish(self, bands: list) -> list:
        """Stages 2–5 (IQ, IDWT, ICT, DC) on entropy-decoded *bands*."""
        subbands = self._staged(STAGE_IQ, self.dequantise, bands)
        planes = self._staged(STAGE_IDWT, self.inverse_dwt, subbands)
        planes = self._staged(STAGE_ICT, self.inverse_mct, planes)
        return self._staged(STAGE_DC, self.dc_shift, planes)

    def run(self) -> list:
        """Run the full tile pipeline; returns component sample planes.

        Each stage runs under a telemetry span (clocked on the recorder:
        host time standalone, simulated time inside a simulation) so a
        trace of a software decode shows the Fig. 1 stage structure per
        tile without any bespoke counters.
        """
        bands = self._staged(STAGE_ARITH, self.entropy_decode)
        return self.finish(bands)


def qcd_delta(params: CodingParameters, resolution: int, orientation: str) -> float:
    """Quantisation step of one subband, from the parsed QCD fields."""
    order = subband_order(params.num_levels)
    try:
        index = order.index((resolution, orientation))
    except ValueError:
        raise DecodingError(
            f"no QCD entry for resolution {resolution} band {orientation}"
        ) from None
    if index >= len(params.step_sizes):
        raise DecodingError("QCD step sizes missing or inconsistent")
    range_bits = params.bit_depth + quant.ORIENTATION_GAIN_LOG2[orientation]
    return params.step_sizes[index].delta(range_bits)


def _band_bounds(params: CodingParameters) -> dict:
    """M_b bounds per (resolution, orientation), from the QCD fields."""
    order = subband_order(params.num_levels)
    bounds = {}
    if params.lossless:
        if len(params.exponents) != len(order):
            raise DecodingError("QCD exponents missing or inconsistent")
        for key, exponent in zip(order, params.exponents):
            bounds[key] = params.guard_bits + exponent - 1
    else:
        if len(params.step_sizes) != len(order):
            raise DecodingError("QCD step sizes missing or inconsistent")
        for key, step in zip(order, params.step_sizes):
            bounds[key] = params.guard_bits + step.exponent - 1
    return bounds


class Jpeg2000Decoder:
    """Decode a codestream into an :class:`~repro.jpeg2000.image.Image`.

    ``max_layers`` truncates the quality progression: only the first N
    layers of every packet sequence are entropy-decoded, trading quality
    for rate exactly as a network transcoder would by dropping packets.
    """

    def __init__(
        self,
        data: bytes,
        max_layers: Optional[int] = None,
        max_resolution: Optional[int] = None,
        options: Optional[DecodeOptions] = None,
    ):
        self.codestream: Codestream = parse_codestream(data)
        self.max_layers = max_layers
        self.max_resolution = max_resolution
        self.options = options if options is not None else DEFAULT_OPTIONS
        if max_resolution is not None and max_resolution < 0:
            raise ValueError("max_resolution must be non-negative")
        self.ops = StageOps()

    @property
    def parameters(self) -> CodingParameters:
        return self.codestream.parameters

    def tile_stages(self, tile_index: int) -> TileStages:
        """Stage-wise decoder for one tile (used by the OSSS models)."""
        params = self.parameters
        grid = TileGrid(params.width, params.height, params.tile_width, params.tile_height)
        x0, y0, x1, y1 = grid.tile_bounds(tile_index)
        part = next(
            (p for p in self.codestream.tile_parts if p.tile_index == tile_index), None
        )
        if part is None:
            raise DecodingError(f"codestream has no tile-part for tile {tile_index}")
        return TileStages(
            params=params,
            tile_width=x1 - x0,
            tile_height=y1 - y0,
            data=part.data,
            max_layers=self.max_layers,
            max_resolution=self.max_resolution,
            options=self.options,
            tile_index=tile_index,
        )

    def _finish_tiles(self, stages_list: list, bands_by_tile: list) -> dict:
        """Stages 2–5 for the given tiles, vectorised across tiles.

        Dequantisation runs per tile (already one NumPy pass per
        subband); the inverse DWT batches every same-shape tile
        component per resolution level
        (:func:`~repro.jpeg2000.dwt.inverse_batch`); the colour
        transform and DC shift run as fused whole-plane kernels
        (:meth:`TileStages.finish_mct_dc`).  Values and op counts are
        exactly those of the per-tile :meth:`TileStages.finish` path.
        """
        with telemetry.software_span("stage", "dequant_mct", "decode"):
            subbands_per_tile = [
                stages._staged(STAGE_IQ, stages.dequantise, bands)
                for stages, bands in zip(stages_list, bands_by_tile)
            ]
        with telemetry.software_span("stage", "idwt", "decode"):
            flat_subbands = []
            counts_list = []
            slots = []
            for slot, subbands in enumerate(subbands_per_tile):
                for component in subbands:
                    flat_subbands.append(component)
                    counts_list.append(dwt.DwtOpCounts())
                    slots.append(slot)
            planes_flat = dwt.inverse_batch(flat_subbands, counts_list)
            planes_per_tile: list[list] = [[] for _ in stages_list]
            for slot, plane, counts in zip(slots, planes_flat, counts_list):
                planes_per_tile[slot].append(plane)
                stages_list[slot].ops.add(STAGE_IDWT, counts.total)
        with telemetry.software_span("stage", "dequant_mct", "decode"):
            return {
                stages.tile_index: stages.finish_mct_dc(planes)
                for stages, planes in zip(stages_list, planes_per_tile)
            }

    def _tile_planes_sequential(self, stages_list: list) -> dict:
        """Parse and decode every tile in-process, batched across tiles.

        All tiles' Tier-2 parses run first (fast parser, shared 0xFF
        index per tile buffer); the Tier-1 stage then decodes every
        code block of the image in one
        :func:`~repro.jpeg2000.parallel.decode_blocks_spec` call (one
        kernel batch for ``kernel="batched"``); reconstruction is the
        cross-tile vectorised :meth:`_finish_tiles`.
        """
        layouts: list = []
        firsts: list = []
        sources: list = []
        spec_pairs: list = []
        with telemetry.software_span("stage", "t2_parse", "decode"):
            for stages in stages_list:
                layout, specs = stages.entropy_specs()
                layouts.append(layout)
                firsts.append(len(spec_pairs))
                source_index = len(sources)
                sources.append(stages.data)
                spec_pairs.extend((source_index, spec) for spec in specs)
        with telemetry.software_span("sw", STAGE_ARITH, "decode"):
            with telemetry.software_span("stage", "t1_decode", "decode"):
                flat, offsets, ops = decode_blocks_spec(
                    sources, spec_pairs, self.options
                )
        with telemetry.software_span("stage", "gather", "decode"):
            bands_by_tile = [
                stages.scatter_entropy(
                    layouts[index], flat, offsets, ops, firsts[index]
                )
                for index, stages in enumerate(stages_list)
            ]
        return self._finish_tiles(stages_list, bands_by_tile)

    def _tile_planes(self, grid: TileGrid) -> dict:
        """Run every tile's pipeline; returns tile index → sample planes.

        The sequential path parses every tile, decodes all code blocks
        in one in-process batch, and reconstructs with the cross-tile
        vectorised kernels.  The parallel path streams each tile's
        Tier-1 chunks to the worker pool as soon as that tile's packet
        headers are parsed, and gathers + reconstructs completed tiles
        on the main process while later tiles' entropy chunks are still
        in flight (:meth:`_tile_planes_overlapped`); with ``overlap``
        disabled it falls back to the barrier schedule (full parse, one
        fan-out, then reconstruction).
        """
        stages_list = [
            self.tile_stages(tile_index) for tile_index in range(grid.num_tiles)
        ]
        if self.options.parallel and grid.num_tiles > 1:
            planes = self._tile_planes_parallel(stages_list)
        else:
            planes = self._tile_planes_sequential(stages_list)
        for stages in stages_list:
            self.ops.merge(stages.ops)
        return planes

    def _tile_planes_parallel(self, stages_list: list) -> dict:
        """Fan the entropy stage out to workers, overlapped when possible."""
        if self.options.overlap:
            planes = self._tile_planes_overlapped(stages_list)
            if planes is not None:
                return planes
        return self._tile_planes_barrier(stages_list)

    def _tile_planes_barrier(self, stages_list: list) -> dict:
        """The non-overlapped parallel schedule: parse all tiles, run one
        size-aware fan-out over every code block of the image, then
        reconstruct.  Kept as the fallback when the streaming path is
        unavailable (no shared memory, no pool, pathological bit
        depths) and for ``DecodeOptions(overlap=False)``."""
        sources: list = []
        spec_pairs: list = []
        layouts: list = []
        firsts: list = []
        with telemetry.software_span("sw", STAGE_ARITH, "decode"):
            with telemetry.software_span("stage", "t2_parse", "decode"):
                for stages in stages_list:
                    layout, specs = stages.entropy_specs()
                    firsts.append(len(spec_pairs))
                    source_index = len(sources)
                    sources.append(stages.data)
                    spec_pairs.extend((source_index, spec) for spec in specs)
                    layouts.append(layout)
            with telemetry.software_span("stage", "t1_decode", "decode"):
                flat, offsets, ops = decode_blocks_spec(
                    sources, spec_pairs, self.options
                )
        planes: dict[int, list] = {}
        for tile_index, stages in enumerate(stages_list):
            with telemetry.software_span("stage", "gather", "decode"):
                bands = stages.scatter_entropy(
                    layouts[tile_index], flat, offsets, ops, firsts[tile_index]
                )
            planes.update(self._finish_tiles([stages], [bands]))
        return planes

    def _tile_planes_overlapped(self, stages_list: list) -> Optional[dict]:
        """Stream Tier-1 chunks to the pool as each tile's spans parse.

        The output arena is laid out from pure geometry
        (:meth:`TileStages.block_sizes`) before any parsing, so every
        tile's chunks ship the moment its packet headers are read;
        tiles then drain in submission order, and each finished tile's
        gather + reconstruction runs on the main process while the
        remaining tiles' entropy chunks are still decoding in the
        workers.  Returns ``None`` when the streaming transport is
        unusable (caller falls back to the barrier schedule).
        """
        sizes: list[int] = []
        firsts: list[int] = []
        for stages in stages_list:
            tile_sizes = stages.block_sizes()
            firsts.append(len(sizes))
            sizes.extend(tile_sizes)
        stream = open_spec_stream(
            [stages.data for stages in stages_list], sizes, self.options
        )
        if stream is None:
            return None
        planes: dict[int, list] = {}
        try:
            with telemetry.software_span("stage", "t2_parse", "decode"):
                layouts = []
                for source_index, stages in enumerate(stages_list):
                    layout, specs = stages.entropy_specs()
                    layouts.append(layout)
                    if not stream.submit_tile(source_index, specs, firsts[source_index]):
                        return None  # pathological stream: barrier fallback
            for source_index, stages in enumerate(stages_list):
                with telemetry.software_span("stage", "t1_decode", "decode"):
                    flat, offsets, ops = stream.drain_tile(source_index)
                with telemetry.software_span("stage", "gather", "decode"):
                    bands = stages.scatter_entropy(
                        layouts[source_index], flat, offsets, ops
                    )
                planes.update(self._finish_tiles([stages], [bands]))
        finally:
            stream.close()
        return planes

    def decode(self) -> Image:
        params = self.parameters
        grid = TileGrid(params.width, params.height, params.tile_width, params.tile_height)
        if telemetry.log_enabled() or telemetry.flight_recorder() is not None:
            telemetry.log_event(
                "decode.start",
                width=params.width, height=params.height,
                components=params.num_components, tiles=grid.num_tiles,
                schedule=self.options.schedule_info(),
                max_layers=self.max_layers,
                max_resolution=self.max_resolution,
            )
            try:
                image = self._decode_image(grid)
            except BaseException as error:
                telemetry.log_event(
                    "decode.failed", error=type(error).__name__,
                )
                raise
            telemetry.log_event(
                "decode.done",
                width=image.components[0].shape[1],
                height=image.components[0].shape[0],
            )
            return image
        return self._decode_image(grid)

    def _decode_image(self, grid: TileGrid) -> Image:
        params = self.parameters
        if self.max_resolution is None:
            tile_planes = self._tile_planes(grid)
            components = [
                np.zeros((params.height, params.width), dtype=np.int64)
                for _ in range(params.num_components)
            ]
            for tile_index in range(grid.num_tiles):
                for component, plane in zip(components, tile_planes[tile_index]):
                    grid.insert(component, tile_index, plane)
            return Image(components=components, bit_depth=params.bit_depth)
        return self._decode_reduced(grid)

    def _decode_reduced(self, grid: TileGrid) -> Image:
        """Assemble the resolution-truncated mosaic (tiles shrink per axis)."""
        params = self.parameters
        tile_planes = self._tile_planes(grid)
        # Cumulative offsets from the reduced per-tile sizes.
        widths = [
            tile_planes[tx][0].shape[1] for tx in range(grid.tiles_across)
        ]
        heights = [
            tile_planes[ty * grid.tiles_across][0].shape[0]
            for ty in range(grid.tiles_down)
        ]
        total_w, total_h = sum(widths), sum(heights)
        components = [
            np.zeros((total_h, total_w), dtype=np.int64)
            for _ in range(params.num_components)
        ]
        y_offset = 0
        for ty in range(grid.tiles_down):
            x_offset = 0
            for tx in range(grid.tiles_across):
                planes = tile_planes[ty * grid.tiles_across + tx]
                height, width = planes[0].shape
                for component, plane in zip(components, planes):
                    component[y_offset:y_offset + height, x_offset:x_offset + width] = plane
                x_offset += width
            y_offset += heights[ty]
        return Image(components=components, bit_depth=params.bit_depth)


def decode_codestream(data: bytes, options: Optional[DecodeOptions] = None) -> Image:
    """Convenience one-shot decode."""
    return Jpeg2000Decoder(data, options=options).decode()
