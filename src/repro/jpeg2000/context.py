"""EBCOT context modelling (ITU-T T.800, section D.3).

Tier-1 drives the MQ coder with 19 contexts:

* 0..8   zero coding (significance), selected from the 8-neighbourhood
  significance pattern with subband-specific tables;
* 9..13  sign coding, with an XOR bit folded into the decision;
* 14..16 magnitude refinement;
* 17     run-length (cleanup column-of-four shortcut);
* 18     uniform (cleanup run position, also used for segmentation marks).
"""

from __future__ import annotations

from .mq import ContextState

NUM_CONTEXTS = 19

#: Context indices.
CTX_ZC_BASE = 0  # 0..8
CTX_SC_BASE = 9  # 9..13
CTX_MR_BASE = 14  # 14..16
CTX_RUN = 17
CTX_UNI = 18

#: Subband orientations.
LL, HL, LH, HH = "LL", "HL", "LH", "HH"


def initial_contexts() -> list[ContextState]:
    """Fresh context bank with the standard initial states."""
    contexts = [ContextState() for _ in range(NUM_CONTEXTS)]
    contexts[CTX_ZC_BASE].reset(index=4)  # all-zero-neighbourhood ZC context
    contexts[CTX_RUN].reset(index=3)
    contexts[CTX_UNI].reset(index=46)
    return contexts


def _zc_lh(h: int, v: int, d: int) -> int:
    """Zero-coding table for LL and LH subbands (T.800 Table D.1)."""
    if h == 2:
        return 8
    if h == 1:
        if v >= 1:
            return 7
        if d >= 1:
            return 6
        return 5
    if v == 2:
        return 4
    if v == 1:
        return 3
    if d >= 2:
        return 2
    if d == 1:
        return 1
    return 0


def _zc_hh(h: int, v: int, d: int) -> int:
    """Zero-coding table for HH subbands."""
    hv = h + v
    if d >= 3:
        return 8
    if d == 2:
        return 7 if hv >= 1 else 6
    if d == 1:
        if hv >= 2:
            return 5
        return 4 if hv == 1 else 3
    if hv >= 2:
        return 2
    return 1 if hv == 1 else 0


def zc_context(orientation: str, h: int, v: int, d: int) -> int:
    """Zero-coding context (0..8) from neighbour significance counts."""
    if orientation in (LL, LH):
        return CTX_ZC_BASE + _zc_lh(h, v, d)
    if orientation == HL:
        return CTX_ZC_BASE + _zc_lh(v, h, d)  # HL swaps the roles of H and V
    if orientation == HH:
        return CTX_ZC_BASE + _zc_hh(h, v, d)
    raise ValueError(f"unknown subband orientation {orientation!r}")


#: Sign-coding table (T.800 Table D.3): (H, V) -> (context, xor_bit),
#: where H/V are the net sign contributions clipped to [-1, 1].
_SC_TABLE = {
    (1, 1): (13, 0),
    (1, 0): (12, 0),
    (1, -1): (11, 0),
    (0, 1): (10, 0),
    (0, 0): (9, 0),
    (0, -1): (10, 1),
    (-1, 1): (11, 1),
    (-1, 0): (12, 1),
    (-1, -1): (13, 1),
}


def sc_context(h_contribution: int, v_contribution: int) -> tuple[int, int]:
    """Sign-coding context and XOR bit from neighbour sign contributions."""
    return _SC_TABLE[(h_contribution, v_contribution)]


def mr_context(first_refinement: bool, any_significant_neighbour: bool) -> int:
    """Magnitude-refinement context (T.800 Table D.4)."""
    if not first_refinement:
        return CTX_MR_BASE + 2
    return CTX_MR_BASE + (1 if any_significant_neighbour else 0)


# -- precomputed lookup tables for the fast Tier-1 kernel -------------------------
#
# The fast decoder keeps one packed neighbour-significance counter per
# sample: ``h | v << 2 | d << 4`` with h, v in 0..2 and d in 0..4.  A
# single table lookup on the packed value then replaces the per-sample
# calls to :func:`zc_context`.

#: Packed-counter field shifts/limits.
PACK_V_SHIFT = 2
PACK_D_SHIFT = 4
PACKED_SIZE = 2 | (2 << PACK_V_SHIFT) | (4 << PACK_D_SHIFT)  # largest packed value


def pack_neighbours(h: int, v: int, d: int) -> int:
    """Pack (h, v, d) significant-neighbour counts into one table index."""
    return h | (v << PACK_V_SHIFT) | (d << PACK_D_SHIFT)


def _build_zc_lut(orientation: str) -> tuple[int, ...]:
    lut = [0] * (PACKED_SIZE + 1)
    for h in range(3):
        for v in range(3):
            for d in range(5):
                lut[pack_neighbours(h, v, d)] = zc_context(orientation, h, v, d)
    return tuple(lut)


#: orientation -> packed neighbour counts -> zero-coding context.
ZC_LUT: dict[str, tuple[int, ...]] = {
    orientation: _build_zc_lut(orientation) for orientation in (LL, HL, LH, HH)
}

#: (h + 1) * 3 + (v + 1) -> (sign context, xor bit), h/v in [-1, 1].
SC_LUT: tuple[tuple[int, int], ...] = tuple(
    _SC_TABLE[(h, v)] for h in (-1, 0, 1) for v in (-1, 0, 1)
)


def sc_lut_index(h_contribution: int, v_contribution: int) -> int:
    """Index into :data:`SC_LUT` for clipped contributions in [-1, 1]."""
    return (h_contribution + 1) * 3 + (v_contribution + 1)
