"""Decoder stage instrumentation.

The case study profiles the decoder per pipeline stage (Fig. 1: arithmetic
decoding, IQ, IDWT, ICT, DC shift).  Every stage of our decoder reports
basic-operation counts into a :class:`StageOps` record; the case-study
profiler maps those to processor cycles.  Stage keys follow the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry as _telemetry

#: Stage identifiers, in pipeline order (Fig. 1).
STAGE_ARITH = "arith"
STAGE_IQ = "iq"
STAGE_IDWT = "idwt"
STAGE_ICT = "ict"
STAGE_DC = "dc"

ALL_STAGES = (STAGE_ARITH, STAGE_IQ, STAGE_IDWT, STAGE_ICT, STAGE_DC)


@dataclass
class StageOps:
    """Basic-operation counts per decoder stage.

    The unit is one primitive operation of the stage's inner loop:
    an MQ decode/renormalise step for ``arith``, a coefficient for ``iq``,
    a lifting add/multiply for ``idwt``, a sample for ``ict``/``dc``.
    """

    counts: dict = field(default_factory=lambda: {stage: 0 for stage in ALL_STAGES})

    def add(self, stage: str, amount: int) -> None:
        if stage not in self.counts:
            raise KeyError(f"unknown stage {stage!r}")
        self.counts[stage] += amount
        # Mirror the op counts into the metrics registry so traces carry
        # the Fig. 1 raw material; the module flag keeps this one branch
        # when telemetry is off (``merge`` bypasses it — merged ops were
        # already counted at their originating ``add``).
        if _telemetry._enabled:
            _telemetry._recorder.metrics.count("jpeg2000.ops." + stage, amount)

    def merge(self, other: "StageOps") -> None:
        for stage, amount in other.counts.items():
            self.counts[stage] += amount

    def total(self) -> int:
        return sum(self.counts.values())

    def share(self, stage: str) -> float:
        total = self.total()
        return self.counts[stage] / total if total else 0.0

    def __getitem__(self, stage: str) -> int:
        return self.counts[stage]

    def __repr__(self) -> str:
        parts = ", ".join(f"{stage}={self.counts[stage]}" for stage in ALL_STAGES)
        return f"StageOps({parts})"
