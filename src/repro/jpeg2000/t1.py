"""EBCOT Tier-1: bit-plane coding of code blocks (ITU-T T.800, Annex D).

Each code block of quantised wavelet coefficients is coded in sign-magnitude
form, bit-plane by bit-plane, with three passes per plane:

1. **significance propagation** — insignificant samples with a significant
   neighbour;
2. **magnitude refinement** — samples that became significant in an earlier
   plane;
3. **cleanup** — everything else, with a run-length shortcut for aligned
   all-insignificant columns of four.

The most significant plane is coded with a cleanup pass only.  All
decisions drive the MQ coder; contexts follow ``repro.jpeg2000.context``.
This module is the functional payload of the case study's *arithmetic
decoder* stage — by far the dominant share in Figure 1's profile.
"""

from __future__ import annotations

from typing import Optional

from .context import (
    CTX_RUN,
    CTX_UNI,
    initial_contexts,
    mr_context,
    sc_context,
    zc_context,
)
from .mq import MqDecoder, MqEncoder


class CodeBlockResult:
    """Encoder output for one code block."""

    __slots__ = ("data", "num_passes", "num_bitplanes", "ops", "pass_lengths")

    def __init__(self, data: bytes, num_passes: int, num_bitplanes: int, ops: int,
                 pass_lengths: Optional[list] = None):
        self.data = data
        self.num_passes = num_passes
        self.num_bitplanes = num_bitplanes
        self.ops = ops
        #: ``pass_lengths[k]`` = bytes sufficient to decode passes 0..k.
        #: The MQ decoder treats data past the end as 0xFF fill (spec
        #: behaviour for truncated codeword segments), so a small margin
        #: after the live byte position guarantees exact decoding.
        self.pass_lengths = pass_lengths or ([len(data)] * num_passes)

    def bytes_for_passes(self, count: int) -> int:
        """Segment length covering the first *count* passes."""
        if count <= 0:
            return 0
        return self.pass_lengths[min(count, self.num_passes) - 1]

    def __repr__(self) -> str:
        return (
            f"CodeBlockResult({len(self.data)} bytes, passes={self.num_passes}, "
            f"bitplanes={self.num_bitplanes})"
        )


class _BlockState:
    """Per-sample coding state shared by encoder and decoder."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("code block dimensions must be positive")
        self.width = width
        self.height = height
        size = width * height
        self.sigma = bytearray(size)  # significance
        self.visited = bytearray(size)  # coded in current plane's SPP
        self.refined = bytearray(size)  # had at least one refinement
        self.sign = bytearray(size)  # 1 = negative

    def index(self, x: int, y: int) -> int:
        return y * self.width + x

    def neighbour_counts(self, x: int, y: int) -> tuple[int, int, int]:
        """(horizontal, vertical, diagonal) significant-neighbour counts."""
        w, h, sigma = self.width, self.height, self.sigma
        idx = y * w + x
        horizontal = 0
        vertical = 0
        diagonal = 0
        left = x > 0
        right = x < w - 1
        up = y > 0
        down = y < h - 1
        if left and sigma[idx - 1]:
            horizontal += 1
        if right and sigma[idx + 1]:
            horizontal += 1
        if up and sigma[idx - w]:
            vertical += 1
        if down and sigma[idx + w]:
            vertical += 1
        if up and left and sigma[idx - w - 1]:
            diagonal += 1
        if up and right and sigma[idx - w + 1]:
            diagonal += 1
        if down and left and sigma[idx + w - 1]:
            diagonal += 1
        if down and right and sigma[idx + w + 1]:
            diagonal += 1
        return horizontal, vertical, diagonal

    def sign_contributions(self, x: int, y: int) -> tuple[int, int]:
        """Net sign contributions of horizontal/vertical neighbours, in [-1, 1]."""
        w, h, sigma, sign = self.width, self.height, self.sigma, self.sign
        idx = y * w + x

        def contribution(neighbour: int) -> int:
            if not sigma[neighbour]:
                return 0
            return -1 if sign[neighbour] else 1

        h_sum = 0
        if x > 0:
            h_sum += contribution(idx - 1)
        if x < w - 1:
            h_sum += contribution(idx + 1)
        v_sum = 0
        if y > 0:
            v_sum += contribution(idx - w)
        if y < h - 1:
            v_sum += contribution(idx + w)
        clip = lambda v: -1 if v < -1 else (1 if v > 1 else v)
        return clip(h_sum), clip(v_sum)

    def stripe_columns(self):
        """Scan order: stripes of four rows, columns left to right."""
        for stripe_top in range(0, self.height, 4):
            stripe_rows = min(4, self.height - stripe_top)
            for x in range(self.width):
                yield stripe_top, stripe_rows, x


def _num_bitplanes(magnitudes, width: int, height: int) -> int:
    highest = 0
    for value in magnitudes:
        if value > highest:
            highest = value
    return highest.bit_length()


class CodeBlockEncoder:
    """Tier-1 encoder for one code block of sign-magnitude coefficients."""

    def __init__(self, coefficients, width: int, height: int, orientation: str):
        """*coefficients* is a row-major iterable of signed integers."""
        values = list(coefficients)
        if len(values) != width * height:
            raise ValueError("coefficient count does not match block dimensions")
        self.orientation = orientation
        self.state = _BlockState(width, height)
        self.magnitude = [abs(v) for v in values]
        for idx, value in enumerate(values):
            if value < 0:
                self.state.sign[idx] = 1

    def encode(self) -> CodeBlockResult:
        state = self.state
        planes = _num_bitplanes(self.magnitude, state.width, state.height)
        mq = MqEncoder()
        contexts = initial_contexts()
        if planes == 0:
            return CodeBlockResult(b"", 0, 0, mq.ops)
        num_passes = 0
        marks: list[int] = []

        def mark_pass() -> None:
            # Live bytes so far (minus the sentinel) plus headroom for the
            # bits still held in the MQ coder's C register.
            marks.append(len(mq._out) - 1 + 5)

        for plane in range(planes - 1, -1, -1):
            if plane != planes - 1:
                self._significance_pass(mq, contexts, plane)
                num_passes += 1
                mark_pass()
                self._refinement_pass(mq, contexts, plane)
                num_passes += 1
                mark_pass()
            self._cleanup_pass(mq, contexts, plane)
            num_passes += 1
            mark_pass()
            state.visited = bytearray(len(state.visited))
        data = mq.flush()
        pass_lengths = [min(mark, len(data)) for mark in marks]
        pass_lengths[-1] = len(data)
        return CodeBlockResult(data, num_passes, planes, mq.ops, pass_lengths)

    # -- the three passes ---------------------------------------------------------

    def _significance_pass(self, mq, contexts, plane: int) -> None:
        state = self.state
        bit_mask = 1 << plane
        for stripe_top, stripe_rows, x in state.stripe_columns():
            for y in range(stripe_top, stripe_top + stripe_rows):
                idx = state.index(x, y)
                if state.sigma[idx]:
                    continue
                h, v, d = state.neighbour_counts(x, y)
                if h + v + d == 0:
                    continue
                bit = 1 if self.magnitude[idx] & bit_mask else 0
                mq.encode(bit, contexts[zc_context(self.orientation, h, v, d)])
                state.visited[idx] = 1
                if bit:
                    state.sigma[idx] = 1
                    self._encode_sign(mq, contexts, x, y, idx)

    def _refinement_pass(self, mq, contexts, plane: int) -> None:
        state = self.state
        bit_mask = 1 << plane
        for stripe_top, stripe_rows, x in state.stripe_columns():
            for y in range(stripe_top, stripe_top + stripe_rows):
                idx = state.index(x, y)
                if not state.sigma[idx] or state.visited[idx]:
                    continue
                h, v, d = state.neighbour_counts(x, y)
                ctx = mr_context(not state.refined[idx], h + v + d > 0)
                bit = 1 if self.magnitude[idx] & bit_mask else 0
                mq.encode(bit, contexts[ctx])
                state.refined[idx] = 1

    def _cleanup_pass(self, mq, contexts, plane: int) -> None:
        state = self.state
        bit_mask = 1 << plane
        for stripe_top, stripe_rows, x in state.stripe_columns():
            start_row = 0
            if stripe_rows == 4 and self._run_mode_eligible(stripe_top, x):
                column_bits = [
                    1 if self.magnitude[state.index(x, stripe_top + k)] & bit_mask else 0
                    for k in range(4)
                ]
                if not any(column_bits):
                    mq.encode(0, contexts[CTX_RUN])
                    continue
                mq.encode(1, contexts[CTX_RUN])
                first_one = column_bits.index(1)
                mq.encode((first_one >> 1) & 1, contexts[CTX_UNI])
                mq.encode(first_one & 1, contexts[CTX_UNI])
                y = stripe_top + first_one
                idx = state.index(x, y)
                state.sigma[idx] = 1
                self._encode_sign(mq, contexts, x, y, idx)
                start_row = first_one + 1
            for k in range(start_row, stripe_rows):
                y = stripe_top + k
                idx = state.index(x, y)
                if state.sigma[idx] or state.visited[idx]:
                    continue
                h, v, d = state.neighbour_counts(x, y)
                bit = 1 if self.magnitude[idx] & bit_mask else 0
                mq.encode(bit, contexts[zc_context(self.orientation, h, v, d)])
                if bit:
                    state.sigma[idx] = 1
                    self._encode_sign(mq, contexts, x, y, idx)

    def _run_mode_eligible(self, stripe_top: int, x: int) -> bool:
        state = self.state
        for k in range(4):
            y = stripe_top + k
            idx = state.index(x, y)
            if state.sigma[idx] or state.visited[idx]:
                return False
            h, v, d = state.neighbour_counts(x, y)
            if h + v + d:
                return False
        return True

    def _encode_sign(self, mq, contexts, x: int, y: int, idx: int) -> None:
        h_contribution, v_contribution = self.state.sign_contributions(x, y)
        ctx, xor_bit = sc_context(h_contribution, v_contribution)
        mq.encode(self.state.sign[idx] ^ xor_bit, contexts[ctx])


class CodeBlockDecoder:
    """Tier-1 decoder, exactly mirroring :class:`CodeBlockEncoder`."""

    def __init__(self, data: bytes, width: int, height: int, orientation: str,
                 num_bitplanes: int, num_passes: Optional[int] = None):
        self.orientation = orientation
        self.state = _BlockState(width, height)
        self.data = data
        self.num_bitplanes = num_bitplanes
        self.num_passes = num_passes
        self.magnitude = [0] * (width * height)
        self.ops = 0

    def decode(self) -> list[int]:
        """Return the signed coefficients, row major."""
        state = self.state
        planes = self.num_bitplanes
        if planes == 0:
            return [0] * (state.width * state.height)
        mq = MqDecoder(self.data)
        contexts = initial_contexts()
        passes_done = 0
        passes_limit = self.num_passes if self.num_passes is not None else 3 * planes - 2
        for plane in range(planes - 1, -1, -1):
            if plane != planes - 1:
                if passes_done >= passes_limit:
                    break
                self._significance_pass(mq, contexts, plane)
                passes_done += 1
                if passes_done >= passes_limit:
                    break
                self._refinement_pass(mq, contexts, plane)
                passes_done += 1
            if passes_done >= passes_limit:
                break
            self._cleanup_pass(mq, contexts, plane)
            passes_done += 1
            state.visited = bytearray(len(state.visited))
        self.ops = mq.ops
        result = []
        for idx, magnitude in enumerate(self.magnitude):
            result.append(-magnitude if state.sign[idx] else magnitude)
        return result

    # -- the three passes ---------------------------------------------------------

    def _significance_pass(self, mq, contexts, plane: int) -> None:
        state = self.state
        bit_value = 1 << plane
        for stripe_top, stripe_rows, x in state.stripe_columns():
            for y in range(stripe_top, stripe_top + stripe_rows):
                idx = state.index(x, y)
                if state.sigma[idx]:
                    continue
                h, v, d = state.neighbour_counts(x, y)
                if h + v + d == 0:
                    continue
                bit = mq.decode(contexts[zc_context(self.orientation, h, v, d)])
                state.visited[idx] = 1
                if bit:
                    state.sigma[idx] = 1
                    self.magnitude[idx] |= bit_value
                    self._decode_sign(mq, contexts, x, y, idx)

    def _refinement_pass(self, mq, contexts, plane: int) -> None:
        state = self.state
        bit_value = 1 << plane
        for stripe_top, stripe_rows, x in state.stripe_columns():
            for y in range(stripe_top, stripe_top + stripe_rows):
                idx = state.index(x, y)
                if not state.sigma[idx] or state.visited[idx]:
                    continue
                h, v, d = state.neighbour_counts(x, y)
                ctx = mr_context(not state.refined[idx], h + v + d > 0)
                if mq.decode(contexts[ctx]):
                    self.magnitude[idx] |= bit_value
                state.refined[idx] = 1

    def _cleanup_pass(self, mq, contexts, plane: int) -> None:
        state = self.state
        bit_value = 1 << plane
        for stripe_top, stripe_rows, x in state.stripe_columns():
            start_row = 0
            if stripe_rows == 4 and self._run_mode_eligible(stripe_top, x):
                if not mq.decode(contexts[CTX_RUN]):
                    continue
                first_one = (mq.decode(contexts[CTX_UNI]) << 1) | mq.decode(contexts[CTX_UNI])
                y = stripe_top + first_one
                idx = state.index(x, y)
                state.sigma[idx] = 1
                self.magnitude[idx] |= bit_value
                self._decode_sign(mq, contexts, x, y, idx)
                start_row = first_one + 1
            for k in range(start_row, stripe_rows):
                y = stripe_top + k
                idx = state.index(x, y)
                if state.sigma[idx] or state.visited[idx]:
                    continue
                h, v, d = state.neighbour_counts(x, y)
                bit = mq.decode(contexts[zc_context(self.orientation, h, v, d)])
                if bit:
                    state.sigma[idx] = 1
                    self.magnitude[idx] |= bit_value
                    self._decode_sign(mq, contexts, x, y, idx)

    def _run_mode_eligible(self, stripe_top: int, x: int) -> bool:
        state = self.state
        for k in range(4):
            y = stripe_top + k
            idx = state.index(x, y)
            if state.sigma[idx] or state.visited[idx]:
                return False
            h, v, d = state.neighbour_counts(x, y)
            if h + v + d:
                return False
        return True

    def _decode_sign(self, mq, contexts, x: int, y: int, idx: int) -> None:
        h_contribution, v_contribution = self.state.sign_contributions(x, y)
        ctx, xor_bit = sc_context(h_contribution, v_contribution)
        self.state.sign[idx] = mq.decode(contexts[ctx]) ^ xor_bit
