"""Image and tile containers plus synthetic test material.

The case study decodes a tiled still image: the paper's workload is
**16 tiles with 3 components** (a 512x512 RGB image in 128x128 tiles at
the sizes used throughout this reproduction).  Since the original Thales
image material is unavailable, :func:`synthetic_image` fabricates natural-
looking content (smooth gradients + texture + edges) so the arithmetic
coder sees realistic significance statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Image:
    """A raster image: ``components`` is a list of (height, width) arrays."""

    components: list
    bit_depth: int = 8

    def __post_init__(self):
        if not self.components:
            raise ValueError("an image needs at least one component")
        shape = self.components[0].shape
        for comp in self.components:
            if comp.shape != shape:
                raise ValueError("all components must share one size")

    @property
    def height(self) -> int:
        return self.components[0].shape[0]

    @property
    def width(self) -> int:
        return self.components[0].shape[1]

    @property
    def num_components(self) -> int:
        return len(self.components)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return (
            self.bit_depth == other.bit_depth
            and self.num_components == other.num_components
            and all(np.array_equal(a, b) for a, b in zip(self.components, other.components))
        )

    def psnr(self, other: "Image") -> float:
        """Peak signal-to-noise ratio against a reference image, in dB."""
        peak = (1 << self.bit_depth) - 1
        errors = []
        for mine, theirs in zip(self.components, other.components):
            errors.append(np.mean((mine.astype(np.float64) - theirs.astype(np.float64)) ** 2))
        mse = float(np.mean(errors))
        if mse == 0:
            return float("inf")
        return 10.0 * np.log10(peak * peak / mse)


@dataclass(frozen=True)
class TileGrid:
    """Regular tiling of an image (anchored at the origin)."""

    image_width: int
    image_height: int
    tile_width: int
    tile_height: int

    def __post_init__(self):
        if self.tile_width < 1 or self.tile_height < 1:
            raise ValueError("tile dimensions must be positive")

    @property
    def tiles_across(self) -> int:
        return -(-self.image_width // self.tile_width)

    @property
    def tiles_down(self) -> int:
        return -(-self.image_height // self.tile_height)

    @property
    def num_tiles(self) -> int:
        return self.tiles_across * self.tiles_down

    def tile_bounds(self, tile_index: int) -> tuple[int, int, int, int]:
        """(x0, y0, x1, y1) pixel bounds of a tile, clipped to the image."""
        if not 0 <= tile_index < self.num_tiles:
            raise IndexError(f"tile {tile_index} out of range 0..{self.num_tiles - 1}")
        tx = tile_index % self.tiles_across
        ty = tile_index // self.tiles_across
        x0 = tx * self.tile_width
        y0 = ty * self.tile_height
        x1 = min(x0 + self.tile_width, self.image_width)
        y1 = min(y0 + self.tile_height, self.image_height)
        return x0, y0, x1, y1

    def extract(self, component: np.ndarray, tile_index: int) -> np.ndarray:
        x0, y0, x1, y1 = self.tile_bounds(tile_index)
        return component[y0:y1, x0:x1].copy()

    def insert(self, component: np.ndarray, tile_index: int, tile: np.ndarray) -> None:
        x0, y0, x1, y1 = self.tile_bounds(tile_index)
        component[y0:y1, x0:x1] = tile


def synthetic_image(
    width: int = 512,
    height: int = 512,
    num_components: int = 3,
    bit_depth: int = 8,
    seed: int = 2008,
) -> Image:
    """Fabricate natural-statistics test content.

    Layers: smooth illumination gradient, low-frequency blobs, oriented
    texture, hard edges and mild noise — enough structure that wavelet
    subbands carry realistic sparsity for the entropy coder.
    """
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    peak = (1 << bit_depth) - 1
    components = []
    for comp_index in range(num_components):
        phase = comp_index * 0.7
        gradient = 0.35 * (xs / max(width - 1, 1)) + 0.25 * (ys / max(height - 1, 1))
        blobs = 0.20 * np.sin(2 * np.pi * xs / (width / 3.0) + phase) * np.cos(
            2 * np.pi * ys / (height / 2.5) - phase
        )
        texture = 0.08 * np.sin(2 * np.pi * (xs + 2 * ys) / 17.0 + phase)
        edges = 0.15 * ((xs // (width / 4.0) + ys // (height / 4.0)) % 2)
        noise = 0.02 * rng.standard_normal((height, width))
        value = 0.15 + gradient + blobs + texture + edges + noise
        samples = np.clip(np.rint(value * peak), 0, peak).astype(np.int64)
        components.append(samples)
    return Image(components=components, bit_depth=bit_depth)
