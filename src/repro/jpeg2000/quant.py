"""Quantisation and the case study's IQ (inverse quantisation) stage
(ITU-T T.800, Annex E).

* **Reversible (5/3)**: no quantisation; coefficients are integers and the
  'step' is fixed at one.  Only ranging exponents travel in the QCD
  segment.
* **Irreversible (9/7)**: each subband b has a dead-zone scalar quantiser
  with step ``delta_b = 2^(R_b - eps_b) * (1 + mu_b / 2^11)``, where R_b is
  the subband's nominal dynamic range and (eps_b, mu_b) are coded in QCD
  (expounded style).  Inverse quantisation reconstructs at mid-point
  (r = 0.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: log2 gain of each subband orientation (T.800 Table E.1).
ORIENTATION_GAIN_LOG2 = {"LL": 0, "HL": 1, "LH": 1, "HH": 2}

#: Reconstruction bias for truncated irreversible coefficients.
RECONSTRUCTION_R = 0.5


@dataclass(frozen=True)
class StepSize:
    """One subband's quantisation step in (exponent, mantissa) form."""

    exponent: int  # eps_b, 5 bits
    mantissa: int  # mu_b, 11 bits

    def delta(self, dynamic_range_bits: int) -> float:
        """The physical step size for a subband of the given range."""
        return (2.0 ** (dynamic_range_bits - self.exponent)) * (1.0 + self.mantissa / 2048.0)

    def packed(self) -> int:
        """The 16-bit QCD field: exponent(5) | mantissa(11)."""
        return ((self.exponent & 0x1F) << 11) | (self.mantissa & 0x7FF)

    @classmethod
    def unpack(cls, value: int) -> "StepSize":
        return cls(exponent=(value >> 11) & 0x1F, mantissa=value & 0x7FF)

    @classmethod
    def from_delta(cls, delta: float, dynamic_range_bits: int) -> "StepSize":
        """Closest (exponent, mantissa) representation of *delta*."""
        if delta <= 0:
            raise ValueError("step size must be positive")
        exponent = dynamic_range_bits - math.floor(math.log2(delta))
        mantissa = round((delta / 2.0 ** (dynamic_range_bits - exponent) - 1.0) * 2048.0)
        if mantissa == 2048:  # rounded up to the next power of two
            exponent -= 1
            mantissa = 0
        exponent = max(0, min(31, exponent))
        mantissa = max(0, min(2047, mantissa))
        return cls(exponent, mantissa)


def default_step(orientation: str, level: int, num_levels: int,
                 base_step: float = 1.0 / 128.0) -> float:
    """A conventional step-size schedule for the 9/7 path.

    Finer decomposition levels (higher frequency) get coarser steps; the
    schedule mirrors the energy-weighting rule of T.800 E.1.1 with the
    subband gains folded in.
    """
    gain = 2.0 ** ORIENTATION_GAIN_LOG2[orientation]
    # level counts from 1 (finest). High-frequency bands tolerate coarser
    # steps; the step doubles with each finer decomposition level.
    return base_step * gain * 2.0 ** (num_levels - level)


def guard_bits() -> int:
    """Number of guard bits signalled in QCD (conventional value)."""
    return 2


def quantise(band: np.ndarray, delta: float) -> np.ndarray:
    """Dead-zone quantisation to signed integer indices."""
    if delta <= 0:
        raise ValueError("step size must be positive")
    return (np.sign(band) * np.floor(np.abs(band) / delta)).astype(np.int64)


def dequantise(indices: np.ndarray, delta: float) -> np.ndarray:
    """Mid-point inverse quantisation (the IQ stage of Fig. 1)."""
    magnitudes = np.abs(indices).astype(np.float64)
    reconstructed = np.where(magnitudes > 0, (magnitudes + RECONSTRUCTION_R) * delta, 0.0)
    return np.sign(indices) * reconstructed


def max_bitplanes(dynamic_range_bits: int, orientation: str, step: StepSize) -> int:
    """Upper bound M_b on coded magnitude bit-planes (T.800 eq. E-2).

    ``M_b = guard + eps_b - 1``; Tier-2 codes the number of *missing*
    (all-zero) leading planes per code block against this bound.
    """
    return guard_bits() + step.exponent - 1


def reversible_exponent(dynamic_range_bits: int, orientation: str) -> int:
    """The ranging exponent signalled for reversible (5/3) subbands."""
    return dynamic_range_bits + ORIENTATION_GAIN_LOG2[orientation]
