"""``repro.jpeg2000`` — a complete JPEG 2000 codec substrate.

The functional payload and profiling subject of the case study: codestream
syntax, MQ arithmetic coding, EBCOT Tier-1/Tier-2, tag trees, de/quantisation,
5/3 and 9/7 lifting wavelet transforms, colour transforms and DC shift,
assembled into an encoder (to fabricate test material) and the decoder whose
five stages (Fig. 1) the OSSS models distribute across hardware and software.
"""

from .codestream import (
    CodestreamError,
    CodingParameters,
    TilePart,
    parse_codestream,
    write_codestream,
)
from .decoder import DecodingError, Jpeg2000Decoder, TileStages, decode_codestream
from .encoder import EncodingError, Jpeg2000Encoder, encode_image
from .parallel import (
    KERNEL_BATCHED,
    KERNEL_FAST,
    KERNEL_REFERENCE,
    BlockSpec,
    DecodeOptions,
    ParallelDegradedWarning,
    decode_blocks,
    decode_blocks_spec,
    shutdown_pool,
)
from .image import Image, TileGrid, synthetic_image
from .transcode import TranscodeError, drop_layers
from .pipeline import (
    ALL_STAGES,
    STAGE_ARITH,
    STAGE_DC,
    STAGE_ICT,
    STAGE_IDWT,
    STAGE_IQ,
    StageOps,
)

__all__ = [
    "ALL_STAGES",
    "BlockSpec",
    "CodestreamError",
    "CodingParameters",
    "DecodeOptions",
    "DecodingError",
    "EncodingError",
    "Image",
    "Jpeg2000Decoder",
    "Jpeg2000Encoder",
    "KERNEL_BATCHED",
    "KERNEL_FAST",
    "KERNEL_REFERENCE",
    "ParallelDegradedWarning",
    "STAGE_ARITH",
    "STAGE_DC",
    "STAGE_ICT",
    "STAGE_IDWT",
    "STAGE_IQ",
    "StageOps",
    "TileGrid",
    "TilePart",
    "TileStages",
    "TranscodeError",
    "decode_blocks",
    "decode_blocks_spec",
    "decode_codestream",
    "drop_layers",
    "encode_image",
    "parse_codestream",
    "shutdown_pool",
    "synthetic_image",
    "write_codestream",
]
