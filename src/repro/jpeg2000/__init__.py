"""``repro.jpeg2000`` — a complete JPEG 2000 codec substrate.

The functional payload and profiling subject of the case study: codestream
syntax, MQ arithmetic coding, EBCOT Tier-1/Tier-2, tag trees, de/quantisation,
5/3 and 9/7 lifting wavelet transforms, colour transforms and DC shift,
assembled into an encoder (to fabricate test material) and the decoder whose
five stages (Fig. 1) the OSSS models distribute across hardware and software.

Decoding is plan-driven: :func:`compile_plan` turns a
:class:`DecodeOptions` value (plus the host environment) into an
explicit, statically validated :class:`DecodePlan` — stages
``parse → entropy → reconstruct → assemble``, each bound to an
implementation and an executor — which the decoder executes.  The
legacy :mod:`~repro.jpeg2000.parallel` entry points remain as
deprecation shims.
"""

from .codestream import (
    CodestreamError,
    CodingParameters,
    TilePart,
    parse_codestream,
    write_codestream,
)
from .decoder import DecodingError, Jpeg2000Decoder, TileStages, decode_codestream
from .encoder import EncodingError, Jpeg2000Encoder, encode_image
from .options import (
    KERNEL_BATCHED,
    KERNEL_FAST,
    KERNEL_REFERENCE,
    BlockSpec,
    DecodeOptions,
    ParallelDegradedWarning,
)
from .plan import (
    DecodePlan,
    ExecutorSpec,
    PlanEnvironment,
    PlanIssue,
    PlanValidationError,
    StageBinding,
    check_plan,
    compile_plan,
    options_for_plan,
    validate_plan,
)
from .parallel import (
    decode_blocks,
    decode_blocks_spec,
    open_spec_stream,
    shutdown_pool,
)
from .image import Image, TileGrid, synthetic_image
from .transcode import TranscodeError, drop_layers
from .pipeline import (
    ALL_STAGES,
    STAGE_ARITH,
    STAGE_DC,
    STAGE_ICT,
    STAGE_IDWT,
    STAGE_IQ,
    StageOps,
)

__all__ = [
    "ALL_STAGES",
    "BlockSpec",
    "CodestreamError",
    "CodingParameters",
    "DecodeOptions",
    "DecodePlan",
    "DecodingError",
    "EncodingError",
    "ExecutorSpec",
    "Image",
    "Jpeg2000Decoder",
    "Jpeg2000Encoder",
    "KERNEL_BATCHED",
    "KERNEL_FAST",
    "KERNEL_REFERENCE",
    "ParallelDegradedWarning",
    "PlanEnvironment",
    "PlanIssue",
    "PlanValidationError",
    "STAGE_ARITH",
    "STAGE_DC",
    "STAGE_ICT",
    "STAGE_IDWT",
    "STAGE_IQ",
    "StageBinding",
    "StageOps",
    "TileGrid",
    "TilePart",
    "TileStages",
    "TranscodeError",
    "check_plan",
    "compile_plan",
    "decode_blocks",
    "decode_blocks_spec",
    "decode_codestream",
    "drop_layers",
    "encode_image",
    "open_spec_stream",
    "options_for_plan",
    "parse_codestream",
    "shutdown_pool",
    "synthetic_image",
    "validate_plan",
    "write_codestream",
]
