"""Discrete wavelet transforms (ITU-T T.800, Annex F).

Both JPEG 2000 filter banks are implemented in lifting form on numpy
arrays:

* **5/3** (Le Gall, reversible) — integer lifting, exact reconstruction,
  used by the case study's lossless mode (``IDWT53``);
* **9/7** (Daubechies/CDF, irreversible) — four floating-point lifting
  steps plus scaling, the lossy mode (``IDWT97``).

Boundaries use whole-sample symmetric extension, handled by index
reflection so signals of any length (including 1) transform correctly.
The module also reports per-call operation counts, which feed both the
Fig. 1 profiling model and the cycle cost model of the VTA hardware IDWT
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

#: 9/7 lifting coefficients (T.800 Table F.4).
ALPHA = -1.586134342059924
BETA = -0.052980118572961
GAMMA = 0.882911075530934
DELTA = 0.443506852043971
KAPPA = 1.230174104914001

MODE_LOSSLESS = "5/3"
MODE_LOSSY = "9/7"


@dataclass
class DwtOpCounts:
    """Basic-operation tally of transform calls (adds/shifts vs multiplies)."""

    add_ops: int = 0
    mul_ops: int = 0
    samples: int = 0

    def merge(self, other: "DwtOpCounts") -> None:
        self.add_ops += other.add_ops
        self.mul_ops += other.mul_ops
        self.samples += other.samples

    @property
    def total(self) -> int:
        return self.add_ops + self.mul_ops


def _reflect(index: int, length: int) -> int:
    """Whole-sample symmetric index reflection into [0, length) (the spec
    form; the vectorised transforms use :func:`_ext_indices` instead)."""
    if length == 1:
        return 0
    period = 2 * (length - 1)
    index %= period
    if index < 0:
        index += period
    return index if index < length else period - index


@lru_cache(maxsize=512)
def _ext_indices(offset: int, count: int, source_length: int) -> np.ndarray:
    """Memoised symmetric-extension gather indices.

    ``arange(count) + offset`` clipped into ``[0, source_length)`` — the
    one-step boundary reflection every lifting step needs.  Each subband
    shape recurs for every row/column/tile of a decode, so the arrays are
    cached and shared.
    """
    indices = np.arange(offset, offset + count)
    np.clip(indices, 0, source_length - 1, out=indices)
    indices.setflags(write=False)
    return indices


# -- 1D transforms -------------------------------------------------------------
#
# The deinterleaved convention follows the standard: for a signal of length
# n, the low band holds ceil(n/2) samples (even positions), the high band
# floor(n/2) samples (odd positions).
#
# All four transforms operate along axis 0 and accept arrays of any rank,
# so one call transforms every column of a tile plane at once — this is
# what removes the per-row/per-column Python loops from the 2D transforms.


def fdwt53_1d(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Forward 5/3 along axis 0; returns (low, high) integer bands."""
    x = np.asarray(signal, dtype=np.int64)
    n = x.shape[0]
    if n == 1:
        return x.copy(), np.zeros((0,) + x.shape[1:], dtype=np.int64)
    even = x[0::2]
    odd = x[1::2]
    n_even = even.shape[0]
    n_odd = odd.shape[0]
    # Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
    nbr_right = even.take(_ext_indices(1, n_odd, n_even), axis=0)
    high = odd - ((even[:n_odd] + nbr_right) >> 1)
    # Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4)
    d_left = high.take(_ext_indices(-1, n_even, n_odd), axis=0)
    d_right = high.take(_ext_indices(0, n_even, n_odd), axis=0)
    low = even + ((d_left + d_right + 2) >> 2)
    return low, high


def idwt53_1d(low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """Inverse 5/3; exact inverse of :func:`fdwt53_1d`."""
    low = np.asarray(low, dtype=np.int64)
    high = np.asarray(high, dtype=np.int64)
    n = low.shape[0] + high.shape[0]
    if n == 1:
        return low.copy()
    n_even = low.shape[0]
    n_odd = high.shape[0]
    d_left = high.take(_ext_indices(-1, n_even, n_odd), axis=0)
    d_right = high.take(_ext_indices(0, n_even, n_odd), axis=0)
    even = low - ((d_left + d_right + 2) >> 2)
    nbr_right = even.take(_ext_indices(1, n_odd, n_even), axis=0)
    odd = high + ((even[:n_odd] + nbr_right) >> 1)
    out = np.empty((n,) + low.shape[1:], dtype=np.int64)
    out[0::2] = even
    out[1::2] = odd
    return out


def _lift(band_a: np.ndarray, band_b: np.ndarray, coefficient: float, into_b: bool) -> None:
    """One 9/7 lifting step: b[i] += c * (a[i] + a[i+1-ish]) with reflection.

    When *into_b* the odd band is updated from even neighbours (predict
    steps); otherwise the even band from odd neighbours (update steps).
    """
    if into_b:
        # odd[i] += c * (even[i] + even[i+1]), right edge reflects
        n = band_b.shape[0]
        if n == 0:
            return
        right = band_a.take(_ext_indices(1, n, band_a.shape[0]), axis=0)
        band_b += coefficient * (band_a[:n] + right)
    else:
        # even[i] += c * (odd[i-1] + odd[i]), both edges reflect
        n = band_a.shape[0]
        if band_b.shape[0] == 0:
            return
        left = band_b.take(_ext_indices(-1, n, band_b.shape[0]), axis=0)
        right = band_b.take(_ext_indices(0, n, band_b.shape[0]), axis=0)
        band_a += coefficient * (left + right)


def fdwt97_1d(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Forward 9/7 along axis 0; returns (low, high) float bands."""
    x = np.asarray(signal, dtype=np.float64)
    n = x.shape[0]
    if n == 1:
        return x.copy(), np.zeros((0,) + x.shape[1:], dtype=np.float64)
    even = x[0::2].copy()
    odd = x[1::2].copy()
    _lift(even, odd, ALPHA, into_b=True)
    _lift(even, odd, BETA, into_b=False)
    _lift(even, odd, GAMMA, into_b=True)
    _lift(even, odd, DELTA, into_b=False)
    return even * (1.0 / KAPPA), odd * KAPPA


def idwt97_1d(low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """Inverse 9/7."""
    low = np.asarray(low, dtype=np.float64)
    high = np.asarray(high, dtype=np.float64)
    n = low.shape[0] + high.shape[0]
    if n == 1:
        return low.copy()
    even = low * KAPPA
    odd = high * (1.0 / KAPPA)
    _lift(even, odd, -DELTA, into_b=False)
    _lift(even, odd, -GAMMA, into_b=True)
    _lift(even, odd, -BETA, into_b=False)
    _lift(even, odd, -ALPHA, into_b=True)
    out = np.empty((n,) + low.shape[1:], dtype=np.float64)
    out[0::2] = even
    out[1::2] = odd
    return out


# -- 2D / multi-level -------------------------------------------------------------


def _forward_2d(tile: np.ndarray, mode: str) -> dict[str, np.ndarray]:
    """One decomposition level; returns the LL/HL/LH/HH quadrants.

    Fully vectorised: the row pass transforms every row at once (along
    axis 0 of the transposed tile), the column pass every column at once.
    The pass order (rows, then columns) matches :func:`_inverse_2d` in
    reverse — required for bit-exactness of the nonlinear 5/3 lifting.
    """
    fdwt = fdwt53_1d if mode == MODE_LOSSLESS else fdwt97_1d
    low_t, high_t = fdwt(tile.T)
    ll, lh = fdwt(np.ascontiguousarray(low_t.T))
    hl, hh = fdwt(np.ascontiguousarray(high_t.T))
    return {"LL": ll, "HL": hl, "LH": lh, "HH": hh}


def _inverse_2d(quads: dict[str, np.ndarray], mode: str,
                ops: "DwtOpCounts | None" = None) -> np.ndarray:
    """Invert one decomposition level from its quadrants (vectorised).

    Quadrants may be 2-D ``(h, w)`` or 3-D ``(h, w, batch)`` — a stack
    of same-shape tiles inverted in one lifting pass per step (see
    :func:`inverse_batch`).  ``swapaxes(0, 1)`` (not ``.T``, which would
    reverse the batch axis too) exchanges rows and columns; the lifting
    arithmetic is elementwise, so batching never changes a value.
    """
    idwt = idwt53_1d if mode == MODE_LOSSLESS else idwt97_1d
    ll, hl, lh, hh = quads["LL"], quads["HL"], quads["LH"], quads["HH"]
    low_h, low_w = ll.shape[0], ll.shape[1]
    height = low_h + lh.shape[0]
    width = low_w + hl.shape[1]
    rows_low = idwt(ll, lh)
    rows_high = idwt(hl, hh)
    out = np.swapaxes(
        idwt(
            np.ascontiguousarray(np.swapaxes(rows_low, 0, 1)),
            np.ascontiguousarray(np.swapaxes(rows_high, 0, 1)),
        ),
        0, 1,
    )
    if ops is not None:
        batch = ll.shape[2] if ll.ndim == 3 else 1
        samples = height * width * batch
        ops.samples += samples
        if mode == MODE_LOSSLESS:
            # 2 lifting steps x (1 add-pair + 1 shift + 1 add) per sample, 2 dims
            ops.add_ops += samples * 8
        else:
            # 4 lifting steps x (2 adds + 1 mul) per sample + scaling, 2 dims
            ops.add_ops += samples * 16
            ops.mul_ops += samples * 10
    return out


class Subbands:
    """Multi-level decomposition: LL_n plus (HL, LH, HH) per level.

    ``levels[0]`` holds the quadrants of the finest level (level 1 in
    standard numbering), ``ll`` the coarsest approximation.
    """

    def __init__(self, ll: np.ndarray, levels: list[dict[str, np.ndarray]], mode: str):
        self.ll = ll
        self.levels = levels
        self.mode = mode

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def iter_bands(self):
        """Yield (resolution_level, orientation, array), coarsest first.

        Resolution 0 is the LL band alone; resolution r >= 1 adds the
        detail quadrants of decomposition level num_levels - r + 1.
        """
        yield 0, "LL", self.ll
        for res in range(1, self.num_levels + 1):
            quads = self.levels[self.num_levels - res]
            for orientation in ("HL", "LH", "HH"):
                yield res, orientation, quads[orientation]


def forward(tile: np.ndarray, mode: str, num_levels: int) -> Subbands:
    """Multi-level forward DWT of one tile component."""
    if mode not in (MODE_LOSSLESS, MODE_LOSSY):
        raise ValueError(f"unknown DWT mode {mode!r}")
    if num_levels < 0:
        raise ValueError("decomposition level count must be non-negative")
    current = np.asarray(tile, dtype=np.int64 if mode == MODE_LOSSLESS else np.float64)
    levels: list[dict[str, np.ndarray]] = []
    for _ in range(num_levels):
        if current.shape[0] <= 1 and current.shape[1] <= 1:
            break
        quads = _forward_2d(current, mode)
        levels.append({k: v for k, v in quads.items() if k != "LL"})
        current = quads["LL"]
    return Subbands(current, levels, mode)


def inverse(subbands: Subbands, ops: "DwtOpCounts | None" = None) -> np.ndarray:
    """Multi-level inverse DWT (the case study's IDWT53 / IDWT97)."""
    current = subbands.ll
    for quads in reversed(subbands.levels):
        merged = dict(quads)
        merged["LL"] = current
        current = _inverse_2d(merged, subbands.mode, ops)
    return current


def inverse_batch(
    subbands_list: list, counts_list: "list[DwtOpCounts] | None" = None
) -> list:
    """Inverse DWT of many decompositions, batched by shape signature.

    Decompositions with identical signatures (mode, level count, and
    per-band shapes — e.g. the interior tiles of a tile grid, one entry
    per tile component) are stacked along a trailing batch axis and
    inverted with one lifting pass per step per resolution level; the
    rest invert individually.  Results and per-item op counts are
    exactly those of per-item :func:`inverse` calls — the lifting is
    elementwise, so the batch axis is inert.

    ``counts_list``, when given, must be parallel to *subbands_list*;
    each entry receives its decomposition's op counts via ``merge``.
    """
    results: list = [None] * len(subbands_list)
    groups: dict[tuple, list[int]] = {}
    for index, subbands in enumerate(subbands_list):
        signature = (
            subbands.mode,
            tuple(
                (res, orientation, array.shape)
                for res, orientation, array in subbands.iter_bands()
            ),
        )
        groups.setdefault(signature, []).append(index)
    for members in groups.values():
        if len(members) == 1:
            index = members[0]
            counts = DwtOpCounts()
            results[index] = inverse(subbands_list[index], counts)
            if counts_list is not None:
                counts_list[index].merge(counts)
            continue
        first = subbands_list[members[0]]
        stacked = Subbands(
            np.stack([subbands_list[i].ll for i in members], axis=-1),
            [
                {
                    orientation: np.stack(
                        [subbands_list[i].levels[li][orientation] for i in members],
                        axis=-1,
                    )
                    for orientation in ("HL", "LH", "HH")
                }
                for li in range(first.num_levels)
            ],
            first.mode,
        )
        counts = DwtOpCounts()
        merged = inverse(stacked, counts)
        batch = len(members)
        for slot, index in enumerate(members):
            results[index] = np.ascontiguousarray(merged[..., slot])
            if counts_list is not None:
                # Same shapes, so the batched tally divides exactly.
                counts_list[index].merge(DwtOpCounts(
                    counts.add_ops // batch,
                    counts.mul_ops // batch,
                    counts.samples // batch,
                ))
    return results
