"""Multi-component (colour) transforms and DC level shift
(ITU-T T.800, Annex G).

The last two stages of the paper's Fig. 1 pipeline:

* **ICT** — the irreversible YCbCr transform used with the 9/7 path;
  **RCT** — its reversible integer companion for the 5/3 path;
* **DC shift** — samples are coded offset by half their dynamic range and
  shifted back (and clamped) at the very end of decoding.
"""

from __future__ import annotations

import numpy as np

# ICT (floating point) forward matrix coefficients (T.800 G.3).
_ICT_FORWARD = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_ICT_INVERSE = np.array(
    [
        [1.0, 0.0, 1.402],
        [1.0, -0.344136, -0.714136],
        [1.0, 1.772, 0.0],
    ]
)


def rct_forward(r: np.ndarray, g: np.ndarray, b: np.ndarray):
    """Reversible colour transform (integer, exact)."""
    r = np.asarray(r, dtype=np.int64)
    g = np.asarray(g, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    y = (r + 2 * g + b) >> 2
    u = b - g
    v = r - g
    return y, u, v


def rct_inverse(y: np.ndarray, u: np.ndarray, v: np.ndarray):
    """Exact inverse of :func:`rct_forward`."""
    y = np.asarray(y, dtype=np.int64)
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    g = y - ((u + v) >> 2)
    r = v + g
    b = u + g
    return r, g, b


def ict_forward(r: np.ndarray, g: np.ndarray, b: np.ndarray):
    """Irreversible (YCbCr) colour transform."""
    stack = np.stack([r, g, b]).astype(np.float64)
    y, cb, cr = np.tensordot(_ICT_FORWARD, stack, axes=1)
    return y, cb, cr


def ict_inverse(y: np.ndarray, cb: np.ndarray, cr: np.ndarray):
    """Inverse ICT."""
    stack = np.stack([y, cb, cr]).astype(np.float64)
    r, g, b = np.tensordot(_ICT_INVERSE, stack, axes=1)
    return r, g, b


def dc_shift_forward(samples: np.ndarray, bit_depth: int) -> np.ndarray:
    """Subtract the half-range offset before coding."""
    return np.asarray(samples, dtype=np.int64) - (1 << (bit_depth - 1))


def dc_shift_inverse(samples: np.ndarray, bit_depth: int) -> np.ndarray:
    """Add the offset back and clamp to the sample range (the DC stage)."""
    shifted = np.asarray(samples, dtype=np.float64) + (1 << (bit_depth - 1))
    rounded = np.rint(shifted)
    return np.clip(rounded, 0, (1 << bit_depth) - 1).astype(np.int64)


# -- fused whole-plane kernels -------------------------------------------------
#
# The two-stage path above exists as the readable Fig. 1 reference; the
# fused kernels below combine the inverse colour transform with the DC
# shift in one pass per plane.  They are value-identical by construction:
# the RCT path stays in int64 end to end (the reference's float64 round
# trip is exact below 2^53, so skipping it changes nothing), and the ICT
# path performs the identical float64 operations in the identical order.


def rct_dc_inverse(y: np.ndarray, u: np.ndarray, v: np.ndarray, bit_depth: int):
    """Fused inverse RCT + DC level shift, all-integer (5/3 path)."""
    y = np.asarray(y, dtype=np.int64)
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    g = y - ((u + v) >> 2)
    r = v + g
    b = u + g
    offset = 1 << (bit_depth - 1)
    top = (1 << bit_depth) - 1
    return (
        np.clip(r + offset, 0, top),
        np.clip(g + offset, 0, top),
        np.clip(b + offset, 0, top),
    )


def ict_dc_inverse(y: np.ndarray, cb: np.ndarray, cr: np.ndarray, bit_depth: int):
    """Fused inverse ICT + DC level shift (9/7 path)."""
    stack = np.stack([y, cb, cr]).astype(np.float64)
    offset = 1 << (bit_depth - 1)
    top = (1 << bit_depth) - 1
    return tuple(
        np.clip(np.rint(plane + offset), 0, top).astype(np.int64)
        for plane in np.tensordot(_ICT_INVERSE, stack, axes=1)
    )
