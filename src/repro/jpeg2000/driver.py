"""The decode-plan driver: one executor for every schedule.

Executes a compiled, validated :class:`~repro.jpeg2000.plan.DecodePlan`
over a list of per-tile ``TileStages`` drivers.  The driver — not the
stage modules — owns the schedule choice (sequential batch, barrier
fan-out, streaming overlap), the runtime degradation chain, and the
:class:`StageFates` record of what actually ran.  The stage modules
only ever see their own slice of the plan.

Three schedules, dispatched from the plan's entropy binding:

``_run_sequential``
    Inline (or single-tile) decode: every tile's Tier-2 parse first,
    then one entropy call over all blocks of the image (a single kernel
    batch for the batched impl — and still a pool fan-out when a
    single-tile plan binds one), then the cross-tile vectorised
    reconstruction.
``_run_barrier``
    Pool entropy without overlap: full parse, one size-aware fan-out,
    then per-tile gather and reconstruction.
``_run_overlapped``
    Pool entropy with overlap: the output arena is laid out from pure
    geometry before parsing, each tile's chunks ship the moment its
    packet headers are read, and finished tiles gather and reconstruct
    on the main process while later tiles are still decoding in the
    workers.

Degradations are *plan rewrites*: overlap unusable → barrier, arena
unusable → pickle, pool unusable → inline, broken pool → per-chunk
resume.  Each is recorded on the fate map, which the flight recorder
embeds (with the compiled plan) in every crash report.
"""

from __future__ import annotations

from typing import Optional

from .. import telemetry
from .pipeline import STAGE_ARITH
from .plan import (
    EXECUTOR_POOL,
    STAGE_ENTROPY,
    STAGE_PARSE,
    STAGE_RECONSTRUCT,
    DecodePlan,
)
from .stages import entropy as entropy_stage
from .stages import reconstruct as reconstruct_stage


class StageFates:
    """What actually happened to each planned stage of one decode.

    ``fates[stage]`` is ``{"state": ..., "rewrites": [...]}`` where
    *state* walks planned → running → done and each rewrite is a
    ``{"rule", "detail"}`` record of a runtime degradation (arena →
    pickle, pool → inline, broken-pool resume, overlap → barrier).
    :meth:`publish` installs the compiled plan and this (live, mutable)
    map into the flight-recorder context, so a crash report dumped at
    any point shows both the plan and the per-stage fates as of the
    crash.
    """

    def __init__(self, plan: DecodePlan):
        self.plan = plan
        self.fates: dict = {
            binding.stage: {"state": "planned", "rewrites": []}
            for binding in plan.stages
        }

    def publish(self) -> None:
        flight = telemetry.flight_recorder()
        if flight is not None:
            flight.set_context("plan", {
                "digest": self.plan.digest(), **self.plan.as_dict(),
            })
            flight.set_context("stage_fates", self.fates)

    def begin(self, stage: str) -> None:
        self.fates[stage]["state"] = "running"

    def done(self, stage: str) -> None:
        self.fates[stage]["state"] = "done"

    def rewrite(self, stage: str, rule: str, detail: str) -> None:
        self.fates[stage]["rewrites"].append({"rule": rule, "detail": detail})
        telemetry.log_event("plan.rewrite", stage=stage, rule=rule,
                            detail=detail)


def run_tiles(
    plan: DecodePlan,
    stages_list: list,
    *,
    schedule: Optional[dict] = None,
    fates: Optional[StageFates] = None,
) -> dict:
    """Execute *plan* over the tiles; returns tile index → sample planes.

    *schedule* is the caller's reporting dict (``DecodeOptions
    .schedule_info()``) installed into crash reports; *fates* collects
    the per-stage outcome (one is created if the caller keeps none).
    """
    if fates is None:
        fates = StageFates(plan)
    fates.publish()
    binding = plan.stage(STAGE_ENTROPY)
    executor = binding.executor
    if executor.kind == EXECUTOR_POOL and len(stages_list) > 1:
        if executor.overlap:
            planes = _run_overlapped(binding, stages_list, schedule, fates)
            if planes is not None:
                return planes
            fates.rewrite(
                STAGE_ENTROPY, "overlap-unavailable",
                "streaming transport unusable; taking the barrier schedule",
            )
        return _run_barrier(binding, stages_list, schedule, fates)
    return _run_sequential(binding, stages_list, schedule, fates)


def _run_sequential(binding, stages_list, schedule, fates) -> dict:
    """Parse and decode every tile in one batch (see module doc)."""
    layouts: list = []
    firsts: list = []
    sources: list = []
    spec_pairs: list = []
    fates.begin(STAGE_PARSE)
    with telemetry.software_span("stage", "t2_parse", "decode"):
        for stages in stages_list:
            layout, specs = stages.entropy_specs()
            layouts.append(layout)
            firsts.append(len(spec_pairs))
            source_index = len(sources)
            sources.append(stages.data)
            spec_pairs.extend((source_index, spec) for spec in specs)
    fates.done(STAGE_PARSE)
    fates.begin(STAGE_ENTROPY)
    with telemetry.software_span("sw", STAGE_ARITH, "decode"):
        with telemetry.software_span("stage", "t1_decode", "decode"):
            flat, offsets, ops = entropy_stage.run_specs(
                sources, spec_pairs, binding,
                schedule=schedule, fates=fates,
            )
    with telemetry.software_span("stage", "gather", "decode"):
        bands_by_tile = [
            stages.scatter_entropy(
                layouts[index], flat, offsets, ops, firsts[index]
            )
            for index, stages in enumerate(stages_list)
        ]
    fates.done(STAGE_ENTROPY)
    fates.begin(STAGE_RECONSTRUCT)
    planes = reconstruct_stage.finish_tiles(stages_list, bands_by_tile)
    fates.done(STAGE_RECONSTRUCT)
    return planes


def _run_barrier(binding, stages_list, schedule, fates) -> dict:
    """The non-overlapped pool schedule: parse all tiles, run one
    size-aware fan-out over every code block of the image, then
    reconstruct.  Kept as the fallback when the streaming path is
    unavailable (no shared memory, no pool, pathological bit depths)
    and for plans with overlap off."""
    sources: list = []
    spec_pairs: list = []
    layouts: list = []
    firsts: list = []
    fates.begin(STAGE_PARSE)
    fates.begin(STAGE_ENTROPY)
    with telemetry.software_span("sw", STAGE_ARITH, "decode"):
        with telemetry.software_span("stage", "t2_parse", "decode"):
            for stages in stages_list:
                layout, specs = stages.entropy_specs()
                firsts.append(len(spec_pairs))
                source_index = len(sources)
                sources.append(stages.data)
                spec_pairs.extend((source_index, spec) for spec in specs)
                layouts.append(layout)
        fates.done(STAGE_PARSE)
        with telemetry.software_span("stage", "t1_decode", "decode"):
            flat, offsets, ops = entropy_stage.run_specs(
                sources, spec_pairs, binding,
                schedule=schedule, fates=fates,
            )
    fates.done(STAGE_ENTROPY)
    fates.begin(STAGE_RECONSTRUCT)
    planes: dict[int, list] = {}
    for tile_index, stages in enumerate(stages_list):
        with telemetry.software_span("stage", "gather", "decode"):
            bands = stages.scatter_entropy(
                layouts[tile_index], flat, offsets, ops, firsts[tile_index]
            )
        planes.update(reconstruct_stage.finish_tiles([stages], [bands]))
    fates.done(STAGE_RECONSTRUCT)
    return planes


def _run_overlapped(binding, stages_list, schedule, fates) -> Optional[dict]:
    """Stream Tier-1 chunks to the pool as each tile's spans parse.

    The output arena is laid out from pure geometry
    (``TileStages.block_sizes``) before any parsing, so every tile's
    chunks ship the moment its packet headers are read; tiles then
    drain in submission order, and each finished tile's gather +
    reconstruction runs on the main process while the remaining tiles'
    entropy chunks are still decoding in the workers.  Returns ``None``
    when the streaming transport is unusable (caller falls back to the
    barrier schedule).
    """
    sizes: list[int] = []
    firsts: list[int] = []
    for stages in stages_list:
        tile_sizes = stages.block_sizes()
        firsts.append(len(sizes))
        sizes.extend(tile_sizes)
    stream = entropy_stage.open_stream(
        [stages.data for stages in stages_list], sizes, binding,
        schedule=schedule, fates=fates,
    )
    if stream is None:
        return None
    fates.begin(STAGE_PARSE)
    fates.begin(STAGE_ENTROPY)
    planes: dict[int, list] = {}
    try:
        with telemetry.software_span("stage", "t2_parse", "decode"):
            layouts = []
            for source_index, stages in enumerate(stages_list):
                layout, specs = stages.entropy_specs()
                layouts.append(layout)
                if not stream.submit_tile(source_index, specs, firsts[source_index]):
                    return None  # pathological stream: barrier fallback
        fates.done(STAGE_PARSE)
        fates.begin(STAGE_RECONSTRUCT)
        for source_index, stages in enumerate(stages_list):
            with telemetry.software_span("stage", "t1_decode", "decode"):
                flat, offsets, ops = stream.drain_tile(source_index)
            with telemetry.software_span("stage", "gather", "decode"):
                bands = stages.scatter_entropy(
                    layouts[source_index], flat, offsets, ops
                )
            planes.update(reconstruct_stage.finish_tiles([stages], [bands]))
        fates.done(STAGE_ENTROPY)
        fates.done(STAGE_RECONSTRUCT)
    finally:
        stream.close()
    return planes
