"""Optimised EBCOT Tier-1 decoder — the single-thread hot-path kernel.

Bit-for-bit equivalent to :class:`repro.jpeg2000.t1.CodeBlockDecoder`
(same coefficients, same basic-operation count), but restructured for
CPython speed.  This is the per-block kernel the parallel decode path
(``repro.jpeg2000.parallel``) distributes over worker processes; the
reference decoder in ``t1.py`` stays as the readable specification and
as the parity oracle for tests.

What changes relative to the reference:

* the MQ decoder's DECODE / EXCHANGE / RENORMD / BYTEIN chain is one
  closure over local-variable register state — no per-bit attribute
  traffic;
* context states live in two flat lists instead of objects;
* the per-sample 8-neighbour significance scan is replaced by one packed
  counter per sample (``h | v << 2 | d << 4``), updated incrementally
  each time a sample becomes significant — turning the dominant
  ``neighbour_counts`` cost into a single list read;
* zero-coding contexts come from the precomputed ``context.ZC_LUT``
  table indexed by the packed counter.

The operation counter keeps the reference semantics exactly: +1 per MQ
decision, +1 per renormalisation shift, so the Fig. 1 / Table 1 cycle
models are unaffected by which kernel decodes a block.
"""

from __future__ import annotations

from typing import Optional

from .context import CTX_RUN, CTX_UNI, SC_LUT, ZC_LUT
from .mq import QE_TABLE

#: QE_TABLE split into parallel tuples so the common decode path loads
#: only the fields it needs (the Qe probability) instead of unpacking a
#: 4-tuple per decision.
_QE = tuple(row[0] for row in QE_TABLE)
_NMPS = tuple(row[1] for row in QE_TABLE)
_NLPS = tuple(row[2] for row in QE_TABLE)
_SWITCH = tuple(row[3] for row in QE_TABLE)


class FastCodeBlockDecoder:
    """Drop-in replacement for :class:`~repro.jpeg2000.t1.CodeBlockDecoder`."""

    def __init__(self, data: bytes, width: int, height: int, orientation: str,
                 num_bitplanes: int, num_passes: Optional[int] = None):
        if width < 1 or height < 1:
            raise ValueError("code block dimensions must be positive")
        if orientation not in ZC_LUT:
            raise ValueError(f"unknown subband orientation {orientation!r}")
        self.orientation = orientation
        self.width = width
        self.height = height
        self.data = data
        self.num_bitplanes = num_bitplanes
        self.num_passes = num_passes
        self.ops = 0

    def decode(self) -> list[int]:
        """Return the signed coefficients, row major."""
        w = self.width
        h = self.height
        size = w * h
        planes = self.num_bitplanes
        if planes == 0:
            return [0] * size

        data = self.data
        length = len(data)
        zc = ZC_LUT[self.orientation]
        qe_tab = _QE
        nmps_tab = _NMPS
        nlps_tab = _NLPS
        switch_tab = _SWITCH

        # Per-sample coding state (flat, row major).
        sigma = bytearray(size)
        visited = bytearray(size)
        refined = bytearray(size)
        sign = bytearray(size)
        nb = bytearray(size)  # packed neighbour counts: h | v << 2 | d << 4
        magnitude = [0] * size

        # Context bank as flat lists (indices match context.initial_contexts).
        cx_index = [0] * 19
        cx_mps = [0] * 19
        cx_index[0] = 4
        cx_index[CTX_RUN] = 3
        cx_index[CTX_UNI] = 46

        # INITDEC with register state in closure variables.
        c = (data[0] if length > 0 else 0xFF) << 16
        bp = 0
        if (data[0] if length > 0 else 0xFF) == 0xFF:
            if (data[1] if length > 1 else 0xFF) > 0x8F:
                c += 0xFF00
                ct = 8
            else:
                bp = 1
                c += (data[1] if length > 1 else 0xFF) << 9
                ct = 7
        else:
            bp = 1
            c += (data[1] if length > 1 else 0xFF) << 8
            ct = 8
        c <<= 7
        ct -= 7
        a = 0x8000
        ops = 0

        def mq_decode(k: int) -> int:
            """One MQ decision in context *k* (flattened hot loop).

            ``c`` stays below 2**32 between calls, so ``c >> 16`` never
            exceeds 0xFFFF and the spec's Chigh mask is unnecessary here.
            """
            nonlocal a, c, ct, bp, ops
            i = cx_index[k]
            qe = qe_tab[i]
            ops += 1
            a -= qe
            if (c >> 16) < qe:
                # LPS exchange path
                if a < qe:
                    bit = cx_mps[k]
                    cx_index[k] = nmps_tab[i]
                else:
                    bit = 1 - cx_mps[k]
                    if switch_tab[i]:
                        cx_mps[k] = bit
                    cx_index[k] = nlps_tab[i]
                a = qe
            else:
                c -= qe << 16
                if a & 0x8000:
                    return cx_mps[k]
                # MPS exchange path
                if a < qe:
                    bit = 1 - cx_mps[k]
                    if switch_tab[i]:
                        cx_mps[k] = bit
                    cx_index[k] = nlps_tab[i]
                else:
                    bit = cx_mps[k]
                    cx_index[k] = nmps_tab[i]
            while True:  # RENORMD with BYTEIN inline
                if ct == 0:
                    byte = data[bp] if bp < length else 0xFF
                    if byte == 0xFF:
                        if (data[bp + 1] if bp + 1 < length else 0xFF) > 0x8F:
                            c += 0xFF00
                            ct = 8
                        else:
                            bp += 1
                            c += (data[bp] if bp < length else 0xFF) << 9
                            ct = 7
                    else:
                        bp += 1
                        c += (data[bp] if bp < length else 0xFF) << 8
                        ct = 8
                a = (a << 1) & 0xFFFF
                c = (c << 1) & 0xFFFFFFFF
                ct -= 1
                ops += 1
                if a & 0x8000:
                    break
            return bit

        w1 = w - 1
        h1 = h - 1

        def set_significant(idx: int, x: int, y: int) -> None:
            """Mark a sample significant; bump neighbours' packed counts."""
            sigma[idx] = 1
            left = x > 0
            right = x < w1
            if left:
                nb[idx - 1] += 1
            if right:
                nb[idx + 1] += 1
            if y > 0:
                up = idx - w
                nb[up] += 4
                if left:
                    nb[up - 1] += 16
                if right:
                    nb[up + 1] += 16
            if y < h1:
                down = idx + w
                nb[down] += 4
                if left:
                    nb[down - 1] += 16
                if right:
                    nb[down + 1] += 16

        def decode_sign(idx: int, x: int, y: int) -> None:
            """Sign coding from clipped neighbour contributions (D.3.2)."""
            h_sum = 0
            if x > 0:
                j = idx - 1
                if sigma[j]:
                    h_sum = -1 if sign[j] else 1
            if x < w1:
                j = idx + 1
                if sigma[j]:
                    h_sum += -1 if sign[j] else 1
            if h_sum > 1:
                h_sum = 1
            elif h_sum < -1:
                h_sum = -1
            v_sum = 0
            if y > 0:
                j = idx - w
                if sigma[j]:
                    v_sum = -1 if sign[j] else 1
            if y < h1:
                j = idx + w
                if sigma[j]:
                    v_sum += -1 if sign[j] else 1
            if v_sum > 1:
                v_sum = 1
            elif v_sum < -1:
                v_sum = -1
            ctx, xor_bit = SC_LUT[h_sum * 3 + v_sum + 4]
            sign[idx] = mq_decode(ctx) ^ xor_bit

        def significance_pass(bit_mask: int) -> None:
            sig, vis, counts, mag = sigma, visited, nb, magnitude
            dec, lut = mq_decode, zc
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                for x in range(w):
                    idx = base + x
                    for y in range(stripe_top, stripe_top + stripe_rows):
                        if not sig[idx]:
                            packed = counts[idx]
                            if packed:
                                vis[idx] = 1
                                if dec(lut[packed]):
                                    mag[idx] |= bit_mask
                                    set_significant(idx, x, y)
                                    decode_sign(idx, x, y)
                        idx += w

        def refinement_pass(bit_mask: int) -> None:
            sig, vis, counts, mag, ref = sigma, visited, nb, magnitude, refined
            dec = mq_decode
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                for x in range(w):
                    idx = base + x
                    for _ in range(stripe_rows):
                        if sig[idx] and not vis[idx]:
                            if ref[idx]:
                                k = 16
                            elif counts[idx]:
                                k = 15
                            else:
                                k = 14
                            if dec(k):
                                mag[idx] |= bit_mask
                            ref[idx] = 1
                        idx += w

        def cleanup_pass(bit_mask: int) -> None:
            sig, vis, counts, mag = sigma, visited, nb, magnitude
            dec, lut = mq_decode, zc
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                full = stripe_rows == 4
                for x in range(w):
                    top = base + x
                    start_row = 0
                    if full:
                        i1 = top + w
                        i2 = i1 + w
                        i3 = i2 + w
                        if not (
                            sig[top] or vis[top] or counts[top]
                            or sig[i1] or vis[i1] or counts[i1]
                            or sig[i2] or vis[i2] or counts[i2]
                            or sig[i3] or vis[i3] or counts[i3]
                        ):
                            if not dec(CTX_RUN):
                                continue
                            first_one = (dec(CTX_UNI) << 1) | dec(CTX_UNI)
                            y = stripe_top + first_one
                            idx = top + first_one * w
                            mag[idx] |= bit_mask
                            set_significant(idx, x, y)
                            decode_sign(idx, x, y)
                            start_row = first_one + 1
                    idx = top + start_row * w
                    for k in range(start_row, stripe_rows):
                        if not (sig[idx] or vis[idx]):
                            if dec(lut[counts[idx]]):
                                y = stripe_top + k
                                mag[idx] |= bit_mask
                                set_significant(idx, x, y)
                                decode_sign(idx, x, y)
                        idx += w

        passes_done = 0
        passes_limit = (
            self.num_passes if self.num_passes is not None else 3 * planes - 2
        )
        for plane in range(planes - 1, -1, -1):
            bit_mask = 1 << plane
            if plane != planes - 1:
                if passes_done >= passes_limit:
                    break
                significance_pass(bit_mask)
                passes_done += 1
                if passes_done >= passes_limit:
                    break
                refinement_pass(bit_mask)
                passes_done += 1
            if passes_done >= passes_limit:
                break
            cleanup_pass(bit_mask)
            passes_done += 1
            visited[:] = bytes(size)

        self.ops = ops
        return [
            -magnitude[idx] if sign[idx] else magnitude[idx] for idx in range(size)
        ]
