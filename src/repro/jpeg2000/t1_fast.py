"""Optimised EBCOT Tier-1 decoder — the single-thread hot-path kernel.

Bit-for-bit equivalent to :class:`repro.jpeg2000.t1.CodeBlockDecoder`
(same coefficients, same basic-operation count), but restructured for
CPython speed.  This is the per-block kernel the parallel decode path
(``repro.jpeg2000.parallel``) distributes over worker processes; the
reference decoder in ``t1.py`` stays as the readable specification and
as the parity oracle for tests.

What changes relative to the reference:

* the MQ decoder's DECODE / EXCHANGE / RENORMD / BYTEIN chain is one
  closure over local-variable register state — no per-bit attribute
  traffic;
* context states live in two flat lists instead of objects;
* the per-sample 8-neighbour significance scan is replaced by one packed
  counter per sample (``h | v << 2 | d << 4``), updated incrementally
  each time a sample becomes significant — turning the dominant
  ``neighbour_counts`` cost into a single list read;
* zero-coding contexts come from the precomputed ``context.ZC_LUT``
  table indexed by the packed counter.

The operation counter keeps the reference semantics exactly: +1 per MQ
decision, +1 per renormalisation shift, so the Fig. 1 / Table 1 cycle
models are unaffected by which kernel decodes a block.

:func:`decode_codeblock_batch` at the bottom is the *batched* entry
point: it runs the same cleanup-pass/bitplane loops across a whole chunk
of code blocks through one shared set of closures, reuses the per-sample
scratch buffers, and vectorises the final sign application with NumPy —
amortising the per-block Python overhead that dominates on small blocks
(the paper workload's 32x32 grid produces hundreds of them).  It is the
kernel the shared-memory parallel path ships to its workers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .context import CTX_RUN, CTX_UNI, SC_LUT, ZC_LUT
from .mq import QE_TABLE

#: QE_TABLE split into parallel tuples so the common decode path loads
#: only the fields it needs (the Qe probability) instead of unpacking a
#: 4-tuple per decision.
_QE = tuple(row[0] for row in QE_TABLE)
_NMPS = tuple(row[1] for row in QE_TABLE)
_NLPS = tuple(row[2] for row in QE_TABLE)
_SWITCH = tuple(row[3] for row in QE_TABLE)


class FastCodeBlockDecoder:
    """Drop-in replacement for :class:`~repro.jpeg2000.t1.CodeBlockDecoder`."""

    def __init__(self, data: bytes, width: int, height: int, orientation: str,
                 num_bitplanes: int, num_passes: Optional[int] = None):
        if width < 1 or height < 1:
            raise ValueError("code block dimensions must be positive")
        if orientation not in ZC_LUT:
            raise ValueError(f"unknown subband orientation {orientation!r}")
        self.orientation = orientation
        self.width = width
        self.height = height
        self.data = data
        self.num_bitplanes = num_bitplanes
        self.num_passes = num_passes
        self.ops = 0

    def decode(self) -> list[int]:
        """Return the signed coefficients, row major."""
        w = self.width
        h = self.height
        size = w * h
        planes = self.num_bitplanes
        if planes == 0:
            return [0] * size

        data = self.data
        length = len(data)
        zc = ZC_LUT[self.orientation]
        qe_tab = _QE
        nmps_tab = _NMPS
        nlps_tab = _NLPS
        switch_tab = _SWITCH

        # Per-sample coding state (flat, row major).
        sigma = bytearray(size)
        visited = bytearray(size)
        refined = bytearray(size)
        sign = bytearray(size)
        nb = bytearray(size)  # packed neighbour counts: h | v << 2 | d << 4
        magnitude = [0] * size

        # Context bank as flat lists (indices match context.initial_contexts).
        cx_index = [0] * 19
        cx_mps = [0] * 19
        cx_index[0] = 4
        cx_index[CTX_RUN] = 3
        cx_index[CTX_UNI] = 46

        # INITDEC with register state in closure variables.
        c = (data[0] if length > 0 else 0xFF) << 16
        bp = 0
        if (data[0] if length > 0 else 0xFF) == 0xFF:
            if (data[1] if length > 1 else 0xFF) > 0x8F:
                c += 0xFF00
                ct = 8
            else:
                bp = 1
                c += (data[1] if length > 1 else 0xFF) << 9
                ct = 7
        else:
            bp = 1
            c += (data[1] if length > 1 else 0xFF) << 8
            ct = 8
        c <<= 7
        ct -= 7
        a = 0x8000
        ops = 0

        def mq_decode(k: int) -> int:
            """One MQ decision in context *k* (flattened hot loop).

            ``c`` stays below 2**32 between calls, so ``c >> 16`` never
            exceeds 0xFFFF and the spec's Chigh mask is unnecessary here.
            """
            nonlocal a, c, ct, bp, ops
            i = cx_index[k]
            qe = qe_tab[i]
            ops += 1
            a -= qe
            if (c >> 16) < qe:
                # LPS exchange path
                if a < qe:
                    bit = cx_mps[k]
                    cx_index[k] = nmps_tab[i]
                else:
                    bit = 1 - cx_mps[k]
                    if switch_tab[i]:
                        cx_mps[k] = bit
                    cx_index[k] = nlps_tab[i]
                a = qe
            else:
                c -= qe << 16
                if a & 0x8000:
                    return cx_mps[k]
                # MPS exchange path
                if a < qe:
                    bit = 1 - cx_mps[k]
                    if switch_tab[i]:
                        cx_mps[k] = bit
                    cx_index[k] = nlps_tab[i]
                else:
                    bit = cx_mps[k]
                    cx_index[k] = nmps_tab[i]
            while True:  # RENORMD with BYTEIN inline
                if ct == 0:
                    byte = data[bp] if bp < length else 0xFF
                    if byte == 0xFF:
                        if (data[bp + 1] if bp + 1 < length else 0xFF) > 0x8F:
                            c += 0xFF00
                            ct = 8
                        else:
                            bp += 1
                            c += (data[bp] if bp < length else 0xFF) << 9
                            ct = 7
                    else:
                        bp += 1
                        c += (data[bp] if bp < length else 0xFF) << 8
                        ct = 8
                a = (a << 1) & 0xFFFF
                c = (c << 1) & 0xFFFFFFFF
                ct -= 1
                ops += 1
                if a & 0x8000:
                    break
            return bit

        w1 = w - 1
        h1 = h - 1

        def set_significant(idx: int, x: int, y: int) -> None:
            """Mark a sample significant; bump neighbours' packed counts."""
            sigma[idx] = 1
            left = x > 0
            right = x < w1
            if left:
                nb[idx - 1] += 1
            if right:
                nb[idx + 1] += 1
            if y > 0:
                up = idx - w
                nb[up] += 4
                if left:
                    nb[up - 1] += 16
                if right:
                    nb[up + 1] += 16
            if y < h1:
                down = idx + w
                nb[down] += 4
                if left:
                    nb[down - 1] += 16
                if right:
                    nb[down + 1] += 16

        def decode_sign(idx: int, x: int, y: int) -> None:
            """Sign coding from clipped neighbour contributions (D.3.2)."""
            h_sum = 0
            if x > 0:
                j = idx - 1
                if sigma[j]:
                    h_sum = -1 if sign[j] else 1
            if x < w1:
                j = idx + 1
                if sigma[j]:
                    h_sum += -1 if sign[j] else 1
            if h_sum > 1:
                h_sum = 1
            elif h_sum < -1:
                h_sum = -1
            v_sum = 0
            if y > 0:
                j = idx - w
                if sigma[j]:
                    v_sum = -1 if sign[j] else 1
            if y < h1:
                j = idx + w
                if sigma[j]:
                    v_sum += -1 if sign[j] else 1
            if v_sum > 1:
                v_sum = 1
            elif v_sum < -1:
                v_sum = -1
            ctx, xor_bit = SC_LUT[h_sum * 3 + v_sum + 4]
            sign[idx] = mq_decode(ctx) ^ xor_bit

        def significance_pass(bit_mask: int) -> None:
            sig, vis, counts, mag = sigma, visited, nb, magnitude
            dec, lut = mq_decode, zc
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                for x in range(w):
                    idx = base + x
                    for y in range(stripe_top, stripe_top + stripe_rows):
                        if not sig[idx]:
                            packed = counts[idx]
                            if packed:
                                vis[idx] = 1
                                if dec(lut[packed]):
                                    mag[idx] |= bit_mask
                                    set_significant(idx, x, y)
                                    decode_sign(idx, x, y)
                        idx += w

        def refinement_pass(bit_mask: int) -> None:
            sig, vis, counts, mag, ref = sigma, visited, nb, magnitude, refined
            dec = mq_decode
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                for x in range(w):
                    idx = base + x
                    for _ in range(stripe_rows):
                        if sig[idx] and not vis[idx]:
                            if ref[idx]:
                                k = 16
                            elif counts[idx]:
                                k = 15
                            else:
                                k = 14
                            if dec(k):
                                mag[idx] |= bit_mask
                            ref[idx] = 1
                        idx += w

        def cleanup_pass(bit_mask: int) -> None:
            sig, vis, counts, mag = sigma, visited, nb, magnitude
            dec, lut = mq_decode, zc
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                full = stripe_rows == 4
                for x in range(w):
                    top = base + x
                    start_row = 0
                    if full:
                        i1 = top + w
                        i2 = i1 + w
                        i3 = i2 + w
                        if not (
                            sig[top] or vis[top] or counts[top]
                            or sig[i1] or vis[i1] or counts[i1]
                            or sig[i2] or vis[i2] or counts[i2]
                            or sig[i3] or vis[i3] or counts[i3]
                        ):
                            if not dec(CTX_RUN):
                                continue
                            first_one = (dec(CTX_UNI) << 1) | dec(CTX_UNI)
                            y = stripe_top + first_one
                            idx = top + first_one * w
                            mag[idx] |= bit_mask
                            set_significant(idx, x, y)
                            decode_sign(idx, x, y)
                            start_row = first_one + 1
                    idx = top + start_row * w
                    for k in range(start_row, stripe_rows):
                        if not (sig[idx] or vis[idx]):
                            if dec(lut[counts[idx]]):
                                y = stripe_top + k
                                mag[idx] |= bit_mask
                                set_significant(idx, x, y)
                                decode_sign(idx, x, y)
                        idx += w

        passes_done = 0
        passes_limit = (
            self.num_passes if self.num_passes is not None else 3 * planes - 2
        )
        for plane in range(planes - 1, -1, -1):
            bit_mask = 1 << plane
            if plane != planes - 1:
                if passes_done >= passes_limit:
                    break
                significance_pass(bit_mask)
                passes_done += 1
                if passes_done >= passes_limit:
                    break
                refinement_pass(bit_mask)
                passes_done += 1
            if passes_done >= passes_limit:
                break
            cleanup_pass(bit_mask)
            passes_done += 1
            visited[:] = bytes(size)

        self.ops = ops
        return [
            -magnitude[idx] if sign[idx] else magnitude[idx] for idx in range(size)
        ]


#: A batched decode task: (data, width, height, orientation,
#: num_bitplanes, num_passes, out_offset).  ``out_offset`` is the block's
#: first sample in the flat output array, so a worker can write its whole
#: chunk into one shared coefficient buffer without intermediate lists.
BatchBlock = tuple


def decode_codeblock_batch(blocks: Sequence[BatchBlock], out=None):
    """Decode a chunk of code blocks through one shared kernel instance.

    Bit-for-bit identical to running :class:`FastCodeBlockDecoder` on
    each block (same coefficients, same per-block op counts), but the MQ
    decoder, the pass closures, and the per-sample scratch buffers are
    built once per *batch* instead of once per *block*, and the final
    sign application runs vectorised — the per-block Python overhead the
    parallel scheduler pays hundreds of times per tile is paid once here.

    ``out`` is a flat 1-D integer array (typically an ``int32`` view over
    a shared-memory arena) that every block writes into at its
    ``out_offset``; when ``None`` a fresh ``int32`` array sized to the
    batch is allocated, with blocks laid end to end at their offsets.

    Returns ``(out, ops)`` where ``ops[i]`` is block *i*'s basic-op
    count.  Blocks with more than 30 bit planes must go through the
    unbatched kernels (the flat output is ``int32``); the caller guards
    this, and the function raises ``ValueError`` as a backstop.
    """
    if out is None:
        total = 0
        for block in blocks:
            offset_end = block[6] + block[1] * block[2]
            total = offset_end if offset_end > total else total
        out = np.zeros(total, dtype=np.int32)

    qe_tab = _QE
    nmps_tab = _NMPS
    nlps_tab = _NLPS
    switch_tab = _SWITCH

    # Scratch buffers sized to the largest block of the batch, re-zeroed
    # per block — the kernels only ever touch the first ``size`` bytes.
    max_size = 0
    for block in blocks:
        size = block[1] * block[2]
        max_size = size if size > max_size else max_size
    sigma = bytearray(max_size)
    visited = bytearray(max_size)
    refined = bytearray(max_size)
    sign = bytearray(max_size)
    nb = bytearray(max_size)
    zero_fill = bytes(max_size)
    cx_index = [0] * 19
    cx_mps = [0] * 19

    # Per-block state the closures read; rebound in the block loop.
    data = b""
    length = 0
    w = h = w1 = h1 = 0
    size = 0
    zc = ZC_LUT["LL"]
    magnitude: list = []
    a = c = ct = bp = ops = 0

    def mq_decode(k: int) -> int:
        # Verbatim the single-block kernel's decision path (see
        # FastCodeBlockDecoder.decode) — op parity depends on it.
        nonlocal a, c, ct, bp, ops
        i = cx_index[k]
        qe = qe_tab[i]
        ops += 1
        a -= qe
        if (c >> 16) < qe:
            if a < qe:
                bit = cx_mps[k]
                cx_index[k] = nmps_tab[i]
            else:
                bit = 1 - cx_mps[k]
                if switch_tab[i]:
                    cx_mps[k] = bit
                cx_index[k] = nlps_tab[i]
            a = qe
        else:
            c -= qe << 16
            if a & 0x8000:
                return cx_mps[k]
            if a < qe:
                bit = 1 - cx_mps[k]
                if switch_tab[i]:
                    cx_mps[k] = bit
                cx_index[k] = nlps_tab[i]
            else:
                bit = cx_mps[k]
                cx_index[k] = nmps_tab[i]
        while True:
            if ct == 0:
                byte = data[bp] if bp < length else 0xFF
                if byte == 0xFF:
                    if (data[bp + 1] if bp + 1 < length else 0xFF) > 0x8F:
                        c += 0xFF00
                        ct = 8
                    else:
                        bp += 1
                        c += (data[bp] if bp < length else 0xFF) << 9
                        ct = 7
                else:
                    bp += 1
                    c += (data[bp] if bp < length else 0xFF) << 8
                    ct = 8
            a = (a << 1) & 0xFFFF
            c = (c << 1) & 0xFFFFFFFF
            ct -= 1
            ops += 1
            if a & 0x8000:
                break
        return bit

    def set_significant(idx: int, x: int, y: int) -> None:
        sigma[idx] = 1
        left = x > 0
        right = x < w1
        if left:
            nb[idx - 1] += 1
        if right:
            nb[idx + 1] += 1
        if y > 0:
            up = idx - w
            nb[up] += 4
            if left:
                nb[up - 1] += 16
            if right:
                nb[up + 1] += 16
        if y < h1:
            down = idx + w
            nb[down] += 4
            if left:
                nb[down - 1] += 16
            if right:
                nb[down + 1] += 16

    def decode_sign(idx: int, x: int, y: int) -> None:
        h_sum = 0
        if x > 0:
            j = idx - 1
            if sigma[j]:
                h_sum = -1 if sign[j] else 1
        if x < w1:
            j = idx + 1
            if sigma[j]:
                h_sum += -1 if sign[j] else 1
        if h_sum > 1:
            h_sum = 1
        elif h_sum < -1:
            h_sum = -1
        v_sum = 0
        if y > 0:
            j = idx - w
            if sigma[j]:
                v_sum = -1 if sign[j] else 1
        if y < h1:
            j = idx + w
            if sigma[j]:
                v_sum += -1 if sign[j] else 1
        if v_sum > 1:
            v_sum = 1
        elif v_sum < -1:
            v_sum = -1
        ctx, xor_bit = SC_LUT[h_sum * 3 + v_sum + 4]
        sign[idx] = mq_decode(ctx) ^ xor_bit

    def significance_pass(bit_mask: int) -> None:
        sig, vis, counts, mag = sigma, visited, nb, magnitude
        dec, lut = mq_decode, zc
        for stripe_top in range(0, h, 4):
            stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
            base = stripe_top * w
            for x in range(w):
                idx = base + x
                for y in range(stripe_top, stripe_top + stripe_rows):
                    if not sig[idx]:
                        packed = counts[idx]
                        if packed:
                            vis[idx] = 1
                            if dec(lut[packed]):
                                mag[idx] |= bit_mask
                                set_significant(idx, x, y)
                                decode_sign(idx, x, y)
                    idx += w

    def refinement_pass(bit_mask: int) -> None:
        sig, vis, counts, mag, ref = sigma, visited, nb, magnitude, refined
        dec = mq_decode
        for stripe_top in range(0, h, 4):
            stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
            base = stripe_top * w
            for x in range(w):
                idx = base + x
                for _ in range(stripe_rows):
                    if sig[idx] and not vis[idx]:
                        if ref[idx]:
                            k = 16
                        elif counts[idx]:
                            k = 15
                        else:
                            k = 14
                        if dec(k):
                            mag[idx] |= bit_mask
                        ref[idx] = 1
                    idx += w

    def cleanup_pass(bit_mask: int) -> None:
        sig, vis, counts, mag = sigma, visited, nb, magnitude
        dec, lut = mq_decode, zc
        for stripe_top in range(0, h, 4):
            stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
            base = stripe_top * w
            full = stripe_rows == 4
            for x in range(w):
                top = base + x
                start_row = 0
                if full:
                    i1 = top + w
                    i2 = i1 + w
                    i3 = i2 + w
                    if not (
                        sig[top] or vis[top] or counts[top]
                        or sig[i1] or vis[i1] or counts[i1]
                        or sig[i2] or vis[i2] or counts[i2]
                        or sig[i3] or vis[i3] or counts[i3]
                    ):
                        if not dec(CTX_RUN):
                            continue
                        first_one = (dec(CTX_UNI) << 1) | dec(CTX_UNI)
                        y = stripe_top + first_one
                        idx = top + first_one * w
                        mag[idx] |= bit_mask
                        set_significant(idx, x, y)
                        decode_sign(idx, x, y)
                        start_row = first_one + 1
                idx = top + start_row * w
                for k in range(start_row, stripe_rows):
                    if not (sig[idx] or vis[idx]):
                        if dec(lut[counts[idx]]):
                            y = stripe_top + k
                            mag[idx] |= bit_mask
                            set_significant(idx, x, y)
                            decode_sign(idx, x, y)
                    idx += w

    op_counts: list[int] = []
    for block_data, width, height, orientation, num_bitplanes, num_passes, offset in blocks:
        if width < 1 or height < 1:
            raise ValueError("code block dimensions must be positive")
        if orientation not in ZC_LUT:
            raise ValueError(f"unknown subband orientation {orientation!r}")
        if num_bitplanes > 30:
            raise ValueError(
                "decode_codeblock_batch is limited to 30 bit planes "
                "(int32 output); use FastCodeBlockDecoder"
            )
        size = width * height
        if num_bitplanes == 0:
            out[offset:offset + size] = 0
            op_counts.append(0)
            continue

        data = block_data
        length = len(data)
        w, h = width, height
        w1, h1 = w - 1, h - 1
        zc = ZC_LUT[orientation]
        sigma[:size] = zero_fill[:size]
        visited[:size] = zero_fill[:size]
        refined[:size] = zero_fill[:size]
        sign[:size] = zero_fill[:size]
        nb[:size] = zero_fill[:size]
        magnitude = [0] * size
        cx_index[:] = (0,) * 19
        cx_mps[:] = (0,) * 19
        cx_index[0] = 4
        cx_index[CTX_RUN] = 3
        cx_index[CTX_UNI] = 46

        # INITDEC, verbatim from the single-block kernel.
        c = (data[0] if length > 0 else 0xFF) << 16
        bp = 0
        if (data[0] if length > 0 else 0xFF) == 0xFF:
            if (data[1] if length > 1 else 0xFF) > 0x8F:
                c += 0xFF00
                ct = 8
            else:
                bp = 1
                c += (data[1] if length > 1 else 0xFF) << 9
                ct = 7
        else:
            bp = 1
            c += (data[1] if length > 1 else 0xFF) << 8
            ct = 8
        c <<= 7
        ct -= 7
        a = 0x8000
        ops = 0

        passes_done = 0
        passes_limit = (
            num_passes if num_passes is not None else 3 * num_bitplanes - 2
        )
        for plane in range(num_bitplanes - 1, -1, -1):
            bit_mask = 1 << plane
            if plane != num_bitplanes - 1:
                if passes_done >= passes_limit:
                    break
                significance_pass(bit_mask)
                passes_done += 1
                if passes_done >= passes_limit:
                    break
                refinement_pass(bit_mask)
                passes_done += 1
            if passes_done >= passes_limit:
                break
            cleanup_pass(bit_mask)
            passes_done += 1
            visited[:size] = zero_fill[:size]

        values = np.array(magnitude, dtype=np.int64)
        signs = np.frombuffer(sign, dtype=np.uint8, count=size)
        np.negative(values, out=values, where=signs.astype(bool))
        out[offset:offset + size] = values
        op_counts.append(ops)

    return out, op_counts
