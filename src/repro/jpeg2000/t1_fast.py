"""Optimised EBCOT Tier-1 decoder — the single-thread hot-path kernel.

Bit-for-bit equivalent to :class:`repro.jpeg2000.t1.CodeBlockDecoder`
(same coefficients, same basic-operation count), but restructured for
CPython speed.  This is the per-block kernel the parallel decode path
(``repro.jpeg2000.parallel``) distributes over worker processes; the
reference decoder in ``t1.py`` stays as the readable specification and
as the parity oracle for tests.

What changes relative to the reference:

* the MQ decoder's DECODE / EXCHANGE / RENORMD / BYTEIN chain is one
  closure over local-variable register state — no per-bit attribute
  traffic;
* context states live in two flat lists instead of objects;
* the per-sample 8-neighbour significance scan is replaced by one packed
  counter per sample (``h | v << 2 | d << 4``), updated incrementally
  each time a sample becomes significant — turning the dominant
  ``neighbour_counts`` cost into a single list read;
* zero-coding contexts come from the precomputed ``context.ZC_LUT``
  table indexed by the packed counter.

The operation counter keeps the reference semantics exactly: +1 per MQ
decision, +1 per renormalisation shift, so the Fig. 1 / Table 1 cycle
models are unaffected by which kernel decodes a block.

:func:`decode_codeblock_batch` at the bottom is the *batched* entry
point: it runs the same cleanup-pass/bitplane loops across a whole chunk
of code blocks through one shared set of closures, reuses the per-sample
scratch buffers, and vectorises the final sign application with NumPy —
amortising the per-block Python overhead that dominates on small blocks
(the paper workload's 32x32 grid produces hundreds of them).  It is the
kernel the shared-memory parallel path ships to its workers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from .context import CTX_RUN, CTX_UNI, SC_LUT, ZC_LUT
from .mq import QE_TABLE

#: QE_TABLE split into parallel tuples so the common decode path loads
#: only the fields it needs (the Qe probability) instead of unpacking a
#: 4-tuple per decision.
_QE = tuple(row[0] for row in QE_TABLE)
_NMPS = tuple(row[1] for row in QE_TABLE)
_NLPS = tuple(row[2] for row in QE_TABLE)
_SWITCH = tuple(row[3] for row in QE_TABLE)
#: Qe pre-shifted into Chigh position: ``c >> 16 < qe`` is exactly
#: ``c < qe << 16`` (c stays below 2**32), saving a shift per decision.
_QE16 = tuple(q << 16 for q in _QE)

#: For a packed 4-bit column code (bit r = stripe row r), the row
#: indices whose bit is set, in scan order.
_CODE_ROWS = tuple(
    tuple(r for r in range(4) if code & (1 << r)) for code in range(16)
)

#: Neutral value of the packed sign-neighbourhood byte kept by the
#: batched kernel: horizontal contribution + 2 in the low nibble,
#: vertical contribution + 2 in the high nibble (each raw sum is in
#: [-2, 2], so the biased nibbles stay in 0..4 and never borrow/carry).
_HV_NEUTRAL = 0x22

#: Packed sign-neighbourhood byte -> (sign context, xor bit), with the
#: reference's clamp of each contribution to [-1, 1] baked in.  Bytes
#: with a nibble above 4 are unreachable; their entries are padding.
_SC_FULL = tuple(
    SC_LUT[
        (max(-1, min(1, (byte & 15) - 2)) + 1) * 3
        + (max(-1, min(1, (byte >> 4) - 2)) + 1)
    ]
    if (byte & 15) <= 4 and (byte >> 4) <= 4
    else (0, 0)
    for byte in range(256)
)
#: _SC_FULL split into two byte tables (context, xor bit) so the hot
#: path does two O(1) byte reads instead of a tuple unpack.
_SC_CTX = bytes(pair[0] for pair in _SC_FULL)
_SC_XOR = bytes(pair[1] for pair in _SC_FULL)


@lru_cache(maxsize=None)
def _edge_flags(w: int, h: int) -> bytes:
    """Per-sample boundary byte: bit 0 = no left neighbour, bit 1 = no
    right, bit 2 = no up, bit 3 = no down.  Zero for interior samples,
    which lets the significance propagation skip all four edge tests."""
    e = np.zeros((h, w), dtype=np.uint8)
    e[:, 0] |= 1
    e[:, -1] |= 2
    e[0, :] |= 4
    e[-1, :] |= 8
    return bytes(e.ravel())

@lru_cache(maxsize=None)
def _scan_layout(w: int, h: int):
    """Stripe table and scan-order index permutation for a block shape.

    Returns ``(stripes, order)`` where ``stripes`` is a tuple of
    ``(stripe_top, stripe_rows, base)`` and ``order`` is the flat sample
    indices in EBCOT scan order (stripe-major, then column, then row).
    """
    stripes = []
    for top in range(0, h, 4):
        rows = 4 if top + 4 <= h else h - top
        stripes.append((top, rows, top * w))
    cols = np.arange(w, dtype=np.intp)[:, None]
    order = np.concatenate([
        (base + cols + np.arange(rows, dtype=np.intp)[None, :] * w).ravel()
        for top, rows, base in stripes
    ])
    return tuple(stripes), order


def _column_codes(mask: np.ndarray, w: int, h: int) -> bytearray:
    """Pack a flat boolean sample mask into per-column stripe codes.

    Output byte ``s * w + x`` has bit ``r`` set iff ``mask`` is true at
    stripe ``s``, column ``x``, stripe row ``r``.
    """
    full = h & ~3
    parts = []
    if full:
        m = mask[: full * w].reshape(-1, 4, w).astype(np.uint8)
        parts.append(m[:, 0] | (m[:, 1] << 1) | (m[:, 2] << 2) | (m[:, 3] << 3))
    tail = h - full
    if tail:
        t = mask[full * w:].reshape(tail, w).astype(np.uint8)
        code = t[0].copy()
        for r in range(1, tail):
            code |= t[r] << r
        parts.append(code.reshape(1, w))
    return bytearray(np.concatenate(parts).tobytes())


class FastCodeBlockDecoder:
    """Drop-in replacement for :class:`~repro.jpeg2000.t1.CodeBlockDecoder`."""

    def __init__(self, data: bytes, width: int, height: int, orientation: str,
                 num_bitplanes: int, num_passes: Optional[int] = None):
        if width < 1 or height < 1:
            raise ValueError("code block dimensions must be positive")
        if orientation not in ZC_LUT:
            raise ValueError(f"unknown subband orientation {orientation!r}")
        self.orientation = orientation
        self.width = width
        self.height = height
        self.data = data
        self.num_bitplanes = num_bitplanes
        self.num_passes = num_passes
        self.ops = 0

    def decode(self) -> list[int]:
        """Return the signed coefficients, row major."""
        w = self.width
        h = self.height
        size = w * h
        planes = self.num_bitplanes
        if planes == 0:
            return [0] * size

        data = self.data
        length = len(data)
        zc = ZC_LUT[self.orientation]
        qe_tab = _QE
        qe16_tab = _QE16
        nmps_tab = _NMPS
        nlps_tab = _NLPS
        switch_tab = _SWITCH

        # Per-sample coding state (flat, row major).
        sigma = bytearray(size)
        visited = bytearray(size)
        refined = bytearray(size)
        sign = bytearray(size)
        nb = bytearray(size)  # packed neighbour counts: h | v << 2 | d << 4
        magnitude = [0] * size

        # Context bank as flat lists (indices match context.initial_contexts).
        cx_index = [0] * 19
        cx_mps = [0] * 19
        cx_index[0] = 4
        cx_index[CTX_RUN] = 3
        cx_index[CTX_UNI] = 46

        # INITDEC with register state in closure variables.
        c = (data[0] if length > 0 else 0xFF) << 16
        bp = 0
        if (data[0] if length > 0 else 0xFF) == 0xFF:
            if (data[1] if length > 1 else 0xFF) > 0x8F:
                c += 0xFF00
                ct = 8
            else:
                bp = 1
                c += (data[1] if length > 1 else 0xFF) << 9
                ct = 7
        else:
            bp = 1
            c += (data[1] if length > 1 else 0xFF) << 8
            ct = 8
        c <<= 7
        ct -= 7
        a = 0x8000
        ops = 0

        def mq_decode(k: int) -> int:
            """One MQ decision in context *k* (flattened hot loop).

            ``c`` stays below 2**32 between calls, so ``c >> 16`` never
            exceeds 0xFFFF and the spec's Chigh mask is unnecessary here;
            the ``c < qe << 16`` comparison is the same test with the
            shift precomputed in ``_QE16``.
            """
            nonlocal a, c, ct, bp, ops
            i = cx_index[k]
            qe = qe_tab[i]
            qe16 = qe16_tab[i]
            ops += 1
            a -= qe
            if c < qe16:
                # LPS exchange path
                if a < qe:
                    bit = cx_mps[k]
                    cx_index[k] = nmps_tab[i]
                else:
                    bit = 1 - cx_mps[k]
                    if switch_tab[i]:
                        cx_mps[k] = bit
                    cx_index[k] = nlps_tab[i]
                a = qe
            else:
                c -= qe16
                if a & 0x8000:
                    return cx_mps[k]
                # MPS exchange path
                if a < qe:
                    bit = 1 - cx_mps[k]
                    if switch_tab[i]:
                        cx_mps[k] = bit
                    cx_index[k] = nlps_tab[i]
                else:
                    bit = cx_mps[k]
                    cx_index[k] = nmps_tab[i]
            while True:  # RENORMD with BYTEIN inline
                if ct == 0:
                    byte = data[bp] if bp < length else 0xFF
                    if byte == 0xFF:
                        if (data[bp + 1] if bp + 1 < length else 0xFF) > 0x8F:
                            c += 0xFF00
                            ct = 8
                        else:
                            bp += 1
                            c += (data[bp] if bp < length else 0xFF) << 9
                            ct = 7
                    else:
                        bp += 1
                        c += (data[bp] if bp < length else 0xFF) << 8
                        ct = 8
                a = (a << 1) & 0xFFFF
                c = (c << 1) & 0xFFFFFFFF
                ct -= 1
                ops += 1
                if a & 0x8000:
                    break
            return bit

        w1 = w - 1
        h1 = h - 1

        def set_significant(idx: int, x: int, y: int) -> None:
            """Mark a sample significant; bump neighbours' packed counts."""
            sigma[idx] = 1
            left = x > 0
            right = x < w1
            if left:
                nb[idx - 1] += 1
            if right:
                nb[idx + 1] += 1
            if y > 0:
                up = idx - w
                nb[up] += 4
                if left:
                    nb[up - 1] += 16
                if right:
                    nb[up + 1] += 16
            if y < h1:
                down = idx + w
                nb[down] += 4
                if left:
                    nb[down - 1] += 16
                if right:
                    nb[down + 1] += 16

        def decode_sign(idx: int, x: int, y: int) -> None:
            """Sign coding from clipped neighbour contributions (D.3.2)."""
            h_sum = 0
            if x > 0:
                j = idx - 1
                if sigma[j]:
                    h_sum = -1 if sign[j] else 1
            if x < w1:
                j = idx + 1
                if sigma[j]:
                    h_sum += -1 if sign[j] else 1
            if h_sum > 1:
                h_sum = 1
            elif h_sum < -1:
                h_sum = -1
            v_sum = 0
            if y > 0:
                j = idx - w
                if sigma[j]:
                    v_sum = -1 if sign[j] else 1
            if y < h1:
                j = idx + w
                if sigma[j]:
                    v_sum += -1 if sign[j] else 1
            if v_sum > 1:
                v_sum = 1
            elif v_sum < -1:
                v_sum = -1
            ctx, xor_bit = SC_LUT[h_sum * 3 + v_sum + 4]
            sign[idx] = mq_decode(ctx) ^ xor_bit

        def significance_pass(bit_mask: int) -> None:
            sig, vis, counts, mag = sigma, visited, nb, magnitude
            dec, lut = mq_decode, zc
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                for x in range(w):
                    idx = base + x
                    for y in range(stripe_top, stripe_top + stripe_rows):
                        if not sig[idx]:
                            packed = counts[idx]
                            if packed:
                                vis[idx] = 1
                                if dec(lut[packed]):
                                    mag[idx] |= bit_mask
                                    set_significant(idx, x, y)
                                    decode_sign(idx, x, y)
                        idx += w

        def refinement_pass(bit_mask: int) -> None:
            sig, vis, counts, mag, ref = sigma, visited, nb, magnitude, refined
            dec = mq_decode
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                for x in range(w):
                    idx = base + x
                    for _ in range(stripe_rows):
                        if sig[idx] and not vis[idx]:
                            if ref[idx]:
                                k = 16
                            elif counts[idx]:
                                k = 15
                            else:
                                k = 14
                            if dec(k):
                                mag[idx] |= bit_mask
                            ref[idx] = 1
                        idx += w

        def cleanup_pass(bit_mask: int) -> None:
            sig, vis, counts, mag = sigma, visited, nb, magnitude
            dec, lut = mq_decode, zc
            for stripe_top in range(0, h, 4):
                stripe_rows = 4 if stripe_top + 4 <= h else h - stripe_top
                base = stripe_top * w
                full = stripe_rows == 4
                for x in range(w):
                    top = base + x
                    start_row = 0
                    if full:
                        i1 = top + w
                        i2 = i1 + w
                        i3 = i2 + w
                        if not (
                            sig[top] or vis[top] or counts[top]
                            or sig[i1] or vis[i1] or counts[i1]
                            or sig[i2] or vis[i2] or counts[i2]
                            or sig[i3] or vis[i3] or counts[i3]
                        ):
                            if not dec(CTX_RUN):
                                continue
                            first_one = (dec(CTX_UNI) << 1) | dec(CTX_UNI)
                            y = stripe_top + first_one
                            idx = top + first_one * w
                            mag[idx] |= bit_mask
                            set_significant(idx, x, y)
                            decode_sign(idx, x, y)
                            start_row = first_one + 1
                    idx = top + start_row * w
                    for k in range(start_row, stripe_rows):
                        if not (sig[idx] or vis[idx]):
                            if dec(lut[counts[idx]]):
                                y = stripe_top + k
                                mag[idx] |= bit_mask
                                set_significant(idx, x, y)
                                decode_sign(idx, x, y)
                        idx += w

        passes_done = 0
        passes_limit = (
            self.num_passes if self.num_passes is not None else 3 * planes - 2
        )
        for plane in range(planes - 1, -1, -1):
            bit_mask = 1 << plane
            if plane != planes - 1:
                if passes_done >= passes_limit:
                    break
                significance_pass(bit_mask)
                passes_done += 1
                if passes_done >= passes_limit:
                    break
                refinement_pass(bit_mask)
                passes_done += 1
            if passes_done >= passes_limit:
                break
            cleanup_pass(bit_mask)
            passes_done += 1
            visited[:] = bytes(size)

        self.ops = ops
        return [
            -magnitude[idx] if sign[idx] else magnitude[idx] for idx in range(size)
        ]


#: A batched decode task: (data, width, height, orientation,
#: num_bitplanes, num_passes, out_offset).  ``out_offset`` is the block's
#: first sample in the flat output array, so a worker can write its whole
#: chunk into one shared coefficient buffer without intermediate lists.
BatchBlock = tuple


def decode_codeblock_batch(blocks: Sequence[BatchBlock], out=None):
    """Decode a chunk of code blocks through one shared kernel instance.

    Bit-for-bit identical to running :class:`FastCodeBlockDecoder` on
    each block (same coefficients, same per-block op counts), but the MQ
    decoder, the pass closures, and the per-sample scratch buffers are
    built once per *batch* instead of once per *block*, and the final
    sign application runs vectorised — the per-block Python overhead the
    parallel scheduler pays hundreds of times per tile is paid once here.

    ``out`` is a flat 1-D integer array (typically an ``int32`` view over
    a shared-memory arena) that every block writes into at its
    ``out_offset``; when ``None`` a fresh ``int32`` array sized to the
    batch is allocated, with blocks laid end to end at their offsets.

    Returns ``(out, ops)`` where ``ops[i]`` is block *i*'s basic-op
    count.  Blocks with more than 30 bit planes must go through the
    unbatched kernels (the flat output is ``int32``); the caller guards
    this, and the function raises ``ValueError`` as a backstop.
    """
    if out is None:
        total = 0
        for block in blocks:
            offset_end = block[6] + block[1] * block[2]
            total = offset_end if offset_end > total else total
        out = np.zeros(total, dtype=np.int32)

    qe_tab = _QE
    qe16_tab = _QE16
    nmps_tab = _NMPS
    nlps_tab = _NLPS
    switch_tab = _SWITCH
    sc_ctx = _SC_CTX
    sc_xor = _SC_XOR

    # Scratch buffers sized to the largest block of the batch, re-zeroed
    # per block — the kernels only ever touch the first ``size`` bytes.
    # The NumPy views alias the bytearrays (same memory) so the pass
    # planners below can reduce coding state without copying it.
    max_size = 0
    for block in blocks:
        size = block[1] * block[2]
        max_size = size if size > max_size else max_size
    sigma = bytearray(max_size)
    visited = bytearray(max_size)
    refined = bytearray(max_size)
    sign = bytearray(max_size)
    nb = bytearray(max_size)
    hv = bytearray(bytes([_HV_NEUTRAL]) * max_size)
    zero_fill = bytes(max_size)
    hv_fill = bytes(hv)
    sig_np = np.frombuffer(sigma, dtype=np.uint8)
    vis_np = np.frombuffer(visited, dtype=np.uint8)
    ref_np = np.frombuffer(refined, dtype=np.uint8)
    nb_np = np.frombuffer(nb, dtype=np.uint8)
    cx_index = [0] * 19
    cx_mps = [0] * 19

    # Per-block state the closures read; rebound in the block loop.
    data = b""
    length = 0
    w = h = 0
    size = 0
    edge = b""
    zc = ZC_LUT["LL"]
    magnitude: list = []
    stripes: tuple = ()
    order: np.ndarray = np.empty(0, dtype=np.intp)
    a = c = ct = bp = ops = 0

    def mq_decode(k: int) -> int:
        # Verbatim the single-block kernel's decision path (see
        # FastCodeBlockDecoder.decode) — op parity depends on it.
        nonlocal a, c, ct, bp, ops
        i = cx_index[k]
        qe = qe_tab[i]
        qe16 = qe16_tab[i]
        ops += 1
        a -= qe
        if c < qe16:
            if a < qe:
                bit = cx_mps[k]
                cx_index[k] = nmps_tab[i]
            else:
                bit = 1 - cx_mps[k]
                if switch_tab[i]:
                    cx_mps[k] = bit
                cx_index[k] = nlps_tab[i]
            a = qe
        else:
            c -= qe16
            if a & 0x8000:
                return cx_mps[k]
            if a < qe:
                bit = 1 - cx_mps[k]
                if switch_tab[i]:
                    cx_mps[k] = bit
                cx_index[k] = nlps_tab[i]
            else:
                bit = cx_mps[k]
                cx_index[k] = nmps_tab[i]
        while True:
            if ct == 0:
                byte = data[bp] if bp < length else 0xFF
                if byte == 0xFF:
                    if (data[bp + 1] if bp + 1 < length else 0xFF) > 0x8F:
                        c += 0xFF00
                        ct = 8
                    else:
                        bp += 1
                        c += (data[bp] if bp < length else 0xFF) << 9
                        ct = 7
                else:
                    bp += 1
                    c += (data[bp] if bp < length else 0xFF) << 8
                    ct = 8
            a = (a << 1) & 0xFFFF
            c = (c << 1) & 0xFFFFFFFF
            ct -= 1
            ops += 1
            if a & 0x8000:
                break
        return bit

    def make_significant(idx, la, lc, lct, lbp, lops):
        # Fused set-significant + sign decode (the two always run as a
        # pair).  The MQ registers travel as arguments and return value
        # — never through the closure cells — so the pass loops keep
        # them in locals across significance events.  The sign context
        # comes from one lookup on the packed sign-neighbourhood byte
        # ``hv[idx]``, maintained incrementally below: a sample pushes
        # its +/-1 contribution to its four h/v neighbours the moment
        # its own sign is decoded — exactly when the reference's live
        # neighbour scan would start seeing it (set-significant and
        # sign decode of one sample are adjacent; no other sample's
        # sign decode can interleave).
        sigma[idx] = 1
        e = edge[idx]
        if e == 0:
            jup = idx - w
            jdn = idx + w
            nb[idx - 1] += 1
            nb[idx + 1] += 1
            nb[jup] += 4
            nb[jup - 1] += 16
            nb[jup + 1] += 16
            nb[jdn] += 4
            nb[jdn - 1] += 16
            nb[jdn + 1] += 16
        else:
            left = not e & 1
            right = not e & 2
            if left:
                nb[idx - 1] += 1
            if right:
                nb[idx + 1] += 1
            if not e & 4:
                j = idx - w
                nb[j] += 4
                if left:
                    nb[j - 1] += 16
                if right:
                    nb[j + 1] += 16
            if not e & 8:
                j = idx + w
                nb[j] += 4
                if left:
                    nb[j - 1] += 16
                if right:
                    nb[j + 1] += 16
        hvb = hv[idx]
        ctx = sc_ctx[hvb]
        xor_bit = sc_xor[hvb]
        # Fully inlined MQ decision (see significance_pass).
        i = cx_index[ctx]
        qe = qe_tab[i]
        aa = la - qe
        q16 = qe16_tab[i]
        if aa & 0x8000 and lc >= q16:
            la = aa
            lc -= q16
            lops += 1
            s = cx_mps[ctx] ^ xor_bit
        else:
            lops += 1
            if lc < q16:
                if aa < qe:
                    bit = cx_mps[ctx]
                    cx_index[ctx] = nmps_tab[i]
                else:
                    bit = 1 - cx_mps[ctx]
                    if switch_tab[i]:
                        cx_mps[ctx] = bit
                    cx_index[ctx] = nlps_tab[i]
                la = qe
            else:
                lc -= q16
                if aa < qe:
                    bit = 1 - cx_mps[ctx]
                    if switch_tab[i]:
                        cx_mps[ctx] = bit
                    cx_index[ctx] = nlps_tab[i]
                else:
                    bit = cx_mps[ctx]
                    cx_index[ctx] = nmps_tab[i]
                la = aa
            while la < 0x8000:
                if lct == 0:
                    byte = data[lbp] if lbp < length else 0xFF
                    if byte == 0xFF:
                        if (data[lbp + 1] if lbp + 1 < length
                                else 0xFF) > 0x8F:
                            lc += 0xFF00
                            lct = 8
                        else:
                            lbp += 1
                            lc += (data[lbp] if lbp < length else 0xFF) << 9
                            lct = 7
                    else:
                        lbp += 1
                        lc += (data[lbp] if lbp < length else 0xFF) << 8
                        lct = 8
                la <<= 1
                lc = (lc << 1) & 0xFFFFFFFF
                lct -= 1
                lops += 1
            s = bit ^ xor_bit
        sign[idx] = s
        delta_h = -1 if s else 1
        delta_v = -16 if s else 16
        if e == 0:
            hv[idx - 1] += delta_h
            hv[idx + 1] += delta_h
            hv[jup] += delta_v
            hv[jdn] += delta_v
        else:
            if not e & 1:
                hv[idx - 1] += delta_h
            if not e & 2:
                hv[idx + 1] += delta_h
            if not e & 4:
                hv[idx - w] += delta_v
            if not e & 8:
                hv[idx + w] += delta_v
        return la, lc, lct, lbp, lops

    def significance_pass(bit_mask: int) -> None:
        # A sample only becomes significant at its own examination, and
        # the scan examines each position once — so every sample that is
        # insignificant at pass entry is still insignificant when the
        # scan reaches it, and samples significant at entry are skipped
        # outright.  The scan-order candidate list {not significant at
        # pass entry} is therefore exact and can be extracted with
        # NumPy; only the neighbour-count gate (which changes mid-pass)
        # stays a live per-sample read.  The whole MQ decision —
        # MPS-no-renormalisation fast case AND the exchange/renorm slow
        # case — is inlined with the register state held in locals;
        # ``make_significant`` takes and returns the registers, so they
        # never touch the closure cells inside the loop.
        nonlocal a, c, ct, bp, ops
        vis, counts, mag = visited, nb, magnitude
        lut = zc
        qe_t, qe16_t, cxi, cxm = qe_tab, qe16_tab, cx_index, cx_mps
        nmps_t, nlps_t, sw_t = nmps_tab, nlps_tab, switch_tab
        dat, dlen = data, length
        la, lc, lct, lbp, lops = a, c, ct, bp, ops
        cand = order[sig_np[order] == 0]
        for idx in cand.tolist():
            packed = counts[idx]
            if packed:
                vis[idx] = 1
                k = lut[packed]
                i = cxi[k]
                qe = qe_t[i]
                aa = la - qe
                q16 = qe16_t[i]
                if aa & 0x8000 and lc >= q16:
                    la = aa
                    lc -= q16
                    lops += 1
                    bit = cxm[k]
                else:
                    lops += 1
                    if lc < q16:
                        if aa < qe:
                            bit = cxm[k]
                            cxi[k] = nmps_t[i]
                        else:
                            bit = 1 - cxm[k]
                            if sw_t[i]:
                                cxm[k] = bit
                            cxi[k] = nlps_t[i]
                        la = qe
                    else:
                        lc -= q16
                        if aa < qe:
                            bit = 1 - cxm[k]
                            if sw_t[i]:
                                cxm[k] = bit
                            cxi[k] = nlps_t[i]
                        else:
                            bit = cxm[k]
                            cxi[k] = nmps_t[i]
                        la = aa
                    while la < 0x8000:
                        if lct == 0:
                            byte = dat[lbp] if lbp < dlen else 0xFF
                            if byte == 0xFF:
                                if (dat[lbp + 1] if lbp + 1 < dlen
                                        else 0xFF) > 0x8F:
                                    lc += 0xFF00
                                    lct = 8
                                else:
                                    lbp += 1
                                    lc += (dat[lbp] if lbp < dlen
                                           else 0xFF) << 9
                                    lct = 7
                            else:
                                lbp += 1
                                lc += (dat[lbp] if lbp < dlen else 0xFF) << 8
                                lct = 8
                        la <<= 1
                        lc = (lc << 1) & 0xFFFFFFFF
                        lct -= 1
                        lops += 1
                if bit:
                    mag[idx] |= bit_mask
                    la, lc, lct, lbp, lops = make_significant(
                        idx, la, lc, lct, lbp, lops
                    )
        a, c, ct, bp, ops = la, lc, lct, lbp, lops

    def refinement_pass(bit_mask: int) -> None:
        # The candidate set {significant and not visited} is frozen for
        # the whole pass (nothing the pass writes feeds back into it),
        # so the exact scan-order candidate list and each candidate's
        # context can be computed up front with NumPy; the serial MQ
        # decisions then run over just those samples.
        mag = magnitude
        cand_mask = (sig_np[:size] != 0) & (vis_np[:size] == 0)
        cand = order[cand_mask[order]]
        if not cand.size:
            return
        ks = np.where(
            ref_np[cand] != 0, 16, np.where(nb_np[cand] != 0, 15, 14)
        )
        nonlocal a, c, ct, bp, ops
        qe_t, qe16_t, cxi, cxm = qe_tab, qe16_tab, cx_index, cx_mps
        nmps_t, nlps_t, sw_t = nmps_tab, nlps_tab, switch_tab
        dat, dlen = data, length
        la, lc, lct, lbp, lops = a, c, ct, bp, ops
        for idx, k in zip(cand.tolist(), ks.tolist()):
            # Fully inlined MQ decision, all-local registers (see
            # significance_pass); no sign decode here, so the loop never
            # touches the closure cells.
            i = cxi[k]
            qe = qe_t[i]
            aa = la - qe
            q16 = qe16_t[i]
            if aa & 0x8000 and lc >= q16:
                la = aa
                lc -= q16
                lops += 1
                bit = cxm[k]
            else:
                lops += 1
                if lc < q16:
                    if aa < qe:
                        bit = cxm[k]
                        cxi[k] = nmps_t[i]
                    else:
                        bit = 1 - cxm[k]
                        if sw_t[i]:
                            cxm[k] = bit
                        cxi[k] = nlps_t[i]
                    la = qe
                else:
                    lc -= q16
                    if aa < qe:
                        bit = 1 - cxm[k]
                        if sw_t[i]:
                            cxm[k] = bit
                        cxi[k] = nlps_t[i]
                    else:
                        bit = cxm[k]
                        cxi[k] = nmps_t[i]
                    la = aa
                while la < 0x8000:
                    if lct == 0:
                        byte = dat[lbp] if lbp < dlen else 0xFF
                        if byte == 0xFF:
                            if (dat[lbp + 1] if lbp + 1 < dlen
                                    else 0xFF) > 0x8F:
                                lc += 0xFF00
                                lct = 8
                            else:
                                lbp += 1
                                lc += (dat[lbp] if lbp < dlen else 0xFF) << 9
                                lct = 7
                        else:
                            lbp += 1
                            lc += (dat[lbp] if lbp < dlen else 0xFF) << 8
                            lct = 8
                    la <<= 1
                    lc = (lc << 1) & 0xFFFFFFFF
                    lct -= 1
                    lops += 1
            if bit:
                mag[idx] |= bit_mask
        a, c, ct, bp, ops = la, lc, lct, lbp, lops
        ref_np[cand] = 1

    def cleanup_pass(bit_mask: int) -> None:
        # The examinee set {neither significant nor visited at pass
        # entry} is static during the pass: visited is never written
        # here, and a sample's own significance only changes at its own
        # examination (after which the scan has moved past it).  Packing
        # it into per-column 4-bit codes lets the scan skip exhausted
        # columns and dead rows; neighbour counts are still read live,
        # exactly like the reference.
        nonlocal a, c, ct, bp, ops
        counts, mag = nb, magnitude
        dec, lut = mq_decode, zc
        qe_t, qe16_t, cxi, cxm = qe_tab, qe16_tab, cx_index, cx_mps
        nmps_t, nlps_t, sw_t = nmps_tab, nlps_tab, switch_tab
        dat, dlen = data, length
        exam = (sig_np[:size] == 0) & (vis_np[:size] == 0)
        codes = _column_codes(exam, w, h)
        rows_for = _CODE_ROWS
        ci = 0
        la, lc, lct, lbp, lops = a, c, ct, bp, ops
        for stripe_top, stripe_rows, base in stripes:
            for x in range(w):
                code = codes[ci]
                ci += 1
                if not code:
                    continue
                top = base + x
                start_row = 0
                if code == 15:
                    i1 = top + w
                    i2 = i1 + w
                    i3 = i2 + w
                    if not (counts[top] or counts[i1] or counts[i2]
                            or counts[i3]):
                        # Run mode goes through the closures; round-trip
                        # the local registers around it.
                        a, c, ct, bp, ops = la, lc, lct, lbp, lops
                        if not dec(CTX_RUN):
                            la, lc, lct, lbp, lops = a, c, ct, bp, ops
                            continue
                        first_one = (dec(CTX_UNI) << 1) | dec(CTX_UNI)
                        idx = top + first_one * w
                        mag[idx] |= bit_mask
                        la, lc, lct, lbp, lops = make_significant(
                            idx, a, c, ct, bp, ops
                        )
                        start_row = first_one + 1
                for row in rows_for[code]:
                    if row < start_row:
                        continue
                    idx = top + row * w
                    # Fully inlined MQ decision, all-local registers
                    # (see significance_pass).
                    k = lut[counts[idx]]
                    i = cxi[k]
                    qe = qe_t[i]
                    aa = la - qe
                    q16 = qe16_t[i]
                    if aa & 0x8000 and lc >= q16:
                        la = aa
                        lc -= q16
                        lops += 1
                        bit = cxm[k]
                    else:
                        lops += 1
                        if lc < q16:
                            if aa < qe:
                                bit = cxm[k]
                                cxi[k] = nmps_t[i]
                            else:
                                bit = 1 - cxm[k]
                                if sw_t[i]:
                                    cxm[k] = bit
                                cxi[k] = nlps_t[i]
                            la = qe
                        else:
                            lc -= q16
                            if aa < qe:
                                bit = 1 - cxm[k]
                                if sw_t[i]:
                                    cxm[k] = bit
                                cxi[k] = nlps_t[i]
                            else:
                                bit = cxm[k]
                                cxi[k] = nmps_t[i]
                            la = aa
                        while la < 0x8000:
                            if lct == 0:
                                byte = dat[lbp] if lbp < dlen else 0xFF
                                if byte == 0xFF:
                                    if (dat[lbp + 1] if lbp + 1 < dlen
                                            else 0xFF) > 0x8F:
                                        lc += 0xFF00
                                        lct = 8
                                    else:
                                        lbp += 1
                                        lc += (dat[lbp] if lbp < dlen
                                               else 0xFF) << 9
                                        lct = 7
                                else:
                                    lbp += 1
                                    lc += (dat[lbp] if lbp < dlen
                                           else 0xFF) << 8
                                    lct = 8
                            la <<= 1
                            lc = (lc << 1) & 0xFFFFFFFF
                            lct -= 1
                            lops += 1
                    if bit:
                        mag[idx] |= bit_mask
                        la, lc, lct, lbp, lops = make_significant(
                            idx, la, lc, lct, lbp, lops
                        )
        a, c, ct, bp, ops = la, lc, lct, lbp, lops

    op_counts: list[int] = []
    for block_data, width, height, orientation, num_bitplanes, num_passes, offset in blocks:
        if width < 1 or height < 1:
            raise ValueError("code block dimensions must be positive")
        if orientation not in ZC_LUT:
            raise ValueError(f"unknown subband orientation {orientation!r}")
        if num_bitplanes > 30:
            raise ValueError(
                "decode_codeblock_batch is limited to 30 bit planes "
                "(int32 output); use FastCodeBlockDecoder"
            )
        size = width * height
        if num_bitplanes == 0:
            out[offset:offset + size] = 0
            op_counts.append(0)
            continue

        data = block_data
        length = len(data)
        w, h = width, height
        edge = _edge_flags(w, h)
        zc = ZC_LUT[orientation]
        stripes, order = _scan_layout(w, h)
        sigma[:size] = zero_fill[:size]
        visited[:size] = zero_fill[:size]
        refined[:size] = zero_fill[:size]
        sign[:size] = zero_fill[:size]
        nb[:size] = zero_fill[:size]
        hv[:size] = hv_fill[:size]
        magnitude = [0] * size
        cx_index[:] = (0,) * 19
        cx_mps[:] = (0,) * 19
        cx_index[0] = 4
        cx_index[CTX_RUN] = 3
        cx_index[CTX_UNI] = 46

        # INITDEC, verbatim from the single-block kernel.
        c = (data[0] if length > 0 else 0xFF) << 16
        bp = 0
        if (data[0] if length > 0 else 0xFF) == 0xFF:
            if (data[1] if length > 1 else 0xFF) > 0x8F:
                c += 0xFF00
                ct = 8
            else:
                bp = 1
                c += (data[1] if length > 1 else 0xFF) << 9
                ct = 7
        else:
            bp = 1
            c += (data[1] if length > 1 else 0xFF) << 8
            ct = 8
        c <<= 7
        ct -= 7
        a = 0x8000
        ops = 0

        passes_done = 0
        passes_limit = (
            num_passes if num_passes is not None else 3 * num_bitplanes - 2
        )
        for plane in range(num_bitplanes - 1, -1, -1):
            bit_mask = 1 << plane
            if plane != num_bitplanes - 1:
                if passes_done >= passes_limit:
                    break
                significance_pass(bit_mask)
                passes_done += 1
                if passes_done >= passes_limit:
                    break
                refinement_pass(bit_mask)
                passes_done += 1
            if passes_done >= passes_limit:
                break
            cleanup_pass(bit_mask)
            passes_done += 1
            visited[:size] = zero_fill[:size]

        values = np.array(magnitude, dtype=np.int64)
        signs = np.frombuffer(sign, dtype=np.uint8, count=size)
        np.negative(values, out=values, where=signs.astype(bool))
        out[offset:offset + size] = values
        op_counts.append(ops)

    return out, op_counts
