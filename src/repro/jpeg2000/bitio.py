"""Packet-header bit I/O with JPEG 2000 byte stuffing (ITU-T T.800, B.10.1).

Packet headers are bit-packed MSB first; after emitting a 0xFF byte only
seven bits go into the next byte (the MSB is forced to 0) so that no marker
codes can appear inside a header.  The reader mirrors the rule.

Two readers implement the same contract: :class:`BitReader` is the
bit-by-bit specification mirror of :class:`BitWriter`, and
:class:`FastBitReader` is a word-at-a-time accumulator that consumes
whole runs of bytes between 0xFF stuffing boundaries in one
``int.from_bytes`` call.  The boundaries are located up front with a
NumPy scan (:func:`ff_positions`) that callers parsing many packets out
of one buffer compute once and share.  Differential tests hold the two
readers bit-for-bit and error-for-error equal.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np


def ff_positions(data) -> list:
    """Sorted positions of every 0xFF byte in *data* (NumPy scan).

    Each 0xFF starts a stuffing boundary: the byte after it carries only
    seven payload bits.  :class:`FastBitReader` uses this index to find
    how far it may consume bytes in bulk; compute it once per buffer and
    pass it to every reader over that buffer.
    """
    return np.flatnonzero(
        np.frombuffer(bytes(data), dtype=np.uint8) == 0xFF
    ).tolist()


class BitWriter:
    """MSB-first bit packer with 0xFF stuffing."""

    def __init__(self):
        self._bytes = bytearray()
        self._capacity = 8  # payload bits of the current byte (7 after 0xFF)
        self._used = 0
        self._current = 0

    def put_bit(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._used += 1
        if self._used == self._capacity:
            self._bytes.append(self._current)
            # After an 0xFF, the next byte carries only 7 payload bits.
            self._capacity = 7 if self._current == 0xFF else 8
            self._used = 0
            self._current = 0

    def put_bits(self, value: int, count: int) -> None:
        for shift in range(count - 1, -1, -1):
            self.put_bit((value >> shift) & 1)

    def put_comma_code(self, value: int) -> None:
        """Unary 'comma code': *value* ones followed by a zero."""
        for _ in range(value):
            self.put_bit(1)
        self.put_bit(0)

    def flush(self) -> bytes:
        """Pad the final byte with zeros and return the packed header."""
        if self._used > 0:
            self._current <<= self._capacity - self._used
            self._bytes.append(self._current)
        elif self._bytes and self._bytes[-1] == 0xFF:
            # A header may not end in 0xFF; pad the stuffing byte.
            self._bytes.append(0)
        self._capacity = 8
        self._used = 0
        self._current = 0
        return bytes(self._bytes)


class BitReader:
    """Mirror of :class:`BitWriter` over a byte buffer."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._pos = offset
        self._bit_pos = 0  # bits already consumed from the current byte
        self._last_byte = 0

    def get_bit(self) -> int:
        if self._bit_pos == 0:
            if self._pos >= len(self._data):
                raise EOFError("bit reader ran past the end of the header")
            unstuffed = self._last_byte == 0xFF
            self._last_byte = self._data[self._pos]
            self._pos += 1
            self._bit_pos = 7 if unstuffed else 8
        self._bit_pos -= 1
        return (self._last_byte >> self._bit_pos) & 1

    def get_bits(self, count: int) -> int:
        value = 0
        for _ in range(count):
            value = (value << 1) | self.get_bit()
        return value

    def get_comma_code(self) -> int:
        value = 0
        while self.get_bit():
            value += 1
        return value

    def align(self) -> int:
        """Finish the current byte (and any stuffing byte); return position."""
        self._bit_pos = 0
        if self._last_byte == 0xFF:
            # Skip the stuffed zero byte terminating the header.
            if self._pos < len(self._data) and self._data[self._pos] == 0x00:
                self._pos += 1
        self._last_byte = 0
        return self._pos

    @property
    def position(self) -> int:
        return self._pos


class FastBitReader:
    """Word-at-a-time drop-in for :class:`BitReader`.

    Bits are served MSB-first out of an integer accumulator that is
    refilled in bulk: all bytes up to and including the next 0xFF (the
    last byte whose successor is stuffed) are appended with a single
    ``int.from_bytes``, and only the stuffed 7-bit bytes are handled
    individually.  The 0xFF boundaries come from :func:`ff_positions`;
    pass the index in as *ff_index* when parsing many packets from one
    buffer so the scan happens once.

    The contract matches :class:`BitReader` exactly: same bit sequence,
    ``EOFError`` raised on the same call, and ``align()`` /
    ``position`` report the same byte offsets — pre-loaded but fully
    unconsumed bytes are handed back by rewinding the accumulator.
    """

    #: Upper bound on bytes pulled into the accumulator per refill run;
    #: keeps the accumulator a small int even over long stuff-free spans.
    _MAX_RUN = 16

    __slots__ = ("_data", "_len", "_ff", "_pos", "_start", "_acc", "_nbits")

    def __init__(self, data: bytes, offset: int = 0, ff_index=None):
        self._data = data
        self._len = len(data)
        self._ff = ff_positions(data) if ff_index is None else ff_index
        self._pos = offset  # first byte not yet loaded into the accumulator
        self._start = offset  # first byte loaded since the last align()
        self._acc = 0
        self._nbits = 0

    def _byte_width(self, index: int) -> int:
        """Payload bits of byte *index*: 7 iff it follows an (in-run) 0xFF."""
        return 7 if index > self._start and self._data[index - 1] == 0xFF else 8

    def _fill(self, need: int) -> None:
        data, length, ff = self._data, self._len, self._ff
        pos, nbits = self._pos, self._nbits
        acc = self._acc & ((1 << nbits) - 1)  # drop already-served high bits
        while nbits < need:
            if pos >= length:
                self._pos, self._acc, self._nbits = pos, acc, nbits
                raise EOFError("bit reader ran past the end of the header")
            if pos > self._start and data[pos - 1] == 0xFF:
                # Stuffed byte: seven payload bits, MSB forced to zero.
                acc = (acc << 7) | (data[pos] & 0x7F)
                nbits += 7
                pos += 1
                continue
            # Bulk run of full bytes: everything up to and including the
            # next 0xFF has width 8 (only the byte *after* an 0xFF is
            # stuffed), so the whole run is one int.from_bytes.
            j = bisect_left(ff, pos)
            run_end = ff[j] + 1 if j < len(ff) else length
            count = min(run_end, length) - pos
            if count > self._MAX_RUN:
                count = self._MAX_RUN
            acc = (acc << (8 * count)) | int.from_bytes(
                data[pos:pos + count], "big"
            )
            nbits += 8 * count
            pos += count
        self._pos, self._acc, self._nbits = pos, acc, nbits

    def get_bit(self) -> int:
        if self._nbits == 0:
            self._fill(1)
        self._nbits -= 1
        return (self._acc >> self._nbits) & 1

    def get_bits(self, count: int) -> int:
        if self._nbits < count:
            self._fill(count)
        self._nbits -= count
        return (self._acc >> self._nbits) & ((1 << count) - 1)

    def get_comma_code(self) -> int:
        value = 0
        while self.get_bit():
            value += 1
        return value

    def _rewind(self) -> int:
        """Index of the current byte (last byte with a consumed bit) + 1.

        Walks back over fully-unconsumed pre-loaded bytes; equals the
        reference reader's ``_pos``.  Returns ``_start`` when nothing
        has been consumed since construction or the last ``align()``.
        """
        pos, start, nbits = self._pos, self._start, self._nbits
        if pos <= start:
            return start
        i = pos - 1
        while i >= start:
            width = self._byte_width(i)
            if nbits < width:
                break
            nbits -= width
            i -= 1
        return i + 1 if i >= start else start

    def align(self) -> int:
        """Finish the current byte (and any stuffing byte); return position."""
        pos = self._rewind()
        if pos > self._start and self._data[pos - 1] == 0xFF:
            # Skip the stuffed zero byte terminating the header.
            if pos < self._len and self._data[pos] == 0x00:
                pos += 1
        self._pos = pos
        self._start = pos
        self._acc = 0
        self._nbits = 0
        return pos

    @property
    def position(self) -> int:
        return self._rewind()
