"""Packet-header bit I/O with JPEG 2000 byte stuffing (ITU-T T.800, B.10.1).

Packet headers are bit-packed MSB first; after emitting a 0xFF byte only
seven bits go into the next byte (the MSB is forced to 0) so that no marker
codes can appear inside a header.  The reader mirrors the rule.
"""

from __future__ import annotations


class BitWriter:
    """MSB-first bit packer with 0xFF stuffing."""

    def __init__(self):
        self._bytes = bytearray()
        self._capacity = 8  # payload bits of the current byte (7 after 0xFF)
        self._used = 0
        self._current = 0

    def put_bit(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._used += 1
        if self._used == self._capacity:
            self._bytes.append(self._current)
            # After an 0xFF, the next byte carries only 7 payload bits.
            self._capacity = 7 if self._current == 0xFF else 8
            self._used = 0
            self._current = 0

    def put_bits(self, value: int, count: int) -> None:
        for shift in range(count - 1, -1, -1):
            self.put_bit((value >> shift) & 1)

    def put_comma_code(self, value: int) -> None:
        """Unary 'comma code': *value* ones followed by a zero."""
        for _ in range(value):
            self.put_bit(1)
        self.put_bit(0)

    def flush(self) -> bytes:
        """Pad the final byte with zeros and return the packed header."""
        if self._used > 0:
            self._current <<= self._capacity - self._used
            self._bytes.append(self._current)
        elif self._bytes and self._bytes[-1] == 0xFF:
            # A header may not end in 0xFF; pad the stuffing byte.
            self._bytes.append(0)
        self._capacity = 8
        self._used = 0
        self._current = 0
        return bytes(self._bytes)


class BitReader:
    """Mirror of :class:`BitWriter` over a byte buffer."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._pos = offset
        self._bit_pos = 0  # bits already consumed from the current byte
        self._last_byte = 0

    def get_bit(self) -> int:
        if self._bit_pos == 0:
            if self._pos >= len(self._data):
                raise EOFError("bit reader ran past the end of the header")
            unstuffed = self._last_byte == 0xFF
            self._last_byte = self._data[self._pos]
            self._pos += 1
            self._bit_pos = 7 if unstuffed else 8
        self._bit_pos -= 1
        return (self._last_byte >> self._bit_pos) & 1

    def get_bits(self, count: int) -> int:
        value = 0
        for _ in range(count):
            value = (value << 1) | self.get_bit()
        return value

    def get_comma_code(self) -> int:
        value = 0
        while self.get_bit():
            value += 1
        return value

    def align(self) -> int:
        """Finish the current byte (and any stuffing byte); return position."""
        self._bit_pos = 0
        if self._last_byte == 0xFF:
            # Skip the stuffed zero byte terminating the header.
            if self._pos < len(self._data) and self._data[self._pos] == 0x00:
                self._pos += 1
        self._last_byte = 0
        return self._pos

    @property
    def position(self) -> int:
        return self._pos
