"""Codestream syntax: marker segments (ITU-T T.800, Annex A).

Implements the main-header and tile-part structure the case-study decoder
parses: SOC, SIZ (image/tile geometry), COD (coding style), QCD
(quantisation), SOT/SOD tile-parts and EOC.  The writer and parser are
exact inverses; everything the decoder needs travels in the codestream —
no side channels.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from .quant import StepSize

SOC = 0xFF4F
SIZ = 0xFF51
COD = 0xFF52
QCD = 0xFF5C
SOT = 0xFF90
SOD = 0xFF93
EOC = 0xFFD9

#: COD transform field values.
TRANSFORM_97 = 0
TRANSFORM_53 = 1

#: Progression orders (SGcod).
PROGRESSION_LRCP = 0
PROGRESSION_RLCP = 1

_PROGRESSION_NAMES = {PROGRESSION_LRCP: "LRCP", PROGRESSION_RLCP: "RLCP"}


class CodestreamError(ValueError):
    """Malformed or unsupported codestream."""


@dataclass
class CodingParameters:
    """Everything SIZ/COD/QCD carry, in decoded form."""

    width: int
    height: int
    num_components: int = 3
    bit_depth: int = 8
    tile_width: int = 128
    tile_height: int = 128
    num_levels: int = 3
    codeblock_exp: int = 5  # 32x32 code blocks
    lossless: bool = True
    use_mct: bool = True
    num_layers: int = 1
    progression: int = PROGRESSION_LRCP
    #: Error-resilience markers: SOP (start-of-packet, with a sequence
    #: number that detects desynchronisation) and EPH (end of packet
    #: header).
    use_sop: bool = False
    use_eph: bool = False
    guard_bits: int = 2
    base_step: float = 1.0 / 128.0
    #: Step sizes per subband for the irreversible path, in QCD order
    #: (LL, then HL/LH/HH per resolution, coarse to fine).  Filled by the
    #: encoder; reconstructed by the parser.
    step_sizes: list = field(default_factory=list)
    #: Ranging exponents for the reversible path, same order.
    exponents: list = field(default_factory=list)

    @property
    def codeblock_size(self) -> int:
        return 1 << self.codeblock_exp

    @property
    def transform(self) -> str:
        return "5/3" if self.lossless else "9/7"

    def num_subbands(self) -> int:
        return 1 + 3 * self.num_levels

    def validate(self) -> None:
        if self.width < 1 or self.height < 1:
            raise CodestreamError("image dimensions must be positive")
        if not 1 <= self.num_components <= 16384:
            raise CodestreamError("component count out of range")
        if not 1 <= self.bit_depth <= 16:
            raise CodestreamError("bit depth out of range (1..16 supported)")
        if self.num_levels < 0 or self.num_levels > 32:
            raise CodestreamError("decomposition level count out of range")
        if not 2 <= self.codeblock_exp <= 10:
            raise CodestreamError("code block exponent out of range")
        if not 1 <= self.num_layers <= 64:
            raise CodestreamError("layer count out of the supported range 1..64")
        if self.use_mct and self.num_components < 3:
            raise CodestreamError("the colour transform needs 3 components")


@dataclass
class TilePart:
    """One SOT..SOD..data unit."""

    tile_index: int
    data: bytes


@dataclass
class Codestream:
    """A parsed codestream: header parameters plus tile-part bodies."""

    parameters: CodingParameters
    tile_parts: list


# -- writer --------------------------------------------------------------------


def _marker(code: int) -> bytes:
    return struct.pack(">H", code)


def _segment(code: int, body: bytes) -> bytes:
    return struct.pack(">HH", code, len(body) + 2) + body


def write_siz(params: CodingParameters) -> bytes:
    body = struct.pack(
        ">HIIIIIIII",
        0,  # Rsiz: baseline capabilities
        params.width,
        params.height,
        0,
        0,  # image offset
        params.tile_width,
        params.tile_height,
        0,
        0,  # tile offset
    )
    body += struct.pack(">H", params.num_components)
    for _ in range(params.num_components):
        body += struct.pack(">BBB", params.bit_depth - 1, 1, 1)  # unsigned, no subsampling
    return _segment(SIZ, body)


def write_cod(params: CodingParameters) -> bytes:
    scod = (0x02 if params.use_sop else 0) | (0x04 if params.use_eph else 0)
    sgcod = struct.pack(
        ">BHB", params.progression, params.num_layers, 1 if params.use_mct else 0
    )
    transform = TRANSFORM_53 if params.lossless else TRANSFORM_97
    spcod = struct.pack(
        ">BBBBB",
        params.num_levels,
        params.codeblock_exp - 2,  # xcb
        params.codeblock_exp - 2,  # ycb
        0,  # code block style: all defaults
        transform,
    )
    return _segment(COD, bytes([scod]) + sgcod + spcod)


def write_qcd(params: CodingParameters) -> bytes:
    if params.lossless:
        sqcd = 0 | (params.guard_bits << 5)  # style 0: no quantisation
        body = bytes([sqcd]) + bytes((exp & 0x1F) << 3 for exp in params.exponents)
    else:
        sqcd = 2 | (params.guard_bits << 5)  # style 2: scalar expounded
        body = bytes([sqcd])
        for step in params.step_sizes:
            body += struct.pack(">H", step.packed())
    return _segment(QCD, body)


def write_sot(tile_index: int, tile_length: int) -> bytes:
    # Psot covers SOT segment + SOD marker + data.
    psot = 12 + 2 + tile_length
    return struct.pack(">HHHIBB", SOT, 10, tile_index, psot, 0, 1)


def write_codestream(params: CodingParameters, tile_parts) -> bytes:
    """Assemble a full codestream from parameters and tile bodies."""
    params.validate()
    out = bytearray()
    out += _marker(SOC)
    out += write_siz(params)
    out += write_cod(params)
    out += write_qcd(params)
    for part in tile_parts:
        out += write_sot(part.tile_index, len(part.data))
        out += _marker(SOD)
        out += part.data
    out += _marker(EOC)
    return bytes(out)


# -- parser --------------------------------------------------------------------


class _Cursor:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def u8(self) -> int:
        value = self.data[self.pos]
        self.pos += 1
        return value

    def u16(self) -> int:
        (value,) = struct.unpack_from(">H", self.data, self.pos)
        self.pos += 2
        return value

    def u32(self) -> int:
        (value,) = struct.unpack_from(">I", self.data, self.pos)
        self.pos += 4
        return value

    def take(self, count: int) -> bytes:
        chunk = self.data[self.pos : self.pos + count]
        if len(chunk) != count:
            raise CodestreamError("truncated codestream")
        self.pos += count
        return chunk


def parse_codestream(data: bytes) -> Codestream:
    """Parse a codestream produced by :func:`write_codestream`."""
    cursor = _Cursor(data)
    if cursor.u16() != SOC:
        raise CodestreamError("missing SOC marker")
    params: Optional[CodingParameters] = None
    quant_pending: Optional[bytes] = None
    tile_parts: list[TilePart] = []
    while True:
        marker = cursor.u16()
        if marker == EOC:
            break
        if marker == SIZ:
            params = _parse_siz(cursor)
        elif marker == COD:
            if params is None:
                raise CodestreamError("COD before SIZ")
            _parse_cod(cursor, params)
        elif marker == QCD:
            if params is None:
                raise CodestreamError("QCD before SIZ")
            quant_pending = cursor.take(cursor.u16() - 2)
        elif marker == SOT:
            if params is None:
                raise CodestreamError("tile-part before main header")
            length = cursor.u16()
            if length != 10:
                raise CodestreamError(f"unexpected Lsot {length}")
            tile_index = cursor.u16()
            psot = cursor.u32()
            cursor.u8()  # TPsot
            cursor.u8()  # TNsot
            if cursor.u16() != SOD:
                raise CodestreamError("expected SOD after SOT")
            body = cursor.take(psot - 12 - 2)
            tile_parts.append(TilePart(tile_index=tile_index, data=body))
        else:
            raise CodestreamError(f"unsupported marker 0x{marker:04X}")
    if params is None:
        raise CodestreamError("codestream has no SIZ segment")
    if quant_pending is not None:
        _parse_qcd_body(quant_pending, params)
    params.validate()
    return Codestream(parameters=params, tile_parts=tile_parts)


def _parse_siz(cursor: _Cursor) -> CodingParameters:
    cursor.u16()  # Lsiz
    cursor.u16()  # Rsiz
    width = cursor.u32()
    height = cursor.u32()
    if cursor.u32() or cursor.u32():
        raise CodestreamError("image offsets are not supported")
    tile_width = cursor.u32()
    tile_height = cursor.u32()
    if cursor.u32() or cursor.u32():
        raise CodestreamError("tile offsets are not supported")
    num_components = cursor.u16()
    bit_depth = None
    for _ in range(num_components):
        ssiz = cursor.u8()
        if ssiz & 0x80:
            raise CodestreamError("signed components are not supported")
        depth = (ssiz & 0x7F) + 1
        if bit_depth is not None and depth != bit_depth:
            raise CodestreamError("per-component bit depths must match")
        bit_depth = depth
        if cursor.u8() != 1 or cursor.u8() != 1:
            raise CodestreamError("component subsampling is not supported")
    return CodingParameters(
        width=width,
        height=height,
        num_components=num_components,
        bit_depth=bit_depth,
        tile_width=tile_width,
        tile_height=tile_height,
    )


def _parse_cod(cursor: _Cursor, params: CodingParameters) -> None:
    cursor.u16()  # Lcod
    scod = cursor.u8()
    if scod & ~0x06:
        raise CodestreamError("precinct coding styles are not supported")
    params.use_sop = bool(scod & 0x02)
    params.use_eph = bool(scod & 0x04)
    progression = cursor.u8()
    if progression not in _PROGRESSION_NAMES:
        raise CodestreamError(f"unsupported progression order {progression}")
    params.progression = progression
    params.num_layers = cursor.u16()
    if not 1 <= params.num_layers <= 64:
        raise CodestreamError("layer count out of the supported range 1..64")
    params.use_mct = bool(cursor.u8())
    params.num_levels = cursor.u8()
    xcb = cursor.u8() + 2
    ycb = cursor.u8() + 2
    if xcb != ycb:
        raise CodestreamError("non-square code blocks are not supported")
    params.codeblock_exp = xcb
    if cursor.u8() != 0:
        raise CodestreamError("code block style options are not supported")
    params.lossless = cursor.u8() == TRANSFORM_53


def _parse_qcd_body(body: bytes, params: CodingParameters) -> None:
    sqcd = body[0]
    style = sqcd & 0x1F
    params.guard_bits = sqcd >> 5
    expected = params.num_subbands()
    if style == 0:
        exponents = [value >> 3 for value in body[1:]]
        if len(exponents) != expected:
            raise CodestreamError("QCD exponent count does not match COD levels")
        params.exponents = exponents
    elif style == 2:
        raw = body[1:]
        if len(raw) != 2 * expected:
            raise CodestreamError("QCD step count does not match COD levels")
        params.step_sizes = [
            StepSize.unpack(struct.unpack_from(">H", raw, 2 * i)[0]) for i in range(expected)
        ]
    else:
        raise CodestreamError(f"unsupported quantisation style {style}")
