"""The reconstruct stage: gather, IQ, inverse DWT, ICT/RCT, DC shift.

Everything after the entropy kernels and before the tile mosaic.  The
per-tile functions mirror Fig. 1's stage structure (and accumulate
basic-op counts into the caller's ``StageOps``); :func:`finish_tiles`
is the cross-tile vectorised path the driver uses — dequantisation per
tile, one batched inverse DWT over every same-shape tile component, and
the fused colour-transform + DC-shift kernels — value- and
op-count-identical to running the per-tile functions one stage at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ... import telemetry
from .. import dwt, mct, quant
from ..codestream import CodingParameters
from ..pipeline import STAGE_ARITH, STAGE_DC, STAGE_ICT, STAGE_IDWT, STAGE_IQ
from ..structure import band_shapes
from .parse import qcd_delta


@dataclass
class DecodedBand:
    """One subband's coefficient plane after entropy decoding."""

    resolution: int
    orientation: str
    indices: np.ndarray  # signed quantisation indices


def scatter_entropy(
    params: CodingParameters,
    tile_width: int,
    tile_height: int,
    layout: list,
    flat,
    offsets,
    block_ops: list,
    ops,
    first: int = 0,
) -> list:
    """Scatter an entropy-stage result into per-band planes.

    ``first`` is this tile's first block index within *flat* — non-zero
    when the driver batched several tiles' blocks into one fan-out.
    Returns the per-component :class:`DecodedBand` lists and accumulates
    the per-block op counts into *ops*.
    """
    shapes = band_shapes(tile_width, tile_height, params.num_levels)
    components: list[list[DecodedBand]] = []
    index = first
    for comp_index in range(params.num_components):
        bands = layout[comp_index]
        decoded: list[DecodedBand] = []
        for shape in shapes:
            band = bands[(shape.resolution, shape.orientation)]
            plane = np.zeros((shape.height, shape.width), dtype=np.int64)
            for block in band.blocks:
                geo = block.geometry
                start = int(offsets[index])
                ops.add(STAGE_ARITH, block_ops[index])
                plane[
                    geo.y0 : geo.y0 + geo.height, geo.x0 : geo.x0 + geo.width
                ] = flat[start : start + geo.width * geo.height].reshape(
                    geo.height, geo.width
                )
                index += 1
            decoded.append(DecodedBand(shape.resolution, shape.orientation, plane))
        components.append(decoded)
    return components


def dequantise(
    params: CodingParameters,
    decoded_bands: list,
    ops,
    max_resolution: Optional[int] = None,
) -> list:
    """Per component, the dequantised :class:`~repro.jpeg2000.dwt.Subbands`."""
    result = []
    for component in decoded_bands:
        ll: Optional[np.ndarray] = None
        level_quads: dict[int, dict[str, np.ndarray]] = {}
        for band in component:
            if (
                max_resolution is not None
                and band.resolution > max_resolution
            ):
                continue  # resolution-truncated reconstruction
            ops.add(STAGE_IQ, band.indices.size)
            if params.lossless:
                values = band.indices
            else:
                # The step size comes from the parsed QCD segment — the
                # codestream is self-contained, no side channel.
                values = quant.dequantise(
                    band.indices,
                    qcd_delta(params, band.resolution, band.orientation),
                )
            if band.resolution == 0:
                ll = values
            else:
                level_quads.setdefault(band.resolution, {})[band.orientation] = values
        levels = [
            level_quads[res]
            for res in sorted(level_quads.keys(), reverse=True)
        ]
        result.append(dwt.Subbands(ll, levels, params.transform))
    return result


def inverse_dwt(subbands_per_component: list, ops) -> list:
    planes = []
    for subbands in subbands_per_component:
        counts = dwt.DwtOpCounts()
        planes.append(dwt.inverse(subbands, counts))
        ops.add(STAGE_IDWT, counts.total)
    return planes


def inverse_mct(params: CodingParameters, planes: list, ops) -> list:
    if not params.use_mct:
        return planes
    if params.lossless:
        r, g, b = mct.rct_inverse(
            np.rint(planes[0]).astype(np.int64),
            np.rint(planes[1]).astype(np.int64),
            np.rint(planes[2]).astype(np.int64),
        )
    else:
        r, g, b = mct.ict_inverse(planes[0], planes[1], planes[2])
    ops.add(STAGE_ICT, 3 * planes[0].size)
    return [r, g, b] + list(planes[3:])


def dc_shift(params: CodingParameters, planes: list, ops) -> list:
    out = []
    for plane in planes:
        out.append(mct.dc_shift_inverse(plane, params.bit_depth))
        ops.add(STAGE_DC, plane.size)
    return out


def finish_mct_dc(params: CodingParameters, planes: list, ops) -> list:
    """Fused inverse colour transform + DC shift, one pass per plane.

    Value- and op-count-identical to :func:`inverse_mct` followed by
    :func:`dc_shift` (see the fused kernels in
    :mod:`repro.jpeg2000.mct`); the batched reconstruction path uses
    this so each tile plane is traversed once instead of three times.
    """
    if params.use_mct:
        if params.lossless:
            fused = mct.rct_dc_inverse(
                planes[0], planes[1], planes[2], params.bit_depth
            )
        else:
            fused = mct.ict_dc_inverse(
                planes[0], planes[1], planes[2], params.bit_depth
            )
        ops.add(STAGE_ICT, 3 * planes[0].size)
        out = list(fused)
        rest = planes[3:]
    else:
        out = []
        rest = planes
    for plane in rest:
        out.append(mct.dc_shift_inverse(plane, params.bit_depth))
    for plane in planes:
        ops.add(STAGE_DC, plane.size)
    return out


def finish_tiles(stages_list: list, bands_by_tile: list) -> dict:
    """Stages 2–5 for the given tiles, vectorised across tiles.

    *stages_list* holds the per-tile ``TileStages`` drivers (op
    accumulators and coding parameters); dequantisation runs per tile
    (already one NumPy pass per subband); the inverse DWT batches every
    same-shape tile component per resolution level
    (:func:`~repro.jpeg2000.dwt.inverse_batch`); the colour transform
    and DC shift run as fused whole-plane kernels.  Values and op counts
    are exactly those of the per-tile path.
    """
    with telemetry.software_span("stage", "dequant_mct", "decode"):
        subbands_per_tile = [
            stages._staged(STAGE_IQ, stages.dequantise, bands)
            for stages, bands in zip(stages_list, bands_by_tile)
        ]
    with telemetry.software_span("stage", "idwt", "decode"):
        flat_subbands = []
        counts_list = []
        slots = []
        for slot, subbands in enumerate(subbands_per_tile):
            for component in subbands:
                flat_subbands.append(component)
                counts_list.append(dwt.DwtOpCounts())
                slots.append(slot)
        planes_flat = dwt.inverse_batch(flat_subbands, counts_list)
        planes_per_tile: list[list] = [[] for _ in stages_list]
        for slot, plane, counts in zip(slots, planes_flat, counts_list):
            planes_per_tile[slot].append(plane)
            stages_list[slot].ops.add(STAGE_IDWT, counts.total)
    with telemetry.software_span("stage", "dequant_mct", "decode"):
        return {
            stages.tile_index: stages.finish_mct_dc(planes)
            for stages, planes in zip(stages_list, planes_per_tile)
        }
