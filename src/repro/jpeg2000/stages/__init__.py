"""The decode pipeline's stage implementations.

One module per :mod:`~repro.jpeg2000.plan` stage seam:

:mod:`~repro.jpeg2000.stages.parse`
    Tier-2: packet headers → per-block codeword spans (plus the QCD
    interpretation the later stages consult).
:mod:`~repro.jpeg2000.stages.entropy`
    Tier-1: the code-block kernels and every executor that can run them
    (inline, pickle pool, zero-copy arena pool, streaming overlap) with
    the broken-pool resume machinery.
:mod:`~repro.jpeg2000.stages.reconstruct`
    Gather, inverse quantisation, inverse DWT, inverse colour transform,
    DC shift — per tile and vectorised across tiles.
:mod:`~repro.jpeg2000.stages.assemble`
    The tile mosaic (full-size and resolution-truncated).

Stage modules never import each other's executors and never read
:class:`~repro.jpeg2000.options.DecodeOptions` — the driver
(:mod:`repro.jpeg2000.driver`) hands each one its slice of a compiled
:class:`~repro.jpeg2000.plan.DecodePlan`.
"""
