"""The parse stage: Tier-2 packet decoding and QCD interpretation.

Turns one tile's codestream bytes into *work descriptions*: the
per-component band layout (Tier-2 protocol state) and every code
block's :class:`~repro.jpeg2000.options.BlockSpec` — geometry plus
``(start, end)`` codeword segment spans left in place in the tile
buffer, so the entropy stage can resolve them zero-copy from a shared
arena.  Also owns the QCD-segment interpretation (step sizes, M_b
bounds) that the parse and reconstruct stages both consult.

Pure functions of the coding parameters and tile bytes: no executors,
no telemetry, no options — the driver decides how the results are
scheduled.
"""

from __future__ import annotations

from typing import Optional

from .. import quant
from ..bitio import ff_positions
from ..codestream import CodingParameters, PROGRESSION_RLCP
from ..encoder import _progression, subband_order
from ..errors import DecodingError
from ..options import BlockSpec, TIER2_REFERENCE
from ..structure import band_shapes, codeblock_grid
from ..t2 import CodeBlockContribution, PacketBand, consume_sop, decode_packet


def entropy_specs(
    params: CodingParameters,
    tile_width: int,
    tile_height: int,
    data: bytes,
    *,
    tier2: str,
    max_layers: Optional[int] = None,
    max_resolution: Optional[int] = None,
) -> tuple:
    """Tier-2 only: parse every packet, describe every code block.

    Returns ``(layout, specs)``: *layout* is the per-component band
    dict (the Tier-2 protocol state, needed again by the gather step)
    and *specs* is the tile's :class:`~repro.jpeg2000.options.BlockSpec`
    list in scatter order.  The packet bodies are left in place — the
    specs carry ``(start, end)`` segment spans into *data*
    (``decode_packet(..., materialise=False)``), so the tile buffer can
    be placed into a shared-memory arena without per-block copies.
    Tier-1 itself runs in :func:`repro.jpeg2000.stages.entropy.run_specs`.
    """
    shapes = band_shapes(tile_width, tile_height, params.num_levels)
    bounds = band_bounds(params)
    # Tier-2 parser selection: the fast path shares one NumPy scan
    # for the 0xFF stuffing boundaries across every packet of the
    # tile and decodes tag trees over flat arrays.  Bit-for-bit
    # identical to the reference parse.
    fast_t2 = tier2 != TIER2_REFERENCE
    ff_index = ff_positions(data) if fast_t2 else None
    per_component_bands: list[dict] = []
    for _ in range(params.num_components):
        bands: dict[tuple[int, str], PacketBand] = {}
        for shape in shapes:
            bands[(shape.resolution, shape.orientation)] = PacketBand(
                orientation=shape.orientation,
                band_width=shape.width,
                band_height=shape.height,
                cb_size=params.codeblock_size,
                blocks=[
                    CodeBlockContribution(geometry=geo)
                    for geo in codeblock_grid(
                        shape.width, shape.height, params.codeblock_size
                    )
                ],
                fast=fast_t2,
            )
        per_component_bands.append(bands)
    offset = 0
    packet_sequence = 0
    layer_limit = params.num_layers
    if max_layers is not None:
        if params.progression == PROGRESSION_RLCP:
            raise DecodingError(
                "layer truncation needs the LRCP progression; this "
                "codestream is RLCP (use max_resolution instead)"
            )
        layer_limit = min(layer_limit, max_layers)
    for layer, resolution in _progression(params):
        if layer >= layer_limit:
            break
        if (
            max_resolution is not None
            and params.progression == PROGRESSION_RLCP
            and resolution > max_resolution
        ):
            break  # RLCP: everything beyond is a discardable suffix
        for comp_index in range(params.num_components):
            bands = per_component_bands[comp_index]
            packet_bands = [
                band
                for (res, _), band in bands.items()
                if res == resolution
            ]
            res_bounds = {
                orientation: bound
                for (res, orientation), bound in bounds.items()
                if res == resolution
            }
            if params.use_sop:
                offset = consume_sop(data, offset, packet_sequence)
            offset = decode_packet(
                data, offset, packet_bands, res_bounds, layer,
                use_eph=params.use_eph, materialise=False,
                fast=fast_t2, ff_index=ff_index,
            )
            packet_sequence += 1
    # Every code block is an independent decode task; describe them
    # all (across components and subbands) as segment-span specs in
    # the fixed scatter order.
    specs: list[BlockSpec] = []
    for comp_index in range(params.num_components):
        bands = per_component_bands[comp_index]
        for shape in shapes:
            for block in bands[(shape.resolution, shape.orientation)].blocks:
                geo = block.geometry
                specs.append(BlockSpec(
                    geo.width,
                    geo.height,
                    shape.orientation,
                    block.num_bitplanes,
                    block.num_passes,
                    tuple(block.segments),
                ))
    return per_component_bands, specs


def block_sizes(
    params: CodingParameters, tile_width: int, tile_height: int
) -> list:
    """Every code block's sample count in scatter order.

    Pure geometry — no packet is parsed — so the streaming decode
    path can size and lay out its shared output arena before Tier-2
    has read a single bit.  Matches the spec order of
    :func:`entropy_specs` exactly.
    """
    shapes = band_shapes(tile_width, tile_height, params.num_levels)
    sizes = []
    for _ in range(params.num_components):
        for shape in shapes:
            for geo in codeblock_grid(
                shape.width, shape.height, params.codeblock_size
            ):
                sizes.append(geo.width * geo.height)
    return sizes


def qcd_delta(params: CodingParameters, resolution: int, orientation: str) -> float:
    """Quantisation step of one subband, from the parsed QCD fields."""
    order = subband_order(params.num_levels)
    try:
        index = order.index((resolution, orientation))
    except ValueError:
        raise DecodingError(
            f"no QCD entry for resolution {resolution} band {orientation}"
        ) from None
    if index >= len(params.step_sizes):
        raise DecodingError("QCD step sizes missing or inconsistent")
    range_bits = params.bit_depth + quant.ORIENTATION_GAIN_LOG2[orientation]
    return params.step_sizes[index].delta(range_bits)


def band_bounds(params: CodingParameters) -> dict:
    """M_b bounds per (resolution, orientation), from the QCD fields."""
    order = subband_order(params.num_levels)
    bounds = {}
    if params.lossless:
        if len(params.exponents) != len(order):
            raise DecodingError("QCD exponents missing or inconsistent")
        for key, exponent in zip(order, params.exponents):
            bounds[key] = params.guard_bits + exponent - 1
    else:
        if len(params.step_sizes) != len(order):
            raise DecodingError("QCD step sizes missing or inconsistent")
        for key, step in zip(order, params.step_sizes):
            bounds[key] = params.guard_bits + step.exponent - 1
    return bounds
