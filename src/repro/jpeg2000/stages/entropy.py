"""The entropy stage: Tier-1 kernels and every executor that runs them.

The paper's profile (Fig. 1) puts 78–89 % of software decode time in the
arithmetic decoder, and its case study answers by parallelising exactly
that stage across tasks.  This module is the software mirror of that
move: EBCOT code blocks are coded independently, so once Tier-2 has
sliced the packet bodies into per-block codeword segments, every block
can be decoded in isolation.

Execution is *plan-driven*: the entry points (:func:`run_specs`,
:func:`run_tasks`, :func:`open_stream`) take the entropy
:class:`~repro.jpeg2000.plan.StageBinding` of a compiled
:class:`~repro.jpeg2000.plan.DecodePlan` — implementation id (kernel)
plus executor (inline / pool with transport, chunking, start method,
overlap) — never a raw options bag.  Two pool transports exist:

* **Shared-memory arenas** (``transport="arena"``): the tile buffers are
  placed into one input arena verbatim, workers attach zero-copy views
  and resolve each block's codeword from its ``(start, end)`` segment
  spans, and the decoded ``int32`` coefficients are written straight
  into a shared output arena.  The only pickled traffic is the arena
  names, the span tables, and the per-block op counts — a few kilobytes
  instead of the full coefficient planes.
* **Pickle chunks** (``transport="pickle"``): per-block codeword bytes
  ship to the workers and coefficient arrays ship back, both through the
  executor's pickle channel.

Scheduling is at *code-block* granularity in both transports.  The
arena path additionally plans its chunks **size-aware** (largest-first
into the least-loaded chunk) so one giant block cannot serialise the
tail of the decode, and decodes each chunk through the *batched* Tier-1
kernel (:func:`repro.jpeg2000.t1_fast.decode_codeblock_batch`) so the
per-block Python overhead is paid once per chunk.

Runtime degradations — arena unusable → pickle, pool unusable → inline,
broken pool → per-chunk resume — are reported to the caller's
stage-fate recorder (the ``fates`` parameter, duck-typed to
:class:`repro.jpeg2000.driver.StageFates`) so every crash report and
ledger row shows what *actually* ran, not just what was planned.

All kernels and transports return bit-identical coefficients and
identical basic-op counts, so the Fig. 1 / Table 1 instrumentation is
unaffected by how the work is scheduled.
"""

from __future__ import annotations

import atexit
import heapq
import math
import os
import pickle
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from multiprocessing import get_context
from typing import Iterable, Optional, Sequence

import numpy as np

from ... import telemetry
from ..options import (
    ARENA_PREFIX,
    _MAX_ARENA_BITPLANES,
    BlockSpec,
    BlockTask,
    KERNEL_BATCHED,
    KERNEL_FAST,
    KERNEL_REFERENCE,
    _warn_degraded,
    shared_memory,
)
from ..plan import (
    EXECUTOR_POOL,
    STAGE_ENTROPY,
    TRANSPORT_ARENA,
    TRANSPORT_PICKLE,
    StageBinding,
)
from ..t1 import CodeBlockDecoder
from ..t1_fast import FastCodeBlockDecoder, decode_codeblock_batch


def _rewrite(fates, rule: str, detail: str) -> None:
    """Record a runtime plan rewrite on the caller's fate map, if any."""
    if fates is not None:
        fates.rewrite(STAGE_ENTROPY, rule, detail)


def decode_block(task: BlockTask, kernel: str = KERNEL_FAST):
    """Decode one code block; returns (int64 coefficient array, ops)."""
    data, width, height, orientation, num_bitplanes, num_passes = task
    decoder_cls = (
        CodeBlockDecoder if kernel == KERNEL_REFERENCE else FastCodeBlockDecoder
    )
    decoder = decoder_cls(data, width, height, orientation, num_bitplanes, num_passes)
    values = np.asarray(decoder.decode(), dtype=np.int64)
    return values, decoder.ops


def _decode_tasks_sequential(tasks: Sequence[BlockTask], kernel: str) -> list:
    """In-process decode of *tasks*, honouring the batched kernel."""
    if kernel == KERNEL_BATCHED and tasks and all(
        task[4] <= _MAX_ARENA_BITPLANES for task in tasks
    ):
        batch = []
        offset = 0
        for data, width, height, orientation, num_bitplanes, num_passes in tasks:
            batch.append(
                (data, width, height, orientation, num_bitplanes, num_passes, offset)
            )
            offset += width * height
        out, op_counts = decode_codeblock_batch(batch)
        results = []
        for (_, width, height, _, _, _, offset), ops in zip(batch, op_counts):
            results.append((out[offset:offset + width * height], ops))
        return results
    single = KERNEL_FAST if kernel == KERNEL_BATCHED else kernel
    return [decode_block(task, single) for task in tasks]


def _decode_chunk(payload):
    """Pickle-transport worker entry point: decode a chunk of tasks.

    Returns ``(results, events)``: when the parent requested structured
    logging, ``events`` carries the worker-side event dicts (decoded in
    this process, under this pid) for the parent to merge in chunk
    order; otherwise it is ``None``.
    """
    kernel, tasks, want_events = payload
    if not want_events:
        return _decode_tasks_sequential(tasks, kernel), None
    import time as _time

    buffer = telemetry.capture_events()
    started = _time.perf_counter()
    results = _decode_tasks_sequential(tasks, kernel)
    buffer.emit(
        "parallel.chunk_decoded",
        pid=os.getpid(), transport="pickle", blocks=len(tasks),
        wall_ms=round((_time.perf_counter() - started) * 1e3, 3),
    )
    return results, buffer.events


def _chunked(tasks: Sequence, chunk_size: int) -> Iterable[Sequence]:
    for start in range(0, len(tasks), chunk_size):
        yield tasks[start : start + chunk_size]


def plan_chunks(costs: Sequence[int], workers: int, chunk_size: int) -> list:
    """Size-aware chunk plan: lists of block indices, balanced by cost.

    Blocks are placed largest-first into the currently lightest chunk
    (LPT scheduling), with at most ``chunk_size`` blocks per chunk and
    enough chunks for every worker to see several — so one expensive
    block cannot serialise the tail of the decode, and small blocks
    backfill around the big ones.
    """
    n = len(costs)
    if n == 0:
        return []
    num_chunks = max(math.ceil(n / chunk_size), min(n, workers * 4))
    order = sorted(range(n), key=lambda i: costs[i], reverse=True)
    chunks: list[list[int]] = [[] for _ in range(num_chunks)]
    heap = [(0, index) for index in range(num_chunks)]
    heapq.heapify(heap)
    full: list = []
    for block in order:
        cost, index = heapq.heappop(heap)
        chunks[index].append(block)
        if len(chunks[index]) < chunk_size:
            heapq.heappush(heap, (cost + costs[block], index))
        else:
            full.append(index)
    return [chunk for chunk in chunks if chunk]


# One cached pool per (worker count, start method); re-created only when
# either changes.  Spawning a pool per tile would dominate small decodes.
_pool: Optional[ProcessPoolExecutor] = None
_pool_key: Optional[tuple] = None


def _get_pool(workers: int, start_method: Optional[str] = None) -> Optional[ProcessPoolExecutor]:
    global _pool, _pool_key
    key = (workers, start_method)
    if _pool is not None and _pool_key == key:
        return _pool
    shutdown_pool()
    try:
        context = get_context(start_method) if start_method else None
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    except (OSError, PermissionError, RuntimeError, ValueError):
        return None  # no pool available here: sequential fallback
    _pool = pool
    _pool_key = key
    return pool


# -- shared-memory arenas ---------------------------------------------------------

#: Arenas created by this process and not yet unlinked.  ``shutdown_pool``
#: and the atexit hook sweep this, so segments cannot outlive the process
#: even if a decode aborted mid-flight.
_live_arenas: dict = {}


class SharedArena:
    """One shared-memory segment with create/attach/cleanup discipline.

    The creating side registers the arena in a module-level registry
    that :func:`shutdown_pool` (and interpreter exit) sweeps — so a
    worker crash, an exception mid-decode, or a forgotten handle can
    never leak a ``/dev/shm`` segment past the process.
    """

    def __init__(self, size: int):
        if shared_memory is None:  # pragma: no cover - guarded by callers
            raise OSError("multiprocessing.shared_memory unavailable")
        name = f"{ARENA_PREFIX}{os.getpid():x}-{uuid.uuid4().hex[:8]}"
        self._shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, size))
        self.size = size
        _live_arenas[self.name] = self

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def buf(self):
        return self._shm.buf

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent)."""
        _live_arenas.pop(self.name, None)
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass


def _sweep_arenas() -> None:
    for arena in list(_live_arenas.values()):
        arena.destroy()


def _join_segments(view, segments) -> bytes:
    if len(segments) == 1:
        start, end = segments[0]
        return bytes(view[start:end])
    return b"".join(bytes(view[start:end]) for start, end in segments)


def _decode_chunk_shm(payload):
    """Shared-memory worker entry point: decode a chunk of block specs.

    ``payload`` is (input arena name, output arena name, kernel,
    blocks, want_events) where each block is (out_offset, width, height,
    orientation, num_bitplanes, num_passes, segments).  Coefficients go
    straight into the output arena; only (pid, per-block op counts, and
    — when the parent requested logging — the worker-side event dicts)
    travel back.
    """
    in_name, out_name, kernel, blocks, want_events = payload
    events = None
    started = None
    if want_events:
        import time as _time

        started = _time.perf_counter()
    # Attaching re-registers the segments with the resource tracker, but
    # pool children share the parent's tracker (its fd travels in the
    # spawn/fork preparation data), where the duplicate is a set add —
    # the parent's unlink unregisters exactly once.  Do NOT unregister
    # here: that would strip the parent's registration and turn its
    # unlink into tracker KeyError noise.
    src = shared_memory.SharedMemory(name=in_name)
    dst = shared_memory.SharedMemory(name=out_name)
    out = np.frombuffer(dst.buf, dtype=np.int32)
    error = None
    op_counts = None
    try:
        view = src.buf
        if kernel == KERNEL_REFERENCE:
            op_counts = []
            for offset, width, height, orientation, num_bitplanes, num_passes, segments in blocks:
                data = _join_segments(view, segments)
                decoder = CodeBlockDecoder(
                    data, width, height, orientation, num_bitplanes, num_passes
                )
                out[offset:offset + width * height] = decoder.decode()
                op_counts.append(decoder.ops)
        else:
            batch = [
                (
                    _join_segments(view, segments),
                    width, height, orientation, num_bitplanes, num_passes, offset,
                )
                for offset, width, height, orientation, num_bitplanes, num_passes, segments
                in blocks
            ]
            op_counts = decode_codeblock_batch(batch, out)[1]
    except BaseException as exc:
        # Carry the failure as a string: re-raising after the buffers are
        # released keeps the traceback from pinning views over the mmap,
        # which would turn close() into a BufferError that masks it.
        error = f"{type(exc).__name__}: {exc}"
    del out
    src.close()
    dst.close()
    if error is not None:
        raise RuntimeError(f"shared-memory chunk decode failed: {error}")
    if want_events:
        import time as _time

        buffer = telemetry.capture_events()
        buffer.emit(
            "parallel.chunk_decoded",
            pid=os.getpid(), transport="shm", blocks=len(blocks),
            wall_ms=round((_time.perf_counter() - started) * 1e3, 3),
        )
        events = buffer.events
    return os.getpid(), op_counts, events


def _close_pool() -> None:
    """Tear down only the cached executor (arenas untouched — the
    broken-pool resume path still reads from them)."""
    global _pool, _pool_key
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_key = None


def shutdown_pool() -> None:
    """Tear down the cached worker pool and any live shared-memory
    arenas (also runs at interpreter exit)."""
    _close_pool()
    _sweep_arenas()


atexit.register(shutdown_pool)


def run_tasks(
    tasks: Sequence[BlockTask], binding: StageBinding, *,
    schedule: Optional[dict] = None, fates=None,
) -> list:
    """Decode *tasks* in order; returns [(coefficient array, ops), ...].

    This is the pickle-transport executor (per-block bytes in, arrays
    out); :func:`run_specs` is the zero-copy shared-memory protocol the
    decoder itself uses.  Results are position-matched to the input
    regardless of scheduling, and the pool path is byte-identical to
    the inline one — the only observable difference is wall-clock time.

    A broken pool (a worker crashed or was killed) degrades gracefully:
    chunks that already completed keep their results, and only the
    missing chunks are re-decoded in-process.
    """
    kernel = binding.impl
    ex = binding.executor
    if ex.kind != EXECUTOR_POOL or len(tasks) <= 1:
        return _decode_tasks_sequential(tasks, kernel)
    pool = _get_pool(ex.workers, ex.start_method)
    if pool is None:
        requested = ex.workers
        if schedule is not None:
            requested = schedule.get("requested_workers", ex.workers)
        _warn_degraded(requested, 1, "worker pool unavailable")
        _rewrite(fates, "pool-unavailable",
                 "no worker pool could be created; decoding in-process")
        return _decode_tasks_sequential(tasks, kernel)
    observing = (
        telemetry.log_enabled() or telemetry.flight_recorder() is not None
    )
    flight = telemetry.flight_recorder()
    fanout = telemetry.new_span_id() if observing else None
    payloads = [
        (kernel, chunk, observing)
        for chunk in _chunked(tasks, ex.chunk_size)
    ]
    if telemetry.enabled():
        telemetry.count(
            "jpeg2000.parallel.bytes_pickled",
            sum(len(task[0]) for task in tasks),
        )
    if flight is not None:
        if schedule is not None:
            flight.set_context("schedule", schedule)
        flight.reset_chunks()
    if observing:
        telemetry.log_event(
            "parallel.fanout", span=fanout, transport="pickle",
            chunks=len(payloads), blocks=len(tasks),
            workers=ex.workers,
        )
    futures = [pool.submit(_decode_chunk, payload) for payload in payloads]
    if flight is not None:
        for index in range(len(futures)):
            flight.chunk_state(index, "submitted")
    try:
        outcomes = [future.result() for future in futures]
    except BrokenProcessPool:
        _close_pool()
        telemetry.count("jpeg2000.parallel.broken_pools")
        if observing:
            telemetry.log_event(
                "parallel.pool_broken", span=fanout, transport="pickle"
            )
        _rewrite(fates, "broken-pool-resume",
                 "worker pool broke mid-decode; completed chunks kept, "
                 "lost chunks re-decoded in-process")
        outcomes = []
        resumed = redecoded = 0
        for index, (future, payload) in enumerate(zip(futures, payloads)):
            chunk_kernel, chunk, _ = payload
            outcome = None
            if future.done() and not future.cancelled():
                try:
                    outcome = future.result()
                except BaseException:
                    outcome = None
            if outcome is None:
                outcome = (_decode_tasks_sequential(chunk, chunk_kernel), None)
                redecoded += 1
                if flight is not None:
                    flight.chunk_state(index, "redecoded")
                if observing:
                    telemetry.log_event(
                        "parallel.chunk_redecoded", span=fanout,
                        chunk=index, blocks=len(chunk),
                    )
            else:
                resumed += 1
                if flight is not None:
                    flight.chunk_state(index, "resumed")
            outcomes.append(outcome)
        telemetry.count("jpeg2000.parallel.chunks_resumed", resumed)
        telemetry.count("jpeg2000.parallel.chunks_redecoded", redecoded)
        if observing:
            telemetry.log_event(
                "parallel.resumed", span=fanout,
                resumed=resumed, redecoded=redecoded,
            )
        if flight is not None:
            flight.dump("broken-pool")
    results: list = []
    for index, (chunk_results, events) in enumerate(outcomes):
        if flight is not None and flight.chunks.get(index) == "submitted":
            flight.chunk_state(index, "done")
        telemetry.merge_worker_events(events)
        results.extend(chunk_results)
    if observing:
        telemetry.log_event(
            "parallel.gathered", span=fanout, chunks=len(outcomes),
            blocks=len(tasks),
        )
    return results


#: Bucket bounds for the per-worker occupancy histogram (blocks decoded
#: by one worker in one fan-out).
_OCCUPANCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)


def _record_occupancy(worker_blocks: dict) -> None:
    recorder = telemetry.active()
    if recorder is None or not worker_blocks:
        return
    histogram = recorder.metrics.histogram(
        "jpeg2000.parallel.worker_blocks", _OCCUPANCY_BUCKETS
    )
    for blocks in worker_blocks.values():
        histogram.observe(blocks)


def _decode_specs_shm(sources, specs, sizes, offsets, binding, *,
                      schedule=None, fates=None):
    """The zero-copy fan-out.  Returns (flat int32 array, ops) or None.

    ``None`` means the shared-memory transport is unusable here (no shm
    support, arena creation failed, no pool) and the caller should fall
    back to the pickle transport.
    """
    if shared_memory is None:
        return None
    ex = binding.executor
    kernel = binding.impl
    workers = ex.workers
    pool = _get_pool(workers, ex.start_method)
    if pool is None:
        return None
    source_bases = []
    total_in = 0
    for source in sources:
        source_bases.append(total_in)
        total_in += len(source)
    total_out = int(offsets[-1])
    try:
        with telemetry.software_span("shm", "arena-build", "parallel"):
            in_arena = SharedArena(total_in)
            position = 0
            for source in sources:
                in_arena.buf[position:position + len(source)] = source
                position += len(source)
    except (OSError, PermissionError, ValueError):
        return None
    try:
        out_arena = SharedArena(total_out * 4)
    except (OSError, PermissionError, ValueError):
        in_arena.destroy()
        return None
    try:
        telemetry.count(
            "jpeg2000.parallel.bytes_shared", total_in + total_out * 4
        )
        observing = (
            telemetry.log_enabled() or telemetry.flight_recorder() is not None
        )
        flight = telemetry.flight_recorder()
        fanout = telemetry.new_span_id() if observing else None
        if flight is not None:
            if schedule is not None:
                flight.set_context("schedule", schedule)
            flight.set_context("arena", {
                "input": {"name": in_arena.name, "bytes": total_in},
                "output": {"name": out_arena.name, "bytes": total_out * 4},
            })
            flight.reset_chunks()
        costs = [spec.cost for _, spec in specs]
        chunks = plan_chunks(costs, workers, ex.chunk_size)
        payloads = []
        for chunk in chunks:
            blocks = []
            for index in range(len(chunk)):
                block = chunk[index]
                source_index, spec = specs[block]
                placed = spec.rebased(source_bases[source_index])
                blocks.append((
                    int(offsets[block]), placed.width, placed.height,
                    placed.orientation, placed.num_bitplanes,
                    placed.num_passes, placed.segments,
                ))
            payloads.append((
                in_arena.name, out_arena.name, kernel,
                tuple(blocks), observing,
            ))
        if telemetry.enabled():
            telemetry.count(
                "jpeg2000.parallel.bytes_pickled",
                sum(len(pickle.dumps(payload)) for payload in payloads),
            )
        if observing:
            telemetry.log_event(
                "parallel.fanout", span=fanout, transport="shm",
                chunks=len(payloads), blocks=len(specs), workers=workers,
                bytes_shared=total_in + total_out * 4,
            )
        with telemetry.software_span(
            "shm", "fanout", "parallel", chunks=len(payloads), workers=workers
        ):
            futures = [pool.submit(_decode_chunk_shm, payload) for payload in payloads]
            if flight is not None:
                for index in range(len(futures)):
                    flight.chunk_state(index, "submitted")
            ops_all: list = [0] * len(specs)
            worker_blocks: dict = {}
            failed: list = []
            broken = False
            try:
                for index, (future, chunk) in enumerate(zip(futures, chunks)):
                    pid, op_counts, events = future.result()
                    telemetry.merge_worker_events(events)
                    if flight is not None:
                        flight.chunk_state(index, "done")
                    worker_blocks[pid] = worker_blocks.get(pid, 0) + len(chunk)
                    for block, ops in zip(chunk, op_counts):
                        ops_all[block] = ops
            except BrokenProcessPool:
                broken = True
        if broken:
            _close_pool()
            telemetry.count("jpeg2000.parallel.broken_pools")
            if observing:
                telemetry.log_event(
                    "parallel.pool_broken", span=fanout, transport="shm"
                )
            _rewrite(fates, "broken-pool-resume",
                     "worker pool broke mid-decode; completed chunks kept, "
                     "lost chunks re-decoded in-process")
            resumed = 0
            for index, (future, chunk) in enumerate(zip(futures, chunks)):
                result = None
                if future.done() and not future.cancelled():
                    try:
                        result = future.result()
                    except BaseException:
                        result = None
                if result is None:
                    failed.append(chunk)
                    if flight is not None:
                        flight.chunk_state(index, "lost")
                    if observing:
                        telemetry.log_event(
                            "parallel.chunk_redecoded", span=fanout,
                            chunk=index, blocks=len(chunk),
                        )
                else:
                    pid, op_counts, events = result
                    telemetry.merge_worker_events(events)
                    if flight is not None:
                        flight.chunk_state(index, "resumed")
                    worker_blocks[pid] = worker_blocks.get(pid, 0) + len(chunk)
                    for block, ops in zip(chunk, op_counts):
                        ops_all[block] = ops
                    resumed += 1
            telemetry.count("jpeg2000.parallel.chunks_resumed", resumed)
            telemetry.count("jpeg2000.parallel.chunks_redecoded", len(failed))
            if observing:
                telemetry.log_event(
                    "parallel.resumed", span=fanout,
                    resumed=resumed, redecoded=len(failed),
                )
            if flight is not None:
                flight.dump("broken-pool")
        with telemetry.software_span("shm", "gather", "parallel"):
            flat = np.frombuffer(
                out_arena.buf, dtype=np.int32, count=total_out
            ).copy()
        _record_occupancy(worker_blocks)
        for chunk in failed:
            # Resume: only the chunks lost with the broken pool are
            # re-decoded, in-process, straight into the gathered array.
            for block in chunk:
                source_index, spec = specs[block]
                task = (
                    spec.codeword(sources[source_index]),
                    spec.width, spec.height, spec.orientation,
                    spec.num_bitplanes, spec.num_passes,
                )
                values, ops = decode_block(
                    task,
                    KERNEL_REFERENCE if kernel == KERNEL_REFERENCE
                    else KERNEL_FAST,
                )
                start = int(offsets[block])
                flat[start:start + spec.size] = values
                ops_all[block] = ops
        return flat, ops_all
    finally:
        in_arena.destroy()
        out_arena.destroy()


class SpecStream:
    """Producer/consumer overlap of Tier-2 parsing and Tier-1 decoding.

    Built from the static facts only — the tile buffers and every code
    block's output size, both known from geometry before a single packet
    header is read — so the shared arenas exist up front.
    :meth:`submit_tile` ships one tile's chunks to the pool the moment
    its codeword spans are parsed; :meth:`drain_tile` blocks only on
    that tile's chunks.  The caller parses tile *i+1* (and gathers and
    reconstructs tile *i*) while earlier submissions are still decoding
    in the workers — the pipeline overlap of the decode schedule.

    Use :func:`open_stream`; a broken pool degrades per chunk exactly
    like the barrier fan-out (completed chunks keep their results,
    missing ones re-decode in-process).
    """

    def __init__(self, sources: Sequence[bytes], sizes: Sequence[int],
                 binding: StageBinding, pool: ProcessPoolExecutor, *,
                 schedule: Optional[dict] = None, fates=None):
        self._binding = binding
        self._fates = fates
        self._pool = pool
        self._sources = list(sources)
        self._source_bases: list[int] = []
        total_in = 0
        for source in self._sources:
            self._source_bases.append(total_in)
            total_in += len(source)
        self._offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=self._offsets[1:])
        total_out = int(self._offsets[-1])
        with telemetry.software_span("shm", "arena-build", "parallel"):
            self._in_arena = SharedArena(total_in)
            position = 0
            for source in self._sources:
                self._in_arena.buf[position:position + len(source)] = source
                position += len(source)
            try:
                self._out_arena = SharedArena(total_out * 4)
            except BaseException:
                self._in_arena.destroy()
                raise
        telemetry.count(
            "jpeg2000.parallel.bytes_shared", total_in + total_out * 4
        )
        self._tiles: dict = {}
        self._ops: list = [0] * len(sizes)
        self._broken = False
        self._blocks_by_pid: dict = {}
        self._observing = (
            telemetry.log_enabled() or telemetry.flight_recorder() is not None
        )
        flight = telemetry.flight_recorder()
        if flight is not None:
            if schedule is not None:
                flight.set_context("schedule", schedule)
            flight.set_context("arena", {
                "input": {"name": self._in_arena.name, "bytes": total_in},
                "output": {"name": self._out_arena.name,
                           "bytes": total_out * 4},
            })
            flight.reset_chunks()
        if self._observing:
            telemetry.log_event(
                "parallel.stream_open", transport="shm",
                tiles=len(self._sources), blocks=len(sizes),
                bytes_shared=total_in + total_out * 4,
            )

    def submit_tile(self, source_index: int, specs: Sequence[BlockSpec],
                    first: int) -> bool:
        """Chunk and submit one parsed tile's blocks; False = unusable
        (a block cannot ride the int32 arena; caller falls back)."""
        if any(spec.num_bitplanes > _MAX_ARENA_BITPLANES for spec in specs):
            return False
        ex = self._binding.executor
        base = self._source_bases[source_index]
        costs = [spec.cost for spec in specs]
        chunks = plan_chunks(costs, ex.workers, ex.chunk_size)
        futures = []
        flight = telemetry.flight_recorder()
        if self._observing:
            telemetry.log_event(
                "parallel.tile_submitted", transport="shm",
                tile=source_index, chunks=len(chunks), blocks=len(specs),
            )
        with telemetry.software_span(
            "shm", "submit", "parallel", tile=source_index, chunks=len(chunks)
        ):
            for chunk in chunks:
                if self._broken:
                    # Chunks without a future are re-decoded in-process
                    # by drain_tile — same degradation as the barrier
                    # fan-out, just discovered at submit time.
                    break
                blocks = []
                for local in chunk:
                    placed = specs[local].rebased(base)
                    blocks.append((
                        int(self._offsets[first + local]), placed.width,
                        placed.height, placed.orientation,
                        placed.num_bitplanes, placed.num_passes,
                        placed.segments,
                    ))
                payload = (
                    self._in_arena.name, self._out_arena.name,
                    self._binding.impl, tuple(blocks), self._observing,
                )
                if telemetry.enabled():
                    telemetry.count(
                        "jpeg2000.parallel.bytes_pickled",
                        len(pickle.dumps(payload)),
                    )
                try:
                    futures.append(
                        self._pool.submit(_decode_chunk_shm, payload)
                    )
                except (BrokenProcessPool, RuntimeError):
                    self._mark_broken()
                    break
                if flight is not None:
                    flight.chunk_state(
                        f"tile{source_index}/chunk{len(futures) - 1}",
                        "submitted",
                    )
        self._tiles[source_index] = (
            futures,
            [[first + local for local in chunk] for chunk in chunks],
            list(specs),
            first,
        )
        return True

    def _mark_broken(self) -> None:
        self._broken = True
        _close_pool()
        telemetry.count("jpeg2000.parallel.broken_pools")
        _rewrite(self._fates, "broken-pool-resume",
                 "worker pool broke mid-stream; completed chunks kept, "
                 "lost chunks re-decoded in-process")
        if self._observing:
            telemetry.log_event("parallel.pool_broken", transport="shm")
        flight = telemetry.flight_recorder()
        if flight is not None:
            flight.dump("broken-pool")

    def drain_tile(self, source_index: int):
        """Wait for one tile's chunks; returns (flat, offsets, ops) with
        offsets local to the tile (``scatter_entropy(..., first=0)``)."""
        futures, chunk_ids, specs, first = self._tiles.pop(source_index)
        failed: list = []
        flight = telemetry.flight_recorder()
        with telemetry.software_span(
            "shm", "drain", "parallel", tile=source_index, chunks=len(futures)
        ):
            for index, ids in enumerate(chunk_ids):
                # A broken pool at submit time leaves trailing chunks
                # with no future; they go straight to the resume path.
                future = futures[index] if index < len(futures) else None
                result = None
                if future is None:
                    pass
                elif self._broken:
                    if future.done() and not future.cancelled():
                        try:
                            result = future.result()
                        except BaseException:
                            result = None
                else:
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        self._mark_broken()
                if result is None:
                    failed.append(ids)
                    if flight is not None:
                        flight.chunk_state(
                            f"tile{source_index}/chunk{index}", "lost"
                        )
                else:
                    pid, op_counts, events = result
                    telemetry.merge_worker_events(events)
                    if flight is not None:
                        flight.chunk_state(
                            f"tile{source_index}/chunk{index}",
                            "resumed" if self._broken else "done",
                        )
                    self._blocks_by_pid[pid] = (
                        self._blocks_by_pid.get(pid, 0) + len(ids)
                    )
                    for block, ops in zip(ids, op_counts):
                        self._ops[block] = ops
        count = len(specs)
        start = int(self._offsets[first])
        end = int(self._offsets[first + count])
        flat = np.frombuffer(
            self._out_arena.buf, dtype=np.int32,
            count=end - start, offset=start * 4,
        ).copy()
        if failed:
            telemetry.count("jpeg2000.parallel.chunks_resumed",
                            len(chunk_ids) - len(failed))
            telemetry.count("jpeg2000.parallel.chunks_redecoded", len(failed))
            if self._observing:
                telemetry.log_event(
                    "parallel.resumed", transport="shm", tile=source_index,
                    resumed=len(chunk_ids) - len(failed),
                    redecoded=len(failed),
                )
            source = self._sources[source_index]
            single = (
                KERNEL_REFERENCE
                if self._binding.impl == KERNEL_REFERENCE else KERNEL_FAST
            )
            for ids in failed:
                for block in ids:
                    spec = specs[block - first]
                    task = (
                        spec.codeword(source),
                        spec.width, spec.height, spec.orientation,
                        spec.num_bitplanes, spec.num_passes,
                    )
                    values, ops = decode_block(task, single)
                    local = int(self._offsets[block]) - start
                    flat[local:local + spec.size] = values
                    self._ops[block] = ops
        offsets = self._offsets[first:first + count + 1] - start
        return flat, offsets, self._ops[first:first + count]

    def close(self) -> None:
        """Destroy the arenas (idempotent) and record pool occupancy."""
        _record_occupancy(self._blocks_by_pid)
        self._blocks_by_pid = {}
        self._in_arena.destroy()
        self._out_arena.destroy()


def open_stream(
    sources: Sequence[bytes], sizes: Sequence[int], binding: StageBinding, *,
    schedule: Optional[dict] = None, fates=None,
) -> Optional[SpecStream]:
    """A :class:`SpecStream` over *sources*, or ``None`` when streaming
    is unusable here (no shared memory, no pool, non-arena executor) —
    the caller then takes the barrier schedule instead."""
    ex = binding.executor
    if (
        shared_memory is None
        or ex.kind != EXECUTOR_POOL
        or ex.transport != TRANSPORT_ARENA
    ):
        return None
    pool = _get_pool(ex.workers, ex.start_method)
    if pool is None:
        return None
    try:
        return SpecStream(sources, sizes, binding, pool,
                          schedule=schedule, fates=fates)
    except (OSError, PermissionError, ValueError):
        return None


def run_specs(
    sources: Sequence[bytes],
    specs: Sequence[tuple],
    binding: StageBinding, *,
    schedule: Optional[dict] = None,
    fates=None,
):
    """Decode segment-described blocks; the decoder's entropy fan-out.

    ``sources`` are the tile-part buffers; ``specs`` is a sequence of
    ``(source_index, BlockSpec)`` in scatter order.  Returns
    ``(flat, offsets, ops)`` where ``flat`` holds every block's
    coefficients row-major at ``offsets[i]`` (a NumPy prefix-sum over
    block sizes) and ``ops[i]`` is block *i*'s basic-op count.

    *binding* is the plan's entropy stage binding.  Transports degrade
    in order — arena (zero-copy), pickle chunks, in-process — with each
    step recorded on *fates*; all are bit-identical.
    """
    ex = binding.executor
    sizes = [spec.size for _, spec in specs]
    offsets = np.zeros(len(specs) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    int32_safe = all(
        spec.num_bitplanes <= _MAX_ARENA_BITPLANES for _, spec in specs
    )
    pooled = ex.kind == EXECUTOR_POOL and len(specs) > 1
    if pooled and ex.transport == TRANSPORT_ARENA:
        if int32_safe:
            shm_result = _decode_specs_shm(
                sources, specs, sizes, offsets, binding,
                schedule=schedule, fates=fates,
            )
            if shm_result is not None:
                flat, ops = shm_result
                return flat, offsets, ops
            _rewrite(fates, "arena-unavailable",
                     "shared-memory arenas unusable; taking the pickle "
                     "transport")
        else:
            _rewrite(fates, "arena-int32-unsafe",
                     "a block's bit planes exceed the int32 arena; taking "
                     "the pickle transport")
        binding = replace(binding, executor=replace(
            ex, transport=TRANSPORT_PICKLE, overlap=False
        ))
    tasks = [
        (
            spec.codeword(sources[source_index]),
            spec.width, spec.height, spec.orientation,
            spec.num_bitplanes, spec.num_passes,
        )
        for source_index, spec in specs
    ]
    if pooled:
        results = run_tasks(tasks, binding, schedule=schedule, fates=fates)
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        ops_all = []
        for (values, ops), start, size in zip(results, offsets, sizes):
            flat[int(start):int(start) + size] = values
            ops_all.append(ops)
        return flat, offsets, ops_all
    dtype = np.int32 if int32_safe else np.int64
    flat = np.empty(int(offsets[-1]), dtype=dtype)
    if binding.impl == KERNEL_BATCHED and int32_safe:
        batch = [
            task + (int(start),) for task, start in zip(tasks, offsets)
        ]
        ops_all = decode_codeblock_batch(batch, flat)[1]
        return flat, offsets, ops_all
    ops_all = []
    single = KERNEL_FAST if binding.impl == KERNEL_BATCHED else binding.impl
    for task, start, size in zip(tasks, offsets, sizes):
        values, ops = decode_block(task, single)
        flat[int(start):int(start) + size] = values
        ops_all.append(ops)
    return flat, offsets, ops_all
