"""The assemble stage: the tile mosaic.

Places every decoded tile's component planes into the full image frame
(:func:`assemble_full`), or packs the shrunken tiles of a
resolution-truncated decode edge to edge (:func:`assemble_reduced`).
"""

from __future__ import annotations

import numpy as np

from ..codestream import CodingParameters
from ..image import Image, TileGrid


def assemble_full(
    grid: TileGrid, params: CodingParameters, tile_planes: dict
) -> Image:
    """The full-resolution mosaic: each tile lands at its grid bounds."""
    components = [
        np.zeros((params.height, params.width), dtype=np.int64)
        for _ in range(params.num_components)
    ]
    for tile_index in range(grid.num_tiles):
        for component, plane in zip(components, tile_planes[tile_index]):
            grid.insert(component, tile_index, plane)
    return Image(components=components, bit_depth=params.bit_depth)


def assemble_reduced(
    grid: TileGrid, params: CodingParameters, tile_planes: dict
) -> Image:
    """Assemble the resolution-truncated mosaic (tiles shrink per axis)."""
    # Cumulative offsets from the reduced per-tile sizes.
    widths = [
        tile_planes[tx][0].shape[1] for tx in range(grid.tiles_across)
    ]
    heights = [
        tile_planes[ty * grid.tiles_across][0].shape[0]
        for ty in range(grid.tiles_down)
    ]
    total_w, total_h = sum(widths), sum(heights)
    components = [
        np.zeros((total_h, total_w), dtype=np.int64)
        for _ in range(params.num_components)
    ]
    y_offset = 0
    for ty in range(grid.tiles_down):
        x_offset = 0
        for tx in range(grid.tiles_across):
            planes = tile_planes[ty * grid.tiles_across + tx]
            height, width = planes[0].shape
            for component, plane in zip(components, planes):
                component[y_offset:y_offset + height, x_offset:x_offset + width] = plane
            x_offset += width
        y_offset += heights[ty]
    return Image(components=components, bit_depth=params.bit_depth)
