"""Decode scheduling options and the block-level work descriptors.

:class:`DecodeOptions` is the *request* side of the decode stack: a
frozen, canonically-serialisable record of how the caller wants the
entropy stage scheduled (workers, chunking, kernel, transport, start
method, overlap).  The planner (:mod:`repro.jpeg2000.plan`) compiles it
— together with the host environment — into an explicit
:class:`~repro.jpeg2000.plan.DecodePlan`; nothing below the planner
reads :class:`DecodeOptions` directly.

:class:`BlockSpec` is the parse→entropy interface: one code block's
geometry plus the ``(start, end)`` codeword segment spans into its tile
buffer, small enough to pickle by the thousand and precise enough to
resolve zero-copy inside a shared-memory arena.

This module is the import root of the decode stack (no dependencies on
the stages, the planner, or the driver), so every layer can share the
option vocabulary without cycles.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Optional

from .. import telemetry

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    shared_memory = None

#: Kernel names accepted by :class:`DecodeOptions`.
KERNEL_FAST = "fast"
KERNEL_REFERENCE = "reference"
KERNEL_BATCHED = "batched"
_KERNELS = (KERNEL_FAST, KERNEL_REFERENCE, KERNEL_BATCHED)

#: Tier-2 parser selection accepted by :class:`DecodeOptions`.
TIER2_FAST = "fast"
TIER2_REFERENCE = "reference"
_TIER2 = (TIER2_FAST, TIER2_REFERENCE)

#: Pool start methods accepted by :class:`DecodeOptions` (None = platform
#: default).
_START_METHODS = (None, "fork", "spawn", "forkserver")

#: A picklable per-block decode task:
#: (data, width, height, orientation, num_bitplanes, num_passes).
BlockTask = tuple

#: Shared-memory arena name prefix — short enough for macOS's 31-char
#: shm_open limit, distinctive enough for the leak checks in CI.
ARENA_PREFIX = "repro-j2k-"

#: Blocks with more bit planes than this cannot be carried in the int32
#: output arena; such (pathological) streams take the pickle path.
_MAX_ARENA_BITPLANES = 30


class ParallelDegradedWarning(RuntimeWarning):
    """A parallel decode request is actually running sequentially."""


#: Warn once per distinct degradation, not once per tile.
_degradations_warned: set = set()


def _warn_degraded(requested: int, effective: int, reason: str) -> None:
    # Metrics and the structured log see *every* degradation occurrence
    # (a degraded run is diagnosable after the fact); the warning itself
    # is deduplicated so a 16-tile decode does not print 16 times.
    telemetry.count("jpeg2000.parallel.degraded")
    telemetry.count(
        "jpeg2000.parallel.degraded_total{reason=%s}" % reason
    )
    telemetry.log_event(
        "parallel.degraded",
        reason=reason, requested=requested, effective=effective,
    )
    flight = telemetry.flight_recorder()
    if flight is not None:
        flight.dump("parallel-degraded")
    key = (requested, effective, reason)
    if key in _degradations_warned:
        return
    _degradations_warned.add(key)
    warnings.warn(
        f"parallel decode requested {requested} workers but is running "
        f"with {effective} ({reason}); wall-clock numbers from this run "
        f"are sequential numbers",
        ParallelDegradedWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class DecodeOptions:
    """How the entropy-decode stage schedules its code-block kernel.

    ``workers``
        Worker processes for block decoding.  0 or 1 decodes
        sequentially in-process; ``None`` picks ``os.cpu_count()``.
    ``chunk_size``
        Upper bound on blocks per unit of work shipped to a worker;
        larger chunks amortise per-chunk overhead, smaller chunks
        balance better.  The shared-memory scheduler plans size-aware
        chunks up to this bound.
    ``kernel``
        ``"fast"`` (the optimised ``t1_fast`` kernel, default),
        ``"batched"`` (the chunk-at-a-time ``t1_fast`` entry point —
        what shared-memory workers always run), or ``"reference"``
        (the readable ``t1`` specification kernel).
    ``shared_memory``
        Allow the zero-copy shared-memory transport (default).  Off, or
        when arenas cannot be created, the pickle transport is used.
    ``start_method``
        Multiprocessing start method for the pool (``None`` = platform
        default; ``"fork"``/``"spawn"``/``"forkserver"``).
    ``oversubscribe``
        Allow more workers than ``os.cpu_count()``.  Off by default:
        extra workers usually only add overhead — but tests (and hosts
        whose workers stall on IO) may want real worker processes even
        on a small machine.
    ``tier2``
        Packet-header parser: ``"fast"`` (word-at-a-time
        ``FastBitReader`` + array-backed tag trees, default) or
        ``"reference"`` (the bit-by-bit specification reader).  Both
        parse bit-for-bit identically.
    ``overlap``
        Stream Tier-1 chunks to the workers while later tiles are still
        being parsed, and finish (gather/DWT/MCT) completed tiles on the
        main process during the flight (default).  Off serialises the
        stages: full parse, then fan-out, then reconstruction.  Only
        affects the parallel shared-memory path; results are identical
        either way.
    """

    workers: Optional[int] = 0
    chunk_size: int = 8
    kernel: str = KERNEL_FAST
    shared_memory: bool = True
    start_method: Optional[str] = None
    oversubscribe: bool = False
    tier2: str = TIER2_FAST
    overlap: bool = True

    def __post_init__(self):
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be None or >= 0")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.kernel not in _KERNELS:
            raise ValueError(f"kernel must be one of {_KERNELS}")
        if self.start_method not in _START_METHODS:
            raise ValueError(f"start_method must be one of {_START_METHODS}")
        if self.tier2 not in _TIER2:
            raise ValueError(f"tier2 must be one of {_TIER2}")

    @property
    def requested_workers(self) -> int:
        """The worker count as asked for, before any host clamping."""
        return (os.cpu_count() or 1) if self.workers is None else self.workers

    @property
    def effective_workers(self) -> int:
        # Clamped to the host's CPU count unless oversubscription is
        # explicitly requested: extra workers only add pool and transport
        # overhead.  A clamp that turns a parallel request sequential is
        # *reported* (ParallelDegradedWarning) by the decode entry points.
        requested = self.requested_workers
        if self.oversubscribe:
            return requested
        return min(requested, os.cpu_count() or 1)

    @property
    def parallel(self) -> bool:
        return self.effective_workers > 1

    @property
    def degraded(self) -> bool:
        """True when a parallel request will actually run sequentially."""
        return self.requested_workers > 1 and not self.parallel

    @property
    def granularity(self) -> str:
        """Scheduling granularity label recorded in benchmark payloads."""
        if not self.parallel:
            return "codeblock/sequential"
        if self.shared_memory and shared_memory is not None:
            return "codeblock/size-aware"
        return "codeblock/fixed"

    def as_dict(self) -> dict:
        """Canonical plain-data form: exactly the dataclass fields.

        This is the *identity* of an options value — the planner compiles
        from it and the experiment cache fingerprints it — so two
        equal-valued instances always serialise identically, and every
        field flip changes the serialisation.
        """
        return {
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "kernel": self.kernel,
            "shared_memory": self.shared_memory,
            "start_method": self.start_method,
            "oversubscribe": self.oversubscribe,
            "tier2": self.tier2,
            "overlap": self.overlap,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecodeOptions":
        """Rebuild from :meth:`as_dict` output (unknown keys rejected)."""
        return cls(**data)

    def schedule_info(self) -> dict:
        """The scheduling facts a benchmark row must carry (schema v3)."""
        return {
            "requested_workers": self.requested_workers,
            "effective_workers": self.effective_workers,
            "degraded": self.degraded,
            "chunk_size": self.chunk_size,
            "kernel": self.kernel,
            "tier2": self.tier2,
            "overlap": self.overlap,
            "granularity": self.granularity,
            "shared_memory": self.shared_memory,
            "start_method": self.start_method,
            "oversubscribe": self.oversubscribe,
        }


#: Default options: sequential, fast kernel.
DEFAULT_OPTIONS = DecodeOptions()


@dataclass(frozen=True)
class BlockSpec:
    """One code block's geometry plus its codeword's segment spans.

    The spans point into a *source* buffer (a tile-part's bytes) that is
    shipped to the workers once, via the shared input arena — the spec
    itself is a few dozen bytes of picklable metadata, which is the whole
    point of the zero-copy protocol.
    """

    width: int
    height: int
    orientation: str
    num_bitplanes: int
    num_passes: Optional[int]
    segments: tuple = ()

    @property
    def size(self) -> int:
        return self.width * self.height

    @property
    def cost(self) -> int:
        """Scheduling weight: codeword bytes dominate decode time."""
        return sum(end - start for start, end in self.segments) + 1

    def codeword(self, source) -> bytes:
        """The block's MQ codeword, joined from its spans into *source*."""
        segments = self.segments
        if len(segments) == 1:
            start, end = segments[0]
            return bytes(source[start:end])
        return b"".join(bytes(source[start:end]) for start, end in segments)

    def rebased(self, base: int) -> "BlockSpec":
        """The same spec with spans shifted by *base* (arena placement)."""
        if not base:
            return self
        return BlockSpec(
            self.width, self.height, self.orientation,
            self.num_bitplanes, self.num_passes,
            tuple((start + base, end + base) for start, end in self.segments),
        )
