"""The JPEG 2000 encoder.

The paper only needs a *decoder*, but the original Thales image material
and codestreams are unavailable; this encoder fabricates standard-shaped
codestreams from synthetic images so the decoder — the profiling subject
and the functional payload of every OSSS model — has real work to do.

Pipeline per tile component: DC level shift, colour transform (RCT for the
5/3 path, ICT for 9/7), multi-level DWT, quantisation (9/7 only), Tier-1
code-block coding, Tier-2 packet assembly (single layer, LRCP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import dwt, mct, quant
from .codestream import (
    CodingParameters,
    PROGRESSION_RLCP,
    TilePart,
    write_codestream,
)
from .image import Image, TileGrid
from .structure import band_shapes, codeblock_grid
from .t1 import CodeBlockEncoder
from .t2 import CodeBlockContribution, PacketBand, encode_packet, sop_segment


class EncodingError(RuntimeError):
    """The image cannot be represented with the chosen parameters."""


@dataclass
class _CodedBand:
    resolution: int
    orientation: str
    width: int
    height: int
    blocks: list = field(default_factory=list)


def subband_order(num_levels: int):
    """(resolution, orientation) pairs in QCD/packet order."""
    order = [(0, "LL")]
    for res in range(1, num_levels + 1):
        order.extend([(res, "HL"), (res, "LH"), (res, "HH")])
    return order


def _progression(params: CodingParameters):
    """(layer, resolution) pairs in the signalled progression order."""
    layers = range(params.num_layers)
    resolutions = range(params.num_levels + 1)
    if params.progression == PROGRESSION_RLCP:
        return [(l, r) for r in resolutions for l in layers]
    return [(l, r) for l in layers for r in resolutions]


def decomposition_level(num_levels: int, resolution: int) -> int:
    """Decomposition level (1 = finest) of a resolution's detail bands."""
    return num_levels - resolution + 1 if resolution > 0 else num_levels


def signalled_delta(params: CodingParameters, resolution: int, orientation: str) -> float:
    """The exact (QCD-representable) quantisation step for one subband."""
    level = decomposition_level(params.num_levels, resolution)
    raw = quant.default_step(orientation, level, params.num_levels, params.base_step)
    range_bits = params.bit_depth + quant.ORIENTATION_GAIN_LOG2[orientation]
    return quant.StepSize.from_delta(raw, range_bits).delta(range_bits)


class Jpeg2000Encoder:
    """Encode an :class:`~repro.jpeg2000.image.Image` to a codestream."""

    def __init__(self, params: CodingParameters):
        params.validate()
        self.params = params

    def encode(self, image: Image) -> bytes:
        params = self.params
        if image.width != params.width or image.height != params.height:
            raise EncodingError("image size does not match coding parameters")
        if image.num_components != params.num_components:
            raise EncodingError("component count does not match coding parameters")
        if image.bit_depth != params.bit_depth:
            raise EncodingError("bit depth does not match coding parameters")
        grid = TileGrid(params.width, params.height, params.tile_width, params.tile_height)
        # Phase 1: transform + Tier-1 for every tile; collect per-band maxima.
        coded_tiles = []
        max_planes: dict[tuple[int, str], int] = {}
        for tile_index in range(grid.num_tiles):
            bands_per_component = self._code_tile(image, grid, tile_index)
            coded_tiles.append(bands_per_component)
            for component_bands in bands_per_component:
                for band in component_bands:
                    key = (band.resolution, band.orientation)
                    planes = max((b.num_bitplanes for b in band.blocks), default=0)
                    max_planes[key] = max(max_planes.get(key, 0), planes)
        # Phase 2: derive QCD fields and the M_b bounds.
        bounds = self._fill_quantisation_fields(max_planes)
        # Phase 3: assemble packets per tile (LRCP progression).  The
        # PacketBand objects persist across layers: they carry the
        # inter-layer protocol state (tag trees, inclusion, LBlock).
        tile_parts = []
        for tile_index, bands_per_component in enumerate(coded_tiles):
            packet_bands_per_component = [
                [
                    PacketBand(
                        orientation=band.orientation,
                        band_width=band.width,
                        band_height=band.height,
                        cb_size=params.codeblock_size,
                        blocks=band.blocks,
                    )
                    for band in component_bands
                ]
                for component_bands in bands_per_component
            ]
            resolutions_per_component = [
                [band.resolution for band in component_bands]
                for component_bands in bands_per_component
            ]
            body = bytearray()
            packet_sequence = 0
            for layer, resolution in _progression(params):
                for comp_index, packet_bands in enumerate(packet_bands_per_component):
                    selected = [
                        band
                        for band, res in zip(
                            packet_bands, resolutions_per_component[comp_index]
                        )
                        if res == resolution
                    ]
                    res_bounds = {
                        band.orientation: bounds[(resolution, band.orientation)]
                        for band in selected
                    }
                    if params.use_sop:
                        body += sop_segment(packet_sequence)
                    body += encode_packet(
                        selected, res_bounds, layer, params.num_layers,
                        use_eph=params.use_eph,
                    )
                    packet_sequence += 1
            tile_parts.append(TilePart(tile_index=tile_index, data=bytes(body)))
        return write_codestream(params, tile_parts)

    # -- per-tile coding ------------------------------------------------------------

    def _code_tile(self, image: Image, grid: TileGrid, tile_index: int):
        params = self.params
        tiles = [grid.extract(comp, tile_index) for comp in image.components]
        shifted = [mct.dc_shift_forward(t, params.bit_depth) for t in tiles]
        if params.use_mct:
            if params.lossless:
                y, u, v = mct.rct_forward(*shifted[:3])
            else:
                y, u, v = mct.ict_forward(*shifted[:3])
            planes = [y, u, v] + shifted[3:]
        else:
            planes = shifted
        bands_per_component = []
        for plane in planes:
            subbands = dwt.forward(plane, params.transform, params.num_levels)
            component_bands = []
            for resolution, orientation, array in subbands.iter_bands():
                component_bands.append(
                    self._code_band(resolution, orientation, array)
                )
            bands_per_component.append(component_bands)
        return bands_per_component

    def _code_band(self, resolution: int, orientation: str, array: np.ndarray) -> _CodedBand:
        params = self.params
        if params.lossless:
            indices = np.asarray(array, dtype=np.int64)
        else:
            # Quantise with the QCD-representable step so encoder and decoder
            # use bit-identical deltas.
            indices = quant.quantise(array, signalled_delta(params, resolution, orientation))
        height, width = indices.shape
        band = _CodedBand(resolution, orientation, width, height)
        for geometry in codeblock_grid(width, height, params.codeblock_size):
            block_data = indices[
                geometry.y0 : geometry.y0 + geometry.height,
                geometry.x0 : geometry.x0 + geometry.width,
            ]
            coder = CodeBlockEncoder(
                block_data.flatten().tolist(), geometry.width, geometry.height, orientation
            )
            result = coder.encode()
            band.blocks.append(
                CodeBlockContribution(
                    geometry=geometry,
                    data=result.data,
                    num_passes=result.num_passes,
                    num_bitplanes=result.num_bitplanes,
                    pass_lengths=result.pass_lengths,
                )
            )
        return band

    # -- quantisation signalling -------------------------------------------------------

    def _fill_quantisation_fields(self, max_planes: dict) -> dict:
        """Write QCD fields into the parameters; return M_b per band."""
        params = self.params
        order = subband_order(params.num_levels)
        bounds: dict[tuple[int, str], int] = {}
        if params.lossless:
            exponents = []
            guard = params.guard_bits
            for key in order:
                planes = max_planes.get(key, 0)
                exponent = max(0, planes + 1 - guard)
                if exponent > 31:
                    raise EncodingError("dynamic range exceeds QCD exponent field")
                exponents.append(exponent)
                bounds[key] = guard + exponent - 1
            params.exponents = exponents
            params.step_sizes = []
        else:
            steps = []
            needed_guard = params.guard_bits
            for resolution, orientation in order:
                level = decomposition_level(params.num_levels, resolution)
                delta = quant.default_step(
                    orientation, level, params.num_levels, params.base_step
                )
                range_bits = params.bit_depth + quant.ORIENTATION_GAIN_LOG2[orientation]
                step = quant.StepSize.from_delta(delta, range_bits)
                steps.append(step)
                planes = max_planes.get((resolution, orientation), 0)
                needed_guard = max(needed_guard, planes + 1 - step.exponent)
            if needed_guard > 7:
                raise EncodingError(
                    "quantised coefficients exceed the representable bit-plane "
                    "budget; increase base_step"
                )
            params.guard_bits = needed_guard
            for (key, step) in zip(order, steps):
                bounds[key] = params.guard_bits + step.exponent - 1
            params.step_sizes = steps
            params.exponents = []
        return bounds


def encode_image(image: Image, params: CodingParameters) -> bytes:
    """Convenience one-shot encode."""
    return Jpeg2000Encoder(params).encode(image)
