"""``repro.kernel`` — a SystemC-like discrete-event simulation kernel.

The kernel provides the substrate every OSSS model runs on: simulated time
(:class:`SimTime`), events with immediate/delta/timed notification
(:class:`Event`), generator-coroutine processes, evaluate/update signal
semantics (:class:`Signal`), clocks, FIFOs and synchronisation primitives,
all coordinated by :class:`Simulator`.
"""

from .event import Event
from .fifo import Fifo
from .module import Module
from .process import AllOf, AnyOf, Process, ProcessState, Timeout, join
from .scheduler import (
    ProcessError,
    SimulationError,
    Simulator,
    default_fast,
    set_default_fast,
)
from .signal import Clock, ResetSignal, Signal
from .sync import Barrier, Mutex, Semaphore
from .time import ZERO_TIME, SimTime, fs, ms, ns, ps, sec, us
from .tracing import SimProfiler, Trace

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Clock",
    "Event",
    "Fifo",
    "Module",
    "Mutex",
    "Process",
    "ProcessError",
    "ProcessState",
    "ResetSignal",
    "Semaphore",
    "Signal",
    "SimProfiler",
    "SimTime",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Trace",
    "ZERO_TIME",
    "default_fast",
    "fs",
    "join",
    "ms",
    "ns",
    "ps",
    "sec",
    "set_default_fast",
    "us",
]
