"""A blocking bounded FIFO channel (``sc_fifo`` analogue).

``put``/``get`` are blocking generator calls used with ``yield from``.
Non-blocking variants (`try_put`/`try_get`) are provided for polling-style
models.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from .event import Event
from .scheduler import Simulator

T = TypeVar("T")


class Fifo(Generic[T]):
    """Bounded FIFO with blocking access from process context."""

    def __init__(self, sim: Simulator, capacity: int = 16, name: str = "fifo"):
        if capacity < 1:
            raise ValueError("fifo capacity must be at least 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque[T] = deque()
        self._data_written = Event(sim, f"{name}.data_written")
        self._data_read = Event(sim, f"{name}.data_read")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    # -- non-blocking ------------------------------------------------------------

    def try_put(self, item: T) -> bool:
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        # Fast mode: skip the notification when no process is waiting.
        # Exact, because blocked peers always re-check the fifo state in
        # their retry loop rather than counting wakeups.
        written = self._data_written
        if written._waiting or not self.sim.fast:
            written.notify(delta=True)
        return True

    def try_get(self):
        if not self._items:
            return False, None
        item = self._items.popleft()
        read = self._data_read
        if read._waiting or not self.sim.fast:
            read.notify(delta=True)
        return True, item

    # -- blocking (generator) ------------------------------------------------------

    def put(self, item: T):
        """Blocking put; use as ``yield from fifo.put(x)``."""
        while not self.try_put(item):
            yield self._data_read

    def get(self):
        """Blocking get; use as ``item = yield from fifo.get()``."""
        while True:
            ok, item = self.try_get()
            if ok:
                return item
            yield self._data_written

    def __repr__(self) -> str:
        return f"Fifo({self.name!r}, {len(self._items)}/{self.capacity})"
