"""Mutual exclusion primitives for process context.

All blocking operations are generator calls (``yield from``).  The mutex
grants in FIFO order of arrival, which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque

from .event import Event
from .scheduler import Simulator


class Mutex:
    """FIFO-fair mutual exclusion lock."""

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked_by: object = None
        self._waiters: deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked_by is not None

    def lock(self, owner: object = None):
        """Blocking acquire; ``yield from mutex.lock(owner)``.

        The lock is handed off directly to the longest-waiting process, so
        a late arrival can never barge in front of the queue.
        """
        owner = owner if owner is not None else object()
        if self._locked_by is None and not self._waiters:
            self._locked_by = owner
            return owner
        gate = Event(self.sim, f"{self.name}.grant")
        self._waiters.append(gate)
        yield gate
        # unlock() reserved the mutex for us by storing our gate.
        self._locked_by = owner
        return owner

    def try_lock(self, owner: object = None) -> bool:
        if self._locked_by is not None or self._waiters:
            return False
        self._locked_by = owner if owner is not None else object()
        return True

    def unlock(self, owner: object = None) -> None:
        if self._locked_by is None:
            raise RuntimeError(f"unlock of unlocked mutex {self.name!r}")
        if owner is not None and owner is not self._locked_by:
            raise RuntimeError(f"mutex {self.name!r} unlocked by non-owner")
        if self._waiters:
            gate = self._waiters.popleft()
            self._locked_by = gate  # reserve for the woken waiter
            gate.notify(delta=True)
        else:
            self._locked_by = None


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, initial: int, name: str = "semaphore"):
        if initial < 0:
            raise ValueError("semaphore count must be non-negative")
        self.sim = sim
        self.name = name
        self._count = initial
        self._waiters: deque[Event] = deque()

    @property
    def count(self) -> int:
        return self._count

    def acquire(self):
        """Blocking P(); ``yield from sem.acquire()``."""
        while self._count == 0:
            gate = Event(self.sim, f"{self.name}.grant")
            self._waiters.append(gate)
            yield gate
        self._count -= 1

    def try_acquire(self) -> bool:
        if self._count == 0:
            return False
        self._count -= 1
        return True

    def release(self) -> None:
        self._count += 1
        if self._waiters:
            self._waiters.popleft().notify(delta=True)


class Barrier:
    """All parties block until the last one arrives."""

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.sim = sim
        self.name = name
        self.parties = parties
        self._arrived = 0
        self._release = Event(sim, f"{name}.release")

    def wait(self):
        """Blocking arrive-and-wait; ``yield from barrier.wait()``."""
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            self._release.notify(delta=True)
            return
        yield self._release
