"""Value-change tracing and simulation profiling.

The tracer records ``(time, name, value)`` tuples and can render them as a
simple VCD-style text dump or return per-probe waveforms for assertions in
tests (e.g. checking bus-grant sequences).

:class:`SimProfiler` is the companion for *wall-clock* analysis: attached
to a :class:`Simulator` it attributes host time and step counts to each
process, which is how the kernel fast paths in this package were found.
"""

from __future__ import annotations

from typing import Optional

from .process import Process
from .scheduler import Simulator
from .signal import Signal
from .time import SimTime


class Trace:
    """Collects timestamped value changes from signals and manual probes."""

    def __init__(self, sim: Simulator, name: str = "trace"):
        self.sim = sim
        self.name = name
        self.records: list[tuple[SimTime, str, object]] = []
        self._watched: list[tuple[Signal, str]] = []

    def record(self, probe: str, value: object) -> None:
        """Manually record a value change for *probe* at the current time."""
        self.records.append((self.sim.now, probe, value))

    def watch(self, signal: Signal, name: Optional[str] = None) -> None:
        """Attach to a signal: every change is recorded automatically."""
        probe = name or signal.name
        self._watched.append((signal, probe))
        self.records.append((self.sim.now, probe, signal.read()))
        self.sim.spawn(self._follow(signal, probe), name=f"{self.name}.watch.{probe}")

    def _follow(self, signal: Signal, probe: str):
        while True:
            yield signal.changed
            self.records.append((self.sim.now, probe, signal.read()))

    def waveform(self, probe: str) -> list[tuple[SimTime, object]]:
        """The recorded ``(time, value)`` history of one probe."""
        return [(t, v) for (t, name, v) in self.records if name == probe]

    def value_at(self, probe: str, when: SimTime) -> object:
        """Most recent value of *probe* at or before *when*."""
        value = None
        seen = False
        for t, v in self.waveform(probe):
            if t <= when:
                value, seen = v, True
            else:
                break
        if not seen:
            raise KeyError(f"no value recorded for {probe!r} at or before {when}")
        return value

    def dump(self) -> str:
        """Render all records as aligned text, one change per line."""
        lines = [f"# trace {self.name}: {len(self.records)} changes"]
        for t, probe, value in self.records:
            lines.append(f"{str(t):>12}  {probe:<32} {value!r}")
        return "\n".join(lines) + "\n"

    def to_vcd(self, timescale: str = "1ps") -> str:
        """Render the probes as a VCD (value change dump) file.

        Probe types come from the first recorded value: bools become
        1-bit ``wire`` variables (``0``/``1`` scalar changes), other
        numerics become ``real`` variables, and strings become VCD
        ``string`` variables (``s<value>`` changes, as emitted by
        SystemC/GTKWave).  Later records of a different type for the
        same probe are skipped.  ``timescale`` must be one of the
        VCD-legal steps (1fs..1s).
        """
        scale_fs = {
            "1fs": 1, "1ps": 10**3, "1ns": 10**6,
            "1us": 10**9, "1ms": 10**12, "1s": 10**15,
        }
        if timescale not in scale_fs:
            raise ValueError(f"unsupported timescale {timescale!r}")
        divisor = scale_fs[timescale]

        def kind_of(value) -> Optional[str]:
            if isinstance(value, bool):
                return "wire"
            if isinstance(value, (int, float)):
                return "real"
            if isinstance(value, str):
                return "string"
            return None

        kinds: dict[str, str] = {}
        usable = []
        for t, probe, value in self.records:
            kind = kind_of(value)
            if kind is None:
                continue
            if kinds.setdefault(probe, kind) != kind:
                continue
            usable.append((t, probe, value))
        probes = sorted(kinds)
        # VCD identifier codes: printable ASCII starting at '!'.
        codes = {probe: chr(33 + index) for index, probe in enumerate(probes)}
        var_width = {"wire": "wire 1", "real": "real 64", "string": "string 1"}
        lines = [
            f"$comment trace {self.name} $end",
            f"$timescale {timescale} $end",
            f"$scope module {self.name} $end",
        ]
        for probe in probes:
            safe = probe.replace(" ", "_")
            lines.append(
                f"$var {var_width[kinds[probe]]} {codes[probe]} {safe} $end"
            )
        lines += ["$upscope $end", "$enddefinitions $end"]
        current_time = None
        for t, probe, value in sorted(usable, key=lambda r: r[0].femtoseconds):
            ticks = t.femtoseconds // divisor
            if ticks != current_time:
                lines.append(f"#{ticks}")
                current_time = ticks
            code = codes[probe]
            kind = kinds[probe]
            if kind == "wire":
                # Scalar change: no space between value and identifier.
                lines.append(f"{1 if value else 0}{code}")
            elif kind == "string":
                safe_value = str(value).replace(" ", "_")
                lines.append(f"s{safe_value} {code}")
            else:
                lines.append(f"r{float(value):g} {code}")
        return "\n".join(lines) + "\n"


class _ProcStats:
    """Accumulated per-process profile counters."""

    __slots__ = ("name", "steps", "seconds", "first_delta", "last_delta")

    def __init__(self, name: str):
        self.name = name
        self.steps = 0
        self.seconds = 0.0
        self.first_delta: Optional[int] = None
        self.last_delta: Optional[int] = None


class SimProfiler:
    """Lightweight per-process wall-clock profiler for a simulation run.

    Attach before running, detach (or just read the report) afterwards::

        profiler = SimProfiler(sim)
        sim.run()
        print(profiler.report())

    While attached, every process step is timed with ``perf_counter`` and
    attributed to the process, together with the delta-cycle count in which
    it ran.  The overhead is two timer reads per step, so profiled runs are
    slower — use it to find hot processes, not to measure absolute speed.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._stats: dict[Process, _ProcStats] = {}
        sim.profiler = self

    def detach(self) -> None:
        """Stop profiling (recorded data stays available)."""
        if self.sim.profiler is self:
            self.sim.profiler = None

    # Called by the scheduler's evaluate loop for every profiled step.
    def _record(self, proc: Process, seconds: float, delta: int) -> None:
        stats = self._stats.get(proc)
        if stats is None:
            stats = self._stats[proc] = _ProcStats(proc.name)
        stats.steps += 1
        stats.seconds += seconds
        if stats.first_delta is None:
            stats.first_delta = delta
        stats.last_delta = delta

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self._stats.values())

    @property
    def total_steps(self) -> int:
        return sum(s.steps for s in self._stats.values())

    def as_dict(self) -> dict:
        """Profile data as plain types, ready for JSON serialisation."""
        processes = sorted(
            self._stats.values(), key=lambda s: s.seconds, reverse=True
        )
        return {
            "total_seconds": self.total_seconds,
            "total_steps": self.total_steps,
            "delta_count": self.sim.delta_count,
            "processes": [
                {
                    "name": s.name,
                    "steps": s.steps,
                    "seconds": s.seconds,
                    "first_delta": s.first_delta,
                    "last_delta": s.last_delta,
                }
                for s in processes
            ],
        }

    def report(self, top: int = 20) -> str:
        """Human-readable table of the *top* processes by wall time."""
        data = self.as_dict()
        lines = [
            f"# simulation profile: {data['total_steps']} steps, "
            f"{data['delta_count']} deltas, {data['total_seconds']:.4f} s",
            f"{'process':<40} {'steps':>8} {'seconds':>10} {'%':>6}",
        ]
        total = data["total_seconds"] or 1.0
        for row in data["processes"][:top]:
            lines.append(
                f"{row['name']:<40} {row['steps']:>8} "
                f"{row['seconds']:>10.4f} {100.0 * row['seconds'] / total:>5.1f}%"
            )
        return "\n".join(lines) + "\n"
