"""Value-change tracing: record signal/probe histories during simulation.

The tracer records ``(time, name, value)`` tuples and can render them as a
simple VCD-style text dump or return per-probe waveforms for assertions in
tests (e.g. checking bus-grant sequences).
"""

from __future__ import annotations

from typing import Optional

from .scheduler import Simulator
from .signal import Signal
from .time import SimTime


class Trace:
    """Collects timestamped value changes from signals and manual probes."""

    def __init__(self, sim: Simulator, name: str = "trace"):
        self.sim = sim
        self.name = name
        self.records: list[tuple[SimTime, str, object]] = []
        self._watched: list[tuple[Signal, str]] = []

    def record(self, probe: str, value: object) -> None:
        """Manually record a value change for *probe* at the current time."""
        self.records.append((self.sim.now, probe, value))

    def watch(self, signal: Signal, name: Optional[str] = None) -> None:
        """Attach to a signal: every change is recorded automatically."""
        probe = name or signal.name
        self._watched.append((signal, probe))
        self.records.append((self.sim.now, probe, signal.read()))
        self.sim.spawn(self._follow(signal, probe), name=f"{self.name}.watch.{probe}")

    def _follow(self, signal: Signal, probe: str):
        while True:
            yield signal.changed
            self.records.append((self.sim.now, probe, signal.read()))

    def waveform(self, probe: str) -> list[tuple[SimTime, object]]:
        """The recorded ``(time, value)`` history of one probe."""
        return [(t, v) for (t, name, v) in self.records if name == probe]

    def value_at(self, probe: str, when: SimTime) -> object:
        """Most recent value of *probe* at or before *when*."""
        value = None
        seen = False
        for t, v in self.waveform(probe):
            if t <= when:
                value, seen = v, True
            else:
                break
        if not seen:
            raise KeyError(f"no value recorded for {probe!r} at or before {when}")
        return value

    def dump(self) -> str:
        """Render all records as aligned text, one change per line."""
        lines = [f"# trace {self.name}: {len(self.records)} changes"]
        for t, probe, value in self.records:
            lines.append(f"{str(t):>12}  {probe:<32} {value!r}")
        return "\n".join(lines) + "\n"

    def to_vcd(self, timescale: str = "1ps") -> str:
        """Render the numeric probes as a VCD (value change dump) file.

        Numeric values become VCD ``real`` variables so any waveform
        viewer can open the output; non-numeric probes are skipped.
        ``timescale`` must be one of the VCD-legal steps (1fs..1s).
        """
        scale_fs = {
            "1fs": 1, "1ps": 10**3, "1ns": 10**6,
            "1us": 10**9, "1ms": 10**12, "1s": 10**15,
        }
        if timescale not in scale_fs:
            raise ValueError(f"unsupported timescale {timescale!r}")
        divisor = scale_fs[timescale]
        numeric = [
            (t, probe, value)
            for t, probe, value in self.records
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        probes = sorted({probe for _, probe, _ in numeric})
        # VCD identifier codes: printable ASCII starting at '!'.
        codes = {probe: chr(33 + index) for index, probe in enumerate(probes)}
        lines = [
            f"$comment trace {self.name} $end",
            f"$timescale {timescale} $end",
            f"$scope module {self.name} $end",
        ]
        for probe in probes:
            safe = probe.replace(" ", "_")
            lines.append(f"$var real 64 {codes[probe]} {safe} $end")
        lines += ["$upscope $end", "$enddefinitions $end"]
        current_time = None
        for t, probe, value in sorted(numeric, key=lambda r: r[0].femtoseconds):
            ticks = t.femtoseconds // divisor
            if ticks != current_time:
                lines.append(f"#{ticks}")
                current_time = ticks
            lines.append(f"r{float(value):g} {codes[probe]}")
        return "\n".join(lines) + "\n"
