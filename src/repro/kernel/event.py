"""Events: the kernel's only synchronisation primitive.

An :class:`Event` can be *notified* in three ways, mirroring SystemC:

* ``notify()`` — **immediate**: waiting processes become runnable within the
  current evaluate phase.
* ``notify(delta=True)`` — **delta**: waiting processes run in the next
  delta cycle (after the update phase).
* ``notify(SimTime(...))`` — **timed**: waiting processes run when the
  simulator reaches the given time offset.

As in SystemC, a pending timed/delta notification is overridden by any
earlier notification on the same event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .time import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import Process
    from .scheduler import Simulator


class Event:
    """A notifiable synchronisation point processes can wait on."""

    __slots__ = ("sim", "name", "_waiting", "_pending_at", "_pending_handle")

    def __init__(self, sim: "Simulator", name: str = "event"):
        self.sim = sim
        self.name = name
        self._waiting: list["Process"] = []
        # Femtosecond timestamp of a pending (delta or timed) notification,
        # used to implement SystemC's earlier-notification-wins rule.
        # None means no notification is pending.
        self._pending_at: Optional[int] = None
        self._pending_handle = None

    # -- notification --------------------------------------------------------

    def notify(self, delay: Optional[SimTime] = None, *, delta: bool = False) -> None:
        """Notify the event immediately, after a delta cycle, or after *delay*."""
        if delta and delay is not None:
            raise ValueError("pass either a delay or delta=True, not both")
        if delay is None and not delta:
            if self._pending_handle is not None:
                self._cancel_pending()
            self.sim._trigger_now(self)
            return
        if delta or delay == ZERO_TIME:
            target = self.sim._now_fs
            if self._pending_at is not None and self._pending_at <= target:
                return  # an earlier (or equal) notification is already pending
            self._cancel_pending()
            self._pending_at = target
            self._pending_handle = self.sim._schedule_delta(self)
            return
        target = self.sim._now_fs + delay.femtoseconds
        if self._pending_at is not None and self._pending_at <= target:
            return
        self._cancel_pending()
        self._pending_at = target
        self._pending_handle = self.sim._schedule_timed(self, target)

    def cancel(self) -> None:
        """Cancel any pending delta/timed notification."""
        self._cancel_pending()

    def _cancel_pending(self) -> None:
        if self._pending_handle is not None:
            self._pending_handle.cancelled = True
            self._pending_handle = None
        self._pending_at = None

    # -- internal: called by the scheduler ------------------------------------

    def _fire(self) -> None:
        """Deliver the notification: wake every waiting process."""
        self._pending_at = None
        self._pending_handle = None
        if self._waiting:
            waiting, self._waiting = self._waiting, []
            for proc in waiting:
                proc._wake(self)

    def _subscribe(self, proc: "Process") -> None:
        self._waiting.append(proc)

    def _unsubscribe(self, proc: "Process") -> None:
        try:
            self._waiting.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:
        return f"Event({self.name!r})"
