"""Hierarchical modules: structure and process registration.

A :class:`Module` is a named node in the design hierarchy that owns
processes, events and child modules, mirroring ``sc_module``.  The OSSS
layer builds its Module / SoftwareTask / SharedObject concepts on top of
this class.
"""

from __future__ import annotations

from typing import Callable, Optional

from .event import Event
from .process import Process, ProcessBody
from .scheduler import Simulator


class Module:
    """A named hierarchy node owning processes and child modules."""

    def __init__(self, sim: Simulator, name: str, parent: Optional["Module"] = None):
        if not name or "." in name:
            raise ValueError(f"module name must be a non-empty dot-free string, got {name!r}")
        self.sim = sim
        self.basename = name
        self.parent = parent
        self.children: list[Module] = []
        self.processes: list[Process] = []
        if parent is not None:
            parent._add_child(self)

    # -- hierarchy -------------------------------------------------------------

    @property
    def name(self) -> str:
        """Full hierarchical name, e.g. ``top.decoder.idwt``."""
        if self.parent is None:
            return self.basename
        return f"{self.parent.name}.{self.basename}"

    def _add_child(self, child: "Module") -> None:
        if any(existing.basename == child.basename for existing in self.children):
            raise ValueError(f"duplicate child module name {child.basename!r} in {self.name!r}")
        self.children.append(child)

    def find(self, path: str) -> "Module":
        """Look up a descendant by dot-separated relative path."""
        node = self
        for part in path.split("."):
            for child in node.children:
                if child.basename == part:
                    node = child
                    break
            else:
                raise KeyError(f"no module {path!r} under {self.name!r}")
        return node

    def walk(self):
        """Yield this module and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- processes and events ----------------------------------------------------

    def add_thread(self, body_fn: Callable[..., ProcessBody], *args, name: Optional[str] = None) -> Process:
        """Register *body_fn(*args)* as a process owned by this module."""
        proc_name = f"{self.name}.{name or body_fn.__name__}"
        proc = self.sim.spawn(body_fn(*args), name=proc_name)
        self.processes.append(proc)
        return proc

    def event(self, name: str = "event") -> Event:
        return Event(self.sim, f"{self.name}.{name}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
