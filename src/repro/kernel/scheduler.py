"""The discrete-event simulator: evaluate / update / notify phases.

The scheduling algorithm follows the SystemC reference semantics:

1. **Evaluate** — run every runnable process until it suspends.  Immediate
   notifications issued here make processes runnable within the same phase.
2. **Update** — apply pending primitive-channel updates (signals).
3. **Delta notification** — fire events notified with a delta delay; if any
   process became runnable, start a new delta cycle at the same time.
4. **Timed notification** — otherwise advance simulated time to the earliest
   pending timed notification and fire it.

Simulation ends when no runnable process and no pending notification remain,
or when an optional time limit is reached.

Fast paths
----------

The kernel carries two scheduling representations for the common wait
patterns, selected per :class:`Simulator` by the ``fast`` flag (default on,
overridable with the ``REPRO_KERNEL_FAST`` environment variable or
:func:`set_default_fast`):

* ``yield SimTime(...)`` normally builds a throwaway :class:`Event`, routes
  it through the notification machinery and tears it down again.  The fast
  path instead parks the process directly on the timed heap
  (:class:`_TimedWake`) — one heap entry, no Event, no subscribe /
  unsubscribe churn.
* components can schedule plain callbacks into the delta-notification
  phase (:meth:`Simulator._schedule_delta_call`), which lets bus arbiters
  and Shared-Object schedulers run as end-of-delta callbacks instead of
  always-on processes.

Both representations produce identical simulated timestamps and delta
counts for the visible behaviour; the reference (slow) mode is kept alive
so property tests can diff the two schedulers on random process graphs.
"""

from __future__ import annotations

import heapq
import itertools
import os
from collections import deque
from time import perf_counter
from typing import Callable, Optional

from .event import Event
from .process import Process, ProcessBody, ProcessState
from .time import SimTime, ZERO_TIME
from .. import telemetry as _telemetry

#: Process-level default for the per-simulator ``fast`` flag.
_DEFAULT_FAST = os.environ.get("REPRO_KERNEL_FAST", "1") != "0"


def set_default_fast(enabled: bool) -> bool:
    """Set the default ``fast`` mode of newly built simulators.

    Returns the previous default so callers (benchmark harnesses mainly)
    can restore it in a ``finally`` block.
    """
    global _DEFAULT_FAST
    previous = _DEFAULT_FAST
    _DEFAULT_FAST = bool(enabled)
    return previous


def default_fast() -> bool:
    """The current default of the ``fast`` flag."""
    return _DEFAULT_FAST


class SimulationError(RuntimeError):
    """A process raised, or the kernel detected an inconsistency."""


class ProcessError(SimulationError):
    """Wraps an exception escaping a process body."""

    def __init__(self, process: Process, cause: BaseException):
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class _TimedEntry:
    """Heap entry for a timed event notification (lazily cancellable)."""

    __slots__ = ("at_fs", "seq", "event", "cancelled")

    def __init__(self, at_fs: int, seq: int, event: Event):
        self.at_fs = at_fs
        self.seq = seq
        self.event = event
        self.cancelled = False

    def fire(self) -> None:
        self.event._fire()

    def __lt__(self, other) -> bool:
        if self.at_fs != other.at_fs:
            return self.at_fs < other.at_fs
        return self.seq < other.seq


class _TimedWake:
    """Heap entry waking one process directly (timed-wait fast path)."""

    __slots__ = ("at_fs", "seq", "proc", "cancelled")

    def __init__(self, at_fs: int, seq: int, proc: Process):
        self.at_fs = at_fs
        self.seq = seq
        self.proc = proc
        self.cancelled = False

    def fire(self) -> None:
        self.proc._wake_from_timer()

    def __lt__(self, other) -> bool:
        if self.at_fs != other.at_fs:
            return self.at_fs < other.at_fs
        return self.seq < other.seq


class _DeltaEntry:
    """Delta-queue entry firing an event (lazily cancellable)."""

    __slots__ = ("event", "cancelled")

    def __init__(self, event: Event):
        self.event = event
        self.cancelled = False

    def fire(self) -> None:
        self.event._fire()


class _DeltaWake:
    """Delta-queue entry waking one process directly (zero-delay wait)."""

    __slots__ = ("proc", "cancelled")

    def __init__(self, proc: Process):
        self.proc = proc
        self.cancelled = False

    def fire(self) -> None:
        self.proc._wake_from_timer()


class _DeltaCall:
    """Delta-queue entry running a plain callback (arbiter fast path)."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn
        self.cancelled = False

    def fire(self) -> None:
        self.fn()


class Simulator:
    """Owns simulated time, the event queues, and all processes."""

    def __init__(self, fast: Optional[bool] = None):
        self._now_fs = 0
        self._now_cache: Optional[SimTime] = ZERO_TIME
        self._runnable: deque[Process] = deque()
        self._delta_queue: list = []
        self._timed_queue: list = []
        self._update_queue: list[Callable[[], None]] = []
        self._seq = itertools.count()
        self.processes: list[Process] = []
        self.delta_count = 0
        #: Raised process errors abort the run; kept for post-mortem access.
        self.failure: Optional[ProcessError] = None
        self._running = False
        #: Enables the kernel fast paths (direct timed process wakes and
        #: delta callbacks).  Components such as the VTA channels consult
        #: this flag to pick their own fast/reference scheduling.
        self.fast = _DEFAULT_FAST if fast is None else bool(fast)
        #: When set (see :class:`~repro.kernel.tracing.SimProfiler`), every
        #: process step is timed and attributed.
        self.profiler = None
        #: The telemetry recorder active at construction time, or ``None``.
        #: Components reach telemetry through this cached reference, so a
        #: disabled run costs one attribute read and a branch per site; the
        #: kernel loops below additionally hoist that check out of the hot
        #: path entirely.
        self.telemetry = _telemetry.active()
        if self.telemetry is not None:
            self.telemetry.bind_sim(self)

    # -- public API ----------------------------------------------------------

    @property
    def now(self) -> SimTime:
        cached = self._now_cache
        if cached is not None and cached._fs == self._now_fs:
            return cached
        cached = SimTime.from_fs(self._now_fs)
        self._now_cache = cached
        return cached

    def event(self, name: str = "event") -> Event:
        return Event(self, name)

    def spawn(self, body: ProcessBody, name: str = "process") -> Process:
        """Register a generator as a process, runnable at the current time."""
        proc = Process(self, body, name)
        self.processes.append(proc)
        self._runnable.append(proc)
        return proc

    def spawn_resettable(self, factory, name: str = "process") -> Process:
        """Spawn from a zero-argument generator factory; supports restart().

        This is the kernel hook behind reset semantics: asserting a reset
        re-creates the body from the factory and runs it from the top.
        """
        proc = Process(self, factory(), name, factory=factory)
        self.processes.append(proc)
        self._runnable.append(proc)
        return proc

    def run(self, until: Optional[SimTime] = None) -> SimTime:
        """Run until quiescence or *until* (inclusive); returns final time."""
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        limit_fs = until.femtoseconds if until is not None else None
        observing = (
            _telemetry.log_enabled()
            or _telemetry.flight_recorder() is not None
        )
        if observing:
            _telemetry.log_event(
                "kernel.run", processes=len(self.processes),
                from_fs=self._now_fs, until_fs=limit_fs,
            )
        try:
            while True:
                self._evaluate_and_update()
                if self.failure is not None:
                    raise self.failure
                next_at = self._peek_timed()
                if next_at is None:
                    break
                if limit_fs is not None and next_at > limit_fs:
                    self._now_fs = limit_fs
                    break
                self._now_fs = next_at
                self._fire_due_timed()
        except BaseException as error:
            if observing:
                _telemetry.log_event(
                    "kernel.failed", error=type(error).__name__,
                    now_fs=self._now_fs,
                )
            raise
        finally:
            self._running = False
        if observing:
            _telemetry.log_event(
                "kernel.quiescent", now_fs=self._now_fs,
                deltas=self.delta_count,
            )
        return self.now

    def run_for(self, duration: SimTime) -> SimTime:
        """Run for at most *duration* beyond the current time."""
        return self.run(until=self.now + duration)

    # -- scheduler internals ---------------------------------------------------

    def _evaluate_and_update(self) -> None:
        """One or more delta cycles at the current time point."""
        if self.profiler is not None or self.telemetry is not None:
            self._evaluate_and_update_instrumented()
            return
        runnable = self._runnable
        ready = ProcessState.READY
        while runnable or self._delta_queue or self._update_queue:
            self.delta_count += 1
            # Evaluate phase.
            while runnable:
                proc = runnable.popleft()
                if proc.state is ready:
                    proc._step()
                    if self.failure is not None:
                        return
            # Update phase.
            if self._update_queue:
                updates, self._update_queue = self._update_queue, []
                for update in updates:
                    update()
            # Delta-notification phase.
            if self._delta_queue:
                deltas, self._delta_queue = self._delta_queue, []
                for entry in deltas:
                    if not entry.cancelled:
                        entry.fire()

    def _evaluate_and_update_instrumented(self) -> None:
        """The evaluate loop with profiler timing and/or telemetry counts.

        Kept separate from :meth:`_evaluate_and_update` so a disabled run
        executes the bare loop with no per-step bookkeeping at all; the
        step/delta totals flush into the metrics registry once per time
        point, keeping the enabled overhead to one local int add per step.
        """
        runnable = self._runnable
        ready = ProcessState.READY
        steps = 0
        deltas_run = 0
        try:
            while runnable or self._delta_queue or self._update_queue:
                self.delta_count += 1
                deltas_run += 1
                # Evaluate phase.
                profiler = self.profiler
                if profiler is None:
                    while runnable:
                        proc = runnable.popleft()
                        if proc.state is ready:
                            proc._step()
                            steps += 1
                            if self.failure is not None:
                                return
                else:
                    while runnable:
                        proc = runnable.popleft()
                        if proc.state is ready:
                            started = perf_counter()
                            proc._step()
                            profiler._record(
                                proc, perf_counter() - started, self.delta_count
                            )
                            steps += 1
                            if self.failure is not None:
                                return
                # Update phase.
                if self._update_queue:
                    updates, self._update_queue = self._update_queue, []
                    for update in updates:
                        update()
                # Delta-notification phase.
                if self._delta_queue:
                    deltas, self._delta_queue = self._delta_queue, []
                    for entry in deltas:
                        if not entry.cancelled:
                            entry.fire()
        finally:
            tel = self.telemetry
            if tel is not None and deltas_run:
                metrics = tel.metrics
                metrics.count("kernel.delta_cycles", deltas_run)
                metrics.count("kernel.process_steps", steps)

    def _peek_timed(self) -> Optional[int]:
        queue = self._timed_queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        if not queue:
            return None
        return queue[0].at_fs

    def _fire_due_timed(self) -> None:
        """Fire every entry due now — same-timestamp wakes are batched."""
        queue = self._timed_queue
        now_fs = self._now_fs
        pop = heapq.heappop
        tel = self.telemetry
        if tel is None:
            while queue and (queue[0].cancelled or queue[0].at_fs == now_fs):
                entry = pop(queue)
                if not entry.cancelled:
                    entry.fire()
            return
        fired = 0
        while queue and (queue[0].cancelled or queue[0].at_fs == now_fs):
            entry = pop(queue)
            if not entry.cancelled:
                entry.fire()
                fired += 1
        if fired:
            tel.metrics.count("kernel.timer_pops", fired)

    # -- hooks used by Event / Process / primitive channels ---------------------

    def _trigger_now(self, event: Event) -> None:
        event._fire()

    def _schedule_delta(self, event: Event) -> _DeltaEntry:
        entry = _DeltaEntry(event)
        self._delta_queue.append(entry)
        return entry

    def _schedule_delta_wake(self, proc: Process) -> _DeltaWake:
        """Fast path: wake *proc* in the next delta cycle (zero-delay wait)."""
        entry = _DeltaWake(proc)
        self._delta_queue.append(entry)
        return entry

    def _schedule_delta_call(self, fn: Callable[[], None]) -> _DeltaCall:
        """Run *fn* in this timestamp's next delta-notification phase.

        The callback runs exactly where an always-on arbiter process woken
        by a delta-notified event would make its decision visible, so
        event-driven arbiters built on this hook reproduce the reference
        process-based timing without paying a process wake per decision.
        """
        entry = _DeltaCall(fn)
        self._delta_queue.append(entry)
        return entry

    def _schedule_timed(self, event: Event, at_fs: int) -> _TimedEntry:
        entry = _TimedEntry(at_fs, next(self._seq), event)
        heapq.heappush(self._timed_queue, entry)
        return entry

    def _schedule_timed_wake(self, proc: Process, at_fs: int) -> _TimedWake:
        """Fast path: park *proc* directly on the timed heap (no Event)."""
        entry = _TimedWake(at_fs, next(self._seq), proc)
        heapq.heappush(self._timed_queue, entry)
        return entry

    def _make_runnable(self, proc: Process) -> None:
        self._runnable.append(proc)

    def _request_update(self, update: Callable[[], None]) -> None:
        self._update_queue.append(update)

    def _process_finished(self, proc: Process) -> None:
        pass  # nothing to clean up; kept as an extension point

    def _process_failed(self, proc: Process, exc: BaseException) -> None:
        self.failure = ProcessError(proc, exc)

    # -- convenience -----------------------------------------------------------

    def wait_fs(self, duration_fs: int) -> SimTime:
        """Helper mainly for tests: a SimTime of *duration_fs* femtoseconds."""
        return SimTime.from_fs(duration_fs)

    def __repr__(self) -> str:
        return f"Simulator(now={self.now}, processes={len(self.processes)})"
