"""The discrete-event simulator: evaluate / update / notify phases.

The scheduling algorithm follows the SystemC reference semantics:

1. **Evaluate** — run every runnable process until it suspends.  Immediate
   notifications issued here make processes runnable within the same phase.
2. **Update** — apply pending primitive-channel updates (signals).
3. **Delta notification** — fire events notified with a delta delay; if any
   process became runnable, start a new delta cycle at the same time.
4. **Timed notification** — otherwise advance simulated time to the earliest
   pending timed notification and fire it.

Simulation ends when no runnable process and no pending notification remain,
or when an optional time limit is reached.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Optional

from .event import Event
from .process import Process, ProcessBody
from .time import SimTime, ZERO_TIME


class SimulationError(RuntimeError):
    """A process raised, or the kernel detected an inconsistency."""


class ProcessError(SimulationError):
    """Wraps an exception escaping a process body."""

    def __init__(self, process: Process, cause: BaseException):
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class _TimedEntry:
    """Heap entry for a timed notification (lazily cancellable)."""

    __slots__ = ("at_fs", "seq", "event", "cancelled")

    def __init__(self, at_fs: int, seq: int, event: Event):
        self.at_fs = at_fs
        self.seq = seq
        self.event = event
        self.cancelled = False

    def __lt__(self, other: "_TimedEntry") -> bool:
        return (self.at_fs, self.seq) < (other.at_fs, other.seq)


class _DeltaEntry:
    """Entry in the delta-notification queue (lazily cancellable)."""

    __slots__ = ("event", "cancelled")

    def __init__(self, event: Event):
        self.event = event
        self.cancelled = False


class Simulator:
    """Owns simulated time, the event queues, and all processes."""

    def __init__(self):
        self._now_fs = 0
        self._runnable: deque[Process] = deque()
        self._delta_queue: list[_DeltaEntry] = []
        self._timed_queue: list[_TimedEntry] = []
        self._update_queue: list[Callable[[], None]] = []
        self._seq = itertools.count()
        self.processes: list[Process] = []
        self.delta_count = 0
        #: Raised process errors abort the run; kept for post-mortem access.
        self.failure: Optional[ProcessError] = None
        self._running = False

    # -- public API ----------------------------------------------------------

    @property
    def now(self) -> SimTime:
        return SimTime.from_fs(self._now_fs)

    def event(self, name: str = "event") -> Event:
        return Event(self, name)

    def spawn(self, body: ProcessBody, name: str = "process") -> Process:
        """Register a generator as a process, runnable at the current time."""
        proc = Process(self, body, name)
        self.processes.append(proc)
        self._runnable.append(proc)
        return proc

    def spawn_resettable(self, factory, name: str = "process") -> Process:
        """Spawn from a zero-argument generator factory; supports restart().

        This is the kernel hook behind reset semantics: asserting a reset
        re-creates the body from the factory and runs it from the top.
        """
        proc = Process(self, factory(), name, factory=factory)
        self.processes.append(proc)
        self._runnable.append(proc)
        return proc

    def run(self, until: Optional[SimTime] = None) -> SimTime:
        """Run until quiescence or *until* (inclusive); returns final time."""
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        limit_fs = until.femtoseconds if until is not None else None
        try:
            while True:
                self._evaluate_and_update()
                if self.failure is not None:
                    raise self.failure
                next_at = self._peek_timed()
                if next_at is None:
                    break
                if limit_fs is not None and next_at > limit_fs:
                    self._now_fs = limit_fs
                    break
                self._now_fs = next_at
                self._fire_due_timed()
        finally:
            self._running = False
        return self.now

    def run_for(self, duration: SimTime) -> SimTime:
        """Run for at most *duration* beyond the current time."""
        return self.run(until=self.now + duration)

    # -- scheduler internals ---------------------------------------------------

    def _evaluate_and_update(self) -> None:
        """One or more delta cycles at the current time point."""
        while self._runnable or self._delta_queue or self._update_queue:
            self.delta_count += 1
            # Evaluate phase.
            while self._runnable:
                proc = self._runnable.popleft()
                if proc.finished:
                    continue
                proc._step()
                if self.failure is not None:
                    return
            # Update phase.
            updates, self._update_queue = self._update_queue, []
            for update in updates:
                update()
            # Delta-notification phase.
            deltas, self._delta_queue = self._delta_queue, []
            for entry in deltas:
                if not entry.cancelled:
                    entry.event._fire()

    def _peek_timed(self) -> Optional[int]:
        while self._timed_queue and self._timed_queue[0].cancelled:
            heapq.heappop(self._timed_queue)
        if not self._timed_queue:
            return None
        return self._timed_queue[0].at_fs

    def _fire_due_timed(self) -> None:
        while self._timed_queue and (
            self._timed_queue[0].cancelled or self._timed_queue[0].at_fs == self._now_fs
        ):
            entry = heapq.heappop(self._timed_queue)
            if not entry.cancelled:
                entry.event._fire()

    # -- hooks used by Event / Process / primitive channels ---------------------

    def _trigger_now(self, event: Event) -> None:
        event._fire()

    def _schedule_delta(self, event: Event) -> _DeltaEntry:
        entry = _DeltaEntry(event)
        self._delta_queue.append(entry)
        return entry

    def _schedule_timed(self, event: Event, at_fs: int) -> _TimedEntry:
        entry = _TimedEntry(at_fs, next(self._seq), event)
        heapq.heappush(self._timed_queue, entry)
        return entry

    def _make_runnable(self, proc: Process) -> None:
        self._runnable.append(proc)

    def _request_update(self, update: Callable[[], None]) -> None:
        self._update_queue.append(update)

    def _process_finished(self, proc: Process) -> None:
        pass  # nothing to clean up; kept as an extension point

    def _process_failed(self, proc: Process, exc: BaseException) -> None:
        self.failure = ProcessError(proc, exc)

    # -- convenience -----------------------------------------------------------

    def wait_fs(self, duration_fs: int) -> SimTime:
        """Helper mainly for tests: a SimTime of *duration_fs* femtoseconds."""
        return SimTime.from_fs(duration_fs)

    def __repr__(self) -> str:
        return f"Simulator(now={self.now}, processes={len(self.processes)})"
