"""Simulated time for the discrete-event kernel.

Time is held as an integer number of femtoseconds, mirroring SystemC's
``sc_time`` (integer multiples of a fixed resolution).  Integer arithmetic
keeps event ordering exact: two events scheduled at mathematically equal
times always compare equal, which floating point would not guarantee.
"""

from __future__ import annotations

from functools import total_ordering

#: Memoised SimTime instances, keyed by femtosecond count (see
#: :meth:`SimTime.intern`).  Bounded so one-off values cannot leak.
_intern_cache: dict = {}
_INTERN_LIMIT = 65536

#: Multipliers from unit name to femtoseconds.
_UNIT_FS = {
    "fs": 1,
    "ps": 10**3,
    "ns": 10**6,
    "us": 10**9,
    "ms": 10**12,
    "s": 10**15,
}


@total_ordering
class SimTime:
    """An immutable point in (or duration of) simulated time.

    >>> SimTime(1, "ns") + SimTime(500, "ps")
    SimTime('1500 ps')
    """

    __slots__ = ("_fs",)

    def __init__(self, value: float = 0, unit: str = "fs"):
        if unit not in _UNIT_FS:
            raise ValueError(f"unknown time unit {unit!r}; expected one of {sorted(_UNIT_FS)}")
        if value < 0:
            raise ValueError(f"time must be non-negative, got {value} {unit}")
        self._fs = round(value * _UNIT_FS[unit])

    @classmethod
    def from_fs(cls, fs: int) -> "SimTime":
        """Build a SimTime directly from an integer femtosecond count."""
        if fs < 0:
            raise ValueError(f"time must be non-negative, got {fs} fs")
        t = cls.__new__(cls)
        t._fs = int(fs)
        return t

    @classmethod
    def intern(cls, fs: int) -> "SimTime":
        """Like :meth:`from_fs`, but memoised.

        Simulations construct the same durations over and over (clock
        periods, bus-transfer times, EETs); interning them avoids one
        object allocation per wait on those hot paths.  The cache is
        bounded, so arbitrary one-off values (e.g. timestamps) can pass
        through without growing it forever.
        """
        t = _intern_cache.get(fs)
        if t is None:
            t = cls.from_fs(fs)
            if len(_intern_cache) < _INTERN_LIMIT:
                _intern_cache[fs] = t
        return t

    @property
    def femtoseconds(self) -> int:
        return self._fs

    def to(self, unit: str) -> float:
        """Convert to a float in the given unit."""
        return self._fs / _UNIT_FS[unit]

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "SimTime") -> "SimTime":
        return SimTime.from_fs(self._fs + other._fs)

    def __sub__(self, other: "SimTime") -> "SimTime":
        if other._fs > self._fs:
            raise ValueError("time subtraction would be negative")
        return SimTime.from_fs(self._fs - other._fs)

    def __mul__(self, factor: float) -> "SimTime":
        return SimTime.from_fs(round(self._fs * factor))

    __rmul__ = __mul__

    def __truediv__(self, other):
        """Duration ratio (SimTime/SimTime -> float) or scaling by a number."""
        if isinstance(other, SimTime):
            return self._fs / other._fs
        return SimTime.from_fs(round(self._fs / other))

    def __floordiv__(self, other: "SimTime") -> int:
        return self._fs // other._fs

    def __mod__(self, other: "SimTime") -> "SimTime":
        return SimTime.from_fs(self._fs % other._fs)

    # -- comparison ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimTime) and self._fs == other._fs

    def __lt__(self, other: "SimTime") -> bool:
        return self._fs < other._fs

    def __hash__(self) -> int:
        return hash(self._fs)

    def __bool__(self) -> bool:
        return self._fs != 0

    # -- formatting ---------------------------------------------------------

    def __repr__(self) -> str:
        return f"SimTime({str(self)!r})"

    def __str__(self) -> str:
        if self._fs == 0:
            return "0 s"
        for unit in ("s", "ms", "us", "ns", "ps", "fs"):
            scale = _UNIT_FS[unit]
            if self._fs % scale == 0:
                return f"{self._fs // scale} {unit}"
        return f"{self._fs} fs"


#: Zero duration, shared instance.
ZERO_TIME = SimTime.from_fs(0)


def fs(value: float) -> SimTime:
    return SimTime(value, "fs")


def ps(value: float) -> SimTime:
    return SimTime(value, "ps")


def ns(value: float) -> SimTime:
    return SimTime(value, "ns")


def us(value: float) -> SimTime:
    return SimTime(value, "us")


def ms(value: float) -> SimTime:
    return SimTime(value, "ms")


def sec(value: float) -> SimTime:
    return SimTime(value, "s")
